//! The paper's qualitative claims, checked as executable assertions.
//! Each test cites the section it reproduces.

use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;
use geonet::SiteId;

/// §2.1 Observation 1: intra-region bandwidth is ~10x+ the cross-region
/// bandwidth, for every instance type.
#[test]
fn observation1_intra_inter_gap() {
    for ty in net::InstanceType::TABLE1 {
        let sites = net::presets::ec2_sites(&["us-east-1", "ap-southeast-1"], 2);
        let network = net::SynthNetworkBuilder::new(net::SynthConfig::ec2(ty)).build(sites);
        let ratio = network.intra_inter_bandwidth_ratio();
        assert!(ratio > 2.0, "{ty}: ratio {ratio}");
    }
    // And for the big instance the paper measures in Table 1 it's >10x.
    let sites = net::presets::ec2_sites(&["us-east-1", "ap-southeast-1"], 2);
    let network =
        net::SynthNetworkBuilder::new(net::SynthConfig::ec2(net::InstanceType::C38xlarge))
            .build(sites);
    assert!(network.intra_inter_bandwidth_ratio() > 10.0);
}

/// §2.1 Observation 2: cross-region performance tracks geographic
/// distance, on both EC2 and Azure profiles.
#[test]
fn observation2_distance_correlation() {
    let network = net::presets::ec2_global_network(2, net::InstanceType::C38xlarge, 3);
    // Collect (distance, bandwidth) for all inter-site pairs and check
    // rank correlation is strongly negative.
    let m = network.num_sites();
    let mut pairs = Vec::new();
    for k in 0..m {
        for l in 0..m {
            if k != l {
                let d = network.site(SiteId(k)).distance_km(network.site(SiteId(l)));
                pairs.push((d, network.bandwidth(SiteId(k), SiteId(l))));
            }
        }
    }
    // Spearman-ish check: count concordant vs discordant pairs.
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            let d = (pairs[i].0 - pairs[j].0) * (pairs[i].1 - pairs[j].1);
            if d < 0.0 {
                concordant += 1; // farther => slower
            } else if d > 0.0 {
                discordant += 1;
            }
        }
    }
    let tau = (concordant - discordant) as f64 / (concordant + discordant) as f64;
    assert!(
        tau > 0.6,
        "distance/bandwidth anticorrelation too weak: tau {tau}"
    );
}

/// §4.2: site-pair calibration is O(M²) probes, not O(N²) — the paper's
/// 12-minutes-vs-180-days example.
#[test]
fn calibration_cost_reduction() {
    let (site_minutes, node_minutes) = net::calibration_cost_minutes(4, 512);
    assert_eq!(site_minutes, 12.0);
    assert!(node_minutes / site_minutes > 20_000.0);
}

/// §4.2: calibrated inter-site variation is small (<5%-ish) and the
/// estimates are accurate enough to drive optimization.
#[test]
fn calibration_variation_is_small() {
    let truth = net::presets::paper_ec2_network(8, net::InstanceType::M4Xlarge, 11);
    let report = net::Calibrator::new(net::CalibrationConfig::default()).calibrate(&truth);
    assert!(report.max_inter_site_cv() < 0.08);
    assert!(report.estimated.bt().rel_l1_diff(truth.bt()) < 0.06);
}

/// §5.2: optimization overhead ordering — MPIPP is by far the heaviest;
/// Geo and Greedy are comparable at small site counts.
#[test]
fn overhead_ordering() {
    let network = net::presets::paper_ec2_network(16, net::InstanceType::M4Xlarge, 1);
    let pattern = comm::apps::AppKind::Lu.workload(64).pattern();
    let problem = MappingProblem::unconstrained(pattern, network);
    let time = |f: &dyn Fn() -> Mapping| {
        // median of 3
        let mut ts: Vec<f64> = (0..3)
            .map(|_| {
                let s = std::time::Instant::now();
                std::hint::black_box(f());
                s.elapsed().as_secs_f64()
            })
            .collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts[1]
    };
    let t_greedy = time(&|| baselines::GreedyMapper::default().map(&problem));
    let t_mpipp = time(&|| baselines::MpippMapper::with_seed(1).map(&problem));
    assert!(
        t_mpipp > 3.0 * t_greedy,
        "MPIPP ({t_mpipp}s) should dwarf Greedy ({t_greedy}s)"
    );
}

/// §5.3 (Fig. 5 discussion): Greedy shines on diagonal patterns but is
/// weak on K-means, where Geo keeps a clear margin.
#[test]
fn greedy_strong_on_lu_weak_on_kmeans() {
    let network = net::presets::paper_ec2_network(16, net::InstanceType::M4Xlarge, 5);
    let improvement = |app: comm::apps::AppKind, mapper: &dyn Mapper| {
        let problem = MappingProblem::unconstrained(app.workload(64).pattern(), network.clone());
        let base: f64 = (0..5)
            .map(|s| {
                eq3_cost(
                    &problem,
                    &baselines::RandomMapper::with_seed(s).map(&problem),
                )
            })
            .sum::<f64>()
            / 5.0;
        (base - eq3_cost(&problem, &mapper.map(&problem))) / base * 100.0
    };
    let greedy_lu = improvement(comm::apps::AppKind::Lu, &baselines::GreedyMapper::default());
    let greedy_km = improvement(
        comm::apps::AppKind::KMeans,
        &baselines::GreedyMapper::default(),
    );
    let geo_km = improvement(comm::apps::AppKind::KMeans, &GeoMapper::default());
    assert!(greedy_lu > 40.0, "Greedy on LU only {greedy_lu}%");
    assert!(
        geo_km > greedy_km,
        "Geo ({geo_km}%) must beat Greedy ({greedy_km}%) on K-means"
    );
}

/// §5.4 (Fig. 8): improvement over Greedy decreases with the constraint
/// ratio and vanishes at ratio 1.0.
#[test]
fn constraint_ratio_monotonicity_at_the_ends() {
    let network = net::presets::paper_ec2_network(8, net::InstanceType::M4Xlarge, 7);
    let pattern = comm::apps::AppKind::KMeans.workload(32).pattern();
    let imp = |ratio: f64| {
        // Average over constraint draws for stability.
        let runs = 3;
        (0..runs)
            .map(|d| {
                let c = if ratio == 0.0 {
                    ConstraintVector::none(32)
                } else {
                    ConstraintVector::random(32, ratio, &network.capacities(), 31 + d)
                };
                let problem = MappingProblem::new(pattern.clone(), network.clone(), c);
                let greedy = eq3_cost(&problem, &baselines::GreedyMapper::default().map(&problem));
                let geo = eq3_cost(&problem, &GeoMapper::default().map(&problem));
                (greedy - geo) / greedy * 100.0
            })
            .sum::<f64>()
            / runs as f64
    };
    let at_zero = imp(0.0);
    let at_full = imp(1.0);
    assert!(
        at_full.abs() < 1e-9,
        "no freedom left at ratio 1.0, got {at_full}%"
    );
    assert!(
        at_zero > at_full,
        "freedom must help: {at_zero}% vs {at_full}%"
    );
}

/// §5.4 (Fig. 9): the probability that a random mapping beats
/// Geo-distributed is tiny.
#[test]
fn monte_carlo_tail_probability() {
    let network = net::presets::paper_ec2_network(8, net::InstanceType::M4Xlarge, 9);
    let pattern = comm::apps::AppKind::Lu.workload(32).pattern();
    let problem = MappingProblem::unconstrained(pattern, network);
    let geo = eq3_cost(&problem, &GeoMapper::default().map(&problem));
    let mc = baselines::MonteCarlo::new(3000, 17);
    let sorted = mc.cdf(&problem);
    let frac = baselines::MonteCarlo::fraction_below(&sorted, geo);
    assert!(frac < 0.02, "P(random < geo) = {frac}");
}

/// §5.4 (Fig. 10): best-of-K random search improves roughly
/// logarithmically — each 16x budget increase keeps helping, slowly.
#[test]
fn best_of_k_improves_slowly() {
    let network = net::presets::paper_ec2_network(8, net::InstanceType::M4Xlarge, 13);
    let pattern = comm::apps::AppKind::KMeans.workload(32).pattern();
    let problem = MappingProblem::unconstrained(pattern, network);
    let mc = baselines::MonteCarlo::new(4096, 23);
    let curve = mc.best_of_k_curve(&problem, &[1, 16, 256, 4096]);
    // Monotone decreasing...
    for w in curve.windows(2) {
        assert!(w[1].1 <= w[0].1);
    }
    // ...but with diminishing returns: the last 16x step gains less than
    // the total gain of the first two steps combined.
    let total_gain = curve[0].1 - curve[3].1;
    let last_gain = curve[2].1 - curve[3].1;
    assert!(
        last_gain <= 0.8 * total_gain,
        "no diminishing returns: {curve:?}"
    );
}
