//! Cross-crate property tests: random problems in, invariants out.

use geo_process_mapping::comm::apps::Workload;
use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;
use proptest::prelude::*;

/// A random problem: 2–4 sites from the EC2 catalogue, 4–24 processes
/// with a random sparse pattern and random constraint ratio.
fn arb_problem() -> impl Strategy<Value = MappingProblem> {
    (2usize..=4, 1usize..=6, 0u64..1000, 0.0f64..0.8).prop_map(
        |(sites, per_site_factor, seed, ratio)| {
            let names: Vec<&str> =
                ["us-east-1", "us-west-2", "ap-southeast-1", "eu-west-1"][..sites].to_vec();
            let nodes = per_site_factor.max(1);
            let net_sites = net::presets::ec2_sites(&names, nodes);
            let network = net::SynthNetworkBuilder::new(net::SynthConfig {
                seed,
                ..net::SynthConfig::default()
            })
            .build(net_sites);
            let n = sites * nodes;
            let pattern = comm::apps::RandomGraph {
                n,
                degree: 3,
                max_bytes: 1_000_000,
                seed,
            }
            .pattern();
            let constraints =
                ConstraintVector::random(n, ratio, &network.capacities(), seed ^ 0xC0);
            MappingProblem::new(pattern, network, constraints)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_mapper_is_always_feasible(problem in arb_problem(), seed in 0u64..100) {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(baselines::RandomMapper::with_seed(seed)),
            Box::new(baselines::GreedyMapper::default()),
            Box::new(baselines::MpippMapper { restarts: 1, ..baselines::MpippMapper::with_seed(seed) }),
            Box::new(GeoMapper { seed, ..GeoMapper::default() }),
        ];
        for mapper in mappers {
            let m = mapper.map(&problem);
            prop_assert!(m.validate(&problem).is_ok(), "{} infeasible", mapper.name());
            let c = eq3_cost(&problem, &m);
            prop_assert!(c.is_finite() && c >= 0.0);
        }
    }

    #[test]
    fn cost_agrees_with_simnet_replay(problem in arb_problem(), seed in 0u64..100) {
        let m = baselines::RandomMapper::with_seed(seed).map(&problem);
        let a = eq3_cost(&problem, &m);
        let b = sim::sum_cost(problem.pattern(), problem.network(), m.as_slice());
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
        // The bottleneck estimate is a lower bound on the sum.
        let bt = sim::bottleneck_time(problem.pattern(), problem.network(), m.as_slice());
        prop_assert!(bt <= a + 1e-9);
    }

    #[test]
    fn geo_never_loses_to_its_own_baseline_badly(problem in arb_problem()) {
        // Geo's packed mapping must never be worse than the *average*
        // random mapping: the algorithm optimizes the exact objective we
        // measure.
        let base: f64 = (0..5)
            .map(|s| eq3_cost(&problem, &baselines::RandomMapper::with_seed(s).map(&problem)))
            .sum::<f64>() / 5.0;
        let geo = eq3_cost(&problem, &GeoMapper::default().map(&problem));
        prop_assert!(geo <= base * 1.05, "geo {geo} vs baseline mean {base}");
    }

    #[test]
    fn des_makespan_bounded_below_by_single_message_floor(
        n in 2usize..10, bytes in 1u64..1_000_000, seed in 0u64..50
    ) {
        // A single transfer through the DES can never beat the raw alpha-beta
        // time of its link, whatever the mapping.
        let network = net::presets::paper_ec2_network(4, net::InstanceType::M4Xlarge, seed);
        let mut b = comm::ProgramBuilder::new(n);
        b.transfer(0, 1, bytes);
        let program = b.build();
        let assignment: Vec<geonet::SiteId> =
            (0..n).map(|i| geonet::SiteId((i as u64 + seed) as usize % 4)).collect();
        let result = runtime::execute(&program, &network, &assignment,
            &runtime::RunConfig { send_overhead: 0.0, ..runtime::RunConfig::comm_only() });
        let floor = network.alpha_beta(assignment[0], assignment[1]).transfer_time(bytes);
        prop_assert!(result.makespan >= floor - 1e-12);
        prop_assert!((result.makespan - floor).abs() < 1e-9);
    }

    #[test]
    fn compression_preserves_profiles_for_real_apps(
        ranks in prop::sample::select(vec![8usize, 12, 16]),
        app_idx in 0usize..5,
    ) {
        let app = comm::apps::AppKind::ALL[app_idx];
        let program = app.workload(ranks).program();
        let mut trace = comm::Trace::new();
        for r in 0..ranks {
            for op in program.rank_ops(r) {
                if let comm::RankOp::Send { to, bytes } = op {
                    trace.push(r, *to, *bytes);
                }
            }
        }
        let direct = trace.to_pattern(ranks);
        let compressed = trace.compress().to_pattern(ranks);
        prop_assert_eq!(&direct, &compressed);
        prop_assert_eq!(&direct, &program.profile());
    }

    #[test]
    fn swap_chain_keeps_cost_bookkeeping_exact(problem in arb_problem(), swaps in prop::collection::vec((0usize..20, 0usize..20), 1..10)) {
        // Apply a chain of swaps tracking cost incrementally; the running
        // total must match a full recomputation at the end.
        let n = problem.num_processes();
        let mut mapping = baselines::RandomMapper::with_seed(3).map(&problem);
        let mut running = eq3_cost(&problem, &mapping);
        for (a, b) in swaps {
            let (a, b) = (a % n, b % n);
            // Swapping constrained processes would violate C; skip those.
            if problem.constraints().pin_of(a).is_some() || problem.constraints().pin_of(b).is_some() {
                continue;
            }
            running += geomap_core::cost::swap_delta(&problem, &mapping, a, b);
            mapping.swap(a, b);
        }
        let exact = eq3_cost(&problem, &mapping);
        prop_assert!((running - exact).abs() <= 1e-6 * exact.max(1.0),
            "incremental {running} vs exact {exact}");
    }
}
