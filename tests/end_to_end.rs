//! End-to-end integration: the full paper flow across every crate.

use geo_process_mapping::comm::apps::Workload;
use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;

/// The paper's deployment at a reduced node count per site.
fn deployment(nodes_per_site: usize, seed: u64) -> net::SiteNetwork {
    net::presets::paper_ec2_network(nodes_per_site, net::InstanceType::M4Xlarge, seed)
}

fn all_mappers(seed: u64) -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(baselines::RandomMapper::with_seed(seed)),
        Box::new(baselines::GreedyMapper::default()),
        Box::new(baselines::MpippMapper::with_seed(seed)),
        Box::new(GeoMapper {
            seed,
            ..GeoMapper::default()
        }),
    ]
}

#[test]
fn every_mapper_is_feasible_on_every_app() {
    let network = deployment(8, 1);
    for app in comm::apps::AppKind::ALL {
        let pattern = app.workload(32).pattern();
        let constraints = ConstraintVector::random(32, 0.2, &network.capacities(), 5);
        let problem = MappingProblem::new(pattern, network.clone(), constraints);
        for mapper in all_mappers(1) {
            let m = mapper.map(&problem);
            m.validate(&problem)
                .unwrap_or_else(|e| panic!("{} on {app}: {e}", mapper.name()));
        }
    }
}

#[test]
fn geo_beats_baseline_on_every_app_in_model_cost() {
    let network = deployment(8, 2);
    for app in comm::apps::AppKind::ALL {
        let pattern = app.workload(32).pattern();
        let problem = MappingProblem::unconstrained(pattern, network.clone());
        let base: f64 = (0..5)
            .map(|s| {
                eq3_cost(
                    &problem,
                    &baselines::RandomMapper::with_seed(s).map(&problem),
                )
            })
            .sum::<f64>()
            / 5.0;
        let geo = eq3_cost(&problem, &GeoMapper::default().map(&problem));
        assert!(
            geo < 0.8 * base,
            "{app}: geo {geo} not clearly below baseline {base}"
        );
    }
}

#[test]
fn geo_beats_baseline_in_simulated_execution() {
    let network = deployment(8, 3);
    for app in [comm::apps::AppKind::Lu, comm::apps::AppKind::KMeans] {
        let workload = app.workload(32);
        let problem = MappingProblem::unconstrained(workload.pattern(), network.clone());
        let cfg = runtime::RunConfig::comm_only();
        let base = runtime::execute_workload(
            workload.as_ref(),
            &network,
            baselines::RandomMapper::with_seed(9)
                .map(&problem)
                .as_slice(),
            &cfg,
        )
        .makespan;
        let geo = runtime::execute_workload(
            workload.as_ref(),
            &network,
            GeoMapper::default().map(&problem).as_slice(),
            &cfg,
        )
        .makespan;
        assert!(geo < base, "{app}: simulated geo {geo} vs baseline {base}");
    }
}

#[test]
fn optimized_mappings_cut_wan_traffic() {
    let network = deployment(8, 4);
    let workload = comm::apps::AppKind::Lu.workload(32);
    let problem = MappingProblem::unconstrained(workload.pattern(), network.clone());
    let cfg = runtime::RunConfig::comm_only();
    let random = runtime::execute_workload(
        workload.as_ref(),
        &network,
        baselines::RandomMapper::with_seed(1)
            .map(&problem)
            .as_slice(),
        &cfg,
    );
    let geo = runtime::execute_workload(
        workload.as_ref(),
        &network,
        GeoMapper::default().map(&problem).as_slice(),
        &cfg,
    );
    assert!(
        geo.stats.wan_fraction() < random.stats.wan_fraction(),
        "geo wan {} vs random wan {}",
        geo.stats.wan_fraction(),
        random.stats.wan_fraction()
    );
    // Same application, same total traffic — only its placement differs.
    assert_eq!(geo.stats.total_messages(), random.stats.total_messages());
    assert_eq!(geo.stats.total_bytes(), random.stats.total_bytes());
}

#[test]
fn full_constraints_force_identical_mappings_across_mappers() {
    let network = deployment(4, 5);
    let pattern = comm::apps::AppKind::Sp.workload(16).pattern();
    let constraints = ConstraintVector::random(16, 1.0, &network.capacities(), 8);
    let problem = MappingProblem::new(pattern, network, constraints);
    let reference = baselines::RandomMapper::with_seed(0).map(&problem);
    for mapper in all_mappers(3) {
        assert_eq!(
            mapper.map(&problem),
            reference,
            "{} deviated",
            mapper.name()
        );
    }
}

#[test]
fn tiny_instance_heuristics_bounded_by_exhaustive_optimum() {
    let sites = net::presets::ec2_sites(&["us-east-1", "ap-southeast-1", "eu-west-1"], 2);
    let network = net::SynthNetworkBuilder::new(net::SynthConfig::default()).build(sites);
    let pattern = comm::apps::Ring {
        n: 6,
        iterations: 3,
        bytes: 500_000,
    }
    .pattern();
    let problem = MappingProblem::unconstrained(pattern, network);
    let (_, optimum) = baselines::ExhaustiveMapper::default().optimum(&problem);
    for mapper in all_mappers(7) {
        let c = eq3_cost(&problem, &mapper.map(&problem));
        assert!(c >= optimum - 1e-9, "{} beat the optimum?!", mapper.name());
    }
    let geo = eq3_cost(&problem, &GeoMapper::default().map(&problem));
    assert!(
        geo <= 1.5 * optimum,
        "geo {geo} too far from optimum {optimum}"
    );
}

#[test]
fn calibrated_estimates_produce_mappings_good_on_ground_truth() {
    use geomap_core::pipeline::{self, PipelineConfig};
    let truth = deployment(8, 6);
    let program = comm::apps::AppKind::KMeans.workload(32).program();
    let result = pipeline::run(
        &program,
        &truth,
        ConstraintVector::none(32),
        &PipelineConfig::default(),
    );
    // Evaluate the pipeline's mapping against ground truth.
    let true_problem = MappingProblem::unconstrained(result.pattern.clone(), truth);
    let geo_on_truth = eq3_cost(&true_problem, &result.mapping);
    let base_on_truth = eq3_cost(
        &true_problem,
        &baselines::RandomMapper::with_seed(2).map(&true_problem),
    );
    assert!(geo_on_truth < base_on_truth);
}
