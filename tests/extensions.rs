//! Integration tests for the future-work extensions: multi-site
//! (allowed-set) constraints and multi-provider deployments.

use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;
use geomap_core::{AllowedSites, GeoMapperMulti};
use geonet::presets::MultiCloud;
use geonet::SiteId;

#[test]
fn multicloud_network_keeps_observations() {
    let network = MultiCloud::default().build();
    // Observation 1 survives the provider mix.
    assert!(network.intra_inter_bandwidth_ratio() > 5.0);
    // Cross-provider EU pair (eu-west-1 <-> West Europe, ~1000 km) still
    // beats the transpacific same-provider pair (us-east-1 <-> Japan
    // East is not present; use ap-southeast-1 <-> West US).
    let site = |name: &str| SiteId(network.sites().iter().position(|s| s.name == name).unwrap());
    let eu_pair = network.bandwidth(site("eu-west-1"), site("West Europe"));
    let transpacific = network.bandwidth(site("ap-southeast-1"), site("West US"));
    assert!(
        eu_pair > transpacific,
        "nearby cross-provider {eu_pair} not above far same-planet {transpacific}"
    );
}

#[test]
fn multisite_constraints_on_multicloud_end_to_end() {
    let network = MultiCloud::default().build();
    let n = network.total_nodes();
    let pattern = comm::apps::AppKind::Lu.workload(n).pattern();
    let problem = MappingProblem::unconstrained(pattern, network.clone());

    let eu_sites: Vec<SiteId> = network
        .sites()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "eu-west-1" || s.name == "West Europe")
        .map(|(i, _)| SiteId(i))
        .collect();
    let mut allowed = AllowedSites::unrestricted(n);
    for i in 0..n / 3 {
        allowed.restrict(i, &eu_sites);
    }
    let mapping = GeoMapperMulti::new(allowed.clone()).map(&problem);
    mapping.validate(&problem).unwrap();
    assert!(allowed.satisfied_by(mapping.as_slice()));

    // Still better than random despite the policy.
    let random = eq3_cost(&problem, &baselines::RandomMapper::default().map(&problem));
    assert!(eq3_cost(&problem, &mapping) < random);
}

#[test]
fn allowed_sets_tighten_monotonically() {
    // Cost under {EU-only} ⊇ cost under {EU or US-East} ⊇ unrestricted.
    let network = MultiCloud::default().build();
    let n = network.total_nodes();
    let pattern = comm::apps::AppKind::KMeans.workload(n).pattern();
    let problem = MappingProblem::unconstrained(pattern, network.clone());
    let site = |name: &str| SiteId(network.sites().iter().position(|s| s.name == name).unwrap());

    // Restrict 6 processes — within even a single site's capacity (8
    // nodes), so the singleton-set case stays feasible.
    let restricted = 6.min(n);
    let cost_with = |sets: &[Vec<SiteId>]| {
        let mut allowed = AllowedSites::unrestricted(n);
        for (i, set) in sets.iter().cycle().take(restricted).enumerate() {
            allowed.restrict(i, set);
        }
        eq3_cost(&problem, &GeoMapperMulti::new(allowed).map(&problem))
    };
    let free = eq3_cost(&problem, &GeoMapper::default().map(&problem));
    let loose = cost_with(&[vec![
        site("eu-west-1"),
        site("West Europe"),
        site("us-east-1"),
    ]]);
    let tight = cost_with(&[vec![site("West Europe")]]);
    assert!(free <= loose + 1e-9, "unrestricted {free} vs loose {loose}");
    assert!(loose <= tight + 1e-9, "loose {loose} vs tight {tight}");
}

#[test]
fn geo_still_wins_on_azure_profile() {
    // Future work #1: the algorithm is not EC2-specific.
    let network = net::presets::azure_network(
        &["East US", "West Europe", "Japan East", "Southeast Asia"],
        8,
        3,
    );
    let pattern = comm::apps::AppKind::Lu.workload(32).pattern();
    let problem = MappingProblem::unconstrained(pattern, network);
    let base: f64 = (0..5)
        .map(|s| {
            eq3_cost(
                &problem,
                &baselines::RandomMapper::with_seed(s).map(&problem),
            )
        })
        .sum::<f64>()
        / 5.0;
    let geo = eq3_cost(&problem, &GeoMapper::default().map(&problem));
    assert!(geo < 0.6 * base, "geo {geo} vs base {base}");
}
