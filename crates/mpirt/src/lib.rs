//! A simulated message-passing runtime (the paper's MPI substitute).
//!
//! The paper evaluates real MPI binaries on EC2; we cannot bind MPI, so
//! this crate *executes* [`commgraph::Program`]s — per-rank lists of
//! eager sends, blocking receives and computation blocks — on the
//! `simnet` discrete-event network, under a process→site mapping.
//!
//! Semantics:
//!
//! * **Send** is eager (buffered): the sender pays a small overhead and
//!   continues; the message transits the α–β link (queueing on shared
//!   WAN links) and is delivered to the destination's mailbox.
//! * **Recv** blocks until the matching message (FIFO per source —
//!   MPI's non-overtaking rule) has arrived.
//! * **Compute** advances the rank's clock.
//!
//! Execution uses smallest-local-clock-first scheduling, which preserves
//! causality on the shared link state; runs are fully deterministic.
//! The result is the application **makespan** (Fig. 5's total time) or,
//! with [`RunConfig::zero_compute`], the pure communication time the
//! paper's simulations report (Fig. 6).

#![warn(missing_docs)]

use commgraph::{Program, RankOp};
use geomap_core::{Trace, TrackId};
use geonet::{SiteId, SiteNetwork};
use simnet::{EventQueue, LinkConfig, LinkState, LinkStats};
use std::collections::VecDeque;

/// Execution options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Skip `Compute` ops — isolates communication time, as the paper's
    /// simulation study does ("we focus on the communication time ...
    /// and ignore the computation and I/O time", §5.4).
    pub zero_compute: bool,
    /// Per-send CPU overhead in seconds (the LogP `o` parameter; eager
    /// sends are not free).
    pub send_overhead: f64,
    /// Link contention model.
    pub links: LinkConfig,
    /// Record one [`MessageRecord`] per message (depart/arrival times)
    /// for post-mortem analysis and visualization. Off by default — the
    /// timeline of a long run is large.
    pub record_timeline: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            zero_compute: false,
            send_overhead: 5e-6,
            links: LinkConfig::default(),
            record_timeline: false,
        }
    }
}

/// One message's journey, recorded when
/// [`RunConfig::record_timeline`] is set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageRecord {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload size.
    pub bytes: u64,
    /// Time the sender issued the message.
    pub depart: f64,
    /// Time the message became available at the receiver.
    pub arrival: f64,
}

impl RunConfig {
    /// Communication-only configuration (Fig. 6 / §5.4).
    pub fn comm_only() -> Self {
        Self {
            zero_compute: true,
            ..Self::default()
        }
    }
}

/// Where one rank's simulated time went, split by activity.
///
/// The three components need not sum to the rank's finish time: queueing
/// and serialization inside the network are attributed to the *receiver*
/// as `recv_wait_s` only while it is actually blocked, and ranks may
/// finish early and idle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankBreakdown {
    /// CPU time spent issuing eager sends ([`RunConfig::send_overhead`]
    /// per send).
    pub send_s: f64,
    /// Time spent blocked in `Recv`, waiting for the matching message
    /// to arrive.
    pub recv_wait_s: f64,
    /// Time spent in `Compute` ops (zero under
    /// [`RunConfig::zero_compute`]).
    pub compute_s: f64,
}

/// Outcome of one simulated execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Time the last rank finished (the application's execution time).
    pub makespan: f64,
    /// Per-rank finish times.
    pub rank_finish: Vec<f64>,
    /// Per-rank time breakdown (send / receive-wait / compute).
    pub rank_breakdown: Vec<RankBreakdown>,
    /// Network statistics of the run.
    pub stats: LinkStats,
    /// Message timeline (empty unless [`RunConfig::record_timeline`]).
    pub timeline: Vec<MessageRecord>,
}

impl RunResult {
    /// Export the run's telemetry through a [`geomap_core::Metrics`]
    /// handle: the makespan, per-link traffic/busy/queue-wait (quiet
    /// links are skipped), per-rank breakdowns and aggregate totals.
    /// A disabled handle makes this a no-op.
    pub fn emit_metrics(&self, metrics: &geomap_core::Metrics) {
        if !metrics.enabled() {
            return;
        }
        metrics.gauge("makespan_s", self.makespan);
        metrics.counter("total_messages", self.stats.total_messages());
        metrics.counter("total_bytes", self.stats.total_bytes());
        metrics.gauge("wan_fraction", self.stats.wan_fraction());
        let m = self.stats.num_sites();
        for f in 0..m {
            for t in 0..m {
                let (from, to) = (SiteId(f), SiteId(t));
                let msgs = self.stats.messages(from, to);
                if msgs == 0 {
                    continue;
                }
                metrics.counter(&format!("link.{f}.{t}.msgs"), msgs);
                metrics.counter(&format!("link.{f}.{t}.bytes"), self.stats.bytes(from, to));
                metrics.gauge(
                    &format!("link.{f}.{t}.busy_s"),
                    self.stats.busy_time(from, to),
                );
                metrics.gauge(
                    &format!("link.{f}.{t}.queue_wait_s"),
                    self.stats.queue_wait(from, to),
                );
                metrics.counter(
                    &format!("link.{f}.{t}.max_queue_depth"),
                    self.stats.max_queue_depth(from, to) as u64,
                );
            }
        }
        for (r, bd) in self.rank_breakdown.iter().enumerate() {
            metrics.gauge(&format!("rank.{r}.send_s"), bd.send_s);
            metrics.gauge(&format!("rank.{r}.recv_wait_s"), bd.recv_wait_s);
            metrics.gauge(&format!("rank.{r}.compute_s"), bd.compute_s);
            metrics.gauge(&format!("rank.{r}.finish_s"), self.rank_finish[r]);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RankState {
    /// In the ready queue (or currently executing).
    Ready,
    /// Blocked in `Recv { from }`.
    Waiting(usize),
    /// Program exhausted.
    Done,
}

/// Execute `program` on `net` under `assignment` (rank → site).
///
/// ```
/// use commgraph::ProgramBuilder;
/// use geonet::{presets, InstanceType, SiteId};
///
/// let net = presets::paper_ec2_network(2, InstanceType::M4Xlarge, 1);
/// let mut b = ProgramBuilder::new(2);
/// b.transfer(0, 1, 1_000_000);
/// // Rank 0 in us-east-1, rank 1 in Singapore: one WAN transfer.
/// let result = mpirt::execute(
///     &b.build(), &net, &[SiteId(0), SiteId(2)], &mpirt::RunConfig::default());
/// assert!(result.makespan > 0.05); // dominated by the long-haul link
/// ```
///
/// # Panics
/// Panics if the assignment length differs from the rank count, if a
/// site is out of range, or if the program deadlocks (blocked cycle with
/// no messages in flight) — matched acyclic programs never do.
pub fn execute(
    program: &Program,
    net: &SiteNetwork,
    assignment: &[SiteId],
    config: &RunConfig,
) -> RunResult {
    execute_traced(program, net, assignment, config, &Trace::off())
}

/// [`execute`] with event-level tracing: per-rank `compute` / `send` /
/// `recv_wait` spans on one `"mpirt"` track per rank, plus the simnet
/// link tracks (message lifecycle + queue depth) via
/// [`simnet::LinkState::with_trace`]. All timestamps are *simulated*
/// seconds. With `Trace::off()` this is exactly [`execute`] — the
/// schedule, makespan and statistics are bit-identical (the
/// `simnet_trace_off` bench group guards the overhead).
pub fn execute_traced(
    program: &Program,
    net: &SiteNetwork,
    assignment: &[SiteId],
    config: &RunConfig,
    trace: &Trace,
) -> RunResult {
    let n = program.num_ranks();
    assert_eq!(assignment.len(), n, "assignment must map every rank");
    for s in assignment {
        assert!(s.index() < net.num_sites(), "{s} out of range");
    }

    let tracks: Vec<TrackId> = if trace.enabled() {
        (0..n)
            .map(|r| trace.track("mpirt", &format!("rank {r}")))
            .collect()
    } else {
        vec![TrackId::DISABLED; n]
    };
    let mut links = LinkState::with_trace(net.clone(), config.links, trace.clone());
    let mut clock = vec![0.0f64; n];
    let mut breakdown = vec![RankBreakdown::default(); n];
    let mut pc = vec![0usize; n];
    let mut state = vec![RankState::Ready; n];
    // mailbox[src * n + dst]: arrival times of undelivered messages, in
    // send order (non-overtaking is enforced at insertion).
    let mut mailbox: Vec<VecDeque<f64>> = vec![VecDeque::new(); n * n];
    let mut last_arrival = vec![0.0f64; n * n];

    let mut timeline: Vec<MessageRecord> = Vec::new();
    let mut ready: EventQueue<usize> = EventQueue::new();
    for (r, s) in state.iter_mut().enumerate() {
        if program.rank_ops(r).is_empty() {
            *s = RankState::Done;
        } else {
            ready.push(0.0, r);
        }
    }

    let mut done = state.iter().filter(|s| **s == RankState::Done).count();
    while let Some((_, r)) = ready.pop() {
        if state[r] != RankState::Ready {
            continue; // stale entry
        }
        let ops = program.rank_ops(r);
        debug_assert!(pc[r] < ops.len());
        match ops[pc[r]] {
            RankOp::Compute { secs } => {
                if !config.zero_compute {
                    trace.span_begin(tracks[r], "compute", clock[r]);
                    clock[r] += secs;
                    trace.span_end(tracks[r], "compute", clock[r]);
                    breakdown[r].compute_s += secs;
                }
                pc[r] += 1;
            }
            RankOp::Send { to, bytes } => {
                trace.span_begin(tracks[r], "send", clock[r]);
                clock[r] += config.send_overhead;
                trace.span_end(tracks[r], "send", clock[r]);
                breakdown[r].send_s += config.send_overhead;
                let arrival = links.send(assignment[r], assignment[to], bytes, clock[r]);
                // MPI non-overtaking: a later send from r to `to` may not
                // be received before an earlier one.
                let slot = r * n + to;
                let arrival = arrival.max(last_arrival[slot]);
                last_arrival[slot] = arrival;
                if config.record_timeline {
                    timeline.push(MessageRecord {
                        src: r,
                        dst: to,
                        bytes,
                        depart: clock[r],
                        arrival,
                    });
                }
                mailbox[slot].push_back(arrival);
                pc[r] += 1;
                // If the destination is blocked on us, wake it.
                if state[to] == RankState::Waiting(r) {
                    let a = mailbox[slot].pop_front().expect("just pushed");
                    if a > clock[to] {
                        trace.span_begin(tracks[to], "recv_wait", clock[to]);
                        trace.span_end(tracks[to], "recv_wait", a);
                    }
                    breakdown[to].recv_wait_s += (a - clock[to]).max(0.0);
                    clock[to] = clock[to].max(a);
                    pc[to] += 1;
                    advance(
                        to, program, &mut pc, &mut state, &mut clock, &mut ready, &mut done,
                    );
                }
            }
            RankOp::Recv { from } => {
                let slot = from * n + r;
                if let Some(a) = mailbox[slot].pop_front() {
                    if a > clock[r] {
                        trace.span_begin(tracks[r], "recv_wait", clock[r]);
                        trace.span_end(tracks[r], "recv_wait", a);
                    }
                    breakdown[r].recv_wait_s += (a - clock[r]).max(0.0);
                    clock[r] = clock[r].max(a);
                    pc[r] += 1;
                } else {
                    state[r] = RankState::Waiting(from);
                    continue;
                }
            }
        }
        advance(
            r, program, &mut pc, &mut state, &mut clock, &mut ready, &mut done,
        );
    }

    assert_eq!(
        done,
        n,
        "deadlock: {} ranks blocked with no messages in flight",
        n - done
    );
    let makespan = clock.iter().copied().fold(0.0, f64::max);
    RunResult {
        makespan,
        rank_finish: clock,
        rank_breakdown: breakdown,
        stats: links.stats().clone(),
        timeline,
    }
}

/// Re-enqueue rank `r` (or mark it done) after executing an op.
fn advance(
    r: usize,
    program: &Program,
    pc: &mut [usize],
    state: &mut [RankState],
    clock: &mut [f64],
    ready: &mut EventQueue<usize>,
    done: &mut usize,
) {
    if pc[r] >= program.rank_ops(r).len() {
        if state[r] != RankState::Done {
            state[r] = RankState::Done;
            *done += 1;
        }
    } else {
        state[r] = RankState::Ready;
        ready.push(clock[r], r);
    }
}

/// Convenience: execute a [`commgraph::apps::Workload`] under a mapping.
pub fn execute_workload(
    workload: &dyn commgraph::apps::Workload,
    net: &SiteNetwork,
    assignment: &[SiteId],
    config: &RunConfig,
) -> RunResult {
    execute(&workload.program(), net, assignment, config)
}

/// [`execute_workload`] with event-level tracing (see [`execute_traced`]).
pub fn execute_workload_traced(
    workload: &dyn commgraph::apps::Workload,
    net: &SiteNetwork,
    assignment: &[SiteId],
    config: &RunConfig,
    trace: &Trace,
) -> RunResult {
    execute_traced(&workload.program(), net, assignment, config, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph::apps::AppKind;
    use commgraph::ProgramBuilder;
    use geonet::{presets, InstanceType};

    fn net() -> SiteNetwork {
        presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1)
    }

    fn all_in(site: usize, n: usize) -> Vec<SiteId> {
        vec![SiteId(site); n]
    }

    #[test]
    fn single_transfer_time_matches_alpha_beta() {
        let net = net();
        let mut b = ProgramBuilder::new(2);
        b.transfer(0, 1, 1_000_000);
        let prog = b.build();
        let assignment = vec![SiteId(0), SiteId(3)];
        let cfg = RunConfig {
            send_overhead: 0.0,
            ..RunConfig::default()
        };
        let r = execute(&prog, &net, &assignment, &cfg);
        let expect = net
            .alpha_beta(SiteId(0), SiteId(3))
            .transfer_time(1_000_000);
        assert!(
            (r.makespan - expect).abs() < 1e-9,
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn compute_only_makespan_is_max_rank_time() {
        let net = net();
        let mut b = ProgramBuilder::new(3);
        b.compute(0, 1.0).compute(1, 2.5).compute(2, 0.5);
        let r = execute(&b.build(), &net, &all_in(0, 3), &RunConfig::default());
        assert_eq!(r.makespan, 2.5);
        assert_eq!(r.rank_finish, vec![1.0, 2.5, 0.5]);
    }

    #[test]
    fn zero_compute_strips_computation() {
        let net = net();
        let mut b = ProgramBuilder::new(2);
        b.compute_all(10.0);
        b.transfer(0, 1, 1000);
        let full = execute(&b.clone_build(), &net, &all_in(1, 2), &RunConfig::default());
        let comm = execute(
            &b.clone_build(),
            &net,
            &all_in(1, 2),
            &RunConfig::comm_only(),
        );
        assert!(full.makespan > 10.0);
        assert!(comm.makespan < 0.1);
    }

    // Helper because ProgramBuilder::build consumes self.
    trait CloneBuild {
        fn clone_build(&self) -> Program;
    }
    impl CloneBuild for ProgramBuilder {
        fn clone_build(&self) -> Program {
            self.clone().build()
        }
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let net = net();
        // Rank 1 computes for 5s before sending; rank 0 just receives.
        let mut b = ProgramBuilder::new(2);
        b.compute(1, 5.0);
        b.send(1, 0, 1000);
        b.recv(0, 1);
        let r = execute(&b.build(), &net, &all_in(2, 2), &RunConfig::default());
        assert!(
            r.rank_finish[0] >= 5.0,
            "receiver finished at {}",
            r.rank_finish[0]
        );
    }

    #[test]
    fn pipeline_chain_accumulates_latency() {
        let net = net();
        // 0 -> 1 -> 2 -> 3 forwarding chain across all four sites.
        let mut b = ProgramBuilder::new(4);
        b.send(0, 1, 1000);
        b.recv(1, 0);
        b.send(1, 2, 1000);
        b.recv(2, 1);
        b.send(2, 3, 1000);
        b.recv(3, 2);
        let assignment: Vec<SiteId> = (0..4).map(SiteId).collect();
        let cfg = RunConfig {
            send_overhead: 0.0,
            ..RunConfig::default()
        };
        let r = execute(&b.build(), &net, &assignment, &cfg);
        let hop = |a: usize, c: usize| net.alpha_beta(SiteId(a), SiteId(c)).transfer_time(1000);
        let expect = hop(0, 1) + hop(1, 2) + hop(2, 3);
        assert!((r.makespan - expect).abs() < 1e-9);
    }

    #[test]
    fn messages_are_fifo_per_pair() {
        let net = net();
        // Rank 0 sends big then small; rank 1's first recv must get the
        // big one (non-overtaking), so its clock after recv #1 is >= the
        // big message's arrival.
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 8_000_000);
        b.send(0, 1, 1);
        b.recv(1, 0);
        b.recv(1, 0);
        let cfg = RunConfig {
            send_overhead: 0.0,
            links: LinkConfig {
                shared_wan: false,
                shared_intra: false,
                shared_egress: false,
            },
            ..RunConfig::default()
        };
        let r = execute(&b.build(), &net, &[SiteId(0), SiteId(3)], &cfg);
        let big = net
            .alpha_beta(SiteId(0), SiteId(3))
            .transfer_time(8_000_000);
        assert!(r.rank_finish[1] >= big);
    }

    #[test]
    fn all_apps_run_to_completion_on_all_mappings() {
        let net = net();
        for kind in AppKind::ALL {
            let w = kind.workload(16);
            let round_robin: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
            let blocks: Vec<SiteId> = (0..16).map(|i| SiteId(i / 4)).collect();
            for a in [&round_robin, &blocks] {
                let r = execute_workload(w.as_ref(), &net, a, &RunConfig::comm_only());
                assert!(r.makespan > 0.0, "{kind}");
                assert!(r.stats.total_messages() > 0);
            }
        }
    }

    #[test]
    fn locality_aware_mapping_is_faster_for_lu() {
        let net = net();
        let w = AppKind::Lu.workload(16);
        // Blocks keep grid rows together; the scatter permutation splits
        // almost every neighbour pair across sites.
        let blocks: Vec<SiteId> = (0..16).map(|i| SiteId(i / 4)).collect();
        let scatter: Vec<SiteId> = (0..16usize).map(|i| SiteId((i * 5 + 3) % 16 / 4)).collect();
        let t_blocks = execute_workload(w.as_ref(), &net, &blocks, &RunConfig::comm_only());
        let t_scatter = execute_workload(w.as_ref(), &net, &scatter, &RunConfig::comm_only());
        assert!(
            t_blocks.makespan < t_scatter.makespan,
            "blocks {} vs scatter {}",
            t_blocks.makespan,
            t_scatter.makespan
        );
        assert!(t_blocks.stats.wan_fraction() < t_scatter.stats.wan_fraction());
    }

    #[test]
    fn deterministic() {
        let net = net();
        let w = AppKind::KMeans.workload(16);
        let a: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
        let r1 = execute_workload(w.as_ref(), &net, &a, &RunConfig::default());
        let r2 = execute_workload(w.as_ref(), &net, &a, &RunConfig::default());
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.rank_finish, r2.rank_finish);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let net = net();
        let mut b = ProgramBuilder::new(2);
        // Both ranks receive first: classic deadlock (under our blocking
        // recv semantics) — build_unchecked since it's also unmatched.
        b.recv(0, 1);
        b.recv(1, 0);
        let prog = b.build_unchecked();
        execute(&prog, &net, &all_in(0, 2), &RunConfig::default());
    }

    #[test]
    fn emitted_link_telemetry_sums_match_link_stats() {
        use geomap_core::{MemorySink, Metrics};
        use std::sync::Arc;

        let net = net();
        let w = AppKind::Lu.workload(16);
        let a: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
        let r = execute_workload(w.as_ref(), &net, &a, &RunConfig::default());

        let sink = Arc::new(MemorySink::new());
        r.emit_metrics(&Metrics::new(sink.clone()).scoped("run"));

        // Per-link counters must reconstruct the LinkStats aggregates.
        let (mut msgs, mut bytes, mut busy, mut wait) = (0.0, 0.0, 0.0, 0.0);
        for f in 0..r.stats.num_sites() {
            for t in 0..r.stats.num_sites() {
                msgs += sink.sum("run", &format!("link.{f}.{t}.msgs"));
                bytes += sink.sum("run", &format!("link.{f}.{t}.bytes"));
                busy += sink.sum("run", &format!("link.{f}.{t}.busy_s"));
                wait += sink.sum("run", &format!("link.{f}.{t}.queue_wait_s"));
            }
        }
        assert_eq!(msgs, r.stats.total_messages() as f64);
        assert_eq!(bytes, r.stats.total_bytes() as f64);
        let busy_total: f64 = (0..4)
            .flat_map(|f| (0..4).map(move |t| (f, t)))
            .map(|(f, t)| r.stats.busy_time(SiteId(f), SiteId(t)))
            .sum();
        assert!((busy - busy_total).abs() < 1e-9);
        assert!(wait >= 0.0);
        assert_eq!(sink.sum("run", "makespan_s"), r.makespan);
        assert_eq!(sink.sum("run", "wan_fraction"), r.stats.wan_fraction());
        // Per-rank gauges cover every rank.
        for rank in 0..16 {
            assert!(sink.has("run", &format!("rank.{rank}.finish_s")));
            assert_eq!(
                sink.sum("run", &format!("rank.{rank}.recv_wait_s")),
                r.rank_breakdown[rank].recv_wait_s
            );
        }
        // A disabled handle emits nothing and does not panic.
        r.emit_metrics(&Metrics::off());
    }

    #[test]
    fn rank_breakdown_accounts_for_sends_computes_and_waits() {
        let net = net();
        // Rank 1 computes 5s then sends; rank 0 blocks in recv the whole
        // time. Rank 0's wait must be ≈ 5s (plus transfer), rank 1's
        // compute exactly 5s and its send time one overhead.
        let mut b = ProgramBuilder::new(2);
        b.compute(1, 5.0);
        b.send(1, 0, 1000);
        b.recv(0, 1);
        let cfg = RunConfig::default();
        let r = execute(&b.build(), &net, &all_in(2, 2), &cfg);
        let bd = &r.rank_breakdown;
        assert_eq!(bd[1].compute_s, 5.0);
        assert_eq!(bd[1].send_s, cfg.send_overhead);
        assert_eq!(bd[1].recv_wait_s, 0.0);
        assert_eq!(bd[0].send_s, 0.0);
        assert_eq!(bd[0].compute_s, 0.0);
        assert!(
            bd[0].recv_wait_s >= 5.0 && bd[0].recv_wait_s <= r.makespan,
            "receiver waited {}",
            bd[0].recv_wait_s
        );
        // Under zero_compute the compute component disappears.
        let mut b2 = ProgramBuilder::new(2);
        b2.compute(1, 5.0);
        b2.send(1, 0, 1000);
        b2.recv(0, 1);
        let rc = execute(&b2.build(), &net, &all_in(2, 2), &RunConfig::comm_only());
        assert_eq!(rc.rank_breakdown[1].compute_s, 0.0);
    }

    #[test]
    fn traced_run_is_bit_identical_to_plain() {
        use geomap_core::{RingBufferSink, Trace};
        use std::sync::Arc;
        let net = net();
        for kind in [AppKind::Lu, AppKind::KMeans] {
            let w = kind.workload(16);
            let a: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
            let plain = execute_workload(w.as_ref(), &net, &a, &RunConfig::default());
            let sink = Arc::new(RingBufferSink::new(1 << 16));
            let traced = execute_workload_traced(
                w.as_ref(),
                &net,
                &a,
                &RunConfig::default(),
                &Trace::new(sink.clone()),
            );
            assert_eq!(plain.makespan, traced.makespan, "{kind}");
            assert_eq!(plain.rank_finish, traced.rank_finish, "{kind}");
            assert_eq!(plain.rank_breakdown, traced.rank_breakdown, "{kind}");
            assert!(!sink.snapshot().is_empty(), "{kind}: no events recorded");
            // And an off handle records nothing.
            let off =
                execute_workload_traced(w.as_ref(), &net, &a, &RunConfig::default(), &Trace::off());
            assert_eq!(plain.makespan, off.makespan);
        }
    }

    #[test]
    fn traced_run_covers_rank_and_link_tracks() {
        use geomap_core::{RingBufferSink, Trace, TraceEventKind};
        use std::sync::Arc;
        let net = net();
        let w = AppKind::Lu.workload(16);
        let a: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
        let sink = Arc::new(RingBufferSink::new(1 << 16));
        execute_workload_traced(
            w.as_ref(),
            &net,
            &a,
            &RunConfig::default(),
            &Trace::new(sink.clone()),
        );
        let tracks = sink.tracks();
        let rank_tracks: Vec<_> = tracks.iter().filter(|t| t.process == "mpirt").collect();
        assert_eq!(rank_tracks.len(), 16, "one track per rank");
        assert!(
            tracks.iter().any(|t| t.process == "simnet"),
            "link tracks missing"
        );
        let ev = sink.snapshot();
        let on_rank = |name: &str| {
            ev.iter().any(|e| {
                e.name == name
                    && e.kind == TraceEventKind::SpanBegin
                    && rank_tracks.iter().any(|t| t.id == e.track)
            })
        };
        assert!(on_rank("compute"), "no compute spans");
        assert!(on_rank("send"), "no send spans");
        assert!(on_rank("recv_wait"), "no recv_wait spans");
        assert!(
            ev.iter().any(|e| e.kind == TraceEventKind::Counter),
            "no queue-depth samples"
        );
        // Spans on each track pair up (every B has its E).
        for t in &tracks {
            let begins = ev
                .iter()
                .filter(|e| e.track == t.id && e.kind == TraceEventKind::SpanBegin)
                .count();
            let ends = ev
                .iter()
                .filter(|e| e.track == t.id && e.kind == TraceEventKind::SpanEnd)
                .count();
            assert_eq!(begins, ends, "unbalanced spans on {}", t.name);
        }
    }

    #[test]
    fn emitted_max_queue_depth_matches_stats() {
        use geomap_core::{MemorySink, Metrics};
        use std::sync::Arc;
        let net = net();
        let w = AppKind::KMeans.workload(16);
        let a: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
        let r = execute_workload(w.as_ref(), &net, &a, &RunConfig::default());
        let sink = Arc::new(MemorySink::new());
        r.emit_metrics(&Metrics::new(sink.clone()).scoped("run"));
        let mut saw_contention = false;
        for f in 0..4 {
            for t in 0..4 {
                let (from, to) = (SiteId(f), SiteId(t));
                if r.stats.messages(from, to) == 0 {
                    continue;
                }
                let d = r.stats.max_queue_depth(from, to);
                assert!(d >= 1, "active link with zero depth");
                assert_eq!(
                    sink.sum("run", &format!("link.{f}.{t}.max_queue_depth")),
                    d as f64
                );
                saw_contention |= d > 1;
            }
        }
        assert!(saw_contention, "expected at least one contended WAN link");
    }

    #[test]
    #[should_panic(expected = "assignment")]
    fn wrong_assignment_length_panics() {
        let net = net();
        let mut b = ProgramBuilder::new(2);
        b.transfer(0, 1, 1);
        execute(&b.build(), &net, &[SiteId(0)], &RunConfig::default());
    }
}
