//! Integration tests of the simulated runtime's timing semantics:
//! collectives, contention, and the interplay with the link model.

use commgraph::collectives::{allreduce, barrier, broadcast};
use commgraph::ProgramBuilder;
use geonet::{presets, AlphaBeta, GeoCoord, InstanceType, Site, SiteId, SiteNetwork};
use mpirt::{execute, RunConfig};
use simnet::LinkConfig;

fn single_site(n: usize) -> (SiteNetwork, Vec<SiteId>) {
    let net = SiteNetwork::single_site(
        Site::new("cluster", GeoCoord::new(0.0, 0.0), n),
        AlphaBeta::from_ms_mbps(0.2, 100.0),
    );
    (net, vec![SiteId(0); n])
}

fn no_overhead() -> RunConfig {
    RunConfig {
        send_overhead: 0.0,
        ..RunConfig::comm_only()
    }
}

#[test]
fn binomial_broadcast_takes_log_rounds_on_a_cluster() {
    // On a uniform cluster, a binomial broadcast of a tiny message
    // completes in ceil(log2 n) sequential latency steps.
    for n in [2usize, 4, 8, 16, 32] {
        let (net, assignment) = single_site(n);
        let mut b = ProgramBuilder::new(n);
        broadcast(&mut b, &(0..n).collect::<Vec<_>>(), 0, 1);
        let r = execute(&b.build(), &net, &assignment, &no_overhead());
        let hop = net.alpha_beta(SiteId(0), SiteId(0)).transfer_time(1);
        let rounds = (n as f64).log2().ceil();
        assert!(
            (r.makespan - rounds * hop).abs() < 1e-9,
            "n={n}: makespan {} vs {} rounds x {hop}",
            r.makespan,
            rounds
        );
    }
}

#[test]
fn recursive_doubling_allreduce_takes_log_rounds() {
    for n in [4usize, 8, 16] {
        let (net, assignment) = single_site(n);
        let mut b = ProgramBuilder::new(n);
        allreduce(&mut b, &(0..n).collect::<Vec<_>>(), 1);
        let r = execute(&b.build(), &net, &assignment, &no_overhead());
        let hop = net.alpha_beta(SiteId(0), SiteId(0)).transfer_time(1);
        let rounds = (n as f64).log2();
        // Each exchange round is two opposite sends that overlap.
        assert!(
            r.makespan <= (rounds + 0.5) * 2.0 * hop + 1e-9,
            "n={n}: makespan {} vs {} rounds",
            r.makespan,
            rounds
        );
        assert!(r.makespan >= rounds * hop - 1e-9);
    }
}

#[test]
fn barrier_synchronizes_everyone() {
    // A rank that computes 1s before the barrier delays everyone past 1s.
    let n = 8;
    let (net, assignment) = single_site(n);
    let mut b = ProgramBuilder::new(n);
    b.compute(3, 1.0);
    barrier(&mut b, &(0..n).collect::<Vec<_>>());
    let cfg = RunConfig {
        zero_compute: false,
        ..no_overhead()
    };
    let r = execute(&b.build(), &net, &assignment, &cfg);
    for (rank, t) in r.rank_finish.iter().enumerate() {
        assert!(
            *t >= 1.0,
            "rank {rank} finished at {t} before the slow rank"
        );
    }
}

#[test]
fn shared_wan_is_never_faster_than_unshared() {
    let net = presets::paper_ec2_network(8, InstanceType::M4Xlarge, 3);
    let n = 32;
    let assignment: Vec<SiteId> = (0..n).map(|i| SiteId(i % 4)).collect();
    let mut b = ProgramBuilder::new(n);
    // Burst: every rank sends 1 MB to its +1 neighbour (mod n) twice.
    for _ in 0..2 {
        for i in 0..n {
            b.send(i, (i + 1) % n, 1_000_000);
        }
        for i in 0..n {
            b.recv(i, (i + n - 1) % n);
        }
    }
    let prog = b.build();
    let shared = execute(&prog, &net, &assignment, &no_overhead());
    let unshared_cfg = RunConfig {
        links: LinkConfig {
            shared_wan: false,
            shared_intra: false,
            shared_egress: false,
        },
        ..no_overhead()
    };
    let unshared = execute(&prog, &net, &assignment, &unshared_cfg);
    assert!(
        shared.makespan >= unshared.makespan - 1e-12,
        "contention made things faster? {} vs {}",
        shared.makespan,
        unshared.makespan
    );
    // And with 8 concurrent 1MB transfers per directed pair, strictly slower.
    assert!(shared.makespan > unshared.makespan);
}

#[test]
fn makespan_at_least_bottleneck_estimate_under_contention() {
    // The aggregate bottleneck-link time is a lower bound on the DES
    // makespan when the WAN serializes.
    let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 5);
    let n = 16;
    let assignment: Vec<SiteId> = (0..n).map(|i| SiteId(i % 4)).collect();
    let w = commgraph::apps::AppKind::Sp.workload(n);
    let prog = w.program();
    let r = execute(&prog, &net, &assignment, &no_overhead());
    // The bottleneck estimate uses msgs*alpha + bytes/beta on the busiest
    // link; serialization alone (bytes/beta part) must fit within the
    // makespan.
    let mut worst_ser = 0.0f64;
    for k in 0..4 {
        for l in 0..4 {
            if k != l {
                worst_ser = worst_ser.max(r.stats.busy_time(SiteId(k), SiteId(l)));
            }
        }
    }
    assert!(
        r.makespan >= worst_ser - 1e-9,
        "makespan {} below busiest link serialization {}",
        r.makespan,
        worst_ser
    );
}

#[test]
fn compute_overlaps_with_other_ranks_communication() {
    // Rank 2 computes for 1s while ranks 0/1 exchange; total should be
    // ~max(1s, exchange), not the sum.
    let (net, assignment) = single_site(3);
    let mut b = ProgramBuilder::new(3);
    b.compute(2, 1.0);
    b.transfer(0, 1, 50_000_000); // 0.5s at 100 MB/s
    let cfg = RunConfig {
        zero_compute: false,
        ..no_overhead()
    };
    let r = execute(&b.build(), &net, &assignment, &cfg);
    assert!(
        (r.makespan - 1.0).abs() < 0.01,
        "no overlap: {}",
        r.makespan
    );
}

#[test]
fn send_overhead_accumulates_on_the_sender() {
    let (net, assignment) = single_site(2);
    let mut b = ProgramBuilder::new(2);
    for _ in 0..100 {
        b.send(0, 1, 1);
    }
    for _ in 0..100 {
        b.recv(1, 0);
    }
    let cfg = RunConfig {
        send_overhead: 1e-3,
        ..RunConfig::comm_only()
    };
    let r = execute(&b.build(), &net, &assignment, &cfg);
    assert!(
        r.rank_finish[0] >= 0.1 - 1e-9,
        "sender overhead missing: {}",
        r.rank_finish[0]
    );
}

#[test]
fn timeline_records_every_message() {
    let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 3);
    use commgraph::apps::AppKind;
    let w = AppKind::Sp.workload(16);
    let a: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
    let cfg = RunConfig {
        record_timeline: true,
        ..RunConfig::comm_only()
    };
    let r = mpirt::execute_workload(w.as_ref(), &net, &a, &cfg);
    assert_eq!(r.timeline.len() as u64, r.stats.total_messages());
    for m in &r.timeline {
        assert!(m.arrival >= m.depart, "{m:?}");
        assert!(m.arrival <= r.makespan + 1e-9);
    }
    // Off by default.
    let r2 = mpirt::execute_workload(w.as_ref(), &net, &a, &RunConfig::comm_only());
    assert!(r2.timeline.is_empty());
}

#[test]
fn empty_program_finishes_at_time_zero() {
    let (net, assignment) = single_site(4);
    let prog = ProgramBuilder::new(4).build();
    let r = execute(&prog, &net, &assignment, &RunConfig::default());
    assert_eq!(r.makespan, 0.0);
    assert_eq!(r.stats.total_messages(), 0);
}
