//! Point-to-point expansions of collective operations.
//!
//! MPI applications are dominated by collectives; our simulated runtime
//! executes only point-to-point sends and receives, so the classic
//! collective algorithms are expanded at program-construction time:
//!
//! * broadcast / reduce — binomial tree, `⌈log₂ n⌉` rounds;
//! * allreduce — recursive doubling (hypercube exchange), the pattern
//!   responsible for K-means's "complex" matrix in the paper's Fig. 3;
//! * allgather — ring, `n−1` rounds;
//! * all-to-all — pairwise XOR exchange (power-of-two) / linear shifts;
//! * barrier — dissemination, `⌈log₂ n⌉` rounds of 1-byte tokens.
//!
//! All expansions operate over an arbitrary contiguous `group` of ranks
//! so applications can run collectives on sub-communicators.

use crate::program::ProgramBuilder;

/// Append a binomial-tree broadcast of `bytes` from `group[root_idx]` to
/// every rank in `group`.
pub fn broadcast(b: &mut ProgramBuilder, group: &[usize], root_idx: usize, bytes: u64) {
    let n = group.len();
    assert!(root_idx < n, "root {root_idx} outside group of {n}");
    if n <= 1 {
        return;
    }
    // Relative numbering where the root is 0.
    let rel = |v: usize| group[(v + root_idx) % n];
    let mut dist = 1;
    while dist < n {
        for src in 0..dist.min(n) {
            let dst = src + dist;
            if dst < n {
                b.transfer(rel(src), rel(dst), bytes);
            }
        }
        dist *= 2;
    }
}

/// Append a binomial-tree reduction of `bytes` from every rank in `group`
/// to `group[root_idx]`.
pub fn reduce(b: &mut ProgramBuilder, group: &[usize], root_idx: usize, bytes: u64) {
    let n = group.len();
    assert!(root_idx < n, "root {root_idx} outside group of {n}");
    if n <= 1 {
        return;
    }
    let rel = |v: usize| group[(v + root_idx) % n];
    // Mirror of broadcast: largest stride first, children send to parents.
    let mut dist = 1usize;
    while dist * 2 < n {
        dist *= 2;
    }
    while dist >= 1 {
        for src in 0..dist.min(n) {
            let dst = src + dist;
            if dst < n {
                b.transfer(rel(dst), rel(src), bytes);
            }
        }
        if dist == 1 {
            break;
        }
        dist /= 2;
    }
}

/// Append a recursive-doubling allreduce of `bytes` across `group`.
///
/// For power-of-two groups this is the textbook hypercube exchange in
/// `log₂ n` rounds. Non-power-of-two groups first fold the excess ranks
/// into the largest power-of-two subset, run the hypercube, then unfold.
pub fn allreduce(b: &mut ProgramBuilder, group: &[usize], bytes: u64) {
    let n = group.len();
    if n <= 1 {
        return;
    }
    let p2 = 1usize << (usize::BITS - 1 - n.leading_zeros()); // largest power of two <= n
    let excess = n - p2;
    // Fold: ranks [p2, n) send their contribution to [0, excess).
    for i in 0..excess {
        b.transfer(group[p2 + i], group[i], bytes);
    }
    // Hypercube on [0, p2).
    let mut dist = 1;
    while dist < p2 {
        for i in 0..p2 {
            let peer = i ^ dist;
            if peer > i {
                // Symmetric exchange.
                b.transfer(group[i], group[peer], bytes);
                b.transfer(group[peer], group[i], bytes);
            }
        }
        dist *= 2;
    }
    // Unfold: results go back to the excess ranks.
    for i in 0..excess {
        b.transfer(group[i], group[p2 + i], bytes);
    }
}

/// Append a ring allgather: each rank contributes `bytes`, and after
/// `n−1` rounds every rank holds every contribution.
pub fn allgather_ring(b: &mut ProgramBuilder, group: &[usize], bytes: u64) {
    let n = group.len();
    if n <= 1 {
        return;
    }
    for _round in 0..n - 1 {
        for i in 0..n {
            b.send(group[i], group[(i + 1) % n], bytes);
        }
        for i in 0..n {
            b.recv(group[i], group[(i + n - 1) % n]);
        }
    }
}

/// Append a pairwise all-to-all: every rank sends `bytes` to every other
/// rank. Power-of-two groups use XOR pairing (contention-free rounds);
/// otherwise linear shifts.
pub fn alltoall(b: &mut ProgramBuilder, group: &[usize], bytes: u64) {
    let n = group.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        for round in 1..n {
            for i in 0..n {
                let peer = i ^ round;
                if peer > i {
                    b.transfer(group[i], group[peer], bytes);
                    b.transfer(group[peer], group[i], bytes);
                }
            }
        }
    } else {
        for shift in 1..n {
            for i in 0..n {
                b.send(group[i], group[(i + shift) % n], bytes);
            }
            for i in 0..n {
                b.recv(group[i], group[(i + n - shift) % n]);
            }
        }
    }
}

/// Append a dissemination barrier (1-byte tokens, `⌈log₂ n⌉` rounds).
pub fn barrier(b: &mut ProgramBuilder, group: &[usize]) {
    let n = group.len();
    if n <= 1 {
        return;
    }
    let mut dist = 1;
    while dist < n {
        for i in 0..n {
            b.send(group[i], group[(i + dist) % n], 1);
        }
        for i in 0..n {
            b.recv(group[i], group[(i + n - dist) % n]);
        }
        dist *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, ProgramBuilder};

    fn build(n: usize, f: impl FnOnce(&mut ProgramBuilder, &[usize])) -> Program {
        let group: Vec<usize> = (0..n).collect();
        let mut b = ProgramBuilder::new(n);
        f(&mut b, &group);
        b.build() // panics if unmatched
    }

    #[test]
    fn broadcast_message_count_is_n_minus_1() {
        for n in [1usize, 2, 3, 4, 7, 8, 16, 33] {
            let p = build(n, |b, g| broadcast(b, g, 0, 100));
            assert_eq!(p.profile().total_msgs(), (n - 1) as f64, "n={n}");
        }
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        let p = build(16, |b, g| broadcast(b, g, 3, 8));
        let pat = p.profile();
        for r in 0..16usize {
            if r == 3 {
                continue;
            }
            // Every non-root receives exactly once.
            let received: f64 = (0..16).map(|s| pat.msgs(s, r)).sum();
            assert_eq!(received, 1.0, "rank {r}");
        }
    }

    #[test]
    fn reduce_message_count_is_n_minus_1() {
        for n in [2usize, 4, 5, 8, 13] {
            let p = build(n, |b, g| reduce(b, g, 0, 64));
            assert_eq!(p.profile().total_msgs(), (n - 1) as f64, "n={n}");
        }
    }

    #[test]
    fn reduce_root_gets_everything_transitively() {
        // In a tree reduction the root receives log2(n) messages directly.
        let p = build(8, |b, g| reduce(b, g, 0, 64));
        let pat = p.profile();
        let direct: f64 = (0..8).map(|s| pat.msgs(s, 0)).sum();
        assert_eq!(direct, 3.0);
    }

    #[test]
    fn allreduce_pow2_is_hypercube() {
        let p = build(8, |b, g| allreduce(b, g, 100));
        let pat = p.profile();
        // Each rank exchanges with exactly log2(8)=3 XOR partners.
        for i in 0..8usize {
            let peers: Vec<usize> = pat.out_edges(i).iter().map(|e| e.dst).collect();
            let expect: Vec<usize> = {
                let mut v: Vec<usize> = [1usize, 2, 4].iter().map(|d| i ^ d).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(peers, expect, "rank {i}");
        }
        // 2 directed messages per edge per round: 8 ranks * 3 rounds.
        assert_eq!(pat.total_msgs(), 24.0);
    }

    #[test]
    fn allreduce_non_pow2_folds() {
        let p = build(6, |b, g| allreduce(b, g, 10));
        // fold 2 + hypercube(4): 4*2 + unfold 2 = 12 messages
        assert_eq!(p.profile().total_msgs(), 12.0);
    }

    #[test]
    fn allgather_ring_is_neighbor_only() {
        let p = build(5, |b, g| allgather_ring(b, g, 10));
        let pat = p.profile();
        assert_eq!(pat.total_msgs(), (5 * 4) as f64);
        for i in 0..5usize {
            for e in pat.out_edges(i) {
                assert_eq!(e.dst, (i + 1) % 5, "ring violated at {i}");
            }
        }
    }

    #[test]
    fn alltoall_covers_all_pairs() {
        for n in [4usize, 6, 8] {
            let pat = build(n, |b, g| alltoall(b, g, 7)).profile();
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        assert_eq!(pat.msgs(i, j), 1.0, "({i},{j}) n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn barrier_has_log_rounds() {
        let pat = build(8, barrier).profile();
        assert_eq!(pat.total_msgs(), (8 * 3) as f64);
        assert_eq!(pat.total_bytes(), (8 * 3) as f64);
    }

    #[test]
    fn collectives_on_subgroup_leave_others_silent() {
        let group = [2usize, 3, 4, 5];
        let mut b = ProgramBuilder::new(8);
        allreduce(&mut b, &group, 50);
        let pat = b.build().profile();
        for outside in [0usize, 1, 6, 7] {
            assert!(pat.out_edges(outside).is_empty());
            assert_eq!(pat.comm_quantity(outside), 0.0);
        }
    }

    #[test]
    fn trivial_groups_are_no_ops() {
        let mut b = ProgramBuilder::new(4);
        broadcast(&mut b, &[1], 0, 9);
        reduce(&mut b, &[2], 0, 9);
        allreduce(&mut b, &[3], 9);
        barrier(&mut b, &[0]);
        alltoall(&mut b, &[1], 9);
        allgather_ring(&mut b, &[2], 9);
        assert_eq!(b.build().total_ops(), 0);
    }
}
