//! The communication pattern: the paper's `CG` (volume) and `AG` (count)
//! matrices.
//!
//! The representation is sparse-first: each process keeps a sorted edge
//! list of the peers it sends to. Real HPC patterns are sparse (LU talks
//! to ≤ 4 neighbours; recursive doubling to log₂N partners), and the
//! paper simulates up to 8192 processes, where dense `N×N` matrices would
//! cost gigabytes. Dense `CG`/`AG` exports are available for small `N`
//! (display, MPIPP's dense partitioner).

use geonet::SquareMatrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One directed communication edge: everything process `src` sends to
/// `dst` over the whole execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Destination process.
    pub dst: usize,
    /// Total bytes sent (`CG(src, dst)`).
    pub bytes: f64,
    /// Number of messages (`AG(src, dst)`).
    pub msgs: f64,
}

/// Undirected view of the traffic between two processes, used by the
/// greedy mappers ("communication quantity between i and j").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partner {
    /// The peer process.
    pub peer: usize,
    /// `CG(i,peer) + CG(peer,i)`.
    pub bytes: f64,
    /// `AG(i,peer) + AG(peer,i)`.
    pub msgs: f64,
}

/// A communication pattern over `n` processes: sparse `CG`/`AG`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommPattern {
    n: usize,
    /// Out-edges per source, sorted by destination.
    out: Vec<Vec<Edge>>,
    total_bytes: f64,
    total_msgs: f64,
}

/// Incremental builder accumulating traffic before freezing into a
/// [`CommPattern`].
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    rows: Vec<BTreeMap<usize, (f64, f64)>>,
}

impl PatternBuilder {
    /// Start a builder for `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rows: vec![BTreeMap::new(); n],
        }
    }

    /// Record one message of `bytes` bytes from `src` to `dst`.
    ///
    /// Self-messages are ignored (local copies are free in the paper's
    /// model — the diagonal of Fig. 3 is empty).
    pub fn record(&mut self, src: usize, dst: usize, bytes: u64) {
        self.record_many(src, dst, bytes, 1);
    }

    /// Record `count` messages of `bytes` bytes each from `src` to `dst`.
    pub fn record_many(&mut self, src: usize, dst: usize, bytes: u64, count: u64) {
        assert!(
            src < self.n && dst < self.n,
            "rank out of range ({src},{dst}) for n={}",
            self.n
        );
        if src == dst || count == 0 {
            return;
        }
        let e = self.rows[src].entry(dst).or_insert((0.0, 0.0));
        e.0 += (bytes * count) as f64;
        e.1 += count as f64;
    }

    /// Record pre-aggregated traffic from `src` to `dst` — the entry
    /// point for graph contraction, where summed coarse-edge weights
    /// are already fractional-free `f64` totals rather than message
    /// counts. Self-edges and empty transfers are ignored like
    /// [`record_many`](Self::record_many); weights must be finite and
    /// non-negative.
    pub fn record_weighted(&mut self, src: usize, dst: usize, bytes: f64, msgs: f64) {
        assert!(
            src < self.n && dst < self.n,
            "rank out of range ({src},{dst}) for n={}",
            self.n
        );
        assert!(
            bytes.is_finite() && msgs.is_finite() && bytes >= 0.0 && msgs >= 0.0,
            "non-finite or negative edge weight ({bytes}, {msgs})"
        );
        if src == dst || (bytes == 0.0 && msgs == 0.0) {
            return;
        }
        let e = self.rows[src].entry(dst).or_insert((0.0, 0.0));
        e.0 += bytes;
        e.1 += msgs;
    }

    /// Freeze into an immutable pattern.
    pub fn build(self) -> CommPattern {
        let mut total_bytes = 0.0;
        let mut total_msgs = 0.0;
        let out: Vec<Vec<Edge>> = self
            .rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(dst, (bytes, msgs))| {
                        total_bytes += bytes;
                        total_msgs += msgs;
                        Edge { dst, bytes, msgs }
                    })
                    .collect()
            })
            .collect();
        CommPattern {
            n: self.n,
            out,
            total_bytes,
            total_msgs,
        }
    }
}

impl CommPattern {
    /// An empty pattern over `n` processes.
    pub fn empty(n: usize) -> Self {
        PatternBuilder::new(n).build()
    }

    /// Build a pattern from dense `CG` (bytes) and `AG` (counts) matrices.
    ///
    /// # Panics
    /// Panics if the matrices disagree in size or an element is negative,
    /// or if volume and count disagree about an edge existing.
    pub fn from_dense(cg: &SquareMatrix, ag: &SquareMatrix) -> Self {
        assert_eq!(cg.n(), ag.n(), "CG and AG must agree in size");
        let n = cg.n();
        let mut b = PatternBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (v, c) = (cg.get(i, j), ag.get(i, j));
                assert!(v >= 0.0 && c >= 0.0, "negative traffic at ({i},{j})");
                assert!(
                    (v > 0.0) == (c > 0.0),
                    "CG and AG disagree about edge ({i},{j}): volume {v}, count {c}"
                );
                if c > 0.0 {
                    b.rows[i].insert(j, (v, c));
                }
            }
        }
        b.build()
    }

    /// Build a pattern directly from per-source out-edge lists, each
    /// sorted by destination with at most one entry per destination —
    /// the graph-contraction fast path. Coarsening produces rows in
    /// exactly this shape, and the [`PatternBuilder`]'s per-edge
    /// BTreeMap accumulation is measurably slower at millions of edges.
    ///
    /// # Panics
    /// Panics if a row is unsorted or repeats a destination, an edge is
    /// a self-loop or out of range, or a weight is negative, non-finite,
    /// or entirely zero.
    pub fn from_edge_lists(rows: Vec<Vec<Edge>>) -> Self {
        let n = rows.len();
        let mut total_bytes = 0.0;
        let mut total_msgs = 0.0;
        for (src, row) in rows.iter().enumerate() {
            let mut prev: Option<usize> = None;
            for e in row {
                assert!(
                    e.dst < n && e.dst != src,
                    "bad edge ({src},{}) for n={n}",
                    e.dst
                );
                assert!(
                    prev.is_none_or(|p| p < e.dst),
                    "row {src} not sorted/deduplicated at dst {}",
                    e.dst
                );
                assert!(
                    e.bytes.is_finite()
                        && e.msgs.is_finite()
                        && e.bytes >= 0.0
                        && e.msgs >= 0.0
                        && (e.bytes > 0.0 || e.msgs > 0.0),
                    "bad edge weight ({src},{}): {} bytes, {} msgs",
                    e.dst,
                    e.bytes,
                    e.msgs
                );
                total_bytes += e.bytes;
                total_msgs += e.msgs;
                prev = Some(e.dst);
            }
        }
        CommPattern {
            n,
            out: rows,
            total_bytes,
            total_msgs,
        }
    }

    /// Number of processes `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Out-edges of process `i`, sorted by destination.
    #[inline]
    pub fn out_edges(&self, i: usize) -> &[Edge] {
        &self.out[i]
    }

    /// Volume `CG(i, j)` in bytes (0 if no edge).
    pub fn bytes(&self, i: usize, j: usize) -> f64 {
        self.find(i, j).map_or(0.0, |e| e.bytes)
    }

    /// Message count `AG(i, j)` (0 if no edge).
    pub fn msgs(&self, i: usize, j: usize) -> f64 {
        self.find(i, j).map_or(0.0, |e| e.msgs)
    }

    fn find(&self, i: usize, j: usize) -> Option<&Edge> {
        let row = &self.out[i];
        row.binary_search_by_key(&j, |e| e.dst)
            .ok()
            .map(|idx| &row[idx])
    }

    /// Total traffic volume in bytes (`Σ CG`).
    #[inline]
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Total number of messages (`Σ AG`).
    #[inline]
    pub fn total_msgs(&self) -> f64 {
        self.total_msgs
    }

    /// Number of directed non-zero edges.
    pub fn num_edges(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// The "communication quantity" of process `i`: all bytes it sends
    /// plus all bytes it receives (Algorithm 1's selection key).
    pub fn comm_quantity(&self, i: usize) -> f64 {
        let sent: f64 = self.out[i].iter().map(|e| e.bytes).sum();
        let recv: f64 = self
            .out
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, row)| {
                row.binary_search_by_key(&i, |e| e.dst)
                    .ok()
                    .map_or(0.0, |k| row[k].bytes)
            })
            .sum();
        sent + recv
    }

    /// Undirected partner lists: for each `i`, the peers it exchanges any
    /// traffic with, with summed bidirectional volume/count. Computed in
    /// one O(E) pass; the mappers call this once and reuse it.
    pub fn partners(&self) -> Vec<Vec<Partner>> {
        let mut acc: Vec<BTreeMap<usize, (f64, f64)>> = vec![BTreeMap::new(); self.n];
        for (src, row) in self.out.iter().enumerate() {
            for e in row {
                let a = acc[src].entry(e.dst).or_insert((0.0, 0.0));
                a.0 += e.bytes;
                a.1 += e.msgs;
                let b = acc[e.dst].entry(src).or_insert((0.0, 0.0));
                b.0 += e.bytes;
                b.1 += e.msgs;
            }
        }
        acc.into_iter()
            .map(|m| {
                m.into_iter()
                    .map(|(peer, (bytes, msgs))| Partner { peer, bytes, msgs })
                    .collect()
            })
            .collect()
    }

    /// Dense `CG` export (bytes). Intended for small `N` (display, MPIPP).
    pub fn to_dense_cg(&self) -> SquareMatrix {
        let mut m = SquareMatrix::zeros(self.n);
        for (src, row) in self.out.iter().enumerate() {
            for e in row {
                m.set(src, e.dst, e.bytes);
            }
        }
        m
    }

    /// Dense `AG` export (counts).
    pub fn to_dense_ag(&self) -> SquareMatrix {
        let mut m = SquareMatrix::zeros(self.n);
        for (src, row) in self.out.iter().enumerate() {
            for e in row {
                m.set(src, e.dst, e.msgs);
            }
        }
        m
    }

    /// Fraction of traffic volume on edges with `|i−j| ≤ band`.
    ///
    /// The paper observes (Fig. 3) that LU/BT/SP have "near diagonal"
    /// matrices — high locality under this metric — while K-means is
    /// complex and spread out.
    pub fn diagonal_locality(&self, band: usize) -> f64 {
        if self.total_bytes == 0.0 {
            return 1.0;
        }
        let mut near = 0.0;
        for (src, row) in self.out.iter().enumerate() {
            for e in row {
                if src.abs_diff(e.dst) <= band {
                    near += e.bytes;
                }
            }
        }
        near / self.total_bytes
    }

    /// ASCII heatmap of `CG` (log-scaled), for Fig. 3-style display.
    pub fn ascii_heatmap(&self, cell: usize) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let n = self.n;
        let buckets = n.div_ceil(cell.max(1));
        let mut grid = vec![0.0f64; buckets * buckets];
        for (src, row) in self.out.iter().enumerate() {
            for e in row {
                grid[(src / cell) * buckets + e.dst / cell] += e.bytes;
            }
        }
        let max = grid.iter().cloned().fold(0.0f64, f64::max);
        let mut s = String::with_capacity(buckets * (buckets + 1));
        for r in 0..buckets {
            for c in 0..buckets {
                let v = grid[r * buckets + c];
                let idx = if v <= 0.0 || max <= 0.0 {
                    0
                } else {
                    let t = (1.0 + v).ln() / (1.0 + max).ln();
                    1 + ((t * (SHADES.len() - 2) as f64).round() as usize).min(SHADES.len() - 2)
                };
                s.push(SHADES[idx] as char);
            }
            s.push('\n');
        }
        s
    }

    /// CSV of the non-zero edges: `src,dst,bytes,msgs`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("src,dst,bytes,msgs\n");
        for (src, row) in self.out.iter().enumerate() {
            for e in row {
                s.push_str(&format!("{},{},{},{}\n", src, e.dst, e.bytes, e.msgs));
            }
        }
        s
    }

    /// Parse a pattern from the [`CommPattern::to_csv`] edge-list format
    /// over `n` processes (e.g. a CYPRESS dump converted by the user).
    /// Repeated `src,dst` rows accumulate.
    pub fn from_csv(n: usize, csv: &str) -> Result<CommPattern, String> {
        let mut lines = csv.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty input")?;
        if header.trim() != "src,dst,bytes,msgs" {
            return Err(format!(
                "bad header {header:?}, expected \"src,dst,bytes,msgs\""
            ));
        }
        let mut b = PatternBuilder::new(n);
        for (lineno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 4 {
                return Err(format!(
                    "line {}: expected 4 fields, got {}",
                    lineno + 1,
                    f.len()
                ));
            }
            let parse = |s: &str, what: &str| -> Result<f64, String> {
                s.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", lineno + 1))
            };
            let src = parse(f[0], "src")? as usize;
            let dst = parse(f[1], "dst")? as usize;
            let bytes = parse(f[2], "bytes")?;
            let msgs = parse(f[3], "msgs")?;
            if src >= n || dst >= n {
                return Err(format!("line {}: rank out of range for n={n}", lineno + 1));
            }
            if bytes < 0.0 || msgs <= 0.0 {
                return Err(format!("line {}: non-positive traffic", lineno + 1));
            }
            // Preserve fractional aggregates by scaling into the builder.
            let row = b.rows.get_mut(src).expect("bounds checked");
            if src != dst {
                let e = row.entry(dst).or_insert((0.0, 0.0));
                e.0 += bytes;
                e.1 += msgs;
            }
        }
        Ok(b.build())
    }

    /// Scale all volumes and counts by a factor (e.g. the paper's "run
    /// each application 100 times back-to-back").
    pub fn scaled(&self, factor: f64) -> CommPattern {
        assert!(factor > 0.0, "scale factor must be positive");
        let out: Vec<Vec<Edge>> = self
            .out
            .iter()
            .map(|row| {
                row.iter()
                    .map(|e| Edge {
                        dst: e.dst,
                        bytes: e.bytes * factor,
                        msgs: e.msgs * factor,
                    })
                    .collect()
            })
            .collect();
        CommPattern {
            n: self.n,
            out,
            total_bytes: self.total_bytes * factor,
            total_msgs: self.total_msgs * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CommPattern {
        let mut b = PatternBuilder::new(4);
        b.record(0, 1, 100);
        b.record(0, 1, 100);
        b.record(1, 0, 50);
        b.record(2, 3, 75);
        b.build()
    }

    #[test]
    fn accumulation() {
        let p = small();
        assert_eq!(p.bytes(0, 1), 200.0);
        assert_eq!(p.msgs(0, 1), 2.0);
        assert_eq!(p.bytes(1, 0), 50.0);
        assert_eq!(p.bytes(3, 2), 0.0);
        assert_eq!(p.total_bytes(), 325.0);
        assert_eq!(p.total_msgs(), 4.0);
        assert_eq!(p.num_edges(), 3);
    }

    #[test]
    fn self_messages_ignored() {
        let mut b = PatternBuilder::new(2);
        b.record(0, 0, 1000);
        let p = b.build();
        assert_eq!(p.total_bytes(), 0.0);
    }

    #[test]
    fn comm_quantity_counts_both_directions() {
        let p = small();
        assert_eq!(p.comm_quantity(0), 250.0);
        assert_eq!(p.comm_quantity(1), 250.0);
        assert_eq!(p.comm_quantity(2), 75.0);
    }

    #[test]
    fn partners_merge_directions() {
        let p = small();
        let parts = p.partners();
        assert_eq!(parts[0].len(), 1);
        assert_eq!(parts[0][0].peer, 1);
        assert_eq!(parts[0][0].bytes, 250.0);
        assert_eq!(parts[0][0].msgs, 3.0);
        assert_eq!(parts[3][0].peer, 2);
    }

    #[test]
    fn dense_roundtrip() {
        let p = small();
        let cg = p.to_dense_cg();
        let ag = p.to_dense_ag();
        let p2 = CommPattern::from_dense(&cg, &ag);
        assert_eq!(p, p2);
    }

    #[test]
    fn diagonal_locality_metric() {
        let mut b = PatternBuilder::new(10);
        b.record(0, 1, 100);
        b.record(5, 6, 100);
        b.record(0, 9, 100);
        let p = b.build();
        assert!((p.diagonal_locality(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.diagonal_locality(9), 1.0);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let p = small().scaled(100.0);
        assert_eq!(p.bytes(0, 1), 20_000.0);
        assert_eq!(p.msgs(0, 1), 200.0);
        assert_eq!(p.total_msgs(), 400.0);
    }

    #[test]
    fn heatmap_has_expected_shape() {
        let p = small();
        let map = p.ascii_heatmap(1);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Heaviest cell gets the darkest shade.
        assert_eq!(lines[0].as_bytes()[1], b'@');
        // Empty cell is blank.
        assert_eq!(lines[3].as_bytes()[3], b' ');
    }

    #[test]
    fn csv_lists_all_edges() {
        let csv = small().to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 edges
        assert!(csv.contains("0,1,200,2"));
    }

    #[test]
    fn csv_roundtrip() {
        let p = small();
        let back = CommPattern::from_csv(4, &p.to_csv()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn csv_accumulates_duplicate_rows() {
        let csv = "src,dst,bytes,msgs\n0,1,100,1\n0,1,50,2\n";
        let p = CommPattern::from_csv(3, csv).unwrap();
        assert_eq!(p.bytes(0, 1), 150.0);
        assert_eq!(p.msgs(0, 1), 3.0);
    }

    #[test]
    fn csv_errors_are_descriptive() {
        assert!(CommPattern::from_csv(2, "").unwrap_err().contains("empty"));
        assert!(CommPattern::from_csv(2, "x,y\n")
            .unwrap_err()
            .contains("bad header"));
        assert!(CommPattern::from_csv(2, "src,dst,bytes,msgs\n0,1,5\n")
            .unwrap_err()
            .contains("4 fields"));
        assert!(CommPattern::from_csv(2, "src,dst,bytes,msgs\n0,9,5,1\n")
            .unwrap_err()
            .contains("out of range"));
        assert!(CommPattern::from_csv(2, "src,dst,bytes,msgs\n0,1,5,0\n")
            .unwrap_err()
            .contains("non-positive"));
        assert!(CommPattern::from_csv(2, "src,dst,bytes,msgs\n0,zz,5,1\n")
            .unwrap_err()
            .contains("bad dst"));
    }

    #[test]
    fn from_edge_lists_matches_builder() {
        let direct = CommPattern::from_edge_lists(vec![
            vec![Edge {
                dst: 1,
                bytes: 200.0,
                msgs: 2.0,
            }],
            vec![Edge {
                dst: 0,
                bytes: 50.0,
                msgs: 1.0,
            }],
            vec![Edge {
                dst: 3,
                bytes: 75.0,
                msgs: 1.0,
            }],
            vec![],
        ]);
        assert_eq!(direct, small());
        assert_eq!(direct.total_bytes(), 325.0);
        assert_eq!(direct.total_msgs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn from_edge_lists_rejects_unsorted_rows() {
        let e = |dst| Edge {
            dst,
            bytes: 1.0,
            msgs: 1.0,
        };
        CommPattern::from_edge_lists(vec![vec![e(2), e(1)], vec![], vec![]]);
    }

    #[test]
    #[should_panic(expected = "bad edge (0,0)")]
    fn from_edge_lists_rejects_self_loops() {
        CommPattern::from_edge_lists(vec![vec![Edge {
            dst: 0,
            bytes: 1.0,
            msgs: 1.0,
        }]]);
    }

    #[test]
    #[should_panic(expected = "bad edge weight")]
    fn from_edge_lists_rejects_non_finite_weights() {
        CommPattern::from_edge_lists(vec![
            vec![Edge {
                dst: 1,
                bytes: f64::NAN,
                msgs: 1.0,
            }],
            vec![],
        ]);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn record_checks_bounds() {
        PatternBuilder::new(2).record(0, 5, 1);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn from_dense_checks_consistency() {
        let mut cg = SquareMatrix::zeros(2);
        cg.set(0, 1, 10.0);
        let ag = SquareMatrix::zeros(2);
        CommPattern::from_dense(&cg, &ag);
    }

    #[test]
    fn empty_pattern() {
        let p = CommPattern::empty(3);
        assert_eq!(p.n(), 3);
        assert_eq!(p.num_edges(), 0);
        assert_eq!(p.diagonal_locality(0), 1.0);
    }
}
