//! Communication traces and CYPRESS-style compression.
//!
//! The paper profiles applications with CYPRESS (Zhai et al., SC'14),
//! which combines static program structure with runtime trace compression:
//! loops in the source produce repeated communication phases, and the
//! compressor stores `body × repeat-count` instead of the flat event list.
//! This module reproduces that idea: a flat [`Trace`] of send events and a
//! [`CompressedTrace`] built by greedy periodic-run detection, with exact
//! (lossless) round-tripping. Both forms aggregate into a
//! [`CommPattern`](crate::pattern::CommPattern).

use crate::pattern::{CommPattern, PatternBuilder};
use serde::{Deserialize, Serialize};

/// One traced communication event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message size in bytes.
    pub bytes: u64,
}

/// A flat, ordered list of communication events (one application run).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from events.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Self { events }
    }

    /// Record an event.
    pub fn push(&mut self, src: usize, dst: usize, bytes: u64) {
        self.events.push(TraceEvent { src, dst, bytes });
    }

    /// The raw events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Aggregate into a [`CommPattern`] over `n` ranks.
    pub fn to_pattern(&self, n: usize) -> CommPattern {
        let mut b = PatternBuilder::new(n);
        for e in &self.events {
            b.record(e.src, e.dst, e.bytes);
        }
        b.build()
    }

    /// Compress with greedy periodic-run detection (CYPRESS's dynamic
    /// compression step).
    pub fn compress(&self) -> CompressedTrace {
        CompressedTrace::compress(self)
    }
}

/// One segment of a compressed trace: a body repeated `repeats` times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The events of one period.
    pub body: Vec<TraceEvent>,
    /// How many consecutive times the body occurs (≥ 1).
    pub repeats: usize,
}

/// A losslessly compressed trace: a sequence of repeated segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedTrace {
    segments: Vec<Segment>,
    original_len: usize,
}

impl CompressedTrace {
    /// Greedy left-to-right periodic-run compression.
    ///
    /// At each position we look for the period `p` (up to `MAX_PERIOD`)
    /// whose repetition from here covers the most events, emit it as one
    /// segment and continue after the run. Linear scans bound the work to
    /// `O(len · MAX_PERIOD)`.
    pub fn compress(trace: &Trace) -> Self {
        const MAX_PERIOD: usize = 4096;
        let ev = &trace.events;
        let mut segments: Vec<Segment> = Vec::new();
        let mut i = 0usize;
        while i < ev.len() {
            let remaining = ev.len() - i;
            let mut best_p = 1usize;
            let mut best_reps = 1usize;
            let max_p = MAX_PERIOD.min(remaining / 2);
            for p in 1..=max_p {
                // Count how many extra periods of length p follow.
                let mut reps = 1usize;
                while (reps + 1) * p <= remaining
                    && ev[i + reps * p..i + (reps + 1) * p] == ev[i..i + p]
                {
                    reps += 1;
                }
                if reps > 1 && reps * p > best_reps * best_p {
                    best_p = p;
                    best_reps = reps;
                }
            }
            if best_reps > 1 {
                segments.push(Segment {
                    body: ev[i..i + best_p].to_vec(),
                    repeats: best_reps,
                });
                i += best_p * best_reps;
            } else {
                // No repetition here; extend (or start) a literal segment.
                match segments.last_mut() {
                    Some(seg) if seg.repeats == 1 => seg.body.push(ev[i]),
                    _ => segments.push(Segment {
                        body: vec![ev[i]],
                        repeats: 1,
                    }),
                }
                i += 1;
            }
        }
        Self {
            segments,
            original_len: ev.len(),
        }
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Events stored after compression.
    pub fn compressed_len(&self) -> usize {
        self.segments.iter().map(|s| s.body.len()).sum()
    }

    /// Events in the original trace.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// `original / compressed` (≥ 1; 1 means incompressible).
    pub fn compression_ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 1.0;
        }
        self.original_len as f64 / self.compressed_len().max(1) as f64
    }

    /// Expand back to the flat trace (lossless inverse of `compress`).
    pub fn decompress(&self) -> Trace {
        let mut events = Vec::with_capacity(self.original_len);
        for seg in &self.segments {
            for _ in 0..seg.repeats {
                events.extend_from_slice(&seg.body);
            }
        }
        Trace { events }
    }

    /// Aggregate into a [`CommPattern`] *without* expanding — each body
    /// event contributes `repeats` messages. This is why profiling stays
    /// cheap for long runs (the paper's 100 back-to-back executions).
    pub fn to_pattern(&self, n: usize) -> CommPattern {
        let mut b = PatternBuilder::new(n);
        for seg in &self.segments {
            for e in &seg.body {
                b.record_many(e.src, e.dst, e.bytes, seg.repeats as u64);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, bytes: u64) -> TraceEvent {
        TraceEvent { src, dst, bytes }
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        let c = t.compress();
        assert_eq!(c.compression_ratio(), 1.0);
        assert_eq!(c.decompress(), t);
    }

    #[test]
    fn simple_loop_is_collapsed() {
        // (0->1, 1->0) repeated 50 times: body of 2, repeats 50.
        let mut t = Trace::new();
        for _ in 0..50 {
            t.push(0, 1, 100);
            t.push(1, 0, 100);
        }
        let c = t.compress();
        assert_eq!(c.segments().len(), 1);
        assert_eq!(c.segments()[0].repeats, 50);
        assert_eq!(c.compressed_len(), 2);
        assert_eq!(c.compression_ratio(), 50.0);
        assert_eq!(c.decompress(), t);
    }

    #[test]
    fn nested_structure_prefix_suffix() {
        let mut t = Trace::new();
        t.push(9, 8, 1); // prologue
        for _ in 0..10 {
            t.push(0, 1, 42);
        }
        t.push(8, 9, 1); // epilogue
        let c = t.compress();
        assert_eq!(c.decompress(), t);
        assert!(c.compressed_len() <= 3, "got {}", c.compressed_len());
    }

    #[test]
    fn incompressible_trace_stays_flat() {
        let mut t = Trace::new();
        for i in 0..20 {
            t.push(i, i + 1, (i * 7 + 1) as u64);
        }
        let c = t.compress();
        assert_eq!(c.compression_ratio(), 1.0);
        assert_eq!(c.decompress(), t);
    }

    #[test]
    fn pattern_from_compressed_equals_pattern_from_flat() {
        let mut t = Trace::new();
        for it in 0..30 {
            t.push(0, 1, 43_000);
            t.push(0, 2, 83_000);
            t.push(1, 3, 43_000);
            if it % 3 == 0 {
                t.push(3, 0, 8);
            }
        }
        let flat = t.to_pattern(4);
        let compressed = t.compress().to_pattern(4);
        assert_eq!(flat, compressed);
    }

    #[test]
    fn longer_period_detected() {
        // Period of 3 events repeated 7 times.
        let body = [ev(0, 1, 5), ev(1, 2, 6), ev(2, 0, 7)];
        let mut events = Vec::new();
        for _ in 0..7 {
            events.extend_from_slice(&body);
        }
        let c = Trace::from_events(events).compress();
        assert_eq!(c.segments().len(), 1);
        assert_eq!(c.segments()[0].body.len(), 3);
        assert_eq!(c.segments()[0].repeats, 7);
    }

    #[test]
    fn compression_is_lossless_on_mixed_input() {
        let mut t = Trace::new();
        // literal, loop, literal, different loop
        t.push(5, 6, 1);
        for _ in 0..4 {
            t.push(0, 1, 2);
        }
        t.push(6, 5, 1);
        for _ in 0..9 {
            t.push(2, 3, 10);
            t.push(3, 2, 11);
        }
        let c = t.compress();
        assert_eq!(c.decompress(), t);
        assert_eq!(c.original_len(), t.len());
        assert!(c.compression_ratio() > 2.0);
    }

    #[test]
    fn to_pattern_counts_messages() {
        let mut t = Trace::new();
        t.push(0, 1, 10);
        t.push(0, 1, 20);
        let p = t.to_pattern(2);
        assert_eq!(p.bytes(0, 1), 30.0);
        assert_eq!(p.msgs(0, 1), 2.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_compress_roundtrip(
            raw in proptest::collection::vec((0usize..6, 0usize..6, 1u64..4), 0..200),
            reps in 1usize..5,
        ) {
            // Build a trace with artificial repetition structure.
            let mut t = Trace::new();
            for _ in 0..reps {
                for &(s, d, b) in &raw {
                    t.push(s, d, b);
                }
            }
            let c = t.compress();
            proptest::prop_assert_eq!(c.decompress(), t.clone());
            proptest::prop_assert_eq!(c.to_pattern(6), t.to_pattern(6));
            proptest::prop_assert!(c.compressed_len() <= t.len().max(1));
        }
    }
}
