//! The paper's evaluation workloads.
//!
//! §5.1 of the paper evaluates five applications: the NPB pseudo-
//! applications **BT**, **SP** and **LU** (CLASS C, 64 ranks), parallel
//! **K-means** clustering and **DNN** (parallel SGD). Figure 3 shows
//! their 64-rank communication matrices: near-diagonal for the NPB
//! kernels (two message sizes — 43 KB and 83 KB — for LU), a complex
//! spread-out pattern for K-means, and very little traffic for DNN.
//!
//! We cannot run the original MPI binaries; each generator here emits a
//! per-rank [`Program`] whose *communication structure* reproduces the
//! published characterization, and whose computation blocks give the
//! runtime simulator a computation/communication ratio consistent with
//! the paper's observations (e.g. DNN is computation-bound).

mod extra;
mod ml;
mod npb;
mod synthetic;

pub use extra::{Cg, Ft};
pub use ml::{Dnn, KMeansApp};
pub use npb::{Bt, Lu, Sp};
pub use synthetic::{ClusteredGraph, RandomGraph, Ring, Stencil2D, UniformAll2All};

use crate::pattern::CommPattern;
use crate::program::Program;

/// A runnable evaluation workload.
pub trait Workload {
    /// Display name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Number of parallel processes `N`.
    fn num_ranks(&self) -> usize;

    /// The per-rank program (communication + computation).
    fn program(&self) -> Program;

    /// The profiled communication pattern (`CG`/`AG`), i.e. the offline
    /// CYPRESS step.
    fn pattern(&self) -> CommPattern {
        self.program().profile()
    }
}

/// The five applications of the paper's evaluation.
///
/// ```
/// use commgraph::apps::{AppKind, Workload};
/// let lu = AppKind::Lu.workload(16);
/// let pattern = lu.pattern();
/// assert_eq!(pattern.n(), 16);
/// assert!(pattern.diagonal_locality(5) > 0.5); // near-diagonal kernel
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// NPB Block Tri-diagonal solver.
    Bt,
    /// NPB Scalar Penta-diagonal solver.
    Sp,
    /// NPB Lower-Upper Gauss-Seidel solver.
    Lu,
    /// Parallel K-means clustering.
    KMeans,
    /// Deep neural network (parallel SGD).
    Dnn,
}

impl AppKind {
    /// All five, in the order of the paper's figures.
    pub const ALL: [AppKind; 5] = [
        AppKind::Bt,
        AppKind::Sp,
        AppKind::Lu,
        AppKind::KMeans,
        AppKind::Dnn,
    ];

    /// Paper display name.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Bt => "BT",
            AppKind::Sp => "SP",
            AppKind::Lu => "LU",
            AppKind::KMeans => "K-means",
            AppKind::Dnn => "DNN",
        }
    }

    /// Parse a (case-insensitive) name.
    pub fn parse(s: &str) -> Option<AppKind> {
        match s.to_ascii_lowercase().as_str() {
            "bt" => Some(AppKind::Bt),
            "sp" => Some(AppKind::Sp),
            "lu" => Some(AppKind::Lu),
            "kmeans" | "k-means" => Some(AppKind::KMeans),
            "dnn" => Some(AppKind::Dnn),
            _ => None,
        }
    }

    /// Construct the workload with the paper's default parameters at `n`
    /// ranks.
    pub fn workload(&self, n: usize) -> Box<dyn Workload> {
        match self {
            AppKind::Bt => Box::new(Bt::class_c(n)),
            AppKind::Sp => Box::new(Sp::class_c(n)),
            AppKind::Lu => Box::new(Lu::class_c(n)),
            AppKind::KMeans => Box::new(KMeansApp::standard(n)),
            AppKind::Dnn => Box::new(Dnn::standard(n)),
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Closest-to-square factorization of `n` into `(rows, cols)` with
/// `rows ≤ cols`, used to lay ranks out on 2-D process grids.
pub(crate) fn grid_dims(n: usize) -> (usize, usize) {
    assert!(n > 0, "cannot factor zero ranks");
    let mut rows = (n as f64).sqrt() as usize;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), n / rows.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_square() {
        assert_eq!(grid_dims(64), (8, 8));
        assert_eq!(grid_dims(16), (4, 4));
    }

    #[test]
    fn grid_dims_rect_and_degenerate() {
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(2), (1, 2));
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(13), (1, 13)); // prime
    }

    #[test]
    fn appkind_parse_roundtrip() {
        for k in AppKind::ALL {
            assert_eq!(AppKind::parse(k.name()), Some(k));
        }
        assert_eq!(AppKind::parse("K-MEANS"), Some(AppKind::KMeans));
        assert_eq!(AppKind::parse("ep"), None);
    }

    #[test]
    fn workloads_constructible_at_64() {
        for k in AppKind::ALL {
            let w = k.workload(64);
            assert_eq!(w.num_ranks(), 64);
            let p = w.pattern();
            assert_eq!(p.n(), 64);
            assert!(p.total_msgs() > 0.0, "{k} has no traffic");
        }
    }

    #[test]
    fn programs_are_matched() {
        for k in AppKind::ALL {
            let w = k.workload(16);
            w.program()
                .check_matched()
                .unwrap_or_else(|e| panic!("{k}: {e}"));
        }
    }

    #[test]
    fn fig3_npb_kernels_are_near_diagonal_kmeans_is_not() {
        let band = 9; // one grid row on an 8x8 layout
        for k in [AppKind::Bt, AppKind::Sp, AppKind::Lu] {
            let loc = k.workload(64).pattern().diagonal_locality(band);
            assert!(loc > 0.6, "{k} locality {loc}");
        }
        let km = AppKind::KMeans
            .workload(64)
            .pattern()
            .diagonal_locality(band);
        assert!(km < 0.6, "K-means locality {km}");
    }

    #[test]
    fn fig3_dnn_traffic_is_small() {
        let dnn = AppKind::Dnn.workload(64).pattern();
        let lu = AppKind::Lu.workload(64).pattern();
        assert!(
            dnn.total_bytes() < 0.1 * lu.total_bytes(),
            "DNN {} vs LU {}",
            dnn.total_bytes(),
            lu.total_bytes()
        );
    }

    #[test]
    fn dnn_is_computation_bound() {
        let w = AppKind::Dnn.workload(16);
        let prog = w.program();
        // Communication at intra-site speed would take far less time than
        // the computation blocks.
        let comm_at_100mbps = prog.total_send_bytes() / 100e6;
        assert!(prog.total_compute_secs() > 10.0 * comm_at_100mbps);
    }
}
