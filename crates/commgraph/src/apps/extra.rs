//! Additional NPB kernels beyond the paper's evaluation set.
//!
//! The paper evaluates BT, SP and LU; **CG** (Conjugate Gradient) and
//! **FT** (3-D FFT) complete the classic NPB communication spectrum —
//! CG mixes row-wise reductions with transpose exchanges (mid-range
//! locality), and FT is a repeated global transpose (all-to-all), the
//! worst case for any locality-seeking mapper. Useful for stress tests
//! and for users whose workloads look nothing like a stencil.

use super::{grid_dims, Workload};
use crate::collectives::{allreduce, alltoall};
use crate::program::{Program, ProgramBuilder};

/// NPB CG (Conjugate Gradient) communication generator.
///
/// Ranks form a `rows × cols` grid; each CG iteration does a
/// recursive-doubling allreduce along every grid row (the distributed
/// dot products / `q = A·p` row sums) followed by an exchange with the
/// transpose partner (moving between row and column distributions).
#[derive(Debug, Clone)]
pub struct Cg {
    n: usize,
    /// CG iterations.
    pub iterations: usize,
    /// Bytes per row-reduction element block.
    pub reduce_bytes: u64,
    /// Bytes of the transpose exchange.
    pub transpose_bytes: u64,
    /// Per-rank computation per iteration, seconds.
    pub compute_per_iter: f64,
}

impl Cg {
    /// CLASS C-flavoured defaults at `n` ranks.
    pub fn class_c(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            iterations: 15,
            reduce_bytes: 16_000,
            transpose_bytes: 70_000,
            compute_per_iter: 0.008,
        }
    }
}

impl Workload for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn program(&self) -> Program {
        let (rows, cols) = grid_dims(self.n);
        let mut b = ProgramBuilder::new(self.n);
        for _ in 0..self.iterations {
            b.compute_all(self.compute_per_iter);
            // Row-wise reductions.
            for r in 0..rows {
                let row: Vec<usize> = (0..cols).map(|c| r * cols + c).collect();
                allreduce(&mut b, &row, self.reduce_bytes);
            }
            // Transpose exchange (only meaningful on square-ish grids;
            // off-square partners fall back to the reversed index).
            for i in 0..self.n {
                let (r, c) = (i / cols, i % cols);
                let partner = if rows == cols {
                    c * cols + r
                } else {
                    self.n - 1 - i
                };
                if partner > i {
                    b.transfer(i, partner, self.transpose_bytes);
                    b.transfer(partner, i, self.transpose_bytes);
                }
            }
        }
        b.build()
    }
}

/// NPB FT (3-D FFT) communication generator: per iteration one global
/// transpose, i.e. a personalized all-to-all with `volume / n` bytes per
/// ordered pair.
#[derive(Debug, Clone)]
pub struct Ft {
    n: usize,
    /// FFT iterations (inverse-transform steps).
    pub iterations: usize,
    /// Total per-rank volume exchanged in one transpose.
    pub per_rank_bytes: u64,
    /// Per-rank computation per iteration, seconds.
    pub compute_per_iter: f64,
}

impl Ft {
    /// CLASS C-flavoured defaults at `n` ranks.
    pub fn class_c(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            iterations: 6,
            per_rank_bytes: 4_000_000,
            compute_per_iter: 0.05,
        }
    }
}

impl Workload for Ft {
    fn name(&self) -> &'static str {
        "FT"
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn program(&self) -> Program {
        let all: Vec<usize> = (0..self.n).collect();
        let per_pair = (self.per_rank_bytes / self.n.max(1) as u64).max(1);
        let mut b = ProgramBuilder::new(self.n);
        for _ in 0..self.iterations {
            b.compute_all(self.compute_per_iter);
            alltoall(&mut b, &all, per_pair);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_is_matched_and_has_row_structure() {
        let cg = Cg::class_c(16);
        cg.program().check_matched().unwrap();
        let pat = cg.pattern();
        // Rank 0's partners: its XOR row peers (1 and 2 — recursive
        // doubling never pairs 0 with 3 directly) — the transpose partner
        // of (0,0) is itself.
        let peers: Vec<usize> = pat.out_edges(0).iter().map(|e| e.dst).collect();
        assert_eq!(peers, vec![1, 2]);
        // An off-diagonal rank also exchanges with its transpose.
        let peers5: Vec<usize> = pat.out_edges(5).iter().map(|e| e.dst).collect();
        assert!(
            peers5.contains(&4) || peers5.contains(&7),
            "row peers missing: {peers5:?}"
        );
    }

    #[test]
    fn cg_transpose_partners_present_on_square_grids() {
        let pat = Cg::class_c(16).pattern();
        // (0,1) = rank 1 <-> (1,0) = rank 4.
        assert!(pat.bytes(1, 4) >= Cg::class_c(16).transpose_bytes as f64);
        assert!(pat.bytes(4, 1) >= Cg::class_c(16).transpose_bytes as f64);
    }

    #[test]
    fn ft_is_dense_all_to_all() {
        let pat = Ft::class_c(8).pattern();
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert!(pat.msgs(i, j) >= 6.0, "({i},{j}) missing traffic");
                }
            }
        }
        // Zero locality to exploit.
        assert!(pat.diagonal_locality(1) < 0.5);
    }

    #[test]
    fn ft_volume_matches_spec() {
        let ft = Ft::class_c(8);
        let pat = ft.pattern();
        let expect = ft.iterations as f64 * 8.0 * 7.0 * (ft.per_rank_bytes / 8) as f64;
        assert!(
            (pat.total_bytes() - expect).abs() < 1e-6,
            "{} vs {expect}",
            pat.total_bytes()
        );
    }

    #[test]
    fn both_run_on_odd_rank_counts() {
        Cg::class_c(12).program().check_matched().unwrap();
        Ft::class_c(9).program().check_matched().unwrap();
        Cg::class_c(7).program().check_matched().unwrap();
    }
}
