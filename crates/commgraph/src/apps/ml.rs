//! Machine-learning workloads: parallel K-means and DNN.
//!
//! The paper evaluates parallel K-means clustering (Kanungo et al.) and a
//! DNN trained with parallelized stochastic gradient descent (Zinkevich
//! et al.). Fig. 3 characterizes them by their communication matrices:
//! K-means is "complex" — traffic spread far off the diagonal, requiring
//! a mapping algorithm that looks beyond neighbour locality — while DNN
//! moves little data relative to its computation.

use super::Workload;
use crate::collectives::{allreduce, broadcast, reduce};
use crate::program::{Program, ProgramBuilder};

/// Deterministic hash → `[0, 1)` for the migration pattern.
fn unit_hash(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(c.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Parallel K-means clustering.
///
/// Each Lloyd iteration: local assignment (compute), a recursive-doubling
/// allreduce of the centroid sums (the hypercube edges of Fig. 3), and a
/// *point-migration* phase — observations whose nearest centroid is owned
/// by another rank are shipped there. Migration partners depend on the
/// data, i.e. they look pseudo-random from the network's point of view;
/// the migrated volume decays as the clustering converges.
#[derive(Debug, Clone)]
pub struct KMeansApp {
    n: usize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// Number of clusters `k`.
    pub clusters: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Base bytes migrated to one partner in the first iteration.
    pub migration_bytes: u64,
    /// Migration partners per rank per iteration.
    pub partners_per_rank: usize,
    /// Per-iteration decay of migrated volume (convergence).
    pub migration_decay: f64,
    /// Per-rank assignment computation per iteration, seconds.
    pub compute_per_iter: f64,
    /// Seed of the data-dependent migration pattern.
    pub seed: u64,
}

impl KMeansApp {
    /// Defaults matching the paper's n-body dataset run at `n` ranks.
    pub fn standard(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            iterations: 10,
            clusters: 16,
            dim: 16,
            migration_bytes: 40_000,
            partners_per_rank: 5,
            migration_decay: 0.8,
            compute_per_iter: 0.012,
            seed: Self::DEFAULT_SEED,
        }
    }

    /// The default migration seed.
    pub const DEFAULT_SEED: u64 = 0x5EED_00C5;
}

impl Workload for KMeansApp {
    fn name(&self) -> &'static str {
        "K-means"
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn program(&self) -> Program {
        let all: Vec<usize> = (0..self.n).collect();
        let centroid_bytes = (self.clusters * self.dim * 8) as u64;
        let mut b = ProgramBuilder::new(self.n);
        // Initial centroids to everyone.
        broadcast(&mut b, &all, 0, centroid_bytes);
        let mut volume = self.migration_bytes as f64;
        for it in 0..self.iterations {
            b.compute_all(self.compute_per_iter);
            // Centroid sums.
            allreduce(&mut b, &all, centroid_bytes);
            // Data-dependent point migration. Partitioned datasets are
            // spatially correlated: most points migrate to ranks owning
            // nearby partitions, a few to far ones (log-uniform offsets),
            // and some reassignments look arbitrary — a complex but
            // structured matrix, as in the paper's Fig. 3.
            for r in 0..self.n {
                for p in 0..self.partners_per_rank {
                    let h = unit_hash(self.seed, it as u64, r as u64, p as u64);
                    let dst = if p % 2 == 0 {
                        // Log-uniform offset in [1, n/2].
                        let max_off = (self.n / 2).max(1) as f64;
                        let off = max_off.powf(h).round() as usize;
                        let sign = unit_hash(self.seed ^ 0x51, it as u64, r as u64, p as u64) < 0.5;
                        if sign {
                            (r + off) % self.n
                        } else {
                            (r + self.n - off % self.n) % self.n
                        }
                    } else {
                        (h * self.n as f64) as usize % self.n
                    };
                    if dst == r {
                        continue;
                    }
                    let size_scale =
                        0.5 + unit_hash(self.seed ^ 0xF00D, it as u64, r as u64, p as u64);
                    let bytes = (volume * size_scale) as u64;
                    if bytes > 0 {
                        b.transfer(r, dst, bytes);
                    }
                }
            }
            volume *= self.migration_decay;
        }
        b.build()
    }
}

/// DNN trained with parallelized SGD.
///
/// Parameters are broadcast once, each epoch is dominated by local
/// gradient computation with a small periodic model synchronization
/// (recursive-doubling allreduce), and the final model is reduced to
/// rank 0. Total traffic is small — the paper notes DNN is
/// computation-intensive and sees the smallest mapping benefit.
#[derive(Debug, Clone)]
pub struct Dnn {
    n: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Full model size in bytes (broadcast/reduce).
    pub param_bytes: u64,
    /// Per-epoch synchronization payload in bytes.
    pub sync_bytes: u64,
    /// Per-rank computation per epoch, seconds.
    pub compute_per_epoch: f64,
}

impl Dnn {
    /// Defaults matching the paper's ResNet/CIFAR-10 setup at `n` ranks.
    pub fn standard(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            epochs: 6,
            param_bytes: 131_072,
            sync_bytes: 4_096,
            compute_per_epoch: 0.4,
        }
    }
}

impl Workload for Dnn {
    fn name(&self) -> &'static str {
        "DNN"
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn program(&self) -> Program {
        let all: Vec<usize> = (0..self.n).collect();
        let mut b = ProgramBuilder::new(self.n);
        broadcast(&mut b, &all, 0, self.param_bytes);
        for _ in 0..self.epochs {
            b.compute_all(self.compute_per_epoch);
            allreduce(&mut b, &all, self.sync_bytes);
        }
        reduce(&mut b, &all, 0, self.param_bytes);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_pattern_is_complex() {
        let pat = KMeansApp::standard(64).pattern();
        // Spread: many distinct partners per rank (hypercube log2(64)=6
        // plus migration partners).
        let avg_degree = (0..64).map(|r| pat.out_edges(r).len()).sum::<usize>() as f64 / 64.0;
        assert!(avg_degree > 8.0, "avg degree {avg_degree}");
        assert!(pat.diagonal_locality(9) < 0.6);
    }

    #[test]
    fn kmeans_migration_decays() {
        let mut early = KMeansApp::standard(16);
        early.iterations = 1;
        let one = early.pattern().total_bytes();
        let mut later = KMeansApp::standard(16);
        later.iterations = 10;
        let ten = later.pattern().total_bytes();
        // Ten iterations carry less than 10x the first iteration's bytes
        // because migration decays geometrically.
        assert!(ten < 10.0 * one, "{ten} vs {one}");
    }

    #[test]
    fn kmeans_is_deterministic_in_seed() {
        let a = KMeansApp::standard(16).pattern();
        let b = KMeansApp::standard(16).pattern();
        assert_eq!(a, b);
        let mut other = KMeansApp::standard(16);
        other.seed = 123;
        assert_ne!(a, other.pattern());
    }

    #[test]
    fn dnn_compute_dominates() {
        let prog = Dnn::standard(64).program();
        let comm_secs_at_intra = prog.total_send_bytes() / 100e6;
        assert!(prog.total_compute_secs() > 20.0 * comm_secs_at_intra);
    }

    #[test]
    fn dnn_traffic_counts() {
        let d = Dnn::standard(8);
        let pat = d.pattern();
        // bcast: 7 msgs; 6 allreduce on 8 ranks: 8*3 msgs each; reduce: 7.
        assert_eq!(pat.total_msgs(), 7.0 + 6.0 * 24.0 + 7.0);
    }

    #[test]
    fn both_programs_terminate_check() {
        KMeansApp::standard(32).program().check_matched().unwrap();
        Dnn::standard(32).program().check_matched().unwrap();
    }

    #[test]
    fn unit_hash_in_range() {
        for a in 0..50u64 {
            let v = unit_hash(1, a, 2, 3);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
