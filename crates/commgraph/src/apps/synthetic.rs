//! Synthetic communication families.
//!
//! Controlled patterns for tests, property checks and ablation benches:
//! a ring, a 2-D stencil, a uniform all-to-all and a seeded random graph.
//! They span the locality spectrum the five paper applications cover
//! (ring/stencil ≈ LU/BT/SP, random ≈ K-means, all-to-all is the
//! worst case for any locality-driven mapper).

use super::{grid_dims, Workload};
use crate::program::{Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A unidirectional ring: rank `i` sends to `(i+1) mod n` each iteration.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Ranks.
    pub n: usize,
    /// Iterations.
    pub iterations: usize,
    /// Bytes per message.
    pub bytes: u64,
}

impl Workload for Ring {
    fn name(&self) -> &'static str {
        "ring"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new(self.n);
        for _ in 0..self.iterations {
            for i in 0..self.n {
                b.send(i, (i + 1) % self.n, self.bytes);
            }
            for i in 0..self.n {
                b.recv(i, (i + self.n - 1) % self.n);
            }
        }
        b.build()
    }
}

/// A 5-point 2-D stencil halo exchange (torus).
#[derive(Debug, Clone)]
pub struct Stencil2D {
    /// Ranks.
    pub n: usize,
    /// Iterations.
    pub iterations: usize,
    /// Bytes per halo face.
    pub bytes: u64,
}

impl Workload for Stencil2D {
    fn name(&self) -> &'static str {
        "stencil2d"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let (rows, cols) = grid_dims(self.n);
        let mut b = ProgramBuilder::new(self.n);
        for _ in 0..self.iterations {
            for r in 0..self.n {
                let (row, col) = (r / cols, r % cols);
                let peers = [
                    row * cols + (col + 1) % cols,
                    row * cols + (col + cols - 1) % cols,
                    ((row + 1) % rows) * cols + col,
                    ((row + rows - 1) % rows) * cols + col,
                ];
                for p in peers {
                    if p != r {
                        b.transfer(r, p, self.bytes);
                    }
                }
            }
        }
        b.build()
    }
}

/// Uniform all-to-all: every ordered pair exchanges the same volume.
///
/// Under a uniform pattern every feasible mapping has identical cost on a
/// symmetric network — a useful identity for property tests.
#[derive(Debug, Clone)]
pub struct UniformAll2All {
    /// Ranks.
    pub n: usize,
    /// Bytes per ordered pair.
    pub bytes: u64,
}

impl Workload for UniformAll2All {
    fn name(&self) -> &'static str {
        "uniform"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new(self.n);
        for shift in 1..self.n {
            for i in 0..self.n {
                b.send(i, (i + shift) % self.n, self.bytes);
            }
            for i in 0..self.n {
                b.recv(i, (i + self.n - shift) % self.n);
            }
        }
        b.build()
    }
}

/// A seeded random sparse communication graph.
#[derive(Debug, Clone)]
pub struct RandomGraph {
    /// Ranks.
    pub n: usize,
    /// Outgoing edges per rank.
    pub degree: usize,
    /// Maximum bytes per edge (sizes are uniform in `1..=max_bytes`).
    pub max_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for RandomGraph {
    fn name(&self) -> &'static str {
        "random"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = ProgramBuilder::new(self.n);
        for i in 0..self.n {
            for _ in 0..self.degree {
                let mut j = rng.random_range(0..self.n);
                if j == i {
                    j = (j + 1) % self.n;
                }
                if self.n > 1 {
                    let bytes = rng.random_range(1..=self.max_bytes);
                    b.transfer(i, j, bytes);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_edges() {
        let pat = Ring {
            n: 5,
            iterations: 3,
            bytes: 10,
        }
        .pattern();
        assert_eq!(pat.num_edges(), 5);
        for i in 0..5usize {
            assert_eq!(pat.bytes(i, (i + 1) % 5), 30.0);
            assert_eq!(pat.msgs(i, (i + 1) % 5), 3.0);
        }
    }

    #[test]
    fn stencil_degree_is_four_on_big_grids() {
        let pat = Stencil2D {
            n: 16,
            iterations: 1,
            bytes: 10,
        }
        .pattern();
        for r in 0..16 {
            assert_eq!(pat.out_edges(r).len(), 4, "rank {r}");
        }
    }

    #[test]
    fn uniform_covers_all_ordered_pairs_equally() {
        let pat = UniformAll2All { n: 6, bytes: 7 }.pattern();
        for i in 0..6usize {
            for j in 0..6usize {
                if i != j {
                    assert_eq!(pat.bytes(i, j), 7.0);
                }
            }
        }
        assert_eq!(pat.num_edges(), 30);
    }

    #[test]
    fn random_graph_is_seeded() {
        let a = RandomGraph {
            n: 20,
            degree: 3,
            max_bytes: 100,
            seed: 9,
        }
        .pattern();
        let b = RandomGraph {
            n: 20,
            degree: 3,
            max_bytes: 100,
            seed: 9,
        }
        .pattern();
        let c = RandomGraph {
            n: 20,
            degree: 3,
            max_bytes: 100,
            seed: 10,
        }
        .pattern();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_graph_has_no_self_edges() {
        let pat = RandomGraph {
            n: 10,
            degree: 5,
            max_bytes: 50,
            seed: 4,
        }
        .pattern();
        for i in 0..10 {
            assert!(pat.out_edges(i).iter().all(|e| e.dst != i));
        }
    }

    #[test]
    fn all_synthetic_programs_are_matched() {
        Ring {
            n: 7,
            iterations: 2,
            bytes: 5,
        }
        .program()
        .check_matched()
        .unwrap();
        Stencil2D {
            n: 12,
            iterations: 2,
            bytes: 5,
        }
        .program()
        .check_matched()
        .unwrap();
        UniformAll2All { n: 5, bytes: 5 }
            .program()
            .check_matched()
            .unwrap();
        RandomGraph {
            n: 9,
            degree: 2,
            max_bytes: 9,
            seed: 1,
        }
        .program()
        .check_matched()
        .unwrap();
    }
}
