//! Synthetic communication families.
//!
//! Controlled patterns for tests, property checks and ablation benches:
//! a ring, a 2-D stencil, a uniform all-to-all, a seeded random graph
//! and a clustered graph that scales to 100k+ ranks.
//! They span the locality spectrum the five paper applications cover
//! (ring/stencil ≈ LU/BT/SP, random ≈ K-means, all-to-all is the
//! worst case for any locality-driven mapper).

use super::{grid_dims, Workload};
use crate::pattern::{CommPattern, PatternBuilder};
use crate::program::{Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A unidirectional ring: rank `i` sends to `(i+1) mod n` each iteration.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Ranks.
    pub n: usize,
    /// Iterations.
    pub iterations: usize,
    /// Bytes per message.
    pub bytes: u64,
}

impl Workload for Ring {
    fn name(&self) -> &'static str {
        "ring"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new(self.n);
        for _ in 0..self.iterations {
            for i in 0..self.n {
                b.send(i, (i + 1) % self.n, self.bytes);
            }
            for i in 0..self.n {
                b.recv(i, (i + self.n - 1) % self.n);
            }
        }
        b.build()
    }
}

/// A 5-point 2-D stencil halo exchange (torus).
#[derive(Debug, Clone)]
pub struct Stencil2D {
    /// Ranks.
    pub n: usize,
    /// Iterations.
    pub iterations: usize,
    /// Bytes per halo face.
    pub bytes: u64,
}

impl Workload for Stencil2D {
    fn name(&self) -> &'static str {
        "stencil2d"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let (rows, cols) = grid_dims(self.n);
        let mut b = ProgramBuilder::new(self.n);
        for _ in 0..self.iterations {
            for r in 0..self.n {
                let (row, col) = (r / cols, r % cols);
                let peers = [
                    row * cols + (col + 1) % cols,
                    row * cols + (col + cols - 1) % cols,
                    ((row + 1) % rows) * cols + col,
                    ((row + rows - 1) % rows) * cols + col,
                ];
                for p in peers {
                    if p != r {
                        b.transfer(r, p, self.bytes);
                    }
                }
            }
        }
        b.build()
    }
}

/// Uniform all-to-all: every ordered pair exchanges the same volume.
///
/// Under a uniform pattern every feasible mapping has identical cost on a
/// symmetric network — a useful identity for property tests.
#[derive(Debug, Clone)]
pub struct UniformAll2All {
    /// Ranks.
    pub n: usize,
    /// Bytes per ordered pair.
    pub bytes: u64,
}

impl Workload for UniformAll2All {
    fn name(&self) -> &'static str {
        "uniform"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new(self.n);
        for shift in 1..self.n {
            for i in 0..self.n {
                b.send(i, (i + shift) % self.n, self.bytes);
            }
            for i in 0..self.n {
                b.recv(i, (i + self.n - shift) % self.n);
            }
        }
        b.build()
    }
}

/// A seeded random sparse communication graph.
#[derive(Debug, Clone)]
pub struct RandomGraph {
    /// Ranks.
    pub n: usize,
    /// Outgoing edges per rank.
    pub degree: usize,
    /// Maximum bytes per edge (sizes are uniform in `1..=max_bytes`).
    pub max_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for RandomGraph {
    fn name(&self) -> &'static str {
        "random"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = ProgramBuilder::new(self.n);
        for i in 0..self.n {
            for _ in 0..self.degree {
                let mut j = rng.random_range(0..self.n);
                if j == i {
                    j = (j + 1) % self.n;
                }
                if self.n > 1 {
                    let bytes = rng.random_range(1..=self.max_bytes);
                    b.transfer(i, j, bytes);
                }
            }
        }
        b.build()
    }
}

/// Clustered communication graph that scales to 262144+ ranks: ranks
/// fall into contiguous clusters of `cluster` ranks, each rank sends a
/// ring edge to its in-cluster successor plus `degree - 1` random edges
/// that stay inside the cluster with probability `locality`. The shape
/// mirrors a geo-distributed job — dense local traffic with a thin
/// cross-cluster tail — and gives heavy-edge matching real structure to
/// contract.
///
/// Unlike the smaller generators, [`Workload::pattern`] is overridden
/// to build the sparse pattern directly in `O(n · degree)` without
/// materializing a [`Program`]; `program()` still replays the same
/// seeded edge list, so `program().profile()` equals `pattern()`.
#[derive(Debug, Clone)]
pub struct ClusteredGraph {
    /// Ranks.
    pub n: usize,
    /// Ranks per cluster (the last cluster may be partial).
    pub cluster: usize,
    /// Outgoing edges per rank (ring edge included).
    pub degree: usize,
    /// Probability a non-ring edge stays inside the cluster.
    pub locality: f64,
    /// Maximum bytes per edge (sizes are uniform in `1..=max_bytes`).
    pub max_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ClusteredGraph {
    /// The seeded edge list both `pattern()` and `program()` replay.
    fn edges(&self) -> Vec<(usize, usize, u64)> {
        assert!(self.cluster >= 1, "cluster size must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.locality),
            "locality must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::with_capacity(self.n * self.degree.max(1));
        for i in 0..self.n {
            if self.n < 2 {
                break;
            }
            let base = i - i % self.cluster;
            let size = self.cluster.min(self.n - base);
            // In-cluster ring edge (wrapping to the whole graph when a
            // rank is alone in its cluster).
            let ring = if size > 1 {
                base + (i - base + 1) % size
            } else {
                (i + 1) % self.n
            };
            edges.push((i, ring, rng.random_range(1..=self.max_bytes)));
            for _ in 1..self.degree {
                let local = size > 1 && rng.random_bool(self.locality);
                let mut j = if local {
                    base + rng.random_range(0..size)
                } else {
                    rng.random_range(0..self.n)
                };
                if j == i {
                    j = if local {
                        base + (i - base + 1) % size
                    } else {
                        (j + 1) % self.n
                    };
                }
                edges.push((i, j, rng.random_range(1..=self.max_bytes)));
            }
        }
        edges
    }
}

impl Workload for ClusteredGraph {
    fn name(&self) -> &'static str {
        "clustered"
    }
    fn num_ranks(&self) -> usize {
        self.n
    }
    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new(self.n);
        for (i, j, bytes) in self.edges() {
            b.transfer(i, j, bytes);
        }
        b.build()
    }
    fn pattern(&self) -> CommPattern {
        let mut b = PatternBuilder::new(self.n);
        for (i, j, bytes) in self.edges() {
            b.record(i, j, bytes);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_pattern_matches_program_profile() {
        let g = ClusteredGraph {
            n: 96,
            cluster: 16,
            degree: 4,
            locality: 0.8,
            max_bytes: 10_000,
            seed: 42,
        };
        assert_eq!(g.pattern(), g.program().profile());
        // Direct construction really is sparse: at most degree out-edges
        // per rank (aggregation can only merge them).
        let pat = g.pattern();
        for r in 0..96 {
            assert!(pat.out_edges(r).len() <= 4, "rank {r}");
            assert!(!pat.out_edges(r).is_empty(), "rank {r} isolated");
        }
    }

    #[test]
    fn ring_edges() {
        let pat = Ring {
            n: 5,
            iterations: 3,
            bytes: 10,
        }
        .pattern();
        assert_eq!(pat.num_edges(), 5);
        for i in 0..5usize {
            assert_eq!(pat.bytes(i, (i + 1) % 5), 30.0);
            assert_eq!(pat.msgs(i, (i + 1) % 5), 3.0);
        }
    }

    #[test]
    fn stencil_degree_is_four_on_big_grids() {
        let pat = Stencil2D {
            n: 16,
            iterations: 1,
            bytes: 10,
        }
        .pattern();
        for r in 0..16 {
            assert_eq!(pat.out_edges(r).len(), 4, "rank {r}");
        }
    }

    #[test]
    fn uniform_covers_all_ordered_pairs_equally() {
        let pat = UniformAll2All { n: 6, bytes: 7 }.pattern();
        for i in 0..6usize {
            for j in 0..6usize {
                if i != j {
                    assert_eq!(pat.bytes(i, j), 7.0);
                }
            }
        }
        assert_eq!(pat.num_edges(), 30);
    }

    #[test]
    fn random_graph_is_seeded() {
        let a = RandomGraph {
            n: 20,
            degree: 3,
            max_bytes: 100,
            seed: 9,
        }
        .pattern();
        let b = RandomGraph {
            n: 20,
            degree: 3,
            max_bytes: 100,
            seed: 9,
        }
        .pattern();
        let c = RandomGraph {
            n: 20,
            degree: 3,
            max_bytes: 100,
            seed: 10,
        }
        .pattern();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_graph_has_no_self_edges() {
        let pat = RandomGraph {
            n: 10,
            degree: 5,
            max_bytes: 50,
            seed: 4,
        }
        .pattern();
        for i in 0..10 {
            assert!(pat.out_edges(i).iter().all(|e| e.dst != i));
        }
    }

    #[test]
    fn all_synthetic_programs_are_matched() {
        Ring {
            n: 7,
            iterations: 2,
            bytes: 5,
        }
        .program()
        .check_matched()
        .unwrap();
        Stencil2D {
            n: 12,
            iterations: 2,
            bytes: 5,
        }
        .program()
        .check_matched()
        .unwrap();
        UniformAll2All { n: 5, bytes: 5 }
            .program()
            .check_matched()
            .unwrap();
        RandomGraph {
            n: 9,
            degree: 2,
            max_bytes: 9,
            seed: 1,
        }
        .program()
        .check_matched()
        .unwrap();
    }
}
