//! NPB-style pseudo-applications: LU, BT and SP.
//!
//! The paper runs NPB 2.4 CLASS C on 64 ranks. The generators here
//! reproduce each kernel's *communication structure* on a 2-D process
//! grid:
//!
//! * **LU** — SSOR wavefront pipeline: two sweeps per iteration (lower
//!   and upper triangular), nearest-neighbour only, with the two message
//!   sizes the paper reports in Fig. 3 (43 KB east–west, 83 KB
//!   north–south), plus a periodic residual allreduce.
//! * **BT** — multi-partition scheme: per iteration a boundary
//!   (`copy_faces`) exchange and three directional solves; the x/y solves
//!   exchange along grid rows/columns and the z solve with a diagonally
//!   shifted partner, yielding the banded near-diagonal matrix of Fig. 3.
//! * **SP** — same skeleton as BT with smaller, more frequent messages
//!   (the scalar penta-diagonal solver communicates more often per
//!   sweep).

use super::{grid_dims, Workload};
use crate::collectives::allreduce;
use crate::program::{Program, ProgramBuilder};

/// Position helpers on a `rows × cols` grid (row-major ranks).
#[derive(Debug, Clone, Copy)]
struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    fn new(n: usize) -> Self {
        let (rows, cols) = grid_dims(n);
        Self { rows, cols }
    }
    fn n(&self) -> usize {
        self.rows * self.cols
    }
    fn row(&self, r: usize) -> usize {
        r / self.cols
    }
    fn col(&self, r: usize) -> usize {
        r % self.cols
    }
    /// Non-wrapping neighbours (LU's pipeline does not wrap).
    fn east(&self, r: usize) -> Option<usize> {
        (self.col(r) + 1 < self.cols).then_some(r + 1)
    }
    fn west(&self, r: usize) -> Option<usize> {
        (self.col(r) > 0).then(|| r - 1)
    }
    fn south(&self, r: usize) -> Option<usize> {
        (self.row(r) + 1 < self.rows).then_some(r + self.cols)
    }
    fn north(&self, r: usize) -> Option<usize> {
        (self.row(r) > 0).then(|| r - self.cols)
    }
    /// Wrapping (torus) neighbours for BT/SP's cyclic sweeps.
    fn east_wrap(&self, r: usize) -> usize {
        self.row(r) * self.cols + (self.col(r) + 1) % self.cols
    }
    fn west_wrap(&self, r: usize) -> usize {
        self.row(r) * self.cols + (self.col(r) + self.cols - 1) % self.cols
    }
    fn south_wrap(&self, r: usize) -> usize {
        ((self.row(r) + 1) % self.rows) * self.cols + self.col(r)
    }
    fn north_wrap(&self, r: usize) -> usize {
        ((self.row(r) + self.rows - 1) % self.rows) * self.cols + self.col(r)
    }
    /// The BT/SP "z" partner: a diagonal shift, wrapping.
    fn diag_wrap(&self, r: usize) -> usize {
        ((self.row(r) + 1) % self.rows) * self.cols + (self.col(r) + 1) % self.cols
    }
}

/// Exchange `bytes` in one direction `dir(r)` for every rank (each
/// ordered pair appears exactly once).
fn shift_exchange(
    b: &mut ProgramBuilder,
    g: &Grid,
    bytes: u64,
    dir: impl Fn(&Grid, usize) -> usize,
) {
    for r in 0..g.n() {
        let peer = dir(g, r);
        if peer != r {
            b.transfer(r, peer, bytes);
        }
    }
}

/// NPB LU (Lower-Upper Gauss–Seidel) communication generator.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    /// SSOR iterations.
    pub iterations: usize,
    /// East–west message size (paper: 43 KB at CLASS C / 64 ranks).
    pub msg_x: u64,
    /// North–south message size (paper: 83 KB).
    pub msg_y: u64,
    /// Per-rank computation seconds per sweep.
    pub compute_per_sweep: f64,
    /// Iterations between residual allreduces.
    pub residual_every: usize,
}

impl Lu {
    /// CLASS C defaults at `n` ranks.
    pub fn class_c(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            iterations: 25,
            msg_x: 43_000,
            msg_y: 83_000,
            compute_per_sweep: 0.004,
            residual_every: 5,
        }
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn program(&self) -> Program {
        let g = Grid::new(self.n);
        let all: Vec<usize> = (0..self.n).collect();
        let mut b = ProgramBuilder::new(self.n);
        for it in 0..self.iterations {
            // Lower-triangular sweep: the wavefront moves from the
            // north-west corner; each rank waits for north and west,
            // computes, then feeds east and south.
            for r in 0..self.n {
                if let Some(p) = g.north(r) {
                    b.recv(r, p);
                }
                if let Some(p) = g.west(r) {
                    b.recv(r, p);
                }
                b.compute(r, self.compute_per_sweep);
                if let Some(p) = g.east(r) {
                    b.send(r, p, self.msg_x);
                }
                if let Some(p) = g.south(r) {
                    b.send(r, p, self.msg_y);
                }
            }
            // Upper-triangular sweep: reversed.
            for r in 0..self.n {
                if let Some(p) = g.south(r) {
                    b.recv(r, p);
                }
                if let Some(p) = g.east(r) {
                    b.recv(r, p);
                }
                b.compute(r, self.compute_per_sweep);
                if let Some(p) = g.west(r) {
                    b.send(r, p, self.msg_x);
                }
                if let Some(p) = g.north(r) {
                    b.send(r, p, self.msg_y);
                }
            }
            if self.residual_every > 0 && it % self.residual_every == 0 {
                allreduce(&mut b, &all, 40);
            }
        }
        b.build()
    }
}

/// Shared skeleton of the BT and SP multi-partition solvers.
#[derive(Debug, Clone)]
struct AdiSolver {
    n: usize,
    iterations: usize,
    face_bytes: u64,
    solve_bytes: u64,
    diag_bytes: u64,
    compute_per_stage: f64,
    /// Sub-exchanges per directional solve (SP communicates more often
    /// with smaller messages).
    sub_stages: usize,
}

impl AdiSolver {
    fn program(&self) -> Program {
        let g = Grid::new(self.n);
        let mut b = ProgramBuilder::new(self.n);
        for _ in 0..self.iterations {
            // copy_faces: full halo exchange (torus).
            shift_exchange(&mut b, &g, self.face_bytes, Grid::east_wrap);
            shift_exchange(&mut b, &g, self.face_bytes, Grid::west_wrap);
            shift_exchange(&mut b, &g, self.face_bytes, Grid::south_wrap);
            shift_exchange(&mut b, &g, self.face_bytes, Grid::north_wrap);
            b.compute_all(self.compute_per_stage);
            for _ in 0..self.sub_stages {
                // x_solve: along grid rows.
                shift_exchange(&mut b, &g, self.solve_bytes, Grid::east_wrap);
                shift_exchange(&mut b, &g, self.solve_bytes, Grid::west_wrap);
                b.compute_all(self.compute_per_stage);
                // y_solve: along grid columns.
                shift_exchange(&mut b, &g, self.solve_bytes, Grid::south_wrap);
                shift_exchange(&mut b, &g, self.solve_bytes, Grid::north_wrap);
                b.compute_all(self.compute_per_stage);
                // z_solve: the multi-partition diagonal shift.
                shift_exchange(&mut b, &g, self.diag_bytes, Grid::diag_wrap);
                b.compute_all(self.compute_per_stage);
            }
        }
        b.build()
    }
}

/// NPB BT (Block Tri-diagonal) communication generator.
#[derive(Debug, Clone)]
pub struct Bt(AdiSolver);

impl Bt {
    /// CLASS C defaults at `n` ranks.
    pub fn class_c(n: usize) -> Self {
        assert!(n > 0);
        Self(AdiSolver {
            n,
            iterations: 20,
            face_bytes: 40_000,
            solve_bytes: 120_000,
            diag_bytes: 60_000,
            compute_per_stage: 0.006,
            sub_stages: 1,
        })
    }
}

impl Workload for Bt {
    fn name(&self) -> &'static str {
        "BT"
    }
    fn num_ranks(&self) -> usize {
        self.0.n
    }
    fn program(&self) -> Program {
        self.0.program()
    }
}

/// NPB SP (Scalar Penta-diagonal) communication generator.
#[derive(Debug, Clone)]
pub struct Sp(AdiSolver);

impl Sp {
    /// CLASS C defaults at `n` ranks.
    pub fn class_c(n: usize) -> Self {
        assert!(n > 0);
        Self(AdiSolver {
            n,
            iterations: 20,
            face_bytes: 25_000,
            solve_bytes: 55_000,
            diag_bytes: 28_000,
            compute_per_stage: 0.003,
            sub_stages: 2,
        })
    }
}

impl Workload for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }
    fn num_ranks(&self) -> usize {
        self.0.n
    }
    fn program(&self) -> Program {
        self.0.program()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_corner_rank_has_two_partners() {
        // Paper: on 64 ranks, "process 1 only communicates with processes
        // 2 and 8" (1-indexed) — i.e. rank 0 with ranks 1 and 8. The tiny
        // residual allreduce is disabled to look at the sweeps alone.
        let pat = Lu {
            residual_every: 0,
            ..Lu::class_c(64)
        }
        .pattern();
        let peers: Vec<usize> = pat.out_edges(0).iter().map(|e| e.dst).collect();
        assert_eq!(peers, vec![1, 8]);
    }

    #[test]
    fn lu_has_exactly_two_point_to_point_sizes() {
        // Ignore the tiny residual allreduce; the sweep messages must be
        // exactly 43 KB or 83 KB.
        let lu = Lu {
            residual_every: 0,
            ..Lu::class_c(64)
        };
        let prog = lu.program();
        let mut sizes = std::collections::BTreeSet::new();
        for r in 0..64 {
            for op in prog.rank_ops(r) {
                if let crate::program::RankOp::Send { bytes, .. } = op {
                    sizes.insert(*bytes);
                }
            }
        }
        assert_eq!(sizes.into_iter().collect::<Vec<_>>(), vec![43_000, 83_000]);
    }

    #[test]
    fn lu_interior_rank_has_four_partners() {
        let lu = Lu {
            residual_every: 0,
            ..Lu::class_c(64)
        };
        let pat = lu.pattern();
        // Rank 9 = (1,1) on the 8x8 grid: neighbours 8, 10, 1, 17.
        let peers: Vec<usize> = pat.out_edges(9).iter().map(|e| e.dst).collect();
        assert_eq!(peers, vec![1, 8, 10, 17]);
    }

    #[test]
    fn lu_sweeps_are_symmetric_in_volume() {
        let lu = Lu {
            residual_every: 0,
            ..Lu::class_c(64)
        };
        let pat = lu.pattern();
        // Lower sends east, upper sends west the same bytes: symmetric.
        assert!(pat.to_dense_cg().is_symmetric(1e-9));
    }

    #[test]
    fn bt_is_banded_torus() {
        let pat = Bt::class_c(64).pattern();
        // Every rank talks to east/west/north/south/diag (wrapped):
        // 5 outgoing partners... diag + 4, but east of r and west-wrap
        // partner coincide only on 2-wide grids.
        for r in 0..64 {
            let deg = pat.out_edges(r).len();
            assert!((4..=6).contains(&deg), "rank {r} degree {deg}");
        }
    }

    #[test]
    fn sp_communicates_more_often_than_bt_with_smaller_messages() {
        let bt = Bt::class_c(64).pattern();
        let sp = Sp::class_c(64).pattern();
        assert!(sp.total_msgs() > bt.total_msgs());
        let bt_avg = bt.total_bytes() / bt.total_msgs();
        let sp_avg = sp.total_bytes() / sp.total_msgs();
        assert!(sp_avg < bt_avg, "SP avg {sp_avg} vs BT avg {bt_avg}");
    }

    #[test]
    fn npb_programs_run_on_non_square_counts() {
        for n in [12usize, 32, 48] {
            Lu::class_c(n).program().check_matched().unwrap();
            Bt::class_c(n).program().check_matched().unwrap();
            Sp::class_c(n).program().check_matched().unwrap();
        }
    }

    #[test]
    fn bt_volume_scales_linearly_with_iterations() {
        let one = Bt(AdiSolver {
            iterations: 1,
            ..Bt::class_c(16).0
        })
        .pattern();
        let ten = Bt(AdiSolver {
            iterations: 10,
            ..Bt::class_c(16).0
        })
        .pattern();
        assert!((ten.total_bytes() - 10.0 * one.total_bytes()).abs() < 1e-6);
    }
}
