//! Application communication substrate.
//!
//! The SC'17 paper characterizes an application by two `N×N` matrices —
//! the communication-volume matrix `CG` and the message-count matrix `AG`
//! (Table 4) — obtained by profiling with CYPRESS. This crate provides:
//!
//! * [`pattern::CommPattern`] — a sparse-first representation of `CG`/`AG`
//!   that scales to the paper's 8192-process simulations, with dense
//!   export for display and the dense-matrix baselines;
//! * [`trace`] — a message-trace recorder and a CYPRESS-style
//!   loop-compression pass (static structure + run-length of repeated
//!   communication phases);
//! * [`program`] — per-rank message-passing programs (send/recv/compute)
//!   that the `mpirt` runtime executes and the tracer profiles;
//! * [`collectives`] — point-to-point expansions of the collective
//!   operations (binomial broadcast/reduce, recursive-doubling allreduce,
//!   ring allgather, pairwise all-to-all, dissemination barrier);
//! * [`apps`] — generators reproducing the five evaluation workloads:
//!   NPB **LU**, **BT**, **SP** (near-diagonal patterns, Fig. 3a),
//!   **K-means** (complex pattern) and **DNN** (computation-bound,
//!   little traffic) (Fig. 3b), plus synthetic families for testing.

#![warn(missing_docs)]

pub mod apps;
pub mod collectives;
pub mod pattern;
pub mod program;
pub mod trace;

pub use apps::{AppKind, Workload};
pub use pattern::{CommPattern, Edge};
pub use program::{Program, ProgramBuilder, RankOp};
pub use trace::{CompressedTrace, Trace, TraceEvent};
