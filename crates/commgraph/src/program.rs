//! Per-rank message-passing programs.
//!
//! The paper runs MPI applications (NPB kernels, K-means, DNN); we cannot
//! bind MPI, so applications are expressed as one operation list per rank
//! — blocking receives, eager sends and computation blocks — which the
//! `mpirt` crate executes on the discrete-event simulator and the
//! [`crate::trace`] profiler turns into `CG`/`AG` matrices.

use crate::pattern::{CommPattern, PatternBuilder};
use serde::{Deserialize, Serialize};

/// One operation in a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankOp {
    /// Send `bytes` to rank `to`. Sends are eager: the sender deposits the
    /// message on the network and continues (MPI_Send with buffering).
    Send {
        /// Destination rank.
        to: usize,
        /// Message size in bytes.
        bytes: u64,
    },
    /// Block until a message from rank `from` arrives. Matching is FIFO
    /// per (source, destination) pair, as in MPI's non-overtaking rule.
    Recv {
        /// Source rank.
        from: usize,
    },
    /// Local computation taking `secs` of virtual time.
    Compute {
        /// Duration in seconds.
        secs: f64,
    },
}

/// A complete program: one operation list per rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<Vec<RankOp>>,
}

impl Program {
    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.ops.len()
    }

    /// The operation list of one rank.
    #[inline]
    pub fn rank_ops(&self, rank: usize) -> &[RankOp] {
        &self.ops[rank]
    }

    /// Total number of operations across ranks.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    /// Total bytes sent by all ranks.
    pub fn total_send_bytes(&self) -> f64 {
        self.ops
            .iter()
            .flatten()
            .map(|op| match op {
                RankOp::Send { bytes, .. } => *bytes as f64,
                _ => 0.0,
            })
            .sum()
    }

    /// Total computation seconds across ranks.
    pub fn total_compute_secs(&self) -> f64 {
        self.ops
            .iter()
            .flatten()
            .map(|op| match op {
                RankOp::Compute { secs } => *secs,
                _ => 0.0,
            })
            .sum()
    }

    /// Profile the program into a [`CommPattern`] — the offline CYPRESS
    /// step of the paper's pipeline (every `Send` becomes one `AG` count
    /// and `bytes` of `CG` volume).
    pub fn profile(&self) -> CommPattern {
        let mut b = PatternBuilder::new(self.num_ranks());
        for (rank, ops) in self.ops.iter().enumerate() {
            for op in ops {
                if let RankOp::Send { to, bytes } = op {
                    b.record(rank, *to, *bytes);
                }
            }
        }
        b.build()
    }

    /// Check send/recv pairing: every `Send` has a matching `Recv` on the
    /// destination and vice versa. Returns an error message describing
    /// the first mismatch. A deadlock-free execution needs this (plus
    /// acyclicity, which the simulator detects at run time).
    pub fn check_matched(&self) -> Result<(), String> {
        let n = self.num_ranks();
        // sends[(src, dst)] vs recvs[(src, dst)]
        let mut balance = std::collections::BTreeMap::<(usize, usize), i64>::new();
        for (rank, ops) in self.ops.iter().enumerate() {
            for op in ops {
                match op {
                    RankOp::Send { to, .. } => {
                        if *to >= n {
                            return Err(format!("rank {rank} sends to out-of-range rank {to}"));
                        }
                        if *to == rank {
                            return Err(format!("rank {rank} sends to itself"));
                        }
                        *balance.entry((rank, *to)).or_default() += 1;
                    }
                    RankOp::Recv { from } => {
                        if *from >= n {
                            return Err(format!(
                                "rank {rank} receives from out-of-range rank {from}"
                            ));
                        }
                        *balance.entry((*from, rank)).or_default() -= 1;
                    }
                    RankOp::Compute { secs } => {
                        if !secs.is_finite() || *secs < 0.0 {
                            return Err(format!("rank {rank} has invalid compute duration {secs}"));
                        }
                    }
                }
            }
        }
        for ((src, dst), bal) in balance {
            if bal != 0 {
                return Err(format!(
                    "unmatched traffic {src}->{dst}: {} more {}",
                    bal.abs(),
                    if bal > 0 {
                        "sends than recvs"
                    } else {
                        "recvs than sends"
                    }
                ));
            }
        }
        Ok(())
    }
}

/// Builder assembling a [`Program`] rank by rank or phase by phase.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    ops: Vec<Vec<RankOp>>,
}

impl ProgramBuilder {
    /// Start a program over `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a program needs at least one rank");
        Self {
            ops: vec![Vec::new(); n],
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ops.len()
    }

    /// Append a send on `from`.
    pub fn send(&mut self, from: usize, to: usize, bytes: u64) -> &mut Self {
        self.ops[from].push(RankOp::Send { to, bytes });
        self
    }

    /// Append a receive on `on`.
    pub fn recv(&mut self, on: usize, from: usize) -> &mut Self {
        self.ops[on].push(RankOp::Recv { from });
        self
    }

    /// Append a matched send/recv pair (a point-to-point transfer).
    pub fn transfer(&mut self, from: usize, to: usize, bytes: u64) -> &mut Self {
        self.send(from, to, bytes).recv(to, from)
    }

    /// Append computation on `rank`.
    pub fn compute(&mut self, rank: usize, secs: f64) -> &mut Self {
        self.ops[rank].push(RankOp::Compute { secs });
        self
    }

    /// Append the same computation on every rank.
    pub fn compute_all(&mut self, secs: f64) -> &mut Self {
        for r in 0..self.ops.len() {
            self.compute(r, secs);
        }
        self
    }

    /// Finish, validating matched sends/recvs.
    ///
    /// # Panics
    /// Panics if the program has unmatched or out-of-range traffic; use
    /// [`ProgramBuilder::build_unchecked`] to skip validation.
    pub fn build(self) -> Program {
        let p = Program { ops: self.ops };
        if let Err(e) = p.check_matched() {
            panic!("invalid program: {e}");
        }
        p
    }

    /// Finish without validating (for tests constructing bad programs).
    pub fn build_unchecked(self) -> Program {
        Program { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = ProgramBuilder::new(2);
        b.transfer(0, 1, 100).compute(1, 0.5);
        let p = b.build();
        assert_eq!(p.num_ranks(), 2);
        assert_eq!(p.rank_ops(0), &[RankOp::Send { to: 1, bytes: 100 }]);
        assert_eq!(
            p.rank_ops(1),
            &[RankOp::Recv { from: 0 }, RankOp::Compute { secs: 0.5 }]
        );
        assert_eq!(p.total_ops(), 3);
        assert_eq!(p.total_send_bytes(), 100.0);
        assert_eq!(p.total_compute_secs(), 0.5);
    }

    #[test]
    fn profile_counts_sends() {
        let mut b = ProgramBuilder::new(3);
        b.transfer(0, 1, 10).transfer(0, 1, 30).transfer(2, 0, 5);
        let pat = b.build().profile();
        assert_eq!(pat.bytes(0, 1), 40.0);
        assert_eq!(pat.msgs(0, 1), 2.0);
        assert_eq!(pat.bytes(2, 0), 5.0);
        assert_eq!(pat.total_msgs(), 3.0);
    }

    #[test]
    fn unmatched_send_detected() {
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 10);
        assert!(b
            .build_unchecked()
            .check_matched()
            .unwrap_err()
            .contains("unmatched"));
    }

    #[test]
    fn self_send_detected() {
        let mut b = ProgramBuilder::new(2);
        b.send(0, 0, 10);
        assert!(b
            .build_unchecked()
            .check_matched()
            .unwrap_err()
            .contains("itself"));
    }

    #[test]
    fn out_of_range_recv_detected() {
        let mut b = ProgramBuilder::new(2);
        b.recv(0, 7);
        assert!(b
            .build_unchecked()
            .check_matched()
            .unwrap_err()
            .contains("out-of-range"));
    }

    #[test]
    fn negative_compute_detected() {
        let mut b = ProgramBuilder::new(1);
        b.compute(0, -1.0);
        assert!(b.build_unchecked().check_matched().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn build_panics_on_bad_program() {
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 1);
        b.build();
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        ProgramBuilder::new(0);
    }
}
