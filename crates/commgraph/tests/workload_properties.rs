//! Cross-module workload properties: every generated application, at a
//! range of rank counts, produces matched programs whose profiles have
//! the structure the paper's Fig. 3 documents.

use commgraph::apps::{AppKind, Workload};
use commgraph::RankOp;
use proptest::prelude::*;

fn rank_counts() -> Vec<usize> {
    vec![4, 8, 9, 12, 16, 25, 36, 64]
}

#[test]
fn all_apps_at_all_counts_are_matched_and_nonempty() {
    for kind in AppKind::ALL {
        for n in rank_counts() {
            let w = kind.workload(n);
            assert_eq!(w.num_ranks(), n);
            let prog = w.program();
            prog.check_matched()
                .unwrap_or_else(|e| panic!("{kind}@{n}: {e}"));
            assert!(prog.total_send_bytes() > 0.0, "{kind}@{n} sends nothing");
        }
    }
}

#[test]
fn profiles_are_deterministic() {
    for kind in AppKind::ALL {
        let a = kind.workload(16).pattern();
        let b = kind.workload(16).pattern();
        assert_eq!(a, b, "{kind}");
    }
}

#[test]
fn pattern_matches_program_profile() {
    for kind in AppKind::ALL {
        let w = kind.workload(25);
        assert_eq!(w.pattern(), w.program().profile(), "{kind}");
    }
}

#[test]
fn npb_kernels_have_bounded_degree() {
    // Near-diagonal structure: every rank talks to a handful of peers.
    for kind in [AppKind::Bt, AppKind::Sp, AppKind::Lu] {
        let pat = kind.workload(64).pattern();
        for r in 0..64 {
            let deg = pat.out_edges(r).len();
            assert!(deg <= 10, "{kind} rank {r} degree {deg}");
        }
    }
}

#[test]
fn kmeans_total_traffic_grows_sublinearly_in_iterations() {
    // Migration decays, so doubling iterations less than doubles bytes.
    use commgraph::apps::KMeansApp;
    let mut short = KMeansApp::standard(16);
    short.iterations = 5;
    let mut long = KMeansApp::standard(16);
    long.iterations = 10;
    let a = short.pattern().total_bytes();
    let b = long.pattern().total_bytes();
    assert!(b < 2.0 * a, "no decay: {a} -> {b}");
    assert!(b > a, "traffic must still grow: {a} -> {b}");
}

#[test]
fn dnn_message_count_scales_n_log_n() {
    use commgraph::apps::Dnn;
    // Allreduce dominates message count: ~ epochs * n * log2(n).
    let msgs = |n: usize| Dnn::standard(n).pattern().total_msgs();
    let m16 = msgs(16);
    let m64 = msgs(64);
    // n log n ratio between 16 and 64: (64*6)/(16*4) = 6.
    let ratio = m64 / m16;
    assert!((4.0..8.0).contains(&ratio), "ratio {ratio}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_total_ops_consistency(n in 4usize..40, app_idx in 0usize..5) {
        let kind = AppKind::ALL[app_idx];
        let prog = kind.workload(n).program();
        // Sends == recvs across the program.
        let mut sends = 0usize;
        let mut recvs = 0usize;
        for r in 0..n {
            for op in prog.rank_ops(r) {
                match op {
                    RankOp::Send { .. } => sends += 1,
                    RankOp::Recv { .. } => recvs += 1,
                    RankOp::Compute { .. } => {}
                }
            }
        }
        prop_assert_eq!(sends, recvs);
        // Profile message count equals the send count.
        prop_assert_eq!(prog.profile().total_msgs() as usize, sends);
    }

    #[test]
    fn prop_scaled_pattern_is_linear(n in 4usize..24, factor in 1.0f64..50.0) {
        let pat = AppKind::Lu.workload(n).pattern();
        let scaled = pat.scaled(factor);
        prop_assert!((scaled.total_bytes() - factor * pat.total_bytes()).abs()
            < 1e-6 * scaled.total_bytes().max(1.0));
        prop_assert_eq!(scaled.num_edges(), pat.num_edges());
    }
}
