//! Geographic coordinates and great-circle distances.
//!
//! The paper's grouping optimization clusters sites by "physical distance"
//! using the latitude/longitude published by the cloud provider (paper
//! §4.2, notation `PC`). This module provides the coordinate type and the
//! haversine great-circle distance used both for grouping and for the
//! synthetic network's distance-derived cross-region performance.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A point on the Earth's surface, in degrees.
///
/// This is the paper's `PC_i` — a two-dimensional vector of latitude and
/// longitude for site `i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoCoord {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoCoord {
    /// Create a coordinate from latitude/longitude in degrees.
    ///
    /// # Panics
    /// Panics if the latitude is outside `[-90, 90]`, the longitude is
    /// outside `[-180, 180]`, or either value is not finite.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            lat.is_finite() && (-90.0..=90.0).contains(&lat),
            "latitude {lat} out of range [-90, 90]"
        );
        assert!(
            lon.is_finite() && (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range [-180, 180]"
        );
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// ```
    /// use geonet::GeoCoord;
    /// let virginia = GeoCoord::new(38.95, -77.45);
    /// let oregon = GeoCoord::new(45.84, -119.70);
    /// let d = virginia.distance_km(&oregon);
    /// assert!((3500.0..4100.0).contains(&d), "got {d}");
    /// ```
    pub fn distance_km(&self, other: &GeoCoord) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Squared Euclidean distance in the raw (lat, lon) degree plane.
    ///
    /// The paper's K-means grouping uses "the physical coordinates PC and
    /// the Euclidean distance"; this is that metric (cheap, and adequate
    /// for clustering sites that are continents apart).
    pub fn euclidean_sq(&self, other: &GeoCoord) -> f64 {
        let dlat = self.lat - other.lat;
        // Wrap longitude difference into [-180, 180] so that e.g. Tokyo and
        // California are close in the +180/-180 seam sense.
        let mut dlon = (self.lon - other.lon).abs() % 360.0;
        if dlon > 180.0 {
            dlon = 360.0 - dlon;
        }
        dlat * dlat + dlon * dlon
    }

    /// Coordinates as a fixed-size array, for clustering interfaces.
    pub fn as_array(&self) -> [f64; 2] {
        [self.lat, self.lon]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn distance_to_self_is_zero() {
        let c = GeoCoord::new(1.29, 103.85); // Singapore
        assert_eq!(c.distance_km(&c), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoCoord::new(38.95, -77.45);
        let b = GeoCoord::new(53.41, -8.24);
        assert!(approx(a.distance_km(&b), b.distance_km(&a), 1e-9));
    }

    #[test]
    fn known_distances() {
        // US East (N. Virginia) to Ireland: roughly 5,450 km.
        let use_ = GeoCoord::new(38.95, -77.45);
        let irl = GeoCoord::new(53.41, -8.24);
        let d = use_.distance_km(&irl);
        assert!((5200.0..5800.0).contains(&d), "got {d}");

        // US East to Singapore: roughly 15,500 km.
        let sgp = GeoCoord::new(1.29, 103.85);
        let d = use_.distance_km(&sgp);
        assert!((15000.0..16100.0).contains(&d), "got {d}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoCoord::new(0.0, 0.0);
        let b = GeoCoord::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!(
            approx(d, std::f64::consts::PI * EARTH_RADIUS_KM, 1.0),
            "got {d}"
        );
    }

    #[test]
    fn euclidean_wraps_longitude_seam() {
        let a = GeoCoord::new(0.0, 179.0);
        let b = GeoCoord::new(0.0, -179.0);
        assert!(approx(a.euclidean_sq(&b), 4.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_bad_latitude() {
        GeoCoord::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude")]
    fn rejects_bad_longitude() {
        GeoCoord::new(0.0, 181.0);
    }

    #[test]
    fn triangle_inequality_on_sample() {
        let a = GeoCoord::new(38.95, -77.45);
        let b = GeoCoord::new(53.41, -8.24);
        let c = GeoCoord::new(1.29, 103.85);
        assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
    }
}
