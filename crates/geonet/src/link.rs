//! The α–β point-to-point communication model.
//!
//! The paper adopts the α–β model (Thakur & Rabenseifner): transferring
//! `n` bytes over a link with latency `α` and bandwidth `β` takes
//! `α + n/β`. More elaborate models (LogP, LogGP) exist but need more
//! calibration; the paper argues α–β is sufficient given per-site-pair
//! calibration, and every cost computation in this workspace goes through
//! this type.

use serde::{Deserialize, Serialize};

/// α–β parameters of one (directed) link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaBeta {
    /// Latency `α` in seconds.
    pub latency_s: f64,
    /// Bandwidth `β` in bytes per second.
    pub bandwidth_bps: f64,
}

impl AlphaBeta {
    /// Create a link model from latency (seconds) and bandwidth (bytes/s).
    ///
    /// # Panics
    /// Panics if the latency is negative or the bandwidth is not strictly
    /// positive (a zero-bandwidth link would make every transfer infinite).
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(
            latency_s >= 0.0 && latency_s.is_finite(),
            "latency must be finite and >= 0, got {latency_s}"
        );
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "bandwidth must be finite and > 0, got {bandwidth_bps}"
        );
        Self {
            latency_s,
            bandwidth_bps,
        }
    }

    /// Create a link from the paper's table units: milliseconds and MB/s.
    pub fn from_ms_mbps(latency_ms: f64, bandwidth_mbps: f64) -> Self {
        Self::new(latency_ms * 1e-3, bandwidth_mbps * crate::MB)
    }

    /// Time in seconds to transfer a single message of `bytes` bytes:
    /// `α + n/β`.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Time for `count` messages totalling `total_bytes`:
    /// `count·α + total/β` — the closed form of the paper's Eq. 3 for one
    /// process pair mapped onto this link.
    #[inline]
    pub fn batch_time(&self, count: f64, total_bytes: f64) -> f64 {
        count * self.latency_s + total_bytes / self.bandwidth_bps
    }

    /// Pure serialization time `n/β` (no latency term) — the duration the
    /// link itself is occupied, used by the discrete-event simulator's
    /// FIFO link queues.
    #[inline]
    pub fn serialization_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bps
    }

    /// Latency in milliseconds (paper table units).
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }

    /// Bandwidth in MB/s (paper table units).
    pub fn bandwidth_mbps(&self) -> f64 {
        self.bandwidth_bps / crate::MB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_byte_is_dominated_by_latency() {
        let l = AlphaBeta::from_ms_mbps(10.0, 100.0);
        let t = l.transfer_time(1);
        assert!((t - 0.01).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn large_message_is_dominated_by_bandwidth() {
        // 8 MB at 8 MB/s should take ~1s regardless of the 0.1ms latency.
        let l = AlphaBeta::from_ms_mbps(0.1, 8.0);
        let t = l.transfer_time(8_000_000);
        assert!((t - 1.0001).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn batch_time_matches_sum_of_singles() {
        let l = AlphaBeta::from_ms_mbps(2.0, 50.0);
        let singles: f64 = (0..10).map(|_| l.transfer_time(123_456)).sum();
        let batch = l.batch_time(10.0, 10.0 * 123_456.0);
        assert!((singles - batch).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        let l = AlphaBeta::from_ms_mbps(1.0, 10.0);
        assert!(l.transfer_time(100) < l.transfer_time(101));
    }

    #[test]
    fn unit_conversions_roundtrip() {
        let l = AlphaBeta::from_ms_mbps(42.0, 6.6);
        assert!((l.latency_ms() - 42.0).abs() < 1e-12);
        assert!((l.bandwidth_mbps() - 6.6).abs() < 1e-12);
    }

    #[test]
    fn zero_latency_allowed() {
        let l = AlphaBeta::new(0.0, 1.0);
        assert_eq!(l.transfer_time(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        AlphaBeta::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn negative_latency_rejected() {
        AlphaBeta::new(-1.0, 1.0);
    }
}
