//! Synthetic ground-truth clouds.
//!
//! The paper measures its networks on live EC2/Azure; we cannot, so this
//! module *generates* a ground-truth [`SiteNetwork`] whose statistics are
//! calibrated against the paper's Tables 1–3:
//!
//! * **Intra-site**: bandwidth from the instance type's measured envelope
//!   ([`InstanceType::intra_bandwidth_mbps`]) with a per-region factor;
//!   sub-millisecond latency.
//! * **Inter-site bandwidth**: a distance power law anchored at a measured
//!   pair — `bw(d) = anchor_bw · (anchor_km / d)^γ` — reproducing
//!   Observation 2 (cross-region performance degrades with distance) and
//!   the ~10–20× intra/inter gap of Observation 1.
//! * **Inter-site latency**: speed-of-light-in-fibre with a routing
//!   inflation factor, `lat(d) = intra_lat + d/200 km·ms⁻¹ · fibre`.
//!   (This reproduces Azure's Table 3 latencies to within ~10 %.)
//! * **Asymmetry & persistent deviation**: deterministic per-ordered-pair
//!   multiplicative factors, seeded, so `BT(k,l) ≠ BT(l,k)` as the paper
//!   observes, while the network stays reproducible for a given seed.

use crate::instance::InstanceType;
use crate::link::AlphaBeta;
use crate::matrix::SquareMatrix;
use crate::network::SiteNetwork;
use crate::site::Site;
use serde::{Deserialize, Serialize};

/// Kilometres light travels per millisecond in fibre (≈ 2/3 c).
const FIBRE_KM_PER_MS: f64 = 200.0;

/// Parameters of the synthetic ground-truth generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Instance type every node runs on (the paper evaluates homogeneous
    /// instance types, §3.1).
    pub instance: InstanceType,
    /// Distance-decay exponent γ of the cross-region bandwidth power law.
    /// Fitted to paper Table 2 (EC2: ≈ 0.85) or Table 3 (Azure: ≈ 1.45).
    pub gamma: f64,
    /// Distance (km) of the anchor pair the cross-region bandwidth is
    /// pinned at. Default: US East ↔ Singapore ≈ 15,300 km.
    pub anchor_km: f64,
    /// Bandwidth (MB/s) at the anchor distance. `None` uses the instance
    /// type's Table 1 cross-region figure.
    pub anchor_cross_mbps: Option<f64>,
    /// Routing inflation over great-circle fibre latency (≈ 1.25).
    pub fibre_factor: f64,
    /// Floor on cross-region bandwidth (MB/s), so antipodal pairs stay
    /// usable as the real WAN does.
    pub min_cross_mbps: f64,
    /// Relative magnitude of the deterministic directional asymmetry
    /// (e.g. 0.03 ⇒ up to ±3 % between `(k,l)` and `(l,k)`).
    pub asymmetry: f64,
    /// Relative magnitude of the persistent per-pair deviation from the
    /// smooth distance model (real links deviate from any fit).
    pub persistent_noise: f64,
    /// Seed for the deterministic deviations.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            instance: InstanceType::M4Xlarge,
            gamma: 0.85,
            anchor_km: 15_300.0,
            anchor_cross_mbps: None,
            fibre_factor: 1.25,
            min_cross_mbps: 0.8,
            asymmetry: 0.03,
            persistent_noise: 0.04,
            seed: 0x5C17,
        }
    }
}

impl SynthConfig {
    /// EC2-flavoured defaults for a given instance type.
    pub fn ec2(instance: InstanceType) -> Self {
        Self {
            instance,
            ..Self::default()
        }
    }

    /// Azure-flavoured defaults (Table 3 fit: steeper distance decay,
    /// anchored at East US ↔ Japan East ≈ 10,900 km @ 1.3 MB/s).
    pub fn azure() -> Self {
        Self {
            instance: InstanceType::StandardD2,
            gamma: 1.45,
            anchor_km: 10_900.0,
            anchor_cross_mbps: Some(1.3),
            min_cross_mbps: 0.3,
            ..Self::default()
        }
    }
}

/// Builds ground-truth [`SiteNetwork`]s from a [`SynthConfig`].
#[derive(Debug, Clone)]
pub struct SynthNetworkBuilder {
    config: SynthConfig,
}

impl SynthNetworkBuilder {
    /// Create a builder.
    pub fn new(config: SynthConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Ground-truth α–β parameters for the directed pair `(k, l)` of the
    /// given site list.
    pub fn link(&self, sites: &[Site], k: usize, l: usize) -> AlphaBeta {
        let c = &self.config;
        if k == l {
            let region_factor = c.instance.region_factor(&sites[k].name);
            let bw = c.instance.intra_bandwidth_mbps() * region_factor;
            return AlphaBeta::from_ms_mbps(c.instance.intra_latency_ms(), bw);
        }
        let d = sites[k].distance_km(&sites[l]).max(1.0);
        let anchor = c
            .anchor_cross_mbps
            .unwrap_or_else(|| c.instance.cross_bandwidth_mbps());
        let mut bw = anchor * (c.anchor_km / d).powf(c.gamma);
        // Persistent deviation + asymmetry, deterministic in (seed, k, l).
        let dev = pair_unit(c.seed, k as u64, l as u64);
        let sym_dev = pair_unit(c.seed ^ 0xABCD, k.min(l) as u64, k.max(l) as u64);
        bw *= 1.0 + c.persistent_noise * sym_dev + c.asymmetry * dev;
        // Cross-region bandwidth can never reach intra levels.
        let intra_cap = 0.5 * c.instance.intra_bandwidth_mbps();
        bw = bw.clamp(c.min_cross_mbps, intra_cap);

        let mut lat_ms = c.instance.intra_latency_ms() + d / FIBRE_KM_PER_MS * c.fibre_factor;
        lat_ms *= 1.0 + 0.5 * c.persistent_noise * sym_dev + 0.5 * c.asymmetry * dev;
        AlphaBeta::from_ms_mbps(lat_ms, bw)
    }

    /// Build the full network over `sites`.
    pub fn build(&self, sites: Vec<Site>) -> SiteNetwork {
        let m = sites.len();
        let mut lt = SquareMatrix::zeros(m);
        let mut bt = SquareMatrix::zeros(m);
        for k in 0..m {
            for l in 0..m {
                let ab = self.link(&sites, k, l);
                lt.set(k, l, ab.latency_s);
                bt.set(k, l, ab.bandwidth_bps);
            }
        }
        SiteNetwork::new(sites, lt, bt)
    }
}

/// Deterministic value in `[-1, 1]` from `(seed, a, b)` via SplitMix64.
fn pair_unit(seed: u64, a: u64, b: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to [-1, 1].
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::GeoCoord;
    use crate::site::SiteId;

    fn paper_four_sites() -> Vec<Site> {
        vec![
            Site::new("us-east-1", GeoCoord::new(38.95, -77.45), 16),
            Site::new("us-west-2", GeoCoord::new(45.84, -119.70), 16),
            Site::new("eu-west-1", GeoCoord::new(53.41, -8.24), 16),
            Site::new("ap-southeast-1", GeoCoord::new(1.29, 103.85), 16),
        ]
    }

    #[test]
    fn observation1_intra_much_faster_than_inter() {
        let net = SynthNetworkBuilder::new(SynthConfig::ec2(InstanceType::C38xlarge))
            .build(paper_four_sites());
        assert!(
            net.intra_inter_bandwidth_ratio() > 10.0,
            "ratio {}",
            net.intra_inter_bandwidth_ratio()
        );
    }

    #[test]
    fn observation2_bandwidth_decreases_with_distance() {
        let net = SynthNetworkBuilder::new(SynthConfig::ec2(InstanceType::C38xlarge))
            .build(paper_four_sites());
        let (use_, usw, irl, sgp) = (SiteId(0), SiteId(1), SiteId(2), SiteId(3));
        let short = net.bandwidth(use_, usw);
        let medium = net.bandwidth(use_, irl);
        let long = net.bandwidth(use_, sgp);
        assert!(short > medium && medium > long, "{short} {medium} {long}");
        // Latency ordering is the reverse.
        assert!(net.latency(use_, usw) < net.latency(use_, irl));
        assert!(net.latency(use_, irl) < net.latency(use_, sgp));
    }

    #[test]
    fn table2_magnitudes_roughly_match() {
        let net = SynthNetworkBuilder::new(SynthConfig::ec2(InstanceType::C38xlarge))
            .build(paper_four_sites());
        // Paper Table 2: USE->USW 21 MB/s, USE->IRL 19 MB/s, USE->SGP 6.6 MB/s.
        let short = net.bandwidth(SiteId(0), SiteId(1)) / crate::MB;
        let medium = net.bandwidth(SiteId(0), SiteId(2)) / crate::MB;
        let long = net.bandwidth(SiteId(0), SiteId(3)) / crate::MB;
        assert!((14.0..32.0).contains(&short), "short-haul {short}");
        assert!((10.0..28.0).contains(&medium), "medium-haul {medium}");
        assert!((4.5..9.0).contains(&long), "long-haul {long}");
    }

    #[test]
    fn links_are_asymmetric_but_close() {
        let sites = paper_four_sites();
        let b = SynthNetworkBuilder::new(SynthConfig::default());
        let ab = b.link(&sites, 0, 3);
        let ba = b.link(&sites, 3, 0);
        assert_ne!(ab.bandwidth_bps, ba.bandwidth_bps);
        let rel = (ab.bandwidth_bps - ba.bandwidth_bps).abs() / ab.bandwidth_bps;
        assert!(rel < 0.15, "asymmetry too large: {rel}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let sites = paper_four_sites();
        let n1 = SynthNetworkBuilder::new(SynthConfig::default()).build(sites.clone());
        let n2 = SynthNetworkBuilder::new(SynthConfig::default()).build(sites);
        assert_eq!(n1, n2);
    }

    #[test]
    fn different_seeds_differ() {
        let sites = paper_four_sites();
        let n1 = SynthNetworkBuilder::new(SynthConfig::default()).build(sites.clone());
        let n2 = SynthNetworkBuilder::new(SynthConfig {
            seed: 99,
            ..SynthConfig::default()
        })
        .build(sites);
        assert_ne!(n1, n2);
    }

    #[test]
    fn azure_profile_matches_table3_shape() {
        let sites = vec![
            Site::new("East US", GeoCoord::new(36.67, -78.39), 8),
            Site::new("West Europe", GeoCoord::new(52.37, 4.89), 8),
            Site::new("Japan East", GeoCoord::new(35.68, 139.77), 8),
        ];
        let net = SynthNetworkBuilder::new(SynthConfig::azure()).build(sites);
        let intra = net.bandwidth(SiteId(0), SiteId(0)) / crate::MB;
        let we = net.bandwidth(SiteId(0), SiteId(1)) / crate::MB;
        let jp = net.bandwidth(SiteId(0), SiteId(2)) / crate::MB;
        // Paper Table 3: 62 / 2.9 / 1.3 MB/s.
        assert_eq!(intra, 62.0);
        assert!((1.8..4.5).contains(&we), "West Europe {we}");
        assert!((0.9..1.9).contains(&jp), "Japan {jp}");
        // Latency: paper 0.82 / 42 / 77 ms.
        let lat_we = net.latency(SiteId(0), SiteId(1)) * 1e3;
        let lat_jp = net.latency(SiteId(0), SiteId(2)) * 1e3;
        assert!((30.0..55.0).contains(&lat_we), "lat WE {lat_we}");
        assert!((60.0..95.0).contains(&lat_jp), "lat JP {lat_jp}");
    }

    #[test]
    fn pair_unit_in_range_and_deterministic() {
        for a in 0..20u64 {
            for b in 0..20u64 {
                let v = pair_unit(42, a, b);
                assert!((-1.0..=1.0).contains(&v));
                assert_eq!(v, pair_unit(42, a, b));
            }
        }
    }

    #[test]
    fn cross_bandwidth_clamped_below_intra() {
        // Two sites 1 km apart: the power law would explode; clamp holds.
        let sites = vec![
            Site::new("a", GeoCoord::new(0.0, 0.0), 2),
            Site::new("b", GeoCoord::new(0.01, 0.0), 2),
        ];
        let cfg = SynthConfig::ec2(InstanceType::C38xlarge);
        let net = SynthNetworkBuilder::new(cfg).build(sites);
        assert!(
            net.bandwidth(SiteId(0), SiteId(1))
                <= 0.5 * InstanceType::C38xlarge.intra_bandwidth_mbps() * crate::MB
        );
    }
}
