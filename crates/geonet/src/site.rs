//! Sites (cloud regions) and site identifiers.

use crate::coords::GeoCoord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a site within a [`crate::SiteNetwork`].
///
/// The paper's mapping result `P` is a vector of these — element `i` names
/// the site process `i` runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl SiteId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

impl From<usize> for SiteId {
    fn from(v: usize) -> Self {
        SiteId(v)
    }
}

/// One geo-distributed data center ("site"/"region" in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Human-readable name, e.g. `"us-east-1"`.
    pub name: String,
    /// Physical coordinates of the data center (`PC_i` in the paper).
    pub coord: GeoCoord,
    /// Number of physical nodes available in this site (`I_i`).
    pub nodes: usize,
}

impl Site {
    /// Create a site.
    pub fn new(name: impl Into<String>, coord: GeoCoord, nodes: usize) -> Self {
        Self {
            name: name.into(),
            coord,
            nodes,
        }
    }

    /// Great-circle distance in km to another site.
    pub fn distance_km(&self, other: &Site) -> f64 {
        self.coord.distance_km(&other.coord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_display_and_index() {
        let id = SiteId(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "site#3");
        assert_eq!(SiteId::from(7), SiteId(7));
    }

    #[test]
    fn site_distance_delegates_to_coord() {
        let a = Site::new("a", GeoCoord::new(0.0, 0.0), 4);
        let b = Site::new("b", GeoCoord::new(0.0, 1.0), 4);
        let d = a.distance_km(&b);
        // One degree of longitude at the equator is ~111 km.
        assert!((110.0..113.0).contains(&d), "got {d}");
    }

    #[test]
    fn site_ids_order_like_indices() {
        assert!(SiteId(1) < SiteId(2));
    }
}
