//! Simulated network calibration (the paper's SKaMPI component).
//!
//! The paper calibrates one instance pair per site pair with SKaMPI's
//! `Pingpong_Send_Recv`: the latency `LT(k,l)` is the elapsed time of a
//! one-byte message and the bandwidth `BT(k,l)` is derived from an 8 MB
//! transfer; measurements repeat over several days and are averaged, and
//! the observed variation is below ~5 % (§4.2). This module reproduces
//! that procedure against a synthetic ground-truth [`SiteNetwork`],
//! returning the *estimated* network the optimizer consumes plus a report
//! on measurement variation and calibration cost.

use crate::matrix::SquareMatrix;
use crate::network::SiteNetwork;
use crate::site::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Default large-message size the paper derives bandwidth from (8 MB).
pub const BANDWIDTH_PROBE_BYTES: u64 = 8_000_000;

/// Configuration of the calibration campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Number of simulated days the campaign runs ("We keep measuring …
    /// for several days").
    pub days: usize,
    /// Probes per site pair per day.
    pub probes_per_day: usize,
    /// Message size of the latency probe.
    pub small_bytes: u64,
    /// Message size of the bandwidth probe.
    pub large_bytes: u64,
    /// Coefficient of variation of inter-site measurements (paper: < 5 %).
    pub inter_noise_cv: f64,
    /// Coefficient of variation of intra-site measurements — the paper
    /// notes intra-site variation is *larger* (but matters little since
    /// intra performance is high).
    pub intra_noise_cv: f64,
    /// Probability that one campaign sample (a latency+bandwidth probe
    /// pair) is lost: the WAN ate it, the remote instance was down.
    /// Must be in `[0, 1)`. Lost samples still count as issued probes
    /// but contribute no measurement; a site pair losing *every* sample
    /// degrades to its last-known-good estimate (see
    /// [`Calibrator::calibrate_resilient`]). At the default `0.0` the
    /// loss draw is skipped entirely, so the RNG stream — and every
    /// seeded result in the workspace — is unchanged.
    pub loss_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            days: 3,
            probes_per_day: 10,
            small_bytes: 1,
            large_bytes: BANDWIDTH_PROBE_BYTES,
            inter_noise_cv: 0.02,
            intra_noise_cv: 0.05,
            loss_rate: 0.0,
            seed: 0xCA11,
        }
    }
}

/// A calibration campaign that could not produce an estimate: some site
/// pair lost every probe and no last-known-good network was available
/// to fall back on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationError {
    /// Source site of the starved pair.
    pub site_a: usize,
    /// Destination site of the starved pair.
    pub site_b: usize,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "site pair ({}, {}) lost every probe and no last-known-good estimate exists",
            self.site_a, self.site_b
        )
    }
}

impl std::error::Error for CalibrationError {}

/// Outcome of a calibration campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// The estimated network (sites copied from the ground truth, `LT`/`BT`
    /// from measurements). This is what the optimizer sees.
    pub estimated: SiteNetwork,
    /// Per-site-pair coefficient of variation of the bandwidth samples
    /// (0 for pairs served from the fallback — nothing was measured).
    pub bandwidth_cv: SquareMatrix,
    /// Total number of ping-pong probes issued (lost ones included —
    /// they cost campaign time whether or not they answer).
    pub probes: usize,
    /// True when at least one site pair lost every probe and its
    /// `LT`/`BT` entries came from the last-known-good network instead
    /// of fresh measurements.
    pub degraded: bool,
    /// Site pairs that fell back to last-known-good entries.
    pub stale_pairs: usize,
    /// How many calibration generations old the fallback entries are
    /// (0 when the report is fresh; filled in by the caller that owns
    /// the generation counter, e.g. the mapping service).
    pub staleness: u64,
}

impl CalibrationReport {
    /// Largest observed bandwidth variation across inter-site pairs.
    pub fn max_inter_site_cv(&self) -> f64 {
        let m = self.bandwidth_cv.n();
        let mut max = 0.0f64;
        for k in 0..m {
            for l in 0..m {
                if k != l {
                    max = max.max(self.bandwidth_cv.get(k, l));
                }
            }
        }
        max
    }
}

/// Simulated SKaMPI-style calibrator.
#[derive(Debug, Clone)]
pub struct Calibrator {
    config: CalibrationConfig,
}

impl Calibrator {
    /// Create a calibrator.
    pub fn new(config: CalibrationConfig) -> Self {
        assert!(
            config.days > 0 && config.probes_per_day > 0,
            "need at least one probe"
        );
        assert!(
            config.large_bytes > config.small_bytes,
            "bandwidth probe must exceed latency probe"
        );
        assert!(
            (0.0..1.0).contains(&config.loss_rate),
            "loss rate must be in [0, 1), got {}",
            config.loss_rate
        );
        Self { config }
    }

    /// One simulated ping-pong elapsed time (one direction) for `bytes`
    /// over the ground-truth link `(k, l)`, with multiplicative noise.
    fn probe(
        &self,
        truth: &SiteNetwork,
        k: SiteId,
        l: SiteId,
        bytes: u64,
        rng: &mut StdRng,
    ) -> f64 {
        let ab = truth.alpha_beta(k, l);
        let cv = if k == l {
            self.config.intra_noise_cv
        } else {
            self.config.inter_noise_cv
        };
        let noise = 1.0 + cv * standard_normal(rng);
        ab.transfer_time(bytes) * noise.max(0.2)
    }

    /// Run the campaign against the ground truth and estimate `LT`/`BT`.
    ///
    /// # Panics
    ///
    /// With a nonzero `loss_rate` a site pair can lose every sample;
    /// without a fallback network that is unrecoverable, so this
    /// convenience wrapper panics. Callers that configure loss should
    /// use [`Calibrator::calibrate_resilient`] instead.
    pub fn calibrate(&self, truth: &SiteNetwork) -> CalibrationReport {
        self.calibrate_resilient(truth, None)
            .expect("campaign starved a site pair; use calibrate_resilient with a fallback")
    }

    /// Run the campaign, surviving lost probes: a site pair that loses
    /// every sample takes its `LT`/`BT` entries from `fallback` (the
    /// last-known-good estimate) and the report comes back
    /// `degraded: true` with the starved pairs counted. Only when a
    /// pair is starved *and* there is no fallback does calibration
    /// fail. With the default `loss_rate = 0.0` this is exactly
    /// [`Calibrator::calibrate`]: same RNG stream, same bits.
    pub fn calibrate_resilient(
        &self,
        truth: &SiteNetwork,
        fallback: Option<&SiteNetwork>,
    ) -> Result<CalibrationReport, CalibrationError> {
        let m = truth.num_sites();
        if let Some(f) = fallback {
            assert_eq!(
                f.num_sites(),
                m,
                "fallback network has a different site count"
            );
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let samples = self.config.days * self.config.probes_per_day;
        let mut lt = SquareMatrix::zeros(m);
        let mut bt = SquareMatrix::zeros(m);
        let mut cv = SquareMatrix::zeros(m);
        let mut probes = 0usize;
        let mut stale_pairs = 0usize;

        for k in 0..m {
            for l in 0..m {
                let (sk, sl) = (SiteId(k), SiteId(l));
                let mut lat_sum = 0.0;
                let mut bw_samples = Vec::with_capacity(samples);
                for _ in 0..samples {
                    // The loss draw is short-circuited at 0.0 so a
                    // loss-free campaign consumes the exact RNG stream
                    // it always did (seeded results stay bit-identical).
                    if self.config.loss_rate > 0.0 && rng.random_bool(self.config.loss_rate) {
                        probes += 2; // issued, never answered
                        continue;
                    }
                    let t_small = self.probe(truth, sk, sl, self.config.small_bytes, &mut rng);
                    let t_large = self.probe(truth, sk, sl, self.config.large_bytes, &mut rng);
                    probes += 2;
                    lat_sum += t_small;
                    // Subtract the measured latency so the estimate is the
                    // pure serialization rate; guard against noise making
                    // the difference non-positive.
                    let ser = (t_large - t_small).max(1e-9);
                    bw_samples.push(self.config.large_bytes as f64 / ser);
                }
                if bw_samples.is_empty() {
                    let Some(f) = fallback else {
                        return Err(CalibrationError {
                            site_a: k,
                            site_b: l,
                        });
                    };
                    lt.set(k, l, f.lt().get(k, l));
                    bt.set(k, l, f.bt().get(k, l));
                    cv.set(k, l, 0.0);
                    stale_pairs += 1;
                    continue;
                }
                let got = bw_samples.len() as f64;
                let lat = lat_sum / got;
                let mean_bw = bw_samples.iter().sum::<f64>() / got;
                let var = bw_samples
                    .iter()
                    .map(|b| (b - mean_bw).powi(2))
                    .sum::<f64>()
                    / got;
                lt.set(k, l, lat);
                bt.set(k, l, mean_bw);
                cv.set(k, l, var.sqrt() / mean_bw);
            }
        }

        Ok(CalibrationReport {
            estimated: SiteNetwork::new(truth.sites().to_vec(), lt, bt),
            bandwidth_cv: cv,
            probes,
            degraded: stale_pairs > 0,
            stale_pairs,
            staleness: 0,
        })
    }
}

/// A standard normal deviate via Box–Muller (rand ships no distributions).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0f64);
    let u2: f64 = rng.random_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Calibration cost model (paper §4.2's example): probing every *node*
/// pair takes `n·(n-1)` probes vs `m·(m-1)` for site pairs. Returns
/// `(site_pair_minutes, node_pair_minutes)` given one minute per probe.
pub fn calibration_cost_minutes(m_sites: usize, n_nodes: usize) -> (f64, f64) {
    let site = (m_sites * m_sites.saturating_sub(1)) as f64;
    let node = (n_nodes * n_nodes.saturating_sub(1)) as f64;
    (site, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;
    use crate::presets::paper_ec2_network;

    #[test]
    fn estimates_converge_to_truth() {
        let truth = paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let report = Calibrator::new(CalibrationConfig {
            days: 10,
            probes_per_day: 20,
            ..CalibrationConfig::default()
        })
        .calibrate(&truth);
        let bt_err = report.estimated.bt().rel_l1_diff(truth.bt());
        let lt_err = report.estimated.lt().rel_l1_diff(truth.lt());
        assert!(bt_err < 0.05, "bandwidth error {bt_err}");
        assert!(lt_err < 0.05, "latency error {lt_err}");
    }

    #[test]
    fn variation_is_small_as_paper_reports() {
        let truth = paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let report = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        // Paper §4.2: inter-site variation generally below 5%.
        assert!(
            report.max_inter_site_cv() < 0.08,
            "cv {}",
            report.max_inter_site_cv()
        );
    }

    #[test]
    fn probe_count_scales_with_m_squared() {
        let truth = paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let cfg = CalibrationConfig::default();
        let report = Calibrator::new(cfg.clone()).calibrate(&truth);
        assert_eq!(report.probes, 4 * 4 * cfg.days * cfg.probes_per_day * 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = paper_ec2_network(8, InstanceType::M4Xlarge, 1);
        let a = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        let b = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        assert_eq!(a.estimated, b.estimated);
    }

    #[test]
    fn papers_cost_example() {
        // Paper: 4 sites, 128 nodes per site, 1 minute per pair probe:
        // all-node-pairs ≈ 180+ days, site-pairs ≈ 12 minutes.
        let (site_min, node_min) = calibration_cost_minutes(4, 4 * 128);
        assert_eq!(site_min, 12.0);
        assert!(
            node_min / (60.0 * 24.0) > 180.0,
            "node days {}",
            node_min / 1440.0
        );
    }

    #[test]
    fn latency_estimate_positive_everywhere() {
        let truth = paper_ec2_network(4, InstanceType::M1Small, 5);
        let report = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        for k in 0..4 {
            for l in 0..4 {
                assert!(report.estimated.lt().get(k, l) > 0.0);
                assert!(report.estimated.bt().get(k, l) > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_days_rejected() {
        Calibrator::new(CalibrationConfig {
            days: 0,
            ..CalibrationConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn full_loss_rate_rejected() {
        Calibrator::new(CalibrationConfig {
            loss_rate: 1.0,
            ..CalibrationConfig::default()
        });
    }

    #[test]
    fn zero_loss_resilient_path_is_bit_identical_to_calibrate() {
        let truth = paper_ec2_network(8, InstanceType::M4Xlarge, 3);
        let plain = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        let resilient = Calibrator::new(CalibrationConfig::default())
            .calibrate_resilient(&truth, Some(&truth))
            .unwrap();
        assert_eq!(plain.estimated, resilient.estimated);
        assert!(!resilient.degraded);
        assert_eq!(resilient.stale_pairs, 0);
    }

    #[test]
    fn lost_probes_still_count_as_issued() {
        let truth = paper_ec2_network(8, InstanceType::M4Xlarge, 3);
        let cfg = CalibrationConfig {
            loss_rate: 0.5,
            ..CalibrationConfig::default()
        };
        let report = Calibrator::new(cfg.clone())
            .calibrate_resilient(&truth, Some(&truth))
            .unwrap();
        // Every sample issues two probes whether or not it answers.
        assert_eq!(report.probes, 4 * 4 * cfg.days * cfg.probes_per_day * 2);
    }

    #[test]
    fn starved_pairs_fall_back_to_last_known_good() {
        let truth = paper_ec2_network(8, InstanceType::M4Xlarge, 3);
        // One sample per pair at near-certain loss: every pair starves.
        let report = Calibrator::new(CalibrationConfig {
            days: 1,
            probes_per_day: 1,
            loss_rate: 0.999_999,
            seed: 11,
            ..CalibrationConfig::default()
        })
        .calibrate_resilient(&truth, Some(&truth))
        .unwrap();
        assert!(report.degraded);
        assert!(report.stale_pairs > 0, "no pair starved at 99.9999% loss");
        // Fallback entries are copied verbatim from the last-known-good
        // network, with no bandwidth variation (nothing was measured).
        let m = truth.num_sites();
        let mut checked = 0;
        for k in 0..m {
            for l in 0..m {
                if report.bandwidth_cv.get(k, l) == 0.0
                    && report.estimated.lt().get(k, l) == truth.lt().get(k, l)
                    && report.estimated.bt().get(k, l) == truth.bt().get(k, l)
                {
                    checked += 1;
                }
            }
        }
        assert!(checked >= report.stale_pairs);
    }

    #[test]
    fn starved_pair_without_fallback_is_an_error() {
        let truth = paper_ec2_network(8, InstanceType::M4Xlarge, 3);
        let err = Calibrator::new(CalibrationConfig {
            days: 1,
            probes_per_day: 1,
            loss_rate: 0.999_999,
            seed: 11,
            ..CalibrationConfig::default()
        })
        .calibrate_resilient(&truth, None)
        .unwrap_err();
        assert!(err.to_string().contains("lost every probe"), "{err}");
    }

    #[test]
    fn lossy_campaign_is_deterministic_given_seed() {
        let truth = paper_ec2_network(8, InstanceType::M4Xlarge, 1);
        let cfg = CalibrationConfig {
            loss_rate: 0.4,
            days: 1,
            probes_per_day: 2,
            ..CalibrationConfig::default()
        };
        let a = Calibrator::new(cfg.clone())
            .calibrate_resilient(&truth, Some(&truth))
            .unwrap();
        let b = Calibrator::new(cfg)
            .calibrate_resilient(&truth, Some(&truth))
            .unwrap();
        assert_eq!(a.estimated, b.estimated);
        assert_eq!(a.stale_pairs, b.stale_pairs);
    }
}
