//! Simulated network calibration (the paper's SKaMPI component).
//!
//! The paper calibrates one instance pair per site pair with SKaMPI's
//! `Pingpong_Send_Recv`: the latency `LT(k,l)` is the elapsed time of a
//! one-byte message and the bandwidth `BT(k,l)` is derived from an 8 MB
//! transfer; measurements repeat over several days and are averaged, and
//! the observed variation is below ~5 % (§4.2). This module reproduces
//! that procedure against a synthetic ground-truth [`SiteNetwork`],
//! returning the *estimated* network the optimizer consumes plus a report
//! on measurement variation and calibration cost.

use crate::matrix::SquareMatrix;
use crate::network::SiteNetwork;
use crate::site::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Default large-message size the paper derives bandwidth from (8 MB).
pub const BANDWIDTH_PROBE_BYTES: u64 = 8_000_000;

/// Configuration of the calibration campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Number of simulated days the campaign runs ("We keep measuring …
    /// for several days").
    pub days: usize,
    /// Probes per site pair per day.
    pub probes_per_day: usize,
    /// Message size of the latency probe.
    pub small_bytes: u64,
    /// Message size of the bandwidth probe.
    pub large_bytes: u64,
    /// Coefficient of variation of inter-site measurements (paper: < 5 %).
    pub inter_noise_cv: f64,
    /// Coefficient of variation of intra-site measurements — the paper
    /// notes intra-site variation is *larger* (but matters little since
    /// intra performance is high).
    pub intra_noise_cv: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            days: 3,
            probes_per_day: 10,
            small_bytes: 1,
            large_bytes: BANDWIDTH_PROBE_BYTES,
            inter_noise_cv: 0.02,
            intra_noise_cv: 0.05,
            seed: 0xCA11,
        }
    }
}

/// Outcome of a calibration campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// The estimated network (sites copied from the ground truth, `LT`/`BT`
    /// from measurements). This is what the optimizer sees.
    pub estimated: SiteNetwork,
    /// Per-site-pair coefficient of variation of the bandwidth samples.
    pub bandwidth_cv: SquareMatrix,
    /// Total number of ping-pong probes issued.
    pub probes: usize,
}

impl CalibrationReport {
    /// Largest observed bandwidth variation across inter-site pairs.
    pub fn max_inter_site_cv(&self) -> f64 {
        let m = self.bandwidth_cv.n();
        let mut max = 0.0f64;
        for k in 0..m {
            for l in 0..m {
                if k != l {
                    max = max.max(self.bandwidth_cv.get(k, l));
                }
            }
        }
        max
    }
}

/// Simulated SKaMPI-style calibrator.
#[derive(Debug, Clone)]
pub struct Calibrator {
    config: CalibrationConfig,
}

impl Calibrator {
    /// Create a calibrator.
    pub fn new(config: CalibrationConfig) -> Self {
        assert!(
            config.days > 0 && config.probes_per_day > 0,
            "need at least one probe"
        );
        assert!(
            config.large_bytes > config.small_bytes,
            "bandwidth probe must exceed latency probe"
        );
        Self { config }
    }

    /// One simulated ping-pong elapsed time (one direction) for `bytes`
    /// over the ground-truth link `(k, l)`, with multiplicative noise.
    fn probe(
        &self,
        truth: &SiteNetwork,
        k: SiteId,
        l: SiteId,
        bytes: u64,
        rng: &mut StdRng,
    ) -> f64 {
        let ab = truth.alpha_beta(k, l);
        let cv = if k == l {
            self.config.intra_noise_cv
        } else {
            self.config.inter_noise_cv
        };
        let noise = 1.0 + cv * standard_normal(rng);
        ab.transfer_time(bytes) * noise.max(0.2)
    }

    /// Run the campaign against the ground truth and estimate `LT`/`BT`.
    pub fn calibrate(&self, truth: &SiteNetwork) -> CalibrationReport {
        let m = truth.num_sites();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let samples = self.config.days * self.config.probes_per_day;
        let mut lt = SquareMatrix::zeros(m);
        let mut bt = SquareMatrix::zeros(m);
        let mut cv = SquareMatrix::zeros(m);
        let mut probes = 0usize;

        for k in 0..m {
            for l in 0..m {
                let (sk, sl) = (SiteId(k), SiteId(l));
                let mut lat_sum = 0.0;
                let mut bw_samples = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let t_small = self.probe(truth, sk, sl, self.config.small_bytes, &mut rng);
                    let t_large = self.probe(truth, sk, sl, self.config.large_bytes, &mut rng);
                    probes += 2;
                    lat_sum += t_small;
                    // Subtract the measured latency so the estimate is the
                    // pure serialization rate; guard against noise making
                    // the difference non-positive.
                    let ser = (t_large - t_small).max(1e-9);
                    bw_samples.push(self.config.large_bytes as f64 / ser);
                }
                let lat = lat_sum / samples as f64;
                let mean_bw = bw_samples.iter().sum::<f64>() / samples as f64;
                let var = bw_samples
                    .iter()
                    .map(|b| (b - mean_bw).powi(2))
                    .sum::<f64>()
                    / samples as f64;
                lt.set(k, l, lat);
                bt.set(k, l, mean_bw);
                cv.set(k, l, var.sqrt() / mean_bw);
            }
        }

        CalibrationReport {
            estimated: SiteNetwork::new(truth.sites().to_vec(), lt, bt),
            bandwidth_cv: cv,
            probes,
        }
    }
}

/// A standard normal deviate via Box–Muller (rand ships no distributions).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0f64);
    let u2: f64 = rng.random_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Calibration cost model (paper §4.2's example): probing every *node*
/// pair takes `n·(n-1)` probes vs `m·(m-1)` for site pairs. Returns
/// `(site_pair_minutes, node_pair_minutes)` given one minute per probe.
pub fn calibration_cost_minutes(m_sites: usize, n_nodes: usize) -> (f64, f64) {
    let site = (m_sites * m_sites.saturating_sub(1)) as f64;
    let node = (n_nodes * n_nodes.saturating_sub(1)) as f64;
    (site, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;
    use crate::presets::paper_ec2_network;

    #[test]
    fn estimates_converge_to_truth() {
        let truth = paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let report = Calibrator::new(CalibrationConfig {
            days: 10,
            probes_per_day: 20,
            ..CalibrationConfig::default()
        })
        .calibrate(&truth);
        let bt_err = report.estimated.bt().rel_l1_diff(truth.bt());
        let lt_err = report.estimated.lt().rel_l1_diff(truth.lt());
        assert!(bt_err < 0.05, "bandwidth error {bt_err}");
        assert!(lt_err < 0.05, "latency error {lt_err}");
    }

    #[test]
    fn variation_is_small_as_paper_reports() {
        let truth = paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let report = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        // Paper §4.2: inter-site variation generally below 5%.
        assert!(
            report.max_inter_site_cv() < 0.08,
            "cv {}",
            report.max_inter_site_cv()
        );
    }

    #[test]
    fn probe_count_scales_with_m_squared() {
        let truth = paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let cfg = CalibrationConfig::default();
        let report = Calibrator::new(cfg.clone()).calibrate(&truth);
        assert_eq!(report.probes, 4 * 4 * cfg.days * cfg.probes_per_day * 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = paper_ec2_network(8, InstanceType::M4Xlarge, 1);
        let a = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        let b = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        assert_eq!(a.estimated, b.estimated);
    }

    #[test]
    fn papers_cost_example() {
        // Paper: 4 sites, 128 nodes per site, 1 minute per pair probe:
        // all-node-pairs ≈ 180+ days, site-pairs ≈ 12 minutes.
        let (site_min, node_min) = calibration_cost_minutes(4, 4 * 128);
        assert_eq!(site_min, 12.0);
        assert!(
            node_min / (60.0 * 24.0) > 180.0,
            "node days {}",
            node_min / 1440.0
        );
    }

    #[test]
    fn latency_estimate_positive_everywhere() {
        let truth = paper_ec2_network(4, InstanceType::M1Small, 5);
        let report = Calibrator::new(CalibrationConfig::default()).calibrate(&truth);
        for k in 0..4 {
            for l in 0..4 {
                assert!(report.estimated.lt().get(k, l) > 0.0);
                assert!(report.estimated.bt().get(k, l) > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_days_rejected() {
        Calibrator::new(CalibrationConfig {
            days: 0,
            ..CalibrationConfig::default()
        });
    }
}
