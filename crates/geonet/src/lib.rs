//! Geo-distributed cloud network substrate.
//!
//! This crate models the networking environment the SC'17 paper
//! *"Efficient Process Mapping in Geo-Distributed Cloud Data Centers"*
//! measures on Amazon EC2 and Windows Azure:
//!
//! * geographic **sites** (cloud regions) with physical coordinates
//!   ([`Site`], [`coords::GeoCoord`]),
//! * the **α–β transfer-time model** ([`link::AlphaBeta`]),
//! * asymmetric per-site-pair **latency and bandwidth matrices**
//!   `LT, BT ∈ R^{M×M}` ([`network::SiteNetwork`]),
//! * **synthetic ground-truth clouds** whose heterogeneity reproduces the
//!   paper's Observations 1 and 2 — intra-region bandwidth is an order of
//!   magnitude above cross-region bandwidth, and cross-region performance
//!   degrades with geographic distance ([`synth`], [`presets`]),
//! * **simulated SKaMPI-style calibration** — ping-pong probes with noise,
//!   averaged over several simulated days ([`calibrate`]).
//!
//! The real paper measured EC2/Azure directly; we cannot, so [`synth`]
//! builds a ground-truth network from instance-type specifications
//! (calibrated against the paper's Tables 1–3) and [`calibrate`] recovers
//! the `LT`/`BT` estimates the mapping algorithm actually consumes, exactly
//! as the paper's network-calibration component does.
//!
//! Unit conventions: latency in **seconds**, bandwidth in **bytes/second**,
//! message sizes in **bytes**, distances in **kilometres**. Helper
//! constructors accept the paper's units (ms, MB/s).

#![warn(missing_docs)]

pub mod calibrate;
pub mod coords;
pub mod instance;
pub mod io;
pub mod link;
pub mod matrix;
pub mod network;
pub mod presets;
pub mod site;
pub mod synth;

pub use calibrate::{
    calibration_cost_minutes, CalibrationConfig, CalibrationError, CalibrationReport, Calibrator,
};
pub use coords::GeoCoord;
pub use instance::InstanceType;
pub use link::AlphaBeta;
pub use matrix::SquareMatrix;
pub use network::SiteNetwork;
pub use site::{Site, SiteId};
pub use synth::{SynthConfig, SynthNetworkBuilder};

/// One megabyte in bytes, as used throughout the paper's tables (MB/sec).
pub const MB: f64 = 1_000_000.0;

/// Convert MB/s (the unit of the paper's tables) to bytes/s.
#[inline]
pub fn mbps(v: f64) -> f64 {
    v * MB
}

/// Convert milliseconds to seconds.
#[inline]
pub fn ms(v: f64) -> f64 {
    v * 1e-3
}
