//! Dense square matrices for the paper's `LT`, `BT`, `CG` and `AG`
//! structures.
//!
//! All of the paper's matrix notation (Table 4) is square and dense: the
//! inter/intra-site latency and bandwidth matrices are `M×M`, and the
//! communication pattern / count matrices are `N×N`. A plain row-major
//! `Vec<f64>` with bounds-checked indexing is the right representation —
//! these matrices are small (`M ≤ 20`) or moderately sized (`N ≤ 8192`)
//! and are scanned linearly by every algorithm.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `n×n` matrix of `f64`.
///
/// Indexing is `m[(row, col)]`. The matrix is *not* assumed symmetric:
/// the paper notes that both `LT` and `BT` are asymmetric because of
/// network heterogeneity (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Create an `n×n` matrix filled with zeros.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Create an `n×n` matrix filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            n,
            data: vec![value; n * n],
        }
    }

    /// Create a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            n * n,
            "expected {} elements, got {}",
            n * n,
            data.len()
        );
        Self { n, data }
    }

    /// Build a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Unchecked-by-assertion element access, useful in hot loops where the
    /// indices are loop variables already bounded by `n`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Set element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = v;
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest element (0.0 for an empty matrix).
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Sum of row `i` plus column `i`, excluding the diagonal twice.
    ///
    /// For a communication matrix this is the total traffic process `i`
    /// participates in — the "communication quantity" of Algorithm 1.
    pub fn row_col_sum(&self, i: usize) -> f64 {
        let mut s = 0.0;
        for j in 0..self.n {
            s += self.get(i, j) + self.get(j, i);
        }
        s - self.get(i, i)
    }

    /// True if `m[(i,j)] == m[(j,i)]` for all pairs, within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            n: self.n,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterate over `(row, col, value)` of all non-zero elements.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(move |(idx, &v)| (idx / self.n, idx % self.n, v))
    }

    /// Frobenius-style relative difference `‖a−b‖₁ / max(‖a‖₁, ε)`, used by
    /// calibration accuracy tests.
    pub fn rel_l1_diff(&self, other: &SquareMatrix) -> f64 {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let num: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let den: f64 = self.data.iter().map(|a| a.abs()).sum::<f64>().max(1e-300);
        num / den
    }
}

impl Index<(usize, usize)> for SquareMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of bounds for {}x{} matrix",
            self.n,
            self.n
        );
        &self.data[i * self.n + j]
    }
}

impl IndexMut<(usize, usize)> for SquareMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of bounds for {}x{} matrix",
            self.n,
            self.n
        );
        &mut self.data[i * self.n + j]
    }
}

impl fmt::Display for SquareMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.3e}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dims() {
        let m = SquareMatrix::zeros(4);
        assert_eq!(m.n(), 4);
        assert_eq!(m.sum(), 0.0);
        assert_eq!(m[(3, 3)], 0.0);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = SquareMatrix::from_fn(3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = SquareMatrix::zeros(2);
        m.set(0, 1, 5.5);
        m[(1, 0)] = -2.0;
        assert_eq!(m.get(0, 1), 5.5);
        assert_eq!(m[(1, 0)], -2.0);
        assert_eq!(m.sum(), 3.5);
    }

    #[test]
    fn row_col_sum_excludes_diagonal_once() {
        // [[1, 2], [3, 4]] -> for i=0: row(1+2) + col(1+3) - diag(1) = 6
        let m = SquareMatrix::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row_col_sum(0), 6.0);
        assert_eq!(m.row_col_sum(1), 3.0 + 4.0 + 2.0 + 4.0 - 4.0);
    }

    #[test]
    fn symmetry_detection() {
        let sym = SquareMatrix::from_vec(2, vec![0.0, 1.0, 1.0, 0.0]);
        let asym = SquareMatrix::from_vec(2, vec![0.0, 1.0, 2.0, 0.0]);
        assert!(sym.is_symmetric(0.0));
        assert!(!asym.is_symmetric(0.5));
        assert!(asym.is_symmetric(1.5));
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let mut m = SquareMatrix::zeros(3);
        m.set(0, 2, 7.0);
        m.set(2, 1, 3.0);
        let v: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(v, vec![(0, 2, 7.0), (2, 1, 3.0)]);
    }

    #[test]
    fn rel_diff_zero_for_identical() {
        let m = SquareMatrix::from_fn(5, |i, j| (i + j) as f64);
        assert_eq!(m.rel_l1_diff(&m), 0.0);
    }

    #[test]
    fn max_of_empty_is_zero() {
        assert_eq!(SquareMatrix::zeros(0).max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = SquareMatrix::zeros(2);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "expected 4 elements")]
    fn from_vec_checks_len() {
        SquareMatrix::from_vec(2, vec![1.0; 3]);
    }
}
