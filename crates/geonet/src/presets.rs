//! Cloud provider presets: the region catalogues the paper works with.
//!
//! Figure 1 of the paper shows the 11 Amazon EC2 regions as of Nov 2015;
//! the evaluation deploys across four of them (US East, US West, Ireland,
//! Singapore) with 16 × m4.xlarge each, and Tables 3 validates the
//! observations on Windows Azure. This module provides those catalogues
//! with real data-center coordinates plus convenience constructors for the
//! exact evaluation setups.

use crate::coords::GeoCoord;
use crate::instance::InstanceType;
use crate::network::SiteNetwork;
use crate::site::Site;
use crate::synth::{SynthConfig, SynthNetworkBuilder};

/// An entry in a provider's region catalogue.
#[derive(Debug, Clone, Copy)]
pub struct RegionInfo {
    /// Provider region code / display name.
    pub name: &'static str,
    /// Approximate data-center coordinates.
    pub lat: f64,
    /// Longitude, degrees east.
    pub lon: f64,
}

/// The 11 Amazon EC2 regions of Nov 2015 (paper Fig. 1).
pub const EC2_REGIONS: [RegionInfo; 11] = [
    RegionInfo {
        name: "us-east-1",
        lat: 38.95,
        lon: -77.45,
    }, // N. Virginia
    RegionInfo {
        name: "us-west-1",
        lat: 37.35,
        lon: -121.96,
    }, // N. California
    RegionInfo {
        name: "us-west-2",
        lat: 45.84,
        lon: -119.70,
    }, // Oregon
    RegionInfo {
        name: "eu-west-1",
        lat: 53.41,
        lon: -8.24,
    }, // Ireland
    RegionInfo {
        name: "eu-central-1",
        lat: 50.11,
        lon: 8.68,
    }, // Frankfurt
    RegionInfo {
        name: "ap-southeast-1",
        lat: 1.29,
        lon: 103.85,
    }, // Singapore
    RegionInfo {
        name: "ap-southeast-2",
        lat: -33.86,
        lon: 151.21,
    }, // Sydney
    RegionInfo {
        name: "ap-northeast-1",
        lat: 35.68,
        lon: 139.77,
    }, // Tokyo
    RegionInfo {
        name: "ap-northeast-2",
        lat: 37.56,
        lon: 126.97,
    }, // Seoul
    RegionInfo {
        name: "sa-east-1",
        lat: -23.55,
        lon: -46.63,
    }, // São Paulo
    RegionInfo {
        name: "cn-north-1",
        lat: 39.90,
        lon: 116.40,
    }, // Beijing
];

/// Windows Azure regions used by Table 3, plus a broader sample of the
/// "20 regions" the paper mentions.
pub const AZURE_REGIONS: [RegionInfo; 10] = [
    RegionInfo {
        name: "East US",
        lat: 36.67,
        lon: -78.39,
    },
    RegionInfo {
        name: "West US",
        lat: 37.78,
        lon: -122.42,
    },
    RegionInfo {
        name: "North Europe",
        lat: 53.35,
        lon: -6.26,
    },
    RegionInfo {
        name: "West Europe",
        lat: 52.37,
        lon: 4.89,
    },
    RegionInfo {
        name: "Japan East",
        lat: 35.68,
        lon: 139.77,
    },
    RegionInfo {
        name: "Japan West",
        lat: 34.69,
        lon: 135.50,
    },
    RegionInfo {
        name: "Southeast Asia",
        lat: 1.29,
        lon: 103.85,
    },
    RegionInfo {
        name: "East Asia",
        lat: 22.32,
        lon: 114.17,
    },
    RegionInfo {
        name: "Brazil South",
        lat: -23.55,
        lon: -46.63,
    },
    RegionInfo {
        name: "Australia East",
        lat: -33.86,
        lon: 151.21,
    },
];

/// Look up an EC2 region by name.
///
/// # Panics
/// Panics if the region is not in [`EC2_REGIONS`].
pub fn ec2_region(name: &str) -> RegionInfo {
    *EC2_REGIONS
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("unknown EC2 region {name:?}"))
}

/// Build [`Site`]s for the named EC2 regions, `nodes` physical nodes each.
pub fn ec2_sites(names: &[&str], nodes: usize) -> Vec<Site> {
    names
        .iter()
        .map(|n| {
            let r = ec2_region(n);
            Site::new(r.name, GeoCoord::new(r.lat, r.lon), nodes)
        })
        .collect()
}

/// The paper's EC2 evaluation deployment (§5.1): US East, US West,
/// Singapore and Ireland, `nodes` instances per region.
///
/// ```
/// let sites = geonet::presets::paper_ec2_sites(16);
/// assert_eq!(sites.len(), 4);
/// assert_eq!(sites.iter().map(|s| s.nodes).sum::<usize>(), 64);
/// ```
pub fn paper_ec2_sites(nodes: usize) -> Vec<Site> {
    ec2_sites(
        &["us-east-1", "us-west-2", "ap-southeast-1", "eu-west-1"],
        nodes,
    )
}

/// Ground-truth network over the paper's four EC2 regions with `nodes`
/// instances of `instance` per region.
pub fn paper_ec2_network(nodes: usize, instance: InstanceType, seed: u64) -> SiteNetwork {
    let cfg = SynthConfig {
        seed,
        ..SynthConfig::ec2(instance)
    };
    SynthNetworkBuilder::new(cfg).build(paper_ec2_sites(nodes))
}

/// Ground-truth network over all 11 EC2 regions.
pub fn ec2_global_network(nodes: usize, instance: InstanceType, seed: u64) -> SiteNetwork {
    let names: Vec<&str> = EC2_REGIONS.iter().map(|r| r.name).collect();
    let cfg = SynthConfig {
        seed,
        ..SynthConfig::ec2(instance)
    };
    SynthNetworkBuilder::new(cfg).build(ec2_sites(&names, nodes))
}

/// Ground-truth Azure network over the named regions (or all of
/// [`AZURE_REGIONS`] if `names` is empty), `nodes` nodes per region.
pub fn azure_network(names: &[&str], nodes: usize, seed: u64) -> SiteNetwork {
    let sites: Vec<Site> = AZURE_REGIONS
        .iter()
        .filter(|r| names.is_empty() || names.contains(&r.name))
        .map(|r| Site::new(r.name, GeoCoord::new(r.lat, r.lon), nodes))
        .collect();
    assert!(!sites.is_empty(), "no matching Azure regions");
    let cfg = SynthConfig {
        seed,
        ..SynthConfig::azure()
    };
    SynthNetworkBuilder::new(cfg).build(sites)
}

/// Ten more Azure regions extending [`AZURE_REGIONS`] to the 20-region
/// footprint the multilevel scale benchmarks map onto. Kept separate so
/// the 10-region preset (and every committed artifact built on it)
/// stays byte-stable.
pub const AZURE_REGIONS_EXTRA: [RegionInfo; 10] = [
    RegionInfo {
        name: "Central US",
        lat: 41.59,
        lon: -93.62,
    },
    RegionInfo {
        name: "North Central US",
        lat: 41.88,
        lon: -87.63,
    },
    RegionInfo {
        name: "South Central US",
        lat: 29.42,
        lon: -98.49,
    },
    RegionInfo {
        name: "UK South",
        lat: 51.51,
        lon: -0.13,
    },
    RegionInfo {
        name: "UK West",
        lat: 51.48,
        lon: -3.18,
    },
    RegionInfo {
        name: "Canada Central",
        lat: 43.65,
        lon: -79.38,
    },
    RegionInfo {
        name: "Canada East",
        lat: 46.82,
        lon: -71.22,
    },
    RegionInfo {
        name: "Central India",
        lat: 18.52,
        lon: 73.86,
    },
    RegionInfo {
        name: "Korea Central",
        lat: 37.57,
        lon: 126.98,
    },
    RegionInfo {
        name: "Australia Southeast",
        lat: -37.81,
        lon: 144.96,
    },
];

/// The Azure 20-region preset: [`AZURE_REGIONS`] plus
/// [`AZURE_REGIONS_EXTRA`], `nodes` nodes per region, under the Azure
/// synthetic calibration profile.
pub fn azure20_network(nodes: usize, seed: u64) -> SiteNetwork {
    let sites: Vec<Site> = AZURE_REGIONS
        .iter()
        .chain(AZURE_REGIONS_EXTRA.iter())
        .map(|r| Site::new(r.name, GeoCoord::new(r.lat, r.lon), nodes))
        .collect();
    let cfg = SynthConfig {
        seed,
        ..SynthConfig::azure()
    };
    SynthNetworkBuilder::new(cfg).build(sites)
}

/// A multi-provider deployment — the paper's second piece of future work
/// ("later consider the problem in the more complicated geo-distributed
/// environment with multiple cloud providers").
///
/// Sites from both catalogues are combined into one network. Same-
/// provider pairs use that provider's synthetic profile; cross-provider
/// pairs take the *worse* of the two profiles and pay an extra peering
/// penalty (traffic leaves the provider's backbone for the public
/// internet), which is the qualitative behaviour measured between real
/// clouds.
#[derive(Debug, Clone)]
pub struct MultiCloud {
    /// EC2 region names to include.
    pub ec2_regions: Vec<&'static str>,
    /// Azure region names to include.
    pub azure_regions: Vec<&'static str>,
    /// Nodes per site.
    pub nodes: usize,
    /// Bandwidth multiplier on cross-provider links (default 0.6).
    pub peering_bandwidth_factor: f64,
    /// Extra one-way latency on cross-provider links, seconds
    /// (default 4 ms).
    pub peering_latency_s: f64,
    /// Seed shared by both provider profiles.
    pub seed: u64,
}

impl Default for MultiCloud {
    fn default() -> Self {
        Self {
            ec2_regions: vec!["us-east-1", "eu-west-1", "ap-southeast-1"],
            azure_regions: vec!["West US", "West Europe", "Japan East"],
            nodes: 8,
            peering_bandwidth_factor: 0.6,
            peering_latency_s: 4e-3,
            seed: 0x5C17,
        }
    }
}

impl MultiCloud {
    /// Build the combined network. EC2 sites come first, then Azure
    /// sites; site names keep their provider-native spelling.
    pub fn build(&self) -> SiteNetwork {
        use crate::link::AlphaBeta;
        use crate::matrix::SquareMatrix;

        let mut sites = ec2_sites(&self.ec2_regions, self.nodes);
        let ec2_count = sites.len();
        for r in AZURE_REGIONS
            .iter()
            .filter(|r| self.azure_regions.contains(&r.name))
        {
            sites.push(Site::new(r.name, GeoCoord::new(r.lat, r.lon), self.nodes));
        }
        assert!(sites.len() > ec2_count, "no Azure regions matched");

        let ec2 = SynthNetworkBuilder::new(SynthConfig {
            seed: self.seed,
            ..SynthConfig::ec2(InstanceType::M4Xlarge)
        });
        let azure = SynthNetworkBuilder::new(SynthConfig {
            seed: self.seed,
            ..SynthConfig::azure()
        });

        let m = sites.len();
        let mut lt = SquareMatrix::zeros(m);
        let mut bt = SquareMatrix::zeros(m);
        for k in 0..m {
            for l in 0..m {
                let (k_ec2, l_ec2) = (k < ec2_count, l < ec2_count);
                let ab = if k_ec2 && l_ec2 {
                    ec2.link(&sites, k, l)
                } else if !k_ec2 && !l_ec2 {
                    azure.link(&sites, k, l)
                } else {
                    // Cross-provider: worse of the two profiles + the
                    // peering penalty.
                    let a = ec2.link(&sites, k, l);
                    let b = azure.link(&sites, k, l);
                    AlphaBeta::new(
                        a.latency_s.max(b.latency_s) + self.peering_latency_s,
                        a.bandwidth_bps.min(b.bandwidth_bps) * self.peering_bandwidth_factor,
                    )
                };
                lt.set(k, l, ab.latency_s);
                bt.set(k, l, ab.bandwidth_bps);
            }
        }
        SiteNetwork::new(sites, lt, bt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteId;

    #[test]
    fn eleven_ec2_regions_as_in_fig1() {
        assert_eq!(EC2_REGIONS.len(), 11);
        // Distinct names.
        let mut names: Vec<_> = EC2_REGIONS.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn paper_deployment_has_four_regions() {
        let sites = paper_ec2_sites(16);
        assert_eq!(sites.len(), 4);
        assert_eq!(sites.iter().map(|s| s.nodes).sum::<usize>(), 64);
        assert_eq!(sites[0].name, "us-east-1");
    }

    #[test]
    fn paper_network_is_heterogeneous() {
        let net = paper_ec2_network(16, InstanceType::M4Xlarge, 1);
        assert!(net.intra_inter_bandwidth_ratio() > 8.0);
        assert_eq!(net.total_nodes(), 64);
    }

    #[test]
    fn global_network_covers_all_regions() {
        let net = ec2_global_network(4, InstanceType::M1Medium, 7);
        assert_eq!(net.num_sites(), 11);
    }

    #[test]
    fn azure_subset_selection() {
        let net = azure_network(&["East US", "West Europe", "Japan East"], 8, 3);
        assert_eq!(net.num_sites(), 3);
        assert_eq!(net.site(SiteId(0)).name, "East US");
    }

    #[test]
    #[should_panic(expected = "unknown EC2 region")]
    fn unknown_region_panics() {
        ec2_region("mars-north-1");
    }

    #[test]
    fn multicloud_combines_providers() {
        let net = MultiCloud::default().build();
        assert_eq!(net.num_sites(), 6);
        assert_eq!(net.site(SiteId(0)).name, "us-east-1");
        assert_eq!(net.site(SiteId(3)).name, "West US");
        assert!(net.intra_inter_bandwidth_ratio() > 5.0);
    }

    #[test]
    fn multicloud_peering_penalty_applies() {
        // us-east-1 (EC2) <-> West Europe (Azure) must be worse than both
        // same-provider profiles for a comparable pair.
        let mc = MultiCloud::default();
        let net = mc.build();
        let ec2_only = paper_ec2_network(8, InstanceType::M4Xlarge, mc.seed);
        // us-east-1 -> eu-west-1 on pure EC2 vs us-east-1 -> West Europe
        // cross-provider: nearly the same distance, so the penalty must
        // dominate.
        let pure = ec2_only.bandwidth(SiteId(0), SiteId(3));
        let cross = net.bandwidth(SiteId(0), SiteId(4));
        assert!(
            cross < pure,
            "cross-provider {} not below same-provider {}",
            cross,
            pure
        );
        // Latency gets the peering adder.
        let d_pure = ec2_only.latency(SiteId(0), SiteId(3));
        let d_cross = net.latency(SiteId(0), SiteId(4));
        assert!(d_cross > d_pure);
    }

    #[test]
    fn multicloud_same_provider_links_match_profiles() {
        let mc = MultiCloud::default();
        let net = mc.build();
        // EC2 block uses the EC2 profile verbatim.
        let sites = ec2_sites(&mc.ec2_regions, mc.nodes);
        let ec2 = crate::synth::SynthNetworkBuilder::new(crate::synth::SynthConfig {
            seed: mc.seed,
            ..crate::synth::SynthConfig::ec2(InstanceType::M4Xlarge)
        })
        .build(sites);
        for k in 0..3 {
            for l in 0..3 {
                assert_eq!(
                    net.bandwidth(SiteId(k), SiteId(l)),
                    ec2.bandwidth(SiteId(k), SiteId(l))
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "no Azure regions")]
    fn multicloud_requires_azure_match() {
        MultiCloud {
            azure_regions: vec!["Atlantis"],
            ..MultiCloud::default()
        }
        .build();
    }

    #[test]
    fn regions_have_valid_coordinates() {
        for r in EC2_REGIONS.iter().chain(AZURE_REGIONS.iter()) {
            // GeoCoord::new panics on invalid values.
            let _ = GeoCoord::new(r.lat, r.lon);
        }
    }
}
