//! The geo-distributed network abstraction: sites plus `LT`/`BT` matrices.
//!
//! This is the paper's replacement for the traditional all-link
//! interconnection graph `T`: instead of `O(N²)` node-pair measurements it
//! keeps two `M×M` matrices of inter/intra-site latency and bandwidth
//! (§3.1), asymmetric in general.

use crate::link::AlphaBeta;
use crate::matrix::SquareMatrix;
use crate::site::{Site, SiteId};
use serde::{Deserialize, Serialize};

/// A geo-distributed cloud environment: `M` sites with per-site-pair
/// latency (`LT`, seconds) and bandwidth (`BT`, bytes/s) matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteNetwork {
    sites: Vec<Site>,
    /// `LT[k][l]`: latency from site `k` to site `l`, seconds.
    lt: SquareMatrix,
    /// `BT[k][l]`: bandwidth from site `k` to site `l`, bytes/s.
    bt: SquareMatrix,
}

impl SiteNetwork {
    /// Assemble a network from sites and matrices.
    ///
    /// # Panics
    /// Panics if matrix dimensions don't match the number of sites, if any
    /// latency is negative/non-finite, or any bandwidth is non-positive.
    pub fn new(sites: Vec<Site>, lt: SquareMatrix, bt: SquareMatrix) -> Self {
        let m = sites.len();
        assert_eq!(lt.n(), m, "LT must be {m}x{m}");
        assert_eq!(bt.n(), m, "BT must be {m}x{m}");
        for i in 0..m {
            for j in 0..m {
                let l = lt.get(i, j);
                let b = bt.get(i, j);
                assert!(l >= 0.0 && l.is_finite(), "LT[{i}][{j}] = {l} invalid");
                assert!(b > 0.0 && b.is_finite(), "BT[{i}][{j}] = {b} invalid");
            }
        }
        Self { sites, lt, bt }
    }

    /// Build a trivial single-site "cluster" network — useful for tests and
    /// for demonstrating that Geo-distributed degenerates to Greedy when
    /// `M == 1` (paper §5.2).
    pub fn single_site(site: Site, intra: AlphaBeta) -> Self {
        let lt = SquareMatrix::filled(1, intra.latency_s);
        let bt = SquareMatrix::filled(1, intra.bandwidth_bps);
        Self::new(vec![site], lt, bt)
    }

    /// Number of sites `M`.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// All sites.
    #[inline]
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// One site by id.
    #[inline]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    /// Total physical nodes across all sites (`Σ I_j`).
    pub fn total_nodes(&self) -> usize {
        self.sites.iter().map(|s| s.nodes).sum()
    }

    /// Node capacities per site, the paper's vector `I`.
    pub fn capacities(&self) -> Vec<usize> {
        self.sites.iter().map(|s| s.nodes).collect()
    }

    /// Latency from site `k` to site `l` in seconds (`LT(k,l)`).
    #[inline(always)]
    pub fn latency(&self, k: SiteId, l: SiteId) -> f64 {
        self.lt.get(k.0, l.0)
    }

    /// Bandwidth from site `k` to site `l` in bytes/s (`BT(k,l)`).
    #[inline(always)]
    pub fn bandwidth(&self, k: SiteId, l: SiteId) -> f64 {
        self.bt.get(k.0, l.0)
    }

    /// The α–β parameters of the directed site pair `(k, l)`.
    #[inline]
    pub fn alpha_beta(&self, k: SiteId, l: SiteId) -> AlphaBeta {
        AlphaBeta {
            latency_s: self.latency(k, l),
            bandwidth_bps: self.bandwidth(k, l),
        }
    }

    /// The raw latency matrix (seconds).
    pub fn lt(&self) -> &SquareMatrix {
        &self.lt
    }

    /// The raw bandwidth matrix (bytes/s).
    pub fn bt(&self) -> &SquareMatrix {
        &self.bt
    }

    /// Heterogeneity ratio: mean intra-site bandwidth over mean inter-site
    /// bandwidth. The paper's Observation 1 is that this exceeds ~10 on
    /// EC2.
    pub fn intra_inter_bandwidth_ratio(&self) -> f64 {
        let m = self.num_sites();
        if m < 2 {
            return 1.0;
        }
        let mut intra = 0.0;
        let mut inter = 0.0;
        for k in 0..m {
            for l in 0..m {
                if k == l {
                    intra += self.bt.get(k, l);
                } else {
                    inter += self.bt.get(k, l);
                }
            }
        }
        (intra / m as f64) / (inter / (m * m - m) as f64)
    }

    /// Restrict the network to a subset of sites (preserving order),
    /// re-indexing `SiteId`s to `0..subset.len()`.
    ///
    /// # Panics
    /// Panics if `subset` contains an out-of-range or duplicate site.
    pub fn subnetwork(&self, subset: &[SiteId]) -> SiteNetwork {
        let mut seen = vec![false; self.num_sites()];
        for s in subset {
            assert!(s.0 < self.num_sites(), "{s} out of range");
            assert!(!seen[s.0], "duplicate {s} in subset");
            seen[s.0] = true;
        }
        let sites = subset.iter().map(|s| self.sites[s.0].clone()).collect();
        let lt = SquareMatrix::from_fn(subset.len(), |i, j| self.lt.get(subset[i].0, subset[j].0));
        let bt = SquareMatrix::from_fn(subset.len(), |i, j| self.bt.get(subset[i].0, subset[j].0));
        SiteNetwork::new(sites, lt, bt)
    }

    /// Pretty one-line summary, used by example binaries.
    pub fn summary(&self) -> String {
        format!(
            "{} sites, {} nodes, intra/inter bandwidth ratio {:.1}x",
            self.num_sites(),
            self.total_nodes(),
            self.intra_inter_bandwidth_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::GeoCoord;

    fn two_site_net() -> SiteNetwork {
        let sites = vec![
            Site::new("a", GeoCoord::new(0.0, 0.0), 2),
            Site::new("b", GeoCoord::new(10.0, 10.0), 3),
        ];
        // asymmetric on purpose
        let lt = SquareMatrix::from_vec(2, vec![1e-4, 40e-3, 42e-3, 2e-4]);
        let bt = SquareMatrix::from_vec(2, vec![100e6, 6e6, 5e6, 120e6]);
        SiteNetwork::new(sites, lt, bt)
    }

    #[test]
    fn accessors() {
        let net = two_site_net();
        assert_eq!(net.num_sites(), 2);
        assert_eq!(net.total_nodes(), 5);
        assert_eq!(net.capacities(), vec![2, 3]);
        assert_eq!(net.latency(SiteId(0), SiteId(1)), 40e-3);
        assert_eq!(net.bandwidth(SiteId(1), SiteId(0)), 5e6);
        let ab = net.alpha_beta(SiteId(0), SiteId(0));
        assert_eq!(ab.latency_s, 1e-4);
        assert_eq!(ab.bandwidth_bps, 100e6);
    }

    #[test]
    fn asymmetry_is_preserved() {
        let net = two_site_net();
        assert_ne!(
            net.latency(SiteId(0), SiteId(1)),
            net.latency(SiteId(1), SiteId(0))
        );
        assert!(!net.lt().is_symmetric(1e-9));
    }

    #[test]
    fn heterogeneity_ratio() {
        let net = two_site_net();
        // intra mean = 110e6, inter mean = 5.5e6 -> ratio 20
        let r = net.intra_inter_bandwidth_ratio();
        assert!((r - 20.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn single_site_ratio_is_one() {
        let net = SiteNetwork::single_site(
            Site::new("only", GeoCoord::new(0.0, 0.0), 8),
            AlphaBeta::from_ms_mbps(0.1, 100.0),
        );
        assert_eq!(net.intra_inter_bandwidth_ratio(), 1.0);
        assert_eq!(net.num_sites(), 1);
    }

    #[test]
    fn subnetwork_reindexes() {
        let net = two_site_net();
        let sub = net.subnetwork(&[SiteId(1)]);
        assert_eq!(sub.num_sites(), 1);
        assert_eq!(sub.site(SiteId(0)).name, "b");
        assert_eq!(sub.bandwidth(SiteId(0), SiteId(0)), 120e6);
    }

    #[test]
    fn subnetwork_preserves_cross_terms() {
        let net = two_site_net();
        let sub = net.subnetwork(&[SiteId(1), SiteId(0)]);
        assert_eq!(
            sub.latency(SiteId(0), SiteId(1)),
            net.latency(SiteId(1), SiteId(0))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn subnetwork_rejects_duplicates() {
        two_site_net().subnetwork(&[SiteId(0), SiteId(0)]);
    }

    #[test]
    #[should_panic(expected = "BT")]
    fn new_checks_dims() {
        let sites = vec![Site::new("a", GeoCoord::new(0.0, 0.0), 1)];
        SiteNetwork::new(sites, SquareMatrix::zeros(1), SquareMatrix::zeros(2));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn new_rejects_zero_bandwidth() {
        let sites = vec![Site::new("a", GeoCoord::new(0.0, 0.0), 1)];
        SiteNetwork::new(sites, SquareMatrix::zeros(1), SquareMatrix::zeros(1));
    }
}
