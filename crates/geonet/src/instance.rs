//! Cloud instance (virtual machine) types.
//!
//! The paper's Table 1 shows that intra-region bandwidth depends strongly
//! on the instance type (15 MB/s for `m1.small` up to ~150–200 MB/s for
//! `c3.8xlarge`) while cross-region bandwidth is nearly flat (5.4–6.6
//! MB/s) — the WAN, not the VM, is the bottleneck. This module encodes
//! those calibrated figures; [`crate::synth`] uses them as the synthetic
//! ground truth.

use serde::{Deserialize, Serialize};

/// An EC2/Azure instance (VM) type with its measured network envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum InstanceType {
    /// EC2 `m1.small` (Table 1: 15 / 22 / 5.4 MB/s).
    M1Small,
    /// EC2 `m1.medium` (Table 1: 80 / 78 / 6.3 MB/s).
    M1Medium,
    /// EC2 `m1.large` (Table 1: 84 / 82 / 6.3 MB/s).
    M1Large,
    /// EC2 `m1.xlarge` (Table 1: 102 / 103 / 6.4 MB/s).
    M1Xlarge,
    /// EC2 `c3.8xlarge` (Table 1: 148 / 204 / 6.6 MB/s; Table 2 baseline).
    C38xlarge,
    /// EC2 `m4.xlarge` — the type the paper's EC2 evaluation runs on
    /// (§5.1). Not in Table 1; envelope interpolated between `m1.xlarge`
    /// and `c3.8xlarge`.
    M4Xlarge,
    /// Azure `Standard D2` (Table 3: 62 MB/s intra East-US).
    StandardD2,
}

impl InstanceType {
    /// All EC2 types of the paper's Table 1, in row order.
    pub const TABLE1: [InstanceType; 5] = [
        InstanceType::M1Small,
        InstanceType::M1Medium,
        InstanceType::M1Large,
        InstanceType::M1Xlarge,
        InstanceType::C38xlarge,
    ];

    /// The canonical name as it appears in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            InstanceType::M1Small => "m1.small",
            InstanceType::M1Medium => "m1.medium",
            InstanceType::M1Large => "m1.large",
            InstanceType::M1Xlarge => "m1.xlarge",
            InstanceType::C38xlarge => "c3.8xlarge",
            InstanceType::M4Xlarge => "m4.xlarge",
            InstanceType::StandardD2 => "Standard D2",
        }
    }

    /// Baseline intra-region bandwidth in MB/s (paper Table 1, US East
    /// column; Table 3 for Azure).
    pub fn intra_bandwidth_mbps(&self) -> f64 {
        match self {
            InstanceType::M1Small => 15.0,
            InstanceType::M1Medium => 80.0,
            InstanceType::M1Large => 84.0,
            InstanceType::M1Xlarge => 102.0,
            InstanceType::C38xlarge => 148.0,
            InstanceType::M4Xlarge => 125.0,
            InstanceType::StandardD2 => 62.0,
        }
    }

    /// Per-region multiplier on intra bandwidth. Table 1's Singapore
    /// column shows region-to-region variation (e.g. `c3.8xlarge` 148 in
    /// US East vs 204 in Singapore, `m1.small` 15 vs 22); we reproduce the
    /// two measured columns exactly and use 1.0 elsewhere.
    pub fn region_factor(&self, region_name: &str) -> f64 {
        let singapore = match self {
            InstanceType::M1Small => 22.0 / 15.0,
            InstanceType::M1Medium => 78.0 / 80.0,
            InstanceType::M1Large => 82.0 / 84.0,
            InstanceType::M1Xlarge => 103.0 / 102.0,
            InstanceType::C38xlarge => 204.0 / 148.0,
            InstanceType::M4Xlarge => 1.1,
            InstanceType::StandardD2 => 1.0,
        };
        if region_name.contains("southeast") || region_name.contains("Singapore") {
            singapore
        } else {
            1.0
        }
    }

    /// Cross-region bandwidth cap in MB/s between US East and Singapore
    /// (paper Table 1, "Cross-region" column). [`crate::synth`] scales this
    /// by distance so that shorter hauls (Table 2) come out faster.
    pub fn cross_bandwidth_mbps(&self) -> f64 {
        match self {
            InstanceType::M1Small => 5.4,
            InstanceType::M1Medium => 6.3,
            InstanceType::M1Large => 6.3,
            InstanceType::M1Xlarge => 6.4,
            InstanceType::C38xlarge => 6.6,
            InstanceType::M4Xlarge => 6.5,
            InstanceType::StandardD2 => 4.5,
        }
    }

    /// Intra-region one-way latency in milliseconds. EC2 intra-region
    /// latencies are sub-millisecond; Azure's Table 3 reports 0.82 ms.
    pub fn intra_latency_ms(&self) -> f64 {
        match self {
            InstanceType::StandardD2 => 0.82,
            InstanceType::C38xlarge => 0.20,
            _ => 0.35,
        }
    }
}

impl std::fmt::Display for InstanceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_paper_us_east() {
        let expect = [15.0, 80.0, 84.0, 102.0, 148.0];
        for (ty, e) in InstanceType::TABLE1.iter().zip(expect) {
            assert_eq!(ty.intra_bandwidth_mbps(), e, "{ty}");
        }
    }

    #[test]
    fn table1_singapore_column_reconstructs() {
        let expect = [22.0, 78.0, 82.0, 103.0, 204.0];
        for (ty, e) in InstanceType::TABLE1.iter().zip(expect) {
            let got = ty.intra_bandwidth_mbps() * ty.region_factor("ap-southeast-1");
            assert!((got - e).abs() < 1e-9, "{ty}: {got} != {e}");
        }
    }

    #[test]
    fn cross_region_bandwidth_nearly_flat_across_types() {
        // Observation 1: the WAN is the bottleneck — cross-region bandwidth
        // varies by < 25% across types while intra varies by ~10x.
        let cross: Vec<f64> = InstanceType::TABLE1
            .iter()
            .map(|t| t.cross_bandwidth_mbps())
            .collect();
        let intra: Vec<f64> = InstanceType::TABLE1
            .iter()
            .map(|t| t.intra_bandwidth_mbps())
            .collect();
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) / v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(spread(&cross) < 1.25);
        assert!(spread(&intra) > 5.0);
    }

    #[test]
    fn intra_exceeds_cross_for_every_type() {
        for ty in InstanceType::TABLE1 {
            assert!(
                ty.intra_bandwidth_mbps() > 2.0 * ty.cross_bandwidth_mbps(),
                "{ty}"
            );
        }
    }

    #[test]
    fn names_are_papers() {
        assert_eq!(InstanceType::C38xlarge.name(), "c3.8xlarge");
        assert_eq!(InstanceType::StandardD2.to_string(), "Standard D2");
    }

    #[test]
    fn unmeasured_regions_use_unit_factor() {
        assert_eq!(InstanceType::M1Small.region_factor("eu-west-1"), 1.0);
    }
}
