//! CSV persistence for calibrated networks.
//!
//! The paper's artifact uses "real traces of network performance in
//! different regions calibrated in March 2016"; this module lets users
//! save a calibrated [`SiteNetwork`] and reload it later (or import
//! measurements taken with their own SKaMPI runs) without any binary
//! format dependencies.
//!
//! Format — one header line then one row per directed site pair:
//!
//! ```csv
//! from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps
//! us-east-1,ap-southeast-1,38.95,-77.45,16,0.0961,6600000
//! ```
//!
//! Site metadata (coordinates, node count) is carried redundantly on
//! every `from` row and must be consistent; sites are ordered by first
//! appearance.

use crate::coords::GeoCoord;
use crate::matrix::SquareMatrix;
use crate::network::SiteNetwork;
use crate::site::Site;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize a network to the CSV format above.
pub fn to_csv(net: &SiteNetwork) -> String {
    let mut out = String::from("from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps\n");
    for (k, from) in net.sites().iter().enumerate() {
        for (l, to) in net.sites().iter().enumerate() {
            writeln!(
                out,
                "{},{},{},{},{},{},{}",
                from.name,
                to.name,
                from.coord.lat,
                from.coord.lon,
                from.nodes,
                net.lt().get(k, l),
                net.bt().get(k, l),
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// Parse a network from the CSV format above.
///
/// Returns a descriptive error for malformed input: wrong column count,
/// unparsable numbers, inconsistent site metadata, missing pairs, or
/// unknown `to` sites.
pub fn from_csv(csv: &str) -> Result<SiteNetwork, String> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty input")?;
    let expect_header = "from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps";
    if header.trim() != expect_header {
        return Err(format!("bad header {header:?}, expected {expect_header:?}"));
    }

    struct Row {
        from: String,
        to: String,
        lat: f64,
        lon: f64,
        nodes: usize,
        latency: f64,
        bandwidth: f64,
    }

    let mut rows = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 7 {
            return Err(format!(
                "line {}: expected 7 fields, got {}",
                lineno + 1,
                f.len()
            ));
        }
        let num = |s: &str, what: &str| -> Result<f64, String> {
            s.trim()
                .parse::<f64>()
                .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", lineno + 1))
        };
        rows.push(Row {
            from: f[0].trim().to_string(),
            to: f[1].trim().to_string(),
            lat: num(f[2], "latitude")?,
            lon: num(f[3], "longitude")?,
            nodes: num(f[4], "node count")? as usize,
            latency: num(f[5], "latency")?,
            bandwidth: num(f[6], "bandwidth")?,
        });
    }
    if rows.is_empty() {
        return Err("no data rows".into());
    }

    // Collect sites in order of first appearance as a `from`.
    let mut order: Vec<String> = Vec::new();
    let mut meta: BTreeMap<String, (f64, f64, usize)> = BTreeMap::new();
    for r in &rows {
        match meta.get(&r.from) {
            None => {
                order.push(r.from.clone());
                meta.insert(r.from.clone(), (r.lat, r.lon, r.nodes));
            }
            Some(&(lat, lon, nodes)) => {
                if lat != r.lat || lon != r.lon || nodes != r.nodes {
                    return Err(format!("inconsistent metadata for site {:?}", r.from));
                }
            }
        }
    }
    let index: BTreeMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let m = order.len();

    let mut lt = SquareMatrix::filled(m, f64::NAN);
    let mut bt = SquareMatrix::filled(m, f64::NAN);
    for r in &rows {
        let k = index[r.from.as_str()];
        let l = *index
            .get(r.to.as_str())
            .ok_or_else(|| format!("destination site {:?} never appears as a source", r.to))?;
        lt.set(k, l, r.latency);
        bt.set(k, l, r.bandwidth);
    }
    for k in 0..m {
        for l in 0..m {
            if lt.get(k, l).is_nan() || bt.get(k, l).is_nan() {
                return Err(format!("missing pair {:?} -> {:?}", order[k], order[l]));
            }
        }
    }

    let sites: Vec<Site> = order
        .iter()
        .map(|name| {
            let (lat, lon, nodes) = meta[name];
            Site::new(name.clone(), GeoCoord::new(lat, lon), nodes)
        })
        .collect();
    Ok(SiteNetwork::new(sites, lt, bt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;
    use crate::presets::paper_ec2_network;

    #[test]
    fn roundtrip_preserves_network() {
        let net = paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let csv = to_csv(&net);
        let back = from_csv(&csv).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn header_is_validated() {
        assert!(from_csv("a,b,c\n").unwrap_err().contains("bad header"));
        assert!(from_csv("").unwrap_err().contains("empty"));
    }

    #[test]
    fn field_count_is_validated() {
        let csv = "from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps\nx,y,1\n";
        assert!(from_csv(csv).unwrap_err().contains("expected 7 fields"));
    }

    #[test]
    fn numbers_are_validated() {
        let csv = "from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps\n\
                   a,a,0,0,1,zzz,1e8\n";
        assert!(from_csv(csv).unwrap_err().contains("bad latency"));
    }

    #[test]
    fn missing_pairs_detected() {
        let csv = "from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps\n\
                   a,a,0,0,1,1e-4,1e8\n\
                   b,b,1,1,1,1e-4,1e8\n\
                   a,b,0,0,1,1e-2,1e7\n";
        assert!(from_csv(csv).unwrap_err().contains("missing pair"));
    }

    #[test]
    fn unknown_destination_detected() {
        let csv = "from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps\n\
                   a,a,0,0,1,1e-4,1e8\n\
                   a,ghost,0,0,1,1e-2,1e7\n";
        assert!(from_csv(csv).unwrap_err().contains("ghost"));
    }

    #[test]
    fn inconsistent_metadata_detected() {
        let csv = "from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps\n\
                   a,a,0,0,1,1e-4,1e8\n\
                   a,a,5,0,1,1e-4,1e8\n";
        assert!(from_csv(csv).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn blank_lines_ignored() {
        let net = paper_ec2_network(2, InstanceType::M1Small, 7);
        let mut csv = to_csv(&net);
        csv.push_str("\n\n");
        assert_eq!(from_csv(&csv).unwrap(), net);
    }
}
