//! K-means clustering.
//!
//! The paper uses K-means twice: (1) the grouping optimization clusters
//! nearby *sites* by their physical coordinates to bound the `O(κ!)`
//! order search (§4.2, with Forgy initialisation), and (2) parallel
//! K-means over observations is one of the five evaluation workloads.
//! This crate is the shared implementation: Lloyd iterations with Forgy
//! or k-means++ initialisation over points of arbitrary dimensionality.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Initialisation strategy for the centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Forgy: `k` distinct input points chosen uniformly at random — the
    /// method the paper selects (§4.2, citing Hamerly & Elkan).
    Forgy,
    /// k-means++ seeding (D² sampling): usually better spread, used by
    /// the ablation benches.
    PlusPlus,
}

/// Configuration of one clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `κ`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tol: f64,
    /// Initialisation strategy.
    pub init: Init,
    /// RNG seed.
    pub seed: u64,
}

impl KMeansConfig {
    /// The paper's configuration: Forgy initialisation, `k` groups.
    pub fn forgy(k: usize, seed: u64) -> Self {
        Self {
            k,
            max_iter: 100,
            tol: 1e-9,
            init: Init::Forgy,
            seed,
        }
    }

    /// k-means++ configuration.
    pub fn plus_plus(k: usize, seed: u64) -> Self {
        Self {
            init: Init::PlusPlus,
            ..Self::forgy(k, seed)
        }
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label of each input point.
    pub labels: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Members of cluster `c`, as point indices.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == c).then_some(i))
            .collect()
    }

    /// Point indices grouped by cluster: `result[c]` lists the members of
    /// cluster `c`. Empty clusters yield empty lists.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut g = vec![Vec::new(); self.k()];
        for (i, &l) in self.labels.iter().enumerate() {
            g[l].push(i);
        }
        g
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cent) in centroids.iter().enumerate() {
        let d = dist_sq(point, cent);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// Run K-means over `points` (each a `dim`-vector).
///
/// `k` is clamped to the number of points (the grouping optimization may
/// ask for more groups than sites).
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or points disagree in
/// dimensionality.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Clustering {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(config.k > 0, "k must be positive");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent point dimensionality"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let k = config.k.min(points.len());
    let mut centroids = match config.init {
        Init::Forgy => init_forgy(points, k, &mut rng),
        Init::PlusPlus => init_plus_plus(points, k, &mut rng),
    };

    let mut labels = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..config.max_iter.max(1) {
        iterations = it + 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            labels[i] = nearest(p, &centroids).0;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (s, v) in sums[l].iter_mut().zip(p) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster on the point farthest from its
                // assigned centroid (standard Lloyd repair).
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        nearest(a, &centroids)
                            .1
                            .total_cmp(&nearest(b, &centroids).1)
                    })
                    .map(|(i, _)| i)
                    .unwrap();
                movement += dist_sq(&centroids[c], &points[far]);
                centroids[c] = points[far].clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += dist_sq(&centroids[c], &new);
            centroids[c] = new;
        }
        if movement <= config.tol {
            break;
        }
    }
    // Final assignment against the converged centroids.
    let mut inertia = 0.0;
    for (i, p) in points.iter().enumerate() {
        let (l, d) = nearest(p, &centroids);
        labels[i] = l;
        inertia += d;
    }
    Clustering {
        centroids,
        labels,
        inertia,
        iterations,
    }
}

fn init_forgy(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    // Sample k distinct indices (Fisher–Yates prefix).
    let mut idx: Vec<usize> = (0..points.len()).collect();
    for i in 0..k {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..k].iter().map(|&i| points[i].clone()).collect()
}

fn init_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let weights: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // All remaining points coincide with centroids; pick any.
            centroids.push(points[rng.random_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.random_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Three well-separated 2-D blobs of 5 points each.
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)] {
            for i in 0..5 {
                pts.push(vec![cx + (i as f64) * 0.1, cy - (i as f64) * 0.1]);
            }
        }
        pts
    }

    #[test]
    fn separated_blobs_are_found() {
        // Lloyd can get stuck in a local optimum for an unlucky Forgy
        // init; take the best of a few seeds as any practical user would.
        let c = (0..8)
            .map(|s| kmeans(&blobs(), &KMeansConfig::forgy(3, s)))
            .min_by(|a, b| a.inertia.total_cmp(&b.inertia))
            .unwrap();
        assert_eq!(c.k(), 3);
        // All points of one blob share a label, and blobs differ.
        for blob in 0..3 {
            let first = c.labels[blob * 5];
            for i in 0..5 {
                assert_eq!(c.labels[blob * 5 + i], first);
            }
        }
        let mut distinct: Vec<usize> = c.labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
        assert!(c.inertia < 1.0, "inertia {}", c.inertia);
    }

    #[test]
    fn labels_are_argmin_of_centroids() {
        let pts = blobs();
        let c = kmeans(&pts, &KMeansConfig::plus_plus(3, 7));
        for (p, &l) in pts.iter().zip(&c.labels) {
            assert_eq!(l, nearest(p, &c.centroids).0);
        }
    }

    #[test]
    fn k1_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let c = kmeans(&pts, &KMeansConfig::forgy(1, 3));
        assert!((c.centroids[0][0] - 1.0).abs() < 1e-9);
        assert!((c.centroids[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn k_ge_n_gives_zero_inertia_on_distinct_points() {
        let pts = blobs();
        let c = kmeans(&pts, &KMeansConfig::forgy(50, 5));
        assert_eq!(c.k(), 15);
        assert!(c.inertia < 1e-9, "inertia {}", c.inertia);
    }

    #[test]
    fn groups_partition_the_input() {
        let pts = blobs();
        let c = kmeans(&pts, &KMeansConfig::forgy(3, 11));
        let groups = c.groups();
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
        for (ci, g) in groups.iter().enumerate() {
            assert_eq!(&c.members(ci), g);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = blobs();
        let a = kmeans(&pts, &KMeansConfig::forgy(3, 42));
        let b = kmeans(&pts, &KMeansConfig::forgy(3, 42));
        assert_eq!(a, b);
    }

    #[test]
    fn identical_points_zero_inertia() {
        let pts = vec![vec![5.0, 5.0]; 8];
        let c = kmeans(&pts, &KMeansConfig::plus_plus(3, 2));
        assert_eq!(c.inertia, 0.0);
    }

    #[test]
    fn inertia_never_increases_with_k() {
        let pts = blobs();
        let mut last = f64::INFINITY;
        for k in 1..=6 {
            // Best of a few seeds to smooth out init luck.
            let best = (0..5)
                .map(|s| kmeans(&pts, &KMeansConfig::plus_plus(k, s)).inertia)
                .fold(f64::INFINITY, f64::min);
            assert!(best <= last + 1e-9, "k={k}: {best} > {last}");
            last = best;
        }
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_input_panics() {
        kmeans(&[], &KMeansConfig::forgy(2, 0));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        kmeans(&[vec![1.0]], &KMeansConfig::forgy(0, 0));
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn mixed_dims_panic() {
        kmeans(&[vec![1.0], vec![1.0, 2.0]], &KMeansConfig::forgy(1, 0));
    }

    proptest::proptest! {
        #[test]
        fn prop_invariants(
            raw in proptest::collection::vec(
                proptest::collection::vec(-1000.0f64..1000.0, 2), 1..40),
            k in 1usize..6,
            seed in 0u64..50,
        ) {
            let c = kmeans(&raw, &KMeansConfig::forgy(k, seed));
            // Every label is a valid cluster.
            proptest::prop_assert!(c.labels.iter().all(|&l| l < c.k()));
            // Inertia is non-negative and finite.
            proptest::prop_assert!(c.inertia.is_finite() && c.inertia >= 0.0);
            // Labels are the argmin of the final centroids.
            for (p, &l) in raw.iter().zip(&c.labels) {
                let (best, _) = super::nearest(p, &c.centroids);
                let d_l = super::dist_sq(p, &c.centroids[l]);
                let d_b = super::dist_sq(p, &c.centroids[best]);
                proptest::prop_assert!(d_l <= d_b + 1e-9);
            }
        }
    }
}
