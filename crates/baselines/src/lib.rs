//! Baseline process-mapping algorithms (paper §5.1, "Comparisons").
//!
//! * [`RandomMapper`] — the paper's **Baseline**: uniformly random
//!   feasible mapping, "running directly in the geo-distributed data
//!   centers without any optimization".
//! * [`GreedyMapper`] — **Greedy**, Hoefler & Snir's generic topology-
//!   mapping heuristic for heterogeneous networks (ICS'11): bandwidth-
//!   driven greedy growth from the heaviest task.
//! * [`MpippMapper`] — **MPIPP** (Chen et al., ICS'06): randomized
//!   pairwise-exchange local search with restarts.
//! * [`ExhaustiveMapper`] — brute-force optimum for tiny instances; the
//!   oracle the tests compare heuristics against.
//! * [`MonteCarlo`] — best-of-K random sampling and cost-distribution
//!   sampling for the paper's Figs. 9 and 10.
//!
//! Every mapper honours data-movement constraints and site capacities.

#![warn(missing_docs)]

mod exhaustive;
mod greedy;
mod monte_carlo;
mod mpipp;
mod random;

pub use exhaustive::ExhaustiveMapper;
pub use greedy::GreedyMapper;
pub use monte_carlo::MonteCarlo;
pub use mpipp::MpippMapper;
pub use random::{random_mapping, RandomMapper};

use geomap_core::{Mapper, MappingProblem, Metrics, Trace};

/// The paper's three comparison mappers plus the proposed one, in figure
/// order: Greedy, MPIPP, Geo-distributed.
pub fn paper_mappers(seed: u64) -> Vec<Box<dyn Mapper + Sync>> {
    paper_mappers_instrumented(seed, &Metrics::off(), &Trace::off())
}

/// [`paper_mappers`] with every mapper wired to `metrics` — each scopes
/// itself under its own name, so one handle yields a comparable set of
/// per-mapper search statistics.
pub fn paper_mappers_with_metrics(seed: u64, metrics: &Metrics) -> Vec<Box<dyn Mapper + Sync>> {
    paper_mappers_instrumented(seed, metrics, &Trace::off())
}

/// [`paper_mappers`] with every mapper wired to both observability
/// handles: scoped `metrics` plus event-level `trace` — each mapper
/// records its search phases on its own `"search"` track, so one trace
/// file shows the three algorithms' timelines side by side.
pub fn paper_mappers_instrumented(
    seed: u64,
    metrics: &Metrics,
    trace: &Trace,
) -> Vec<Box<dyn Mapper + Sync>> {
    vec![
        Box::new(GreedyMapper {
            metrics: metrics.clone(),
            trace: trace.clone(),
        }),
        Box::new(MpippMapper {
            metrics: metrics.clone(),
            trace: trace.clone(),
            ..MpippMapper::with_seed(seed)
        }),
        Box::new(geomap_core::GeoMapper {
            seed,
            metrics: metrics.clone(),
            trace: trace.clone(),
            ..geomap_core::GeoMapper::default()
        }),
    ]
}

/// Mean cost of `samples` Baseline (random) mappings — the normalization
/// denominator of Figs. 5–7 ("normalized to the average of Baseline").
pub fn baseline_mean_cost(problem: &MappingProblem, samples: usize, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let total: f64 = (0..samples)
        .map(|i| {
            let m = RandomMapper::with_seed(seed.wrapping_add(i as u64)).map(problem);
            geomap_core::cost(problem, &m)
        })
        .sum();
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph::apps::{RandomGraph, Workload};
    use geomap_core::cost;
    use geonet::{presets, InstanceType};

    fn problem() -> MappingProblem {
        let net = presets::paper_ec2_network(8, InstanceType::M4Xlarge, 1);
        let pat = RandomGraph {
            n: 32,
            degree: 4,
            max_bytes: 500_000,
            seed: 2,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn paper_mappers_are_three_and_feasible() {
        let p = problem();
        let mappers = paper_mappers(1);
        assert_eq!(mappers.len(), 3);
        assert_eq!(mappers[0].name(), "Greedy");
        assert_eq!(mappers[1].name(), "MPIPP");
        assert_eq!(mappers[2].name(), "Geo-distributed");
        for m in &mappers {
            m.map(&p).validate(&p).unwrap();
        }
    }

    #[test]
    fn traced_mappers_match_untraced_and_cover_search_tracks() {
        use geomap_core::{RingBufferSink, TraceEventKind};
        let p = problem();
        let sink = std::sync::Arc::new(RingBufferSink::new(1 << 16));
        let trace = Trace::new(sink.clone());
        let traced = paper_mappers_instrumented(1, &Metrics::off(), &trace);
        let plain = paper_mappers(1);
        for (t, u) in traced.iter().zip(&plain) {
            assert_eq!(
                t.map(&p),
                u.map(&p),
                "{}: tracing changed the result",
                t.name()
            );
        }
        let tracks = sink.tracks();
        for name in ["Greedy", "MPIPP", "Geo-distributed"] {
            assert!(
                tracks
                    .iter()
                    .any(|t| t.process == "search" && t.name == name),
                "missing search track for {name}"
            );
        }
        let events = sink.snapshot();
        assert!(events
            .iter()
            .any(|e| e.kind == TraceEventKind::SpanBegin && e.name == "pass"));
        assert!(events
            .iter()
            .any(|e| e.kind == TraceEventKind::Instant && e.name == "swap"));
        // Every span opened on a track is closed on it.
        for t in &tracks {
            let b = events
                .iter()
                .filter(|e| e.track == t.id && e.kind == TraceEventKind::SpanBegin)
                .count();
            let e = events
                .iter()
                .filter(|e| e.track == t.id && e.kind == TraceEventKind::SpanEnd)
                .count();
            assert_eq!(b, e, "unbalanced spans on {}", t.name);
        }
    }

    #[test]
    fn baseline_mean_is_above_optimized_costs() {
        let p = problem();
        let mean = baseline_mean_cost(&p, 20, 3);
        for mapper in paper_mappers(1) {
            let c = cost(&p, &mapper.map(&p));
            assert!(
                c < mean,
                "{} cost {c} not below baseline mean {mean}",
                mapper.name()
            );
        }
    }
}
