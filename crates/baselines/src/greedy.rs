//! Greedy — Hoefler & Snir's generic topology-mapping heuristic
//! (ICS'11), the paper's state-of-the-art comparison.
//!
//! The heuristic grows the mapping greedily: start from the task with the
//! largest total data volume and map it to the machine with the highest
//! total bandwidth; then repeatedly take the unmapped task communicating
//! most heavily with the mapped set and put it on the site (with free
//! capacity) that maximizes the bandwidth-weighted affinity to its
//! already-mapped partners.
//!
//! Being purely bandwidth-driven and myopic, it excels on patterns with
//! strong locality (the paper finds it best-in-class on BT/SP/LU) but
//! degrades on complex patterns like K-means (< 5–10 % improvement in
//! the paper) — exactly the behaviour the evaluation harness checks.

use geomap_core::delta::CostTables;
use geomap_core::{
    CostModel, Mapper, Mapping, MappingProblem, Metrics, Trace, TraceScope, TrackId,
};
use geonet::SiteId;

/// Relative window within which two site scores count as tied.
const TIE_REL: f64 = 1e-12;

/// The Greedy baseline.
#[derive(Debug, Clone, Default)]
pub struct GreedyMapper {
    /// Observability handle (off by default): placement count, candidate
    /// site scores evaluated, and the packing time.
    pub metrics: Metrics,
    /// Event-level tracing (off by default): one `packing` span on a
    /// `"search"/"Greedy"` track covering the greedy growth loop.
    pub trace: Trace,
}

impl Mapper for GreedyMapper {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn map(&self, problem: &MappingProblem) -> Mapping {
        let metrics = self.metrics.scoped(self.name());
        let trace = &self.trace;
        let track = if trace.enabled() {
            trace.track("search", self.name())
        } else {
            TrackId::DISABLED
        };
        let tscope = TraceScope::new(trace, track);
        tscope.span_begin("packing");
        let (assignment, placements, scores_evaluated) = metrics.timed("phase.packing", || {
            let mut placements = 0u64;
            let mut scores_evaluated = 0u64;
            let n = problem.num_processes();
            let net = problem.network();
            let m = problem.num_sites();
            let partners = problem.partners();
            let tables = CostTables::build(problem, CostModel::Full);

            let mut assignment: Vec<Option<SiteId>> =
                (0..n).map(|i| problem.constraints().pin_of(i)).collect();
            let mut free = problem.free_capacities();

            // Symmetrized bandwidth between two sites.
            let bw = |a: SiteId, b: SiteId| (net.bandwidth(a, b) + net.bandwidth(b, a)) / 2.0;

            // attachment[i] = Σ over mapped partners of i of the exchanged
            // bytes (the "communication to the mapped set" key).
            let mut attachment = vec![0.0f64; n];
            for (q, a) in assignment.iter().enumerate() {
                if a.is_some() {
                    for p in &partners[q] {
                        attachment[p.peer] += p.bytes;
                    }
                }
            }

            let quantities: Vec<f64> = partners
                .iter()
                .map(|ps| ps.iter().map(|p| p.bytes).sum())
                .collect();

            let mut unmapped: usize = assignment.iter().filter(|a| a.is_none()).count();
            while unmapped > 0 {
                // Next task: heaviest attachment to the mapped set; break
                // ties (and the cold start) by total quantity, then index.
                let t = (0..n)
                    .filter(|&i| assignment[i].is_none())
                    .max_by(|&a, &b| {
                        attachment[a]
                            .total_cmp(&attachment[b])
                            .then(quantities[a].total_cmp(&quantities[b]))
                            .then(b.cmp(&a))
                    })
                    .expect("unmapped > 0");

                // Site choice: maximize bandwidth-weighted affinity to the
                // mapped partners; when the task has no mapped partners yet,
                // fall back to the site with the highest total bandwidth
                // (Hoefler & Snir's seeding rule).
                let mut scores: Vec<(SiteId, f64)> = Vec::with_capacity(m);
                for (j, &slots) in free.iter().enumerate().take(m) {
                    if slots == 0 {
                        continue;
                    }
                    let site = SiteId(j);
                    let mut score = 0.0;
                    let mut has_mapped_partner = false;
                    for p in &partners[t] {
                        if let Some(ps) = assignment[p.peer] {
                            has_mapped_partner = true;
                            score += p.bytes * bw(site, ps);
                        }
                    }
                    if !has_mapped_partner {
                        // Total outgoing bandwidth of the site.
                        score = (0..m).map(|l| bw(site, SiteId(l))).sum();
                    }
                    scores.push((site, score));
                }
                let best_score = scores
                    .iter()
                    .map(|&(_, s)| s)
                    .fold(f64::NEG_INFINITY, f64::max);
                // The bandwidth score ignores latency and is frequently tied
                // (uniform intra-site bandwidth). Break score ties by the
                // exact Eq. 3 attachment cost from the Δ-engine tables —
                // earliest site on exact ties, matching the old first-max
                // rule when nothing distinguishes the candidates.
                let site = scores
                    .iter()
                    .filter(|&&(_, s)| s >= best_score - TIE_REL * best_score.abs())
                    .map(|&(site, _)| (site, tables.placement_cost(&assignment, t, site)))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .map(|(site, _)| site)
                    .expect("capacity >= N guarantees a free site");
                placements += 1;
                scores_evaluated += scores.len() as u64;
                assignment[t] = Some(site);
                free[site.index()] -= 1;
                unmapped -= 1;
                for p in &partners[t] {
                    attachment[p.peer] += p.bytes;
                }
            }
            (assignment, placements, scores_evaluated)
        });
        tscope.span_end("packing");

        metrics.counter("search.placements", placements);
        metrics.counter("search.site_scores_evaluated", scores_evaluated);
        Mapping::new(
            assignment
                .into_iter()
                .map(|a| a.expect("all mapped"))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomMapper;
    use commgraph::apps::{AppKind, Ring, Workload};
    use geomap_core::{cost, ConstraintVector};
    use geonet::{presets, InstanceType};

    fn ec2_problem(pattern: commgraph::CommPattern, nodes: usize) -> MappingProblem {
        let net = presets::paper_ec2_network(nodes, InstanceType::M4Xlarge, 1);
        MappingProblem::unconstrained(pattern, net)
    }

    #[test]
    fn feasible_on_all_apps() {
        for k in AppKind::ALL {
            let p = ec2_problem(k.workload(32).pattern(), 8);
            GreedyMapper::default().map(&p).validate(&p).unwrap();
        }
    }

    #[test]
    fn packs_a_ring_contiguously() {
        let p = ec2_problem(
            Ring {
                n: 16,
                iterations: 5,
                bytes: 1_000_000,
            }
            .pattern(),
            4,
        );
        let m = GreedyMapper::default().map(&p);
        // A ring has 16 edges; an optimal 4-way split cuts exactly 4.
        // Greedy growth from the heaviest vertex yields a near-optimal
        // packing: at most 6 cross-site edges.
        let cross = (0..16)
            .filter(|&i| m.site_of(i) != m.site_of((i + 1) % 16))
            .count();
        assert!(cross <= 6, "cross-site ring edges: {cross}");
    }

    #[test]
    fn beats_baseline_on_local_patterns() {
        let p = ec2_problem(AppKind::Lu.workload(64).pattern(), 16);
        let g = cost(&p, &GreedyMapper::default().map(&p));
        let r = cost(&p, &RandomMapper::with_seed(3).map(&p));
        assert!(g < 0.7 * r, "greedy {g} vs random {r}");
    }

    #[test]
    fn respects_constraints() {
        let net = presets::paper_ec2_network(8, InstanceType::M4Xlarge, 1);
        let pat = AppKind::KMeans.workload(32).pattern();
        let c = ConstraintVector::random(32, 0.4, &net.capacities(), 7);
        let p = MappingProblem::new(pat, net, c.clone());
        let m = GreedyMapper::default().map(&p);
        m.validate(&p).unwrap();
        assert!(c.satisfied_by(m.as_slice()));
    }

    #[test]
    fn deterministic() {
        let p = ec2_problem(AppKind::Sp.workload(36).pattern(), 9);
        assert_eq!(
            GreedyMapper::default().map(&p),
            GreedyMapper::default().map(&p)
        );
    }
}
