//! Monte Carlo mapping study (paper §5.4, Figs. 9 and 10).
//!
//! The paper samples random mappings (10⁷ draws) to obtain the cost
//! distribution, showing that Geo-distributed lands in the < 1 % tail,
//! and that best-of-K random search needs K ≈ 10⁴⁺ to approach it. This
//! module provides both: distribution sampling (rayon-parallel) and a
//! best-of-K mapper.

use crate::random::random_mapping;
use geomap_core::delta::{polish_stats_traced, Evaluation};
use geomap_core::{
    cost, CostModel, Mapper, Mapping, MappingProblem, Metrics, Trace, TraceScope, TrackId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Best-of-K random search, doubling as the Fig. 9/10 sampler.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Number of random mappings drawn.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Swap hill-climb passes applied to the best sample before
    /// returning it (0 = plain best-of-K, the paper's Fig. 10 setting).
    pub polish_passes: usize,
    /// Δ-cost engine for the polish sweeps.
    pub evaluation: Evaluation,
    /// Observability handle (off by default): sample count, sampling
    /// time, and — when polishing — refinement search stats.
    pub metrics: Metrics,
    /// Event-level tracing (off by default): `sampling`/`refinement`
    /// spans — with per-pass spans and accepted-`swap` instants during
    /// the polish — on a `"search"/"MonteCarlo"` track.
    pub trace: Trace,
}

impl MonteCarlo {
    /// Create a sampler (plain best-of-K; no polish).
    pub fn new(samples: usize, seed: u64) -> Self {
        assert!(samples > 0, "need at least one sample");
        Self {
            samples,
            seed,
            polish_passes: 0,
            evaluation: Evaluation::Incremental,
            metrics: Metrics::off(),
            trace: Trace::off(),
        }
    }

    /// Draw all sample costs (unsorted), in parallel chunks. Sample `i`
    /// is always generated from the same derived seed, so results are
    /// independent of the parallel schedule.
    pub fn sample_costs(&self, problem: &MappingProblem) -> Vec<f64> {
        (0..self.samples)
            .into_par_iter()
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
                cost(problem, &random_mapping(problem, &mut rng))
            })
            .collect()
    }

    /// Empirical CDF of the sampled costs: returns the sorted costs; the
    /// CDF at `sorted[k]` is `(k+1)/len`.
    pub fn cdf(&self, problem: &MappingProblem) -> Vec<f64> {
        let mut costs = self.sample_costs(problem);
        costs.sort_by(f64::total_cmp);
        costs
    }

    /// Fraction of random mappings strictly cheaper than `c` — the
    /// paper's "probability that a random mapping beats X".
    ///
    /// Convention: an empty `sorted_costs` slice yields `0.0` (no
    /// evidence that anything beats `c`), never `NaN`.
    pub fn fraction_below(sorted_costs: &[f64], c: f64) -> f64 {
        if sorted_costs.is_empty() {
            return 0.0;
        }
        let k = sorted_costs.partition_point(|&x| x < c);
        k as f64 / sorted_costs.len() as f64
    }

    /// Running best-of-K minima at the requested `ks` (each `k ≤
    /// samples`), as Fig. 10 plots. Returns `(k, min_cost_of_first_k)`
    /// pairs **in the caller's order** — duplicated and unsorted `ks`
    /// are fine; each entry always describes its own `k`.
    pub fn best_of_k_curve(&self, problem: &MappingProblem, ks: &[usize]) -> Vec<(usize, f64)> {
        let costs = self.sample_costs(problem);
        // Prefix minima are computed over the unique ks in ascending
        // order (one pass over the samples), then reported back in the
        // caller's order.
        let mut sorted_ks: Vec<usize> = ks.to_vec();
        sorted_ks.sort_unstable();
        sorted_ks.dedup();
        let mut running = f64::INFINITY;
        let mut upto = 0usize;
        let mut min_at = std::collections::HashMap::with_capacity(sorted_ks.len());
        for k in sorted_ks {
            assert!(
                k >= 1 && k <= costs.len(),
                "k={k} outside 1..={}",
                costs.len()
            );
            for &c in &costs[upto..k] {
                running = running.min(c);
            }
            upto = k;
            min_at.insert(k, running);
        }
        ks.iter().map(|&k| (k, min_at[&k])).collect()
    }
}

impl Mapper for MonteCarlo {
    fn name(&self) -> &'static str {
        "MonteCarlo"
    }

    fn map(&self, problem: &MappingProblem) -> Mapping {
        assert!(
            self.samples > 0,
            "MonteCarlo: `samples` must be > 0 (got 0) — best-of-K needs at \
             least one draw; construct via MonteCarlo::new"
        );
        let metrics = self.metrics.scoped(self.name());
        metrics.counter("search.samples", self.samples as u64);
        let trace = &self.trace;
        let track = if trace.enabled() {
            trace.track("search", self.name())
        } else {
            TrackId::DISABLED
        };
        let tscope = TraceScope::new(trace, track);
        tscope.span_begin("sampling");
        let best = metrics.timed("phase.sampling", || {
            (0..self.samples)
                .into_par_iter()
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
                    let m = random_mapping(problem, &mut rng);
                    (cost(problem, &m), i, m)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .expect("non-empty sample range")
        });
        tscope.span_end("sampling");
        let mut m = best.2;
        if self.polish_passes > 0 {
            let constraints = problem.constraints();
            let movable = |i: usize| constraints.pin_of(i).is_none();
            tscope.span_begin("refinement");
            let stats = metrics.timed("phase.refinement", || {
                polish_stats_traced(
                    problem,
                    &mut m,
                    self.polish_passes,
                    CostModel::Full,
                    self.evaluation,
                    &movable,
                    tscope,
                )
            });
            tscope.span_end("refinement");
            stats.emit(&metrics);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExhaustiveMapper;
    use commgraph::apps::{RandomGraph, Workload};
    use geonet::{presets, InstanceType};

    fn problem() -> MappingProblem {
        let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1);
        let pat = RandomGraph {
            n: 16,
            degree: 3,
            max_bytes: 300_000,
            seed: 3,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn best_of_k_is_monotone_in_k() {
        let p = problem();
        let mc = MonteCarlo::new(256, 1);
        let curve = mc.best_of_k_curve(&p, &[1, 4, 16, 64, 256]);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1, "{curve:?}");
        }
    }

    #[test]
    fn cdf_is_sorted_and_complete() {
        let p = problem();
        let cdf = MonteCarlo::new(128, 2).cdf(&p);
        assert_eq!(cdf.len(), 128);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fraction_below_boundaries() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(MonteCarlo::fraction_below(&sorted, 0.5), 0.0);
        assert_eq!(MonteCarlo::fraction_below(&sorted, 2.5), 0.5);
        assert_eq!(MonteCarlo::fraction_below(&sorted, 10.0), 1.0);
    }

    #[test]
    fn fraction_below_empty_is_zero_not_nan() {
        // Regression: 0/0 used to yield NaN; the convention is 0.0.
        let f = MonteCarlo::fraction_below(&[], 1.0);
        assert_eq!(f, 0.0);
        assert!(!f.is_nan());
    }

    #[test]
    fn best_of_k_curve_preserves_caller_order() {
        // Regression: the curve used to come back silently sorted by k.
        let p = problem();
        let mc = MonteCarlo::new(64, 4);
        let unsorted = mc.best_of_k_curve(&p, &[64, 1, 16, 16]);
        assert_eq!(
            unsorted.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![64, 1, 16, 16],
            "caller's k order (duplicates included) must be preserved"
        );
        // Same minima as the sorted query, just reordered.
        let sorted = mc.best_of_k_curve(&p, &[1, 16, 64]);
        assert_eq!(unsorted[0], sorted[2]);
        assert_eq!(unsorted[1], sorted[0]);
        assert_eq!(unsorted[2], sorted[1]);
        assert_eq!(unsorted[3], sorted[1]);
    }

    #[test]
    #[should_panic(expected = "`samples` must be > 0")]
    fn zero_samples_by_struct_literal_fails_clearly() {
        // Regression: bypassing `new` via the pub fields used to die on a
        // cryptic `expect("samples > 0")` inside the rayon reduction.
        let p = problem();
        let mc = MonteCarlo {
            samples: 0,
            ..MonteCarlo::new(1, 1)
        };
        mc.map(&p);
    }

    #[test]
    fn emits_sampling_metrics() {
        let sink = std::sync::Arc::new(geomap_core::MemorySink::new());
        let p = problem();
        let mc = MonteCarlo {
            polish_passes: 4,
            metrics: Metrics::new(sink.clone()),
            ..MonteCarlo::new(32, 6)
        };
        let with = mc.map(&p);
        assert_eq!(sink.sum("MonteCarlo", "search.samples"), 32.0);
        assert!(sink.has("MonteCarlo", "phase.sampling"));
        assert!(sink.has("MonteCarlo", "phase.refinement"));
        // Instrumentation must not change the result.
        let without = MonteCarlo {
            polish_passes: 4,
            ..MonteCarlo::new(32, 6)
        }
        .map(&p);
        assert_eq!(with, without);
    }

    #[test]
    fn map_returns_the_sample_minimum() {
        let p = problem();
        let mc = MonteCarlo::new(64, 5);
        let best = geomap_core::cost(&p, &mc.map(&p));
        let min = mc
            .sample_costs(&p)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        assert!((best - min).abs() < 1e-12);
    }

    #[test]
    fn never_beats_the_exhaustive_optimum() {
        let net = presets::ec2_sites(&["us-east-1", "eu-west-1"], 4);
        let net = geonet::SynthNetworkBuilder::new(geonet::SynthConfig::default()).build(net);
        let pat = RandomGraph {
            n: 8,
            degree: 2,
            max_bytes: 100_000,
            seed: 9,
        }
        .pattern();
        let p = MappingProblem::unconstrained(pat, net);
        let (_, opt) = ExhaustiveMapper::default().optimum(&p);
        let best = geomap_core::cost(&p, &MonteCarlo::new(2000, 3).map(&p));
        assert!(best >= opt - 1e-9);
        // ...and with 2000 samples over a 2^8=256-point space it finds it.
        assert!(
            best <= opt + 1e-6 * opt.max(1.0),
            "best {best} vs opt {opt}"
        );
    }

    #[test]
    fn deterministic_regardless_of_parallelism() {
        let p = problem();
        let a = MonteCarlo::new(100, 7).map(&p);
        let b = MonteCarlo::new(100, 7).map(&p);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        MonteCarlo::new(0, 1);
    }

    #[test]
    fn polish_never_hurts_and_engines_agree() {
        let p = problem();
        let plain = geomap_core::cost(&p, &MonteCarlo::new(64, 5).map(&p));
        let polished = MonteCarlo {
            polish_passes: 20,
            ..MonteCarlo::new(64, 5)
        };
        let inc = polished.map(&p);
        assert!(geomap_core::cost(&p, &inc) <= plain + 1e-12);
        let oracle = MonteCarlo {
            evaluation: geomap_core::Evaluation::FullRecompute,
            ..polished.clone()
        }
        .map(&p);
        assert_eq!(inc, oracle, "polish diverged between engines");
    }
}
