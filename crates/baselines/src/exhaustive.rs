//! Brute-force optimal mapping for tiny instances.
//!
//! Process mapping is NP-hard (Díaz et al.); the solution space is
//! `O(N^M)` and the paper emphasizes no efficient exact algorithm
//! exists. For *tiny* instances, however, the optimum is enumerable and
//! makes a valuable oracle: the tests compare every heuristic against
//! it, and the Monte Carlo study (Fig. 9/10) needs to know where the
//! true optimum lies.

use geomap_core::{cost, Mapper, Mapping, MappingProblem};
use geonet::SiteId;

/// Exhaustive search over all feasible assignments.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveMapper {
    /// Refuse instances whose search space exceeds this many leaves
    /// (`M^(free processes)` bound). Default 10 million.
    pub max_leaves: Option<u64>,
}

impl ExhaustiveMapper {
    /// The optimum and its cost.
    pub fn optimum(&self, problem: &MappingProblem) -> (Mapping, f64) {
        let n = problem.num_processes();
        let m = problem.num_sites();
        let free_count = (0..n)
            .filter(|&i| problem.constraints().pin_of(i).is_none())
            .count();
        let cap = self.max_leaves.unwrap_or(10_000_000);
        let leaves = (m as u64)
            .checked_pow(free_count as u32)
            .unwrap_or(u64::MAX);
        assert!(
            leaves <= cap,
            "search space {m}^{free_count} exceeds the {cap}-leaf budget"
        );

        let mut assignment: Vec<Option<SiteId>> =
            (0..n).map(|i| problem.constraints().pin_of(i)).collect();
        let mut caps = problem.free_capacities();
        let mut best: Option<(Vec<SiteId>, f64)> = None;
        search(problem, 0, &mut assignment, &mut caps, &mut best);
        let (assignment, c) = best.expect("capacity >= N guarantees a feasible mapping");
        (Mapping::new(assignment), c)
    }
}

fn search(
    problem: &MappingProblem,
    i: usize,
    assignment: &mut Vec<Option<SiteId>>,
    caps: &mut Vec<usize>,
    best: &mut Option<(Vec<SiteId>, f64)>,
) {
    let n = problem.num_processes();
    if i == n {
        let full: Vec<SiteId> = assignment.iter().map(|a| a.unwrap()).collect();
        let c = cost(problem, &Mapping::new(full.clone()));
        if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
            *best = Some((full, c));
        }
        return;
    }
    if assignment[i].is_some() {
        // Pinned by a constraint; its capacity was pre-deducted.
        search(problem, i + 1, assignment, caps, best);
        return;
    }
    for j in 0..problem.num_sites() {
        if caps[j] == 0 {
            continue;
        }
        caps[j] -= 1;
        assignment[i] = Some(SiteId(j));
        search(problem, i + 1, assignment, caps, best);
        assignment[i] = None;
        caps[j] += 1;
    }
}

impl Mapper for ExhaustiveMapper {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn map(&self, problem: &MappingProblem) -> Mapping {
        self.optimum(problem).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedyMapper, MpippMapper, RandomMapper};
    use commgraph::apps::{RandomGraph, Ring, Workload};
    use geomap_core::{ConstraintVector, GeoMapper};
    use geonet::{presets, InstanceType};

    fn tiny_problem(seed: u64) -> MappingProblem {
        let net = presets::ec2_sites(&["us-east-1", "us-west-2", "ap-southeast-1"], 3);
        let net = geonet::SynthNetworkBuilder::new(geonet::SynthConfig::default()).build(net);
        let pat = RandomGraph {
            n: 8,
            degree: 3,
            max_bytes: 400_000,
            seed,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn optimum_beats_every_heuristic() {
        for seed in 0..4 {
            let p = tiny_problem(seed);
            let (_, opt) = ExhaustiveMapper::default().optimum(&p);
            for c in [
                geomap_core::cost(&p, &RandomMapper::with_seed(seed).map(&p)),
                geomap_core::cost(&p, &GreedyMapper::default().map(&p)),
                geomap_core::cost(&p, &MpippMapper::with_seed(seed).map(&p)),
                geomap_core::cost(&p, &GeoMapper::default().map(&p)),
            ] {
                assert!(
                    opt <= c + 1e-9,
                    "seed {seed}: optimum {opt} > heuristic {c}"
                );
            }
        }
    }

    #[test]
    fn geo_is_near_optimal_on_tiny_instances() {
        // The paper claims near-optimality (Fig. 9); on tiny instances
        // Geo should be within 2x of the optimum (it usually matches).
        for seed in 0..4 {
            let p = tiny_problem(seed);
            let (_, opt) = ExhaustiveMapper::default().optimum(&p);
            let geo = geomap_core::cost(&p, &GeoMapper::default().map(&p));
            assert!(geo <= 2.0 * opt, "seed {seed}: geo {geo} vs opt {opt}");
        }
    }

    #[test]
    fn ring_optimum_is_contiguous_blocks() {
        let net = presets::ec2_sites(&["us-east-1", "ap-southeast-1"], 3);
        let net = geonet::SynthNetworkBuilder::new(geonet::SynthConfig::default()).build(net);
        let pat = Ring {
            n: 6,
            iterations: 1,
            bytes: 1_000_000,
        }
        .pattern();
        let p = MappingProblem::unconstrained(pat, net);
        let (m, _) = ExhaustiveMapper::default().optimum(&p);
        // Exactly two cross-site cuts on the ring.
        let cuts = (0..6)
            .filter(|&i| m.site_of(i) != m.site_of((i + 1) % 6))
            .count();
        assert_eq!(cuts, 2);
    }

    #[test]
    fn constraints_prune_the_space() {
        let p = tiny_problem(1);
        let mut c = ConstraintVector::none(8);
        c.pin(0, geonet::SiteId(2));
        let pc = p.with_constraints(c);
        let (m, cost_constrained) = ExhaustiveMapper::default().optimum(&pc);
        assert_eq!(m.site_of(0), geonet::SiteId(2));
        let (_, cost_free) = ExhaustiveMapper::default().optimum(&p);
        assert!(cost_free <= cost_constrained + 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn refuses_large_instances() {
        let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 1);
        let pat = RandomGraph {
            n: 64,
            degree: 3,
            max_bytes: 100,
            seed: 0,
        }
        .pattern();
        let p = MappingProblem::unconstrained(pat, net);
        ExhaustiveMapper::default().map(&p);
    }
}
