//! The Baseline: uniformly random feasible mapping.

use geomap_core::{Mapper, Mapping, MappingProblem};
use geonet::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random mapping ("Baseline" in the paper's figures): each free process
/// gets a uniformly random free node slot; constrained processes go
/// where their constraint says.
#[derive(Debug, Clone)]
pub struct RandomMapper {
    /// RNG seed.
    pub seed: u64,
}

impl RandomMapper {
    /// Create with a seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for RandomMapper {
    fn default() -> Self {
        Self { seed: 0xBA5E }
    }
}

impl Mapper for RandomMapper {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn map(&self, problem: &MappingProblem) -> Mapping {
        let mut rng = StdRng::seed_from_u64(self.seed);
        random_mapping(problem, &mut rng)
    }
}

/// One uniformly random feasible mapping drawn from `rng` — shared by
/// [`RandomMapper`] and the Monte Carlo sampler so both draw from the
/// same distribution.
pub fn random_mapping(problem: &MappingProblem, rng: &mut StdRng) -> Mapping {
    let n = problem.num_processes();
    // Expand the free capacities into a slot multiset and shuffle it.
    let mut slots: Vec<SiteId> = Vec::with_capacity(problem.network().total_nodes());
    for (j, cap) in problem.free_capacities().iter().enumerate() {
        slots.extend(std::iter::repeat_n(SiteId(j), *cap));
    }
    for i in (1..slots.len()).rev() {
        let j = rng.random_range(0..=i);
        slots.swap(i, j);
    }
    let mut next = 0usize;
    let assignment: Vec<SiteId> = (0..n)
        .map(|i| {
            problem.constraints().pin_of(i).unwrap_or_else(|| {
                let s = slots[next];
                next += 1;
                s
            })
        })
        .collect();
    Mapping::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph::apps::{Ring, Workload};
    use geomap_core::ConstraintVector;
    use geonet::{presets, InstanceType};

    fn problem() -> MappingProblem {
        let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 16,
            iterations: 1,
            bytes: 100,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn mapping_is_feasible() {
        let p = problem();
        RandomMapper::default().map(&p).validate(&p).unwrap();
    }

    #[test]
    fn deterministic_per_seed_and_varied_across_seeds() {
        let p = problem();
        let a = RandomMapper::with_seed(1).map(&p);
        let b = RandomMapper::with_seed(1).map(&p);
        let c = RandomMapper::with_seed(2).map(&p);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn constraints_respected() {
        let p = problem();
        let c = ConstraintVector::random(16, 0.5, &p.capacities(), 5);
        let p = p.with_constraints(c.clone());
        for seed in 0..10 {
            let m = RandomMapper::with_seed(seed).map(&p);
            m.validate(&p).unwrap();
            assert!(c.satisfied_by(m.as_slice()));
        }
    }

    #[test]
    fn spreads_across_sites() {
        // With 16 processes over 4×4 slots, every site must be exactly
        // full (capacity == N).
        let p = problem();
        let m = RandomMapper::with_seed(9).map(&p);
        assert_eq!(m.site_counts(4), vec![4, 4, 4, 4]);
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Over many seeds, process 0 should visit every site.
        let p = problem();
        let mut seen = [false; 4];
        for seed in 0..40 {
            seen[RandomMapper::with_seed(seed).map(&p).site_of(0).index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
