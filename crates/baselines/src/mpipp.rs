//! MPIPP — Chen et al.'s profile-guided process placement (ICS'06).
//!
//! MPIPP iteratively improves a random initial placement by pairwise
//! exchanges: each round evaluates the cost delta of swapping every
//! process pair mapped to different sites and applies the best
//! improving swap, until a local optimum. Several random restarts are
//! taken and the best local optimum wins. With `O(N²)` candidate pairs
//! per round and `O(N)`-ish rounds this is the `O(N³)` behaviour the
//! paper measures in Fig. 4 — much heavier than Greedy or
//! Geo-distributed, which is why the paper drops MPIPP beyond ~1000
//! processes.

use crate::random::random_mapping;
use geomap_core::delta::{best_improving_swap_counted, CostTables, Evaluation, SearchStats};
use geomap_core::{cost, Mapper, Mapping, MappingProblem, Metrics, Trace, TraceScope, TrackId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Best-swap acceptance threshold (strictly improving, FP-noise-proof).
const SWAP_EPS: f64 = -1e-15;

/// The MPIPP baseline.
#[derive(Debug, Clone)]
pub struct MpippMapper {
    /// Random restarts.
    pub restarts: usize,
    /// Safety cap on exchange rounds per restart.
    pub max_rounds: usize,
    /// RNG seed for the initial placements.
    pub seed: u64,
    /// Δ-cost engine for the exchange rounds: the incremental default
    /// answers each candidate pair in `O(deg)`; the full-recompute
    /// oracle re-walks the pattern per pair (the seed's original
    /// behaviour, kept for verification).
    pub evaluation: Evaluation,
    /// Observability handle (off by default): restart count, exchange
    /// rounds, swaps evaluated vs. accepted, Eq. 3 terms touched.
    pub metrics: Metrics,
    /// Event-level tracing (off by default): `restart` and per-round
    /// `pass` spans plus accepted-`swap` instants on a
    /// `"search"/"MPIPP"` track.
    pub trace: Trace,
}

impl MpippMapper {
    /// Default configuration with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

impl Default for MpippMapper {
    fn default() -> Self {
        Self {
            restarts: 4,
            max_rounds: 1000,
            seed: 0x3B1B,
            evaluation: Evaluation::Incremental,
            metrics: Metrics::off(),
            trace: Trace::off(),
        }
    }
}

impl MpippMapper {
    /// One local search from a random feasible start. Returns the local
    /// optimum, its exact cost, and the search counters of this restart.
    fn local_search(
        &self,
        problem: &MappingProblem,
        tables: &CostTables,
        rng: &mut StdRng,
        scope: TraceScope<'_>,
    ) -> (Mapping, f64, SearchStats) {
        let n = problem.num_processes();
        let constraints = problem.constraints();
        let mapping = random_mapping(problem, rng);

        // Constrained processes never move (their site is fixed by C).
        let movable: Vec<usize> = (0..n)
            .filter(|&i| constraints.pin_of(i).is_none())
            .collect();

        let mut stats = SearchStats::default();
        let mut eval = self
            .evaluation
            .evaluator(tables, mapping.as_slice().to_vec());
        for _ in 0..self.max_rounds {
            scope.span_begin("pass");
            let (swap, evaluated) = best_improving_swap_counted(eval.as_ref(), &movable, SWAP_EPS);
            stats.passes += 1;
            stats.swaps_evaluated += evaluated;
            let Some((a, b, _)) = swap else {
                scope.span_end("pass");
                break;
            };
            eval.apply_swap(a, b);
            stats.swaps_accepted += 1;
            scope.instant("swap");
            scope.span_end("pass");
        }
        stats.terms = eval.terms();
        let mapping = Mapping::new(eval.sites().to_vec());
        // Guard against drift in the incremental deltas.
        let exact = cost::cost(problem, &mapping);
        debug_assert!((exact - eval.total()).abs() <= 1e-6 * exact.max(1.0));
        (mapping, exact, stats)
    }
}

impl Mapper for MpippMapper {
    fn name(&self) -> &'static str {
        "MPIPP"
    }

    fn map(&self, problem: &MappingProblem) -> Mapping {
        let metrics = self.metrics.scoped(self.name());
        let tables = CostTables::build(problem, geomap_core::CostModel::Full);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let trace = &self.trace;
        let track = if trace.enabled() {
            trace.track("search", self.name())
        } else {
            TrackId::DISABLED
        };
        let tscope = TraceScope::new(trace, track);
        let (best, total) = metrics.timed("phase.refinement", || {
            let mut best: Option<(Mapping, f64)> = None;
            let mut total = SearchStats::default();
            for _ in 0..self.restarts.max(1) {
                tscope.span_begin("restart");
                let (m, c, stats) = self.local_search(problem, &tables, &mut rng, tscope);
                tscope.span_end("restart");
                total.absorb(stats);
                total.restarts += 1;
                if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                    best = Some((m, c));
                }
            }
            (best, total)
        });
        total.emit(&metrics);
        best.expect("at least one restart").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomMapper;
    use commgraph::apps::{AppKind, RandomGraph, Workload};
    use geomap_core::{cost, ConstraintVector};
    use geonet::{presets, InstanceType};

    fn problem(n: usize) -> MappingProblem {
        let net = presets::paper_ec2_network(n / 4, InstanceType::M4Xlarge, 1);
        let pat = RandomGraph {
            n,
            degree: 4,
            max_bytes: 500_000,
            seed: 8,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn feasible_and_deterministic() {
        let p = problem(24);
        let m = MpippMapper::with_seed(5).map(&p);
        m.validate(&p).unwrap();
        assert_eq!(m, MpippMapper::with_seed(5).map(&p));
    }

    #[test]
    fn improves_over_its_own_random_start() {
        let p = problem(24);
        let mpipp_cost = cost(&p, &MpippMapper::with_seed(5).map(&p));
        // Average several random mappings as the reference.
        let avg: f64 = (0..10)
            .map(|s| cost(&p, &RandomMapper::with_seed(s).map(&p)))
            .sum::<f64>()
            / 10.0;
        assert!(mpipp_cost < avg, "{mpipp_cost} vs baseline avg {avg}");
    }

    #[test]
    fn local_optimum_has_no_improving_swap() {
        let p = problem(16);
        let m = MpippMapper {
            restarts: 1,
            ..MpippMapper::with_seed(2)
        }
        .map(&p);
        for a in 0..16 {
            for b in (a + 1)..16 {
                if m.site_of(a) != m.site_of(b) {
                    assert!(
                        geomap_core::cost::swap_delta(&p, &m, a, b) >= -1e-9,
                        "improving swap ({a},{b}) remains"
                    );
                }
            }
        }
    }

    #[test]
    fn respects_constraints() {
        let net = presets::paper_ec2_network(6, InstanceType::M4Xlarge, 1);
        let pat = AppKind::Lu.workload(24).pattern();
        let c = ConstraintVector::random(24, 0.3, &net.capacities(), 4);
        let p = MappingProblem::new(pat, net, c.clone());
        let m = MpippMapper::with_seed(6).map(&p);
        m.validate(&p).unwrap();
        assert!(c.satisfied_by(m.as_slice()));
    }

    #[test]
    fn identical_on_both_engines_fig5_mini() {
        // Oracle regression on the Fig. 5 mini-setup (4 sites × 16
        // nodes, N = 64): the incremental Δ-engine must drive MPIPP's
        // best-swap rounds to bit-identical mappings as the
        // full-recompute oracle, for all five paper workloads.
        use geomap_core::delta::Evaluation;
        let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 3);
        for &app in AppKind::ALL.iter() {
            let p = MappingProblem::unconstrained(app.workload(64).pattern(), net.clone());
            let inc = MpippMapper {
                evaluation: Evaluation::Incremental,
                ..MpippMapper::default()
            }
            .map(&p);
            let full = MpippMapper {
                evaluation: Evaluation::FullRecompute,
                ..MpippMapper::default()
            }
            .map(&p);
            assert_eq!(inc, full, "{}: engines diverged", app.name());
        }
    }

    #[test]
    fn more_restarts_never_worse() {
        let p = problem(20);
        let one = cost(
            &p,
            &MpippMapper {
                restarts: 1,
                ..MpippMapper::with_seed(9)
            }
            .map(&p),
        );
        let four = cost(
            &p,
            &MpippMapper {
                restarts: 4,
                ..MpippMapper::with_seed(9)
            }
            .map(&p),
        );
        assert!(four <= one + 1e-9);
    }
}
