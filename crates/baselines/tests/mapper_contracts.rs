//! Contract tests every mapper must satisfy, plus head-to-head
//! properties the paper's evaluation relies on.

use baselines::{ExhaustiveMapper, GreedyMapper, MonteCarlo, MpippMapper, RandomMapper};
use commgraph::apps::{AppKind, RandomGraph, UniformAll2All, Workload};
use geomap_core::{cost, ConstraintVector, GeoMapper, Mapper, MappingProblem};
use geonet::{presets, InstanceType, SquareMatrix};
use proptest::prelude::*;

fn mappers(seed: u64) -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(RandomMapper::with_seed(seed)),
        Box::new(GreedyMapper::default()),
        Box::new(MpippMapper {
            restarts: 2,
            ..MpippMapper::with_seed(seed)
        }),
        Box::new(GeoMapper {
            seed,
            ..GeoMapper::default()
        }),
        Box::new(MonteCarlo::new(50, seed)),
    ]
}

fn ec2_problem(n: usize, seed: u64, ratio: f64) -> MappingProblem {
    let net = presets::paper_ec2_network(n / 4, InstanceType::M4Xlarge, seed);
    let pattern = RandomGraph {
        n,
        degree: 4,
        max_bytes: 800_000,
        seed,
    }
    .pattern();
    let constraints = ConstraintVector::random(n, ratio, &net.capacities(), seed ^ 0xFF);
    MappingProblem::new(pattern, net, constraints)
}

#[test]
fn uniform_traffic_on_symmetric_network_is_mapping_invariant() {
    // With a uniform all-to-all pattern and a symmetric network, every
    // balanced mapping costs the same; optimizers can't win but must
    // not crash or "lose" either.
    let sites: Vec<geonet::Site> = (0..4)
        .map(|i| geonet::Site::new(format!("s{i}"), geonet::GeoCoord::new(i as f64, 0.0), 4))
        .collect();
    let m = sites.len();
    let lt = SquareMatrix::from_fn(m, |i, j| if i == j { 1e-4 } else { 1e-2 });
    let bt = SquareMatrix::from_fn(m, |i, j| if i == j { 1e8 } else { 1e7 });
    let net = geonet::SiteNetwork::new(sites, lt, bt);
    let pattern = UniformAll2All {
        n: 16,
        bytes: 10_000,
    }
    .pattern();
    let problem = MappingProblem::unconstrained(pattern, net);

    let costs: Vec<f64> = mappers(3)
        .iter()
        .map(|mp| cost(&problem, &mp.map(&problem)))
        .collect();
    let (min, max) = costs.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &c| {
        (lo.min(c), hi.max(c))
    });
    assert!(
        (max - min) / max < 1e-9,
        "costs differ on an invariant instance: {costs:?}"
    );
}

#[test]
fn optimizers_beat_random_on_every_real_app() {
    let net = presets::paper_ec2_network(8, InstanceType::M4Xlarge, 11);
    for app in AppKind::ALL {
        let problem = MappingProblem::unconstrained(app.workload(32).pattern(), net.clone());
        let random: f64 = (0..6)
            .map(|s| cost(&problem, &RandomMapper::with_seed(s).map(&problem)))
            .sum::<f64>()
            / 6.0;
        for mapper in [
            Box::new(GreedyMapper::default()) as Box<dyn Mapper>,
            Box::new(MpippMapper::with_seed(1)),
            Box::new(GeoMapper::default()),
        ] {
            let c = cost(&problem, &mapper.map(&problem));
            assert!(
                c < random,
                "{} lost to random on {app}: {c} vs {random}",
                mapper.name()
            );
        }
    }
}

#[test]
fn monte_carlo_with_enough_samples_beats_single_random() {
    let problem = ec2_problem(16, 5, 0.0);
    let one = cost(&problem, &RandomMapper::with_seed(123).map(&problem));
    let best = cost(&problem, &MonteCarlo::new(500, 123).map(&problem));
    assert!(best <= one);
}

#[test]
fn exhaustive_certifies_geo_on_many_tiny_instances() {
    let mut within_20pct = 0;
    const CASES: u64 = 8;
    for seed in 0..CASES {
        let net_sites = presets::ec2_sites(&["us-east-1", "ap-southeast-1", "eu-west-1"], 2);
        let net = geonet::SynthNetworkBuilder::new(geonet::SynthConfig {
            seed,
            ..geonet::SynthConfig::default()
        })
        .build(net_sites);
        let pattern = RandomGraph {
            n: 6,
            degree: 2,
            max_bytes: 900_000,
            seed,
        }
        .pattern();
        let problem = MappingProblem::unconstrained(pattern, net);
        let (_, opt) = ExhaustiveMapper::default().optimum(&problem);
        let geo = cost(
            &problem,
            &GeoMapper {
                seed,
                ..GeoMapper::default()
            }
            .map(&problem),
        );
        assert!(geo >= opt - 1e-9);
        if geo <= 1.2 * opt {
            within_20pct += 1;
        }
    }
    assert!(
        within_20pct >= 6,
        "Geo near-optimal on only {within_20pct}/{CASES} tiny instances"
    );
}

#[test]
fn all_mappers_handle_single_process() {
    let net = presets::paper_ec2_network(1, InstanceType::M4Xlarge, 1);
    let problem = MappingProblem::unconstrained(commgraph::CommPattern::empty(1), net);
    for mapper in mappers(1) {
        let m = mapper.map(&problem);
        assert_eq!(m.len(), 1, "{}", mapper.name());
        m.validate(&problem).unwrap();
    }
}

#[test]
fn all_mappers_handle_empty_pattern() {
    let net = presets::paper_ec2_network(2, InstanceType::M4Xlarge, 1);
    let problem = MappingProblem::unconstrained(commgraph::CommPattern::empty(8), net);
    for mapper in mappers(2) {
        let m = mapper.map(&problem);
        m.validate(&problem).unwrap();
        assert_eq!(cost(&problem, &m), 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_all_mappers_feasible_under_any_ratio(
        seed in 0u64..200,
        ratio in 0.0f64..1.0,
    ) {
        let problem = ec2_problem(16, seed, ratio);
        for mapper in mappers(seed) {
            let m = mapper.map(&problem);
            prop_assert!(m.validate(&problem).is_ok(), "{} infeasible", mapper.name());
        }
    }

    #[test]
    fn prop_geo_dominates_random_in_expectation(seed in 0u64..100) {
        let problem = ec2_problem(24, seed, 0.2);
        let base: f64 = (0..4)
            .map(|s| cost(&problem, &RandomMapper::with_seed(seed + s).map(&problem)))
            .sum::<f64>() / 4.0;
        let geo = cost(&problem, &GeoMapper { seed, ..GeoMapper::default() }.map(&problem));
        prop_assert!(geo < base, "geo {geo} vs random mean {base}");
    }
}
