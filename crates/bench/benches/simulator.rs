//! Criterion timing of the substrates: the discrete-event runtime
//! replaying full applications, network calibration and application
//! profiling (pattern generation + CYPRESS compression).

use commgraph::apps::AppKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geonet::{presets, CalibrationConfig, Calibrator, InstanceType, SiteId};
use mpirt::RunConfig;
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 1);
    let assignment: Vec<SiteId> = (0..64).map(|i| SiteId(i / 16)).collect();
    let mut group = c.benchmark_group("simulator");
    for kind in [AppKind::Lu, AppKind::KMeans, AppKind::Dnn] {
        let program = kind.workload(64).program();
        group.bench_with_input(
            BenchmarkId::new("des_execute", kind.name()),
            &program,
            |b, prog| {
                b.iter(|| {
                    black_box(mpirt::execute(
                        prog,
                        &net,
                        &assignment,
                        &RunConfig::comm_only(),
                    ))
                })
            },
        );
    }
    group.bench_function("profile_lu64", |b| {
        let w = AppKind::Lu.workload(64);
        b.iter(|| black_box(w.pattern()))
    });
    group.bench_function("calibrate_4_sites", |b| {
        b.iter(|| black_box(Calibrator::new(CalibrationConfig::default()).calibrate(&net)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime
}
criterion_main!(benches);
