//! Criterion timing of the substrates: the discrete-event runtime
//! replaying full applications, network calibration and application
//! profiling (pattern generation + CYPRESS compression).

use commgraph::apps::AppKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geomap_core::Trace;
use geonet::{presets, CalibrationConfig, Calibrator, InstanceType, SiteId};
use mpirt::RunConfig;
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 1);
    let assignment: Vec<SiteId> = (0..64).map(|i| SiteId(i / 16)).collect();
    let mut group = c.benchmark_group("simulator");
    for kind in [AppKind::Lu, AppKind::KMeans, AppKind::Dnn] {
        let program = kind.workload(64).program();
        group.bench_with_input(
            BenchmarkId::new("des_execute", kind.name()),
            &program,
            |b, prog| {
                b.iter(|| {
                    black_box(mpirt::execute(
                        prog,
                        &net,
                        &assignment,
                        &RunConfig::comm_only(),
                    ))
                })
            },
        );
    }
    group.bench_function("profile_lu64", |b| {
        let w = AppKind::Lu.workload(64);
        b.iter(|| black_box(w.pattern()))
    });
    group.bench_function("calibrate_4_sites", |b| {
        b.iter(|| black_box(Calibrator::new(CalibrationConfig::default()).calibrate(&net)))
    });
    group.finish();
}

/// The contract behind `mpirt::execute_traced(..., &Trace::off())`: a
/// disabled trace handle is a `None` check per event site and must not
/// slow the discrete-event replay measurably (documented <1% — asserted
/// at 15% to stay robust on noisy CI machines).
fn bench_trace_off_overhead(c: &mut Criterion) {
    let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 1);
    let assignment: Vec<SiteId> = (0..64).map(|i| SiteId(i / 16)).collect();
    let program = AppKind::KMeans.workload(64).program();
    let cfg = RunConfig::comm_only();
    let plain = || black_box(mpirt::execute(&program, &net, &assignment, &cfg)).makespan;
    let traced_off = || {
        black_box(mpirt::execute_traced(
            &program,
            &net,
            &assignment,
            &cfg,
            &Trace::off(),
        ))
        .makespan
    };

    let mut group = c.benchmark_group("simnet_trace_off");
    group.bench_function("plain", |b| b.iter(plain));
    group.bench_function("trace_off", |b| b.iter(traced_off));
    group.finish();

    // Best-of-trials wall-clock guard, independent of the criterion shim.
    let best_of = |f: &dyn Fn() -> f64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            for _ in 0..10 {
                black_box(f());
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    plain(); // warm up caches once before timing either variant
    let t_plain = best_of(&plain);
    let t_off = best_of(&traced_off);
    assert!(
        t_off <= t_plain * 1.15,
        "disabled tracing slowed the replay: {t_off:.6}s vs {t_plain:.6}s"
    );
    println!(
        "trace-off overhead: {:+.2}% (plain {t_plain:.6}s, traced-off {t_off:.6}s)",
        (t_off / t_plain - 1.0) * 100.0
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime, bench_trace_off_overhead
}
criterion_main!(benches);
