//! Criterion timing of the cost-function kernels: full Eq. 3 evaluation,
//! incremental swap deltas and the aggregate replays, plus the
//! delta-engine comparison rows (incremental vs full-recompute) for a
//! single candidate query and for a whole hill-climb refinement pass.

use commgraph::apps::AppKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geomap_core::{
    cost, cost::swap_delta, polish_with_tables, CostTables, Evaluation, Mapping, MappingProblem,
};
use geonet::{presets, InstanceType, SiteId};
use simnet::{bottleneck_time, sum_cost};
use std::hint::black_box;

fn problem(n: usize) -> (MappingProblem, Mapping) {
    let net = presets::paper_ec2_network(n / 4, InstanceType::M4Xlarge, 1);
    let p = MappingProblem::unconstrained(AppKind::KMeans.workload(n).pattern(), net);
    let m = Mapping::from((0..n).map(|i| i % 4).collect::<Vec<_>>());
    (p, m)
}

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_eval");
    for n in [64usize, 256, 1024] {
        let (p, m) = problem(n);
        group.bench_with_input(BenchmarkId::new("eq3_full", n), &n, |b, _| {
            b.iter(|| black_box(cost(&p, &m)))
        });
        // n/2 + 1 sits on a different site of the round-robin mapping, so
        // the delta cannot short-circuit to zero.
        group.bench_with_input(BenchmarkId::new("swap_delta", n), &n, |b, _| {
            b.iter(|| black_box(swap_delta(&p, &m, 0, n / 2 + 1)))
        });
        let assignment: Vec<SiteId> = m.as_slice().to_vec();
        group.bench_with_input(BenchmarkId::new("replay_sum", n), &n, |b, _| {
            b.iter(|| black_box(sum_cost(p.pattern(), p.network(), &assignment)))
        });
        group.bench_with_input(BenchmarkId::new("replay_bottleneck", n), &n, |b, _| {
            b.iter(|| black_box(bottleneck_time(p.pattern(), p.network(), &assignment)))
        });
    }
    group.finish();
}

/// One swap-delta query, incremental engine vs full-recompute oracle.
/// The incremental engine answers in `O(deg)` regardless of `n`; the
/// oracle re-walks the whole pattern.
fn bench_delta_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_engine");
    for n in [64usize, 256, 1024] {
        let (p, m) = problem(n);
        let tables = CostTables::build(&p, geomap_core::CostModel::Full);
        for (name, evaluation) in [
            ("swap_delta_inc", Evaluation::Incremental),
            ("swap_delta_full", Evaluation::FullRecompute),
        ] {
            let eval = evaluation.evaluator(&tables, m.as_slice().to_vec());
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(eval.swap_delta(0, n / 2 + 1)))
            });
        }
    }
    group.finish();
}

/// A full hill-climb refinement pass over all processes — the unit of
/// work Fig. 4's Geo-distributed overhead is made of. The incremental
/// engine must win by ≥5× at N ≥ 1024 (asserted in
/// `core/tests/delta_equivalence.rs` by term counts; measured in
/// wall-clock here).
fn bench_refine_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine_pass");
    for n in [256usize, 1024] {
        let (p, m) = problem(n);
        let tables = CostTables::build(&p, geomap_core::CostModel::Full);
        for (name, evaluation) in [
            ("inc", Evaluation::Incremental),
            ("full", Evaluation::FullRecompute),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let mut mapping = m.clone();
                    black_box(polish_with_tables(
                        &tables,
                        evaluation,
                        &mut mapping,
                        1,
                        &|_| true,
                        &|_, _| true,
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cost, bench_delta_engines, bench_refine_pass);
criterion_main!(benches);
