//! Criterion timing of the cost-function kernels: full Eq. 3 evaluation,
//! incremental swap deltas and the aggregate replays, plus the
//! delta-engine comparison rows (incremental vs full-recompute) for a
//! single candidate query and for a whole hill-climb refinement pass.

use commgraph::apps::AppKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geomap_core::{
    cost, cost::swap_delta, polish_with_tables, polish_with_tables_stats, CostTables, Evaluation,
    Mapping, MappingProblem, Metrics,
};
use geonet::{presets, InstanceType, SiteId};
use simnet::{bottleneck_time, sum_cost};
use std::hint::black_box;

fn problem(n: usize) -> (MappingProblem, Mapping) {
    let net = presets::paper_ec2_network(n / 4, InstanceType::M4Xlarge, 1);
    let p = MappingProblem::unconstrained(AppKind::KMeans.workload(n).pattern(), net);
    let m = Mapping::from((0..n).map(|i| i % 4).collect::<Vec<_>>());
    (p, m)
}

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_eval");
    for n in [64usize, 256, 1024] {
        let (p, m) = problem(n);
        group.bench_with_input(BenchmarkId::new("eq3_full", n), &n, |b, _| {
            b.iter(|| black_box(cost(&p, &m)))
        });
        // n/2 + 1 sits on a different site of the round-robin mapping, so
        // the delta cannot short-circuit to zero.
        group.bench_with_input(BenchmarkId::new("swap_delta", n), &n, |b, _| {
            b.iter(|| black_box(swap_delta(&p, &m, 0, n / 2 + 1)))
        });
        let assignment: Vec<SiteId> = m.as_slice().to_vec();
        group.bench_with_input(BenchmarkId::new("replay_sum", n), &n, |b, _| {
            b.iter(|| black_box(sum_cost(p.pattern(), p.network(), &assignment)))
        });
        group.bench_with_input(BenchmarkId::new("replay_bottleneck", n), &n, |b, _| {
            b.iter(|| black_box(bottleneck_time(p.pattern(), p.network(), &assignment)))
        });
    }
    group.finish();
}

/// One swap-delta query, incremental engine vs full-recompute oracle.
/// The incremental engine answers in `O(deg)` regardless of `n`; the
/// oracle re-walks the whole pattern.
fn bench_delta_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_engine");
    for n in [64usize, 256, 1024] {
        let (p, m) = problem(n);
        let tables = CostTables::build(&p, geomap_core::CostModel::Full);
        for (name, evaluation) in [
            ("swap_delta_inc", Evaluation::Incremental),
            ("swap_delta_full", Evaluation::FullRecompute),
        ] {
            let eval = evaluation.evaluator(&tables, m.as_slice().to_vec());
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(eval.swap_delta(0, n / 2 + 1)))
            });
        }
    }
    group.finish();
}

/// A full hill-climb refinement pass over all processes — the unit of
/// work Fig. 4's Geo-distributed overhead is made of. The incremental
/// engine must win by ≥5× at N ≥ 1024 (asserted in
/// `core/tests/delta_equivalence.rs` by term counts; measured in
/// wall-clock here).
fn bench_refine_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine_pass");
    for n in [256usize, 1024] {
        let (p, m) = problem(n);
        let tables = CostTables::build(&p, geomap_core::CostModel::Full);
        for (name, evaluation) in [
            ("inc", Evaluation::Incremental),
            ("full", Evaluation::FullRecompute),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let mut mapping = m.clone();
                    black_box(polish_with_tables(
                        &tables,
                        evaluation,
                        &mut mapping,
                        1,
                        &|_| true,
                        &|_, _| true,
                    ))
                })
            });
        }
    }
    group.finish();
}

/// Guard: the observability layer must be zero-cost when disabled.
/// `polish_with_tables_stats` + `SearchStats::emit` on a `Metrics::off()`
/// handle runs the same inner-loop instructions as the plain entry point
/// (the contract is <1% overhead — counters live in plain integers and
/// the disabled handle never reads the clock). The assertion uses a
/// deliberately loose 15% band so scheduler noise cannot flake CI; the
/// criterion rows print the tight numbers for human inspection.
fn bench_null_sink_overhead(c: &mut Criterion) {
    let (p, m) = problem(256);
    let tables = CostTables::build(&p, geomap_core::CostModel::Full);
    let plain = || {
        let mut mapping = m.clone();
        black_box(polish_with_tables(
            &tables,
            Evaluation::Incremental,
            &mut mapping,
            1,
            &|_| true,
            &|_, _| true,
        ))
    };
    let instrumented = || {
        let mut mapping = m.clone();
        let stats = polish_with_tables_stats(
            &tables,
            Evaluation::Incremental,
            &mut mapping,
            1,
            &|_| true,
            &|_, _| true,
        );
        stats.emit(&Metrics::off());
        black_box(stats.swaps_accepted as usize)
    };

    let mut group = c.benchmark_group("refine_pass_metrics_off");
    group.bench_function("plain", |b| b.iter(plain));
    group.bench_function("null_sink", |b| b.iter(instrumented));
    group.finish();

    // Best-of-trials wall-clock guard, independent of the criterion shim.
    let best_of = |f: &dyn Fn() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            for _ in 0..10 {
                black_box(f());
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    plain(); // warm up caches once before timing either variant
    let t_plain = best_of(&plain);
    let t_instr = best_of(&instrumented);
    assert!(
        t_instr <= t_plain * 1.15,
        "disabled metrics slowed refine_pass: {t_instr:.6}s vs {t_plain:.6}s"
    );
    println!(
        "null-sink overhead: {:+.2}% (plain {t_plain:.6}s, instrumented {t_instr:.6}s)",
        (t_instr / t_plain - 1.0) * 100.0
    );
}

criterion_group!(
    benches,
    bench_cost,
    bench_delta_engines,
    bench_refine_pass,
    bench_null_sink_overhead
);
criterion_main!(benches);
