//! Criterion timing of the cost-function kernels: full Eq. 3 evaluation,
//! incremental swap deltas and the aggregate replays.

use commgraph::apps::AppKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geomap_core::{cost, cost::swap_delta, Mapping, MappingProblem};
use geonet::{presets, InstanceType, SiteId};
use simnet::{bottleneck_time, sum_cost};
use std::hint::black_box;

fn problem(n: usize) -> (MappingProblem, Mapping) {
    let net = presets::paper_ec2_network(n / 4, InstanceType::M4Xlarge, 1);
    let p = MappingProblem::unconstrained(AppKind::KMeans.workload(n).pattern(), net);
    let m = Mapping::from((0..n).map(|i| i % 4).collect::<Vec<_>>());
    (p, m)
}

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_eval");
    for n in [64usize, 256, 1024] {
        let (p, m) = problem(n);
        group.bench_with_input(BenchmarkId::new("eq3_full", n), &n, |b, _| {
            b.iter(|| black_box(cost(&p, &m)))
        });
        group.bench_with_input(BenchmarkId::new("swap_delta", n), &n, |b, _| {
            b.iter(|| black_box(swap_delta(&p, &m, 0, n / 2)))
        });
        let assignment: Vec<SiteId> = m.as_slice().to_vec();
        group.bench_with_input(BenchmarkId::new("replay_sum", n), &n, |b, _| {
            b.iter(|| black_box(sum_cost(p.pattern(), p.network(), &assignment)))
        });
        group.bench_with_input(BenchmarkId::new("replay_bottleneck", n), &n, |b, _| {
            b.iter(|| black_box(bottleneck_time(p.pattern(), p.network(), &assignment)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
