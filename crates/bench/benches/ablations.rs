//! Criterion timing of the Geo-distributed ablation knobs: grouping
//! factor κ (order-search size), order-search strategy and rayon
//! parallelism.

use commgraph::apps::AppKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geomap_core::{GeoMapper, Mapper, MappingProblem, OrderSearch};
use geonet::{presets, InstanceType};
use std::hint::black_box;

fn problem() -> MappingProblem {
    let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 1);
    MappingProblem::unconstrained(AppKind::Lu.workload(64).pattern(), net)
}

fn bench_ablations(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("geo_ablations");
    for kappa in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("kappa", kappa), &kappa, |b, &k| {
            let mapper = GeoMapper {
                kappa: k,
                ..GeoMapper::default()
            };
            b.iter(|| black_box(mapper.map(&p)))
        });
    }
    group.bench_function("order_first_only", |b| {
        let mapper = GeoMapper {
            order_search: OrderSearch::FirstOnly,
            ..GeoMapper::default()
        };
        b.iter(|| black_box(mapper.map(&p)))
    });
    group.bench_function("serial_orders", |b| {
        let mapper = GeoMapper {
            parallel: false,
            ..GeoMapper::default()
        };
        b.iter(|| black_box(mapper.map(&p)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
