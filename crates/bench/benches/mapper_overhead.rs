//! Criterion timing of the mappers' optimization overhead (Fig. 4's
//! quantity, measured precisely): Baseline, Greedy, MPIPP and
//! Geo-distributed at the paper's scales.

use baselines::{GreedyMapper, MpippMapper, RandomMapper};
use commgraph::apps::AppKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geomap_core::{GeoMapper, Mapper, MappingProblem};
use geonet::{presets, InstanceType};
use std::hint::black_box;

fn problem(sites: usize, processes: usize) -> MappingProblem {
    let regions = ["us-east-1", "us-west-2", "ap-southeast-1", "eu-west-1"];
    let net_sites = presets::ec2_sites(&regions[..sites], processes / sites);
    let net = geonet::SynthNetworkBuilder::new(geonet::SynthConfig::ec2(InstanceType::M4Xlarge))
        .build(net_sites);
    MappingProblem::unconstrained(AppKind::Lu.workload(processes).pattern(), net)
}

fn bench_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_overhead");
    for (sites, processes) in [(1usize, 32usize), (2, 64), (4, 64), (4, 128), (4, 256)] {
        let p = problem(sites, processes);
        let scale = format!("{sites}s/{processes}p");
        group.bench_with_input(BenchmarkId::new("baseline", &scale), &p, |b, p| {
            b.iter(|| black_box(RandomMapper::with_seed(1).map(p)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", &scale), &p, |b, p| {
            b.iter(|| black_box(GreedyMapper::default().map(p)))
        });
        group.bench_with_input(BenchmarkId::new("geo", &scale), &p, |b, p| {
            b.iter(|| black_box(GeoMapper::default().map(p)))
        });
        // Same mapper on the full-recompute oracle engine: the gap to
        // "geo" is the end-to-end payoff of incremental Δ evaluation.
        group.bench_with_input(
            BenchmarkId::new("geo_full_recompute", &scale),
            &p,
            |b, p| {
                b.iter(|| {
                    let mapper = GeoMapper {
                        evaluation: geomap_core::Evaluation::FullRecompute,
                        ..GeoMapper::default()
                    };
                    black_box(mapper.map(p))
                })
            },
        );
        // MPIPP is O(N^3)-ish; keep it to the smaller scales so the suite
        // stays runnable (the paper similarly drops it at scale).
        if processes <= 64 {
            group.bench_with_input(BenchmarkId::new("mpipp", &scale), &p, |b, p| {
                b.iter(|| black_box(MpippMapper::with_seed(1).map(p)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mappers
}
criterion_main!(benches);
