//! The observability off-path contract for the mapping service.
//!
//! PR 8 threads latency histograms and a trace scope through the
//! request path. Both must cost nothing when disabled — the histogram
//! recorder is an enabled-flag check, the trace scope a `None` check —
//! and near-nothing when only histograms are on (two `Instant` reads
//! and one sharded-mutex bucket increment per request). Measured on
//! the hottest path the daemon has: an in-memory result-cache hit.
//!
//! Documented <1%; asserted at 15% to stay robust on noisy CI
//! machines (the same margin as the simulator's trace-off contract).

use commgraph::apps::AppKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use geomap_service::proto::Response;
use geomap_service::{MapRequest, MappingService, Request, ServiceConfig};
use geonet::{presets, InstanceType};

fn service(record_hists: bool) -> MappingService {
    let network = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42);
    let service = MappingService::new(
        network,
        ServiceConfig {
            workers: 2,
            record_hists,
            ..ServiceConfig::default()
        },
    );
    // Warm the result cache so every benched request is a pure hit.
    let warm = Response::Map(match service.handle(&Request::Map(request())) {
        Response::Map(m) => m,
        other => panic!("warm request failed: {other:?}"),
    });
    black_box(warm);
    service
}

fn request() -> MapRequest {
    let pattern_csv = AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(16)
        .pattern()
        .to_csv();
    MapRequest::new("obs-bench", pattern_csv)
}

fn bench_obs_off_overhead(c: &mut Criterion) {
    let baseline = service(false);
    let observed = service(true);
    let req = Request::Map(request());
    let hit = |svc: &MappingService| match black_box(svc.handle(&req)) {
        Response::Map(m) => {
            assert_eq!(
                m.cached.label(),
                "result",
                "bench must stay on the hit path"
            );
        }
        other => panic!("unexpected {other:?}"),
    };

    let mut group = c.benchmark_group("service_obs_off");
    group.bench_function("hists_off", |b| b.iter(|| hit(&baseline)));
    group.bench_function("hists_on_trace_off", |b| b.iter(|| hit(&observed)));
    group.finish();

    // Best-of-trials wall-clock guard, independent of the criterion
    // shim: observability enabled (but trace off) must stay within the
    // noise margin of the stripped service.
    let best_of = |svc: &MappingService| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            for _ in 0..200 {
                hit(svc);
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    hit(&baseline); // warm both paths once before timing
    hit(&observed);
    let t_off = best_of(&baseline);
    let t_on = best_of(&observed);
    assert!(
        t_on <= t_off * 1.15,
        "observability slowed the hit path: {t_on:.6}s vs {t_off:.6}s"
    );
    println!(
        "obs-on overhead: {:+.2}% (hists-off {t_off:.6}s, hists-on {t_on:.6}s)",
        (t_on / t_off - 1.0) * 100.0
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_off_overhead
}
criterion_main!(benches);
