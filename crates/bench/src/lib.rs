//! Experiment harness reproducing every table and figure of the SC'17
//! paper's evaluation (§2 and §5).
//!
//! Each experiment lives in [`experiments`] and is runnable through the
//! `repro` binary:
//!
//! ```text
//! cargo run -p geomap-bench --release --bin repro -- <experiment> [--quick] [--seed N]
//! ```
//!
//! where `<experiment>` is one of `table1 table2 table3 fig3 fig4 fig5
//! fig6 fig7 fig8 fig9 fig10 ablations all`. Results print to stdout and
//! are also written as CSV into `results/` (override with
//! `GEOMAP_RESULTS`). `--quick` shrinks sample counts and scale sweeps
//! for smoke-testing; the defaults approach the paper's scales.

#![warn(missing_docs)]

pub mod experiments;
pub mod setup;
pub mod svg;
pub mod util;

pub use util::ExpContext;
