//! Shared experiment setups: networks, workloads and problems matching
//! the paper's §5.1 configuration.

use commgraph::apps::AppKind;
use geomap_core::{ConstraintVector, MappingProblem};
use geonet::{presets, InstanceType, SiteNetwork};

/// The paper's EC2 deployment: 4 regions (US East, US West, Singapore,
/// Ireland) × `nodes_per_site` m4.xlarge instances.
pub fn ec2_network(nodes_per_site: usize, seed: u64) -> SiteNetwork {
    presets::paper_ec2_network(nodes_per_site, InstanceType::M4Xlarge, seed)
}

/// The paper's default EC2 evaluation problem for one application:
/// `n = 4 · nodes_per_site` processes, one per instance, constraint
/// ratio 0.2 (§5.1) unless overridden.
pub fn app_problem(
    app: AppKind,
    nodes_per_site: usize,
    constraint_ratio: f64,
    seed: u64,
) -> MappingProblem {
    let net = ec2_network(nodes_per_site, seed);
    let n = 4 * nodes_per_site;
    let pattern = app.workload(n).pattern();
    let constraints = if constraint_ratio > 0.0 {
        ConstraintVector::random(n, constraint_ratio, &net.capacities(), seed ^ 0xC0)
    } else {
        ConstraintVector::none(n)
    };
    MappingProblem::new(pattern, net, constraints)
}

/// The paper's default: 64 processes, constraint ratio 0.2.
pub fn paper_default_problem(app: AppKind, seed: u64) -> MappingProblem {
    app_problem(app, 16, 0.2, seed)
}

/// A simulation-scale problem: 4 regions, `machines` nodes evenly
/// distributed, one process per node (Fig. 7's sweep).
pub fn scale_problem(app: AppKind, machines: usize, seed: u64) -> MappingProblem {
    assert!(
        machines.is_multiple_of(4),
        "machines must divide evenly over 4 regions"
    );
    app_problem(app, machines / 4, 0.2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let p = paper_default_problem(AppKind::Lu, 1);
        assert_eq!(p.num_processes(), 64);
        assert_eq!(p.num_sites(), 4);
        assert!((p.constraints().ratio() - 0.2).abs() < 0.02);
    }

    #[test]
    fn scale_problem_distributes_evenly() {
        let p = scale_problem(AppKind::KMeans, 128, 2);
        assert_eq!(p.num_processes(), 128);
        assert_eq!(p.capacities(), vec![32; 4]);
    }

    #[test]
    fn zero_ratio_means_unconstrained() {
        let p = app_problem(AppKind::Dnn, 4, 0.0, 1);
        assert_eq!(p.constraints().num_pinned(), 0);
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn uneven_scale_rejected() {
        scale_problem(AppKind::Lu, 65, 1);
    }
}
