//! Minimal self-contained SVG chart rendering.
//!
//! The harness's primary artifacts are CSVs, but a reproduction repo
//! should also ship figures a reader can eyeball against the paper.
//! This module renders the three chart shapes the paper uses — grouped
//! bars (Figs. 4–6), multi-series lines (Figs. 7, 8, 10) and CDFs with
//! markers (Fig. 9) — as plain SVG with no dependencies.
//!
//! Layout constants are deliberately simple: fixed canvas, linear or
//! log-10 x, linear y, a legend strip at the top.

use std::fmt::Write as _;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 60.0;

/// Series colours (colour-blind-safe-ish).
const COLORS: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

fn plot_w() -> f64 {
    WIDTH - MARGIN_L - MARGIN_R
}
fn plot_h() -> f64 {
    HEIGHT - MARGIN_T - MARGIN_B
}

fn header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">\n\
         <rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>\n\
         <text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        WIDTH / 2.0,
        escape(title)
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn legend(names: &[&str]) -> String {
    let mut out = String::new();
    let mut x = MARGIN_L;
    for (i, name) in names.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let _ = writeln!(
            out,
            "<rect x=\"{x}\" y=\"28\" width=\"12\" height=\"12\" fill=\"{color}\"/>\
             <text x=\"{}\" y=\"38\">{}</text>",
            x + 16.0,
            escape(name)
        );
        x += 16.0 + 8.0 * name.len() as f64 + 24.0;
    }
    out
}

fn y_axis(max: f64, label: &str) -> String {
    let mut out = String::new();
    let ticks = 5usize;
    for t in 0..=ticks {
        let v = max * t as f64 / ticks as f64;
        let y = MARGIN_T + plot_h() * (1.0 - t as f64 / ticks as f64);
        let _ = writeln!(
            out,
            "<line x1=\"{MARGIN_L}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ddd\"/>\
             <text x=\"{}\" y=\"{}\" text-anchor=\"end\">{v:.0}</text>",
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y + 4.0,
        );
    }
    let _ = writeln!(
        out,
        "<text x=\"16\" y=\"{}\" transform=\"rotate(-90 16 {})\" text-anchor=\"middle\">{}</text>",
        MARGIN_T + plot_h() / 2.0,
        MARGIN_T + plot_h() / 2.0,
        escape(label)
    );
    out
}

/// A grouped bar chart: one group per `categories` entry, one bar per
/// series (Figs. 4–6 style).
pub fn grouped_bars(
    title: &str,
    categories: &[&str],
    series: &[(&str, Vec<f64>)],
    y_label: &str,
) -> String {
    assert!(!categories.is_empty() && !series.is_empty());
    for (name, vals) in series {
        assert_eq!(
            vals.len(),
            categories.len(),
            "series {name} length mismatch"
        );
    }
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12)
        * 1.1;

    let mut out = header(title);
    out.push_str(&legend(&series.iter().map(|(n, _)| *n).collect::<Vec<_>>()));
    out.push_str(&y_axis(max, y_label));

    let group_w = plot_w() / categories.len() as f64;
    let bar_w = (group_w * 0.8) / series.len() as f64;
    for (ci, cat) in categories.iter().enumerate() {
        let gx = MARGIN_L + group_w * ci as f64 + group_w * 0.1;
        for (si, (_, vals)) in series.iter().enumerate() {
            let v = vals[ci].max(0.0);
            let h = plot_h() * v / max;
            let x = gx + bar_w * si as f64;
            let y = MARGIN_T + plot_h() - h;
            let _ = writeln!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{h:.1}\" fill=\"{}\"/>",
                COLORS[si % COLORS.len()]
            );
        }
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            gx + group_w * 0.4,
            MARGIN_T + plot_h() + 18.0,
            escape(cat)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// A multi-series line chart. `log_x` plots x on a log-10 axis
/// (Figs. 7 and 10 use machine counts / budgets in powers of two/ten).
pub fn lines(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    x_label: &str,
    y_label: &str,
    log_x: bool,
) -> String {
    assert!(!series.is_empty());
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
        .collect();
    assert!(!xs.is_empty(), "no points");
    let tx = |x: f64| -> f64 {
        let (lo, hi) = (
            xs.iter().cloned().fold(f64::INFINITY, f64::min),
            xs.iter().cloned().fold(0.0f64, f64::max),
        );
        let (x, lo, hi) = if log_x {
            (x.log10(), lo.log10(), hi.log10())
        } else {
            (x, lo, hi)
        };
        MARGIN_L + plot_w() * ((x - lo) / (hi - lo).max(1e-12))
    };
    let max_y = ys.iter().cloned().fold(0.0f64, f64::max).max(1e-12) * 1.1;
    let ty = |y: f64| MARGIN_T + plot_h() * (1.0 - y / max_y);

    let mut out = header(title);
    out.push_str(&legend(&series.iter().map(|(n, _)| *n).collect::<Vec<_>>()));
    out.push_str(&y_axis(max_y, y_label));
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
        MARGIN_L + plot_w() / 2.0,
        HEIGHT - 14.0,
        escape(x_label)
    );

    for (si, (_, pts)) in series.iter().enumerate() {
        let mut d = String::new();
        let mut sorted = pts.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (i, (x, y)) in sorted.iter().enumerate() {
            let _ = write!(
                d,
                "{}{:.1},{:.1} ",
                if i == 0 { "M" } else { "L" },
                tx(*x),
                ty(*y)
            );
        }
        let color = COLORS[si % COLORS.len()];
        let _ = writeln!(
            out,
            "<path d=\"{d}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>"
        );
        for (x, y) in &sorted {
            let _ = writeln!(
                out,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>",
                tx(*x),
                ty(*y)
            );
        }
        // X tick labels from the first series only.
        if si == 0 {
            for (x, _) in &sorted {
                let _ = writeln!(
                    out,
                    "<text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
                    tx(*x),
                    MARGIN_T + plot_h() + 18.0,
                    if *x >= 1000.0 {
                        format!("{:.0}k", x / 1000.0)
                    } else {
                        format!("{x:.1}")
                    }
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

/// A CDF plot with vertical algorithm markers (Fig. 9 style). `cdf` is
/// the sorted normalized costs; `markers` are `(label, normalized
/// cost)` verticals.
pub fn cdf_with_markers(title: &str, cdf: &[f64], markers: &[(&str, f64)]) -> String {
    assert!(!cdf.is_empty());
    let n = cdf.len();
    let series: Vec<(f64, f64)> = cdf
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, (i + 1) as f64 / n as f64))
        .collect();
    let tx = |x: f64| MARGIN_L + plot_w() * x.clamp(0.0, 1.0);
    let ty = |y: f64| MARGIN_T + plot_h() * (1.0 - y);

    let mut out = header(title);
    out.push_str(&y_axis(1.0, "cumulative fraction"));
    let mut d = String::new();
    // Down-sample the path to ~400 points.
    let step = (n / 400).max(1);
    for (i, (x, y)) in series.iter().step_by(step).enumerate() {
        let _ = write!(
            d,
            "{}{:.1},{:.1} ",
            if i == 0 { "M" } else { "L" },
            tx(*x),
            ty(*y)
        );
    }
    let _ = writeln!(
        out,
        "<path d=\"{d}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>",
        COLORS[0]
    );
    for (i, (label, x)) in markers.iter().enumerate() {
        let color = COLORS[(i + 1) % COLORS.len()];
        let _ = writeln!(
            out,
            "<line x1=\"{0:.1}\" y1=\"{MARGIN_T}\" x2=\"{0:.1}\" y2=\"{1}\" stroke=\"{color}\" \
             stroke-dasharray=\"4 3\" stroke-width=\"2\"/>\
             <text x=\"{0:.1}\" y=\"{2}\" text-anchor=\"middle\" fill=\"{color}\">{3}</text>",
            tx(*x),
            MARGIN_T + plot_h(),
            MARGIN_T - 6.0,
            escape(label)
        );
    }
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">normalized communication time</text>",
        MARGIN_L + plot_w() / 2.0,
        HEIGHT - 14.0
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_render_every_rect() {
        let svg = grouped_bars(
            "Fig 5",
            &["BT", "SP", "LU"],
            &[
                ("Greedy", vec![40.0, 45.0, 39.0]),
                ("Geo", vec![55.0, 56.0, 60.0]),
            ],
            "improvement %",
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 3 categories x 2 series bars + white background + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 2 + 6);
        assert!(svg.contains("BT"));
    }

    #[test]
    fn lines_render_paths_and_points() {
        let svg = lines(
            "Fig 7",
            &[("Geo", vec![(64.0, 55.0), (256.0, 53.0), (1024.0, 52.0)])],
            "machines",
            "improvement %",
            true,
        );
        assert_eq!(svg.matches("<path").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("1k")); // log-x tick label
    }

    #[test]
    fn cdf_renders_markers() {
        let cdf: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let svg = cdf_with_markers("Fig 9", &cdf, &[("Geo", 0.2), ("Greedy", 0.5)]);
        assert_eq!(svg.matches("stroke-dasharray").count(), 2);
        assert!(svg.contains("Geo") && svg.contains("Greedy"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = grouped_bars("a < b & c", &["x"], &[("s", vec![1.0])], "y");
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bars_validate_lengths() {
        grouped_bars("t", &["a", "b"], &[("s", vec![1.0])], "y");
    }

    #[test]
    fn flat_data_does_not_divide_by_zero() {
        let svg = lines(
            "flat",
            &[("s", vec![(1.0, 0.0), (2.0, 0.0)])],
            "x",
            "y",
            false,
        );
        assert!(!svg.contains("NaN"));
    }
}
