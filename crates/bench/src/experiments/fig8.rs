//! Figure 8: performance improvement of Geo-distributed over Greedy at
//! different data-movement constraint ratios (LU, K-means, DNN).
//!
//! Expected shape (§5.4): improvement shrinks as the ratio grows (less
//! freedom to optimize) and vanishes at ratio 1.0 where the mapping is
//! fully determined; LU and K-means decline concavely (slow at first),
//! DNN roughly linearly.

use crate::setup::app_problem;
use crate::util::{improvement_pct, Csv, ExpContext};
use baselines::GreedyMapper;
use commgraph::apps::AppKind;
use geomap_core::{cost, GeoMapper, Mapper};

/// Constraint ratios of the sweep (paper's x-axis, 20 % … 100 %).
pub const RATIOS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Improvement of Geo over Greedy for one app/ratio, averaged over a few
/// random constraint draws.
pub fn improvement_at(app: AppKind, ratio: f64, draws: usize, seed: u64) -> f64 {
    improvement_at_scaled(app, ratio, draws, 16, seed)
}

/// Same, with an explicit per-site node count (quick mode shrinks it).
pub fn improvement_at_scaled(
    app: AppKind,
    ratio: f64,
    draws: usize,
    nodes: usize,
    seed: u64,
) -> f64 {
    let total: f64 = (0..draws)
        .map(|d| {
            let problem = app_problem(app, nodes, ratio, seed.wrapping_add(d as u64 * 131));
            let greedy = cost(&problem, &GreedyMapper::default().map(&problem));
            let geo = cost(
                &problem,
                &GeoMapper {
                    seed,
                    ..GeoMapper::default()
                }
                .map(&problem),
            );
            improvement_pct(greedy, geo)
        })
        .sum();
    total / draws as f64
}

/// Run the figure.
pub fn run(ctx: &ExpContext) {
    println!("== Fig. 8: improvement over Greedy vs constraint ratio ==");
    let draws = ctx.scaled(5, 2);
    let nodes = ctx.scaled(16, 4);
    let apps = [AppKind::Lu, AppKind::KMeans, AppKind::Dnn];
    let mut csv = Csv::new(&["app", "ratio", "improvement_over_greedy_pct"]);
    let mut series: Vec<(&str, Vec<(f64, f64)>)> =
        apps.iter().map(|a| (a.name(), Vec::new())).collect();
    println!(
        "{:<9} {}",
        "ratio",
        apps.map(|a| format!("{:>9}", a.name())).join(" ")
    );
    for ratio in RATIOS {
        let mut cells = Vec::new();
        for (ai, app) in apps.iter().enumerate() {
            let imp = improvement_at_scaled(*app, ratio, draws, nodes, ctx.seed);
            cells.push(format!("{imp:>9.1}"));
            csv.row(&[
                app.name().into(),
                format!("{ratio:.1}"),
                format!("{imp:.2}"),
            ]);
            series[ai].1.push((ratio * 100.0, imp));
        }
        println!("{ratio:<9.1} {}", cells.join(" "));
    }
    ctx.write_csv("fig8_constraints.csv", &csv.finish());
    let svg = crate::svg::lines(
        "Fig. 8 — improvement over Greedy vs constraint ratio",
        &series,
        "constraint ratio (%)",
        "improvement over Greedy (%)",
        false,
    );
    ctx.write_csv("fig8_constraints.svg", &svg);
    println!("(expected: declines to ~0 at ratio 1.0; LU/K-means concave, DNN near-linear)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_constrained_gives_zero_improvement() {
        // At ratio 1.0 both mappers emit the same (forced) mapping.
        let imp = improvement_at(AppKind::Lu, 1.0, 1, 3);
        assert!(imp.abs() < 1e-9, "got {imp}");
    }

    #[test]
    fn runs_in_smoke_mode() {
        run(&ExpContext::smoke());
    }
}
