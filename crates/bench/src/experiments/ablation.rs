//! Ablations of the Geo-distributed algorithm's design choices
//! (DESIGN.md §5): grouping κ, order search, objective terms, seeding.
//!
//! Each ablation reports mapping quality (Eq. 3 cost, normalized to the
//! paper-default configuration) and optimization wall-clock.

use crate::setup::app_problem;
use crate::util::{fmt_secs, timed, Csv, ExpContext};
use commgraph::apps::AppKind;
use geomap_core::{cost, CostModel, GeoMapper, Mapper, MappingProblem, OrderSearch, Seeding};

struct Variant {
    label: &'static str,
    mapper: GeoMapper,
}

fn variants(seed: u64) -> Vec<(&'static str, Vec<Variant>)> {
    let base = GeoMapper {
        seed,
        ..GeoMapper::default()
    };
    vec![
        (
            "grouping (kappa)",
            vec![
                Variant {
                    label: "kappa=1",
                    mapper: GeoMapper {
                        kappa: 1,
                        ..base.clone()
                    },
                },
                Variant {
                    label: "kappa=2",
                    mapper: GeoMapper {
                        kappa: 2,
                        ..base.clone()
                    },
                },
                Variant {
                    label: "kappa=3",
                    mapper: GeoMapper {
                        kappa: 3,
                        ..base.clone()
                    },
                },
                Variant {
                    label: "kappa=4 (paper)",
                    mapper: base.clone(),
                },
            ],
        ),
        (
            "order search",
            vec![
                Variant {
                    label: "exhaustive (paper)",
                    mapper: base.clone(),
                },
                Variant {
                    label: "first-order only",
                    mapper: GeoMapper {
                        order_search: OrderSearch::FirstOnly,
                        ..base.clone()
                    },
                },
                Variant {
                    label: "random-4 orders",
                    mapper: GeoMapper {
                        order_search: OrderSearch::Random { samples: 4 },
                        ..base.clone()
                    },
                },
            ],
        ),
        (
            "objective terms",
            vec![
                Variant {
                    label: "alpha-beta (paper)",
                    mapper: base.clone(),
                },
                Variant {
                    label: "latency-only",
                    mapper: GeoMapper {
                        cost_model: CostModel::LatencyOnly,
                        ..base.clone()
                    },
                },
                Variant {
                    label: "bandwidth-only",
                    mapper: GeoMapper {
                        cost_model: CostModel::BandwidthOnly,
                        ..base.clone()
                    },
                },
            ],
        ),
        (
            "refinement",
            vec![
                Variant {
                    label: "hill-climb on (paper cfg)",
                    mapper: base.clone(),
                },
                Variant {
                    label: "construction only",
                    mapper: GeoMapper {
                        refine: false,
                        ..base.clone()
                    },
                },
            ],
        ),
        (
            "site seeding",
            vec![
                Variant {
                    label: "heaviest (paper)",
                    mapper: base.clone(),
                },
                Variant {
                    label: "random seed proc",
                    mapper: GeoMapper {
                        seeding: Seeding::Random,
                        ..base
                    },
                },
            ],
        ),
    ]
}

fn evaluate(mapper: &GeoMapper, problem: &MappingProblem) -> (f64, f64) {
    let (mapping, elapsed) = timed(|| mapper.map(problem));
    mapping.validate(problem).unwrap();
    (cost(problem, &mapping), elapsed.as_secs_f64())
}

/// Run all ablations.
pub fn run(ctx: &ExpContext) {
    println!("== Ablations of the Geo-distributed design choices ==");
    let apps = if ctx.quick {
        vec![AppKind::Lu]
    } else {
        vec![AppKind::Lu, AppKind::KMeans]
    };
    let mut csv = Csv::new(&[
        "ablation",
        "variant",
        "app",
        "cost_norm_to_paper",
        "seconds",
    ]);
    let nodes = ctx.scaled(16, 4);
    for app in apps {
        let problem = app_problem(app, nodes, 0.2, ctx.seed);
        println!("\n--- workload {app} ---");
        for (ablation, vs) in variants(ctx.seed) {
            let (paper_cost, _) = evaluate(
                &GeoMapper {
                    seed: ctx.seed,
                    ..GeoMapper::default()
                },
                &problem,
            );
            println!("[{ablation}]");
            for v in vs {
                let (c, secs) = evaluate(&v.mapper, &problem);
                let norm = c / paper_cost;
                println!(
                    "  {:<20} cost x{:.3}  time {}",
                    v.label,
                    norm,
                    fmt_secs(secs)
                );
                csv.row(&[
                    ablation.into(),
                    v.label.into(),
                    app.name().into(),
                    format!("{norm:.4}"),
                    format!("{secs:.6}"),
                ]);
            }
        }
    }
    ctx.write_csv("ablations.csv", &csv.finish());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::paper_default_problem;

    #[test]
    fn paper_config_is_never_beaten_by_first_only() {
        let problem = paper_default_problem(AppKind::KMeans, 7);
        let base = GeoMapper {
            seed: 7,
            ..GeoMapper::default()
        };
        let (paper_cost, _) = evaluate(&base, &problem);
        let (first_cost, _) = evaluate(
            &GeoMapper {
                order_search: OrderSearch::FirstOnly,
                ..base
            },
            &problem,
        );
        assert!(paper_cost <= first_cost + 1e-9);
    }

    #[test]
    fn runs_in_smoke_mode() {
        run(&ExpContext::smoke());
    }
}
