//! Figure 7: performance improvement at different scales (64 … 8192
//! machines) for LU, K-means and DNN.
//!
//! The paper's large-scale study simulates communication time only; we
//! use the Eq. 2 cost replay (see `simnet::replay`) so the sweep stays
//! tractable at 8192 processes. MPIPP is dropped beyond 256 processes,
//! as the paper drops it beyond ~1000 for its runtime overhead.
//!
//! Expected shape (§5.4): improvements decline slowly with scale, Geo
//! stays above 50 % even at 8192, Greedy holds on LU (> 30 %) but stays
//! under ~10 % for K-means and DNN.

use crate::setup::scale_problem;
use crate::util::{improvement_pct, mean, Csv, ExpContext};
use baselines::{GreedyMapper, MpippMapper, RandomMapper};
use commgraph::apps::AppKind;
use geomap_core::{cost, GeoMapper, Mapper};

/// Machine counts of the full sweep.
pub const FULL_SCALES: [usize; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Run the figure.
pub fn run(ctx: &ExpContext) {
    println!("== Fig. 7: improvement vs scale (communication cost model) ==");
    let scales: Vec<usize> = if ctx.quick {
        vec![64, 128, 256]
    } else {
        FULL_SCALES.to_vec()
    };
    let apps = [AppKind::Lu, AppKind::KMeans, AppKind::Dnn];
    let mut csv = Csv::new(&["app", "machines", "greedy_pct", "mpipp_pct", "geo_pct"]);
    for app in apps {
        println!("\n--- {app} ---");
        println!(
            "{:<9} {:>8} {:>8} {:>8}",
            "machines", "Greedy", "MPIPP", "Geo"
        );
        let mut greedy_pts = Vec::new();
        let mut geo_pts = Vec::new();
        for &machines in &scales {
            let problem = scale_problem(app, machines, ctx.seed);
            let baseline_samples = ctx.scaled(5, 3);
            let base = mean(
                &(0..baseline_samples)
                    .map(|i| {
                        cost(
                            &problem,
                            &RandomMapper::with_seed(ctx.seed.wrapping_add(i as u64)).map(&problem),
                        )
                    })
                    .collect::<Vec<_>>(),
            );
            let greedy =
                improvement_pct(base, cost(&problem, &GreedyMapper::default().map(&problem)));
            let geo = improvement_pct(
                base,
                cost(
                    &problem,
                    &GeoMapper {
                        seed: ctx.seed,
                        ..GeoMapper::default()
                    }
                    .map(&problem),
                ),
            );
            let mpipp = (machines <= 256).then(|| {
                improvement_pct(
                    base,
                    cost(&problem, &MpippMapper::with_seed(ctx.seed).map(&problem)),
                )
            });
            match mpipp {
                Some(m) => println!("{machines:<9} {greedy:>8.1} {m:>8.1} {geo:>8.1}"),
                None => println!("{machines:<9} {greedy:>8.1} {:>8} {geo:>8.1}", "-"),
            }
            csv.row(&[
                app.name().into(),
                machines.to_string(),
                format!("{greedy:.2}"),
                mpipp.map_or_else(|| "".into(), |m| format!("{m:.2}")),
                format!("{geo:.2}"),
            ]);
            greedy_pts.push((machines as f64, greedy));
            geo_pts.push((machines as f64, geo));
        }
        let svg = crate::svg::lines(
            &format!("Fig. 7 — {app}: improvement vs scale"),
            &[("Greedy", greedy_pts), ("Geo-distributed", geo_pts)],
            "machines",
            "improvement over Baseline (%)",
            true,
        );
        ctx.write_csv(
            &format!("fig7_{}.svg", app.name().to_lowercase().replace('-', "")),
            &svg,
        );
    }
    ctx.write_csv("fig7_scales.csv", &csv.finish());
    println!("\n(expected: Geo > 50% throughout; Greedy good on LU only; slow decline with N)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_smoke_mode() {
        run(&ExpContext::smoke());
    }
}
