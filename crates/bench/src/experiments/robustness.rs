//! Robustness to calibration error.
//!
//! The paper's pipeline optimizes on *measured* `LT`/`BT`, not ground
//! truth, and argues the cheap α–β calibration suffices. This
//! experiment quantifies that claim: sweep the measurement noise of the
//! simulated SKaMPI campaign, optimize on the noisy estimate, then
//! evaluate the mapping on the true network. If the paper's design is
//! sound, improvement degrades gracefully — small noise costs almost
//! nothing because the mapping decision depends on the *order of
//! magnitude* of link qualities, not their exact values.

use crate::util::{improvement_pct, mean, Csv, ExpContext};
use baselines::RandomMapper;
use commgraph::apps::AppKind;
use geomap_core::{cost, ConstraintVector, GeoMapper, Mapper, MappingProblem};
use geonet::{CalibrationConfig, Calibrator};

/// Noise levels (coefficient of variation of each ping-pong sample).
pub const NOISE_LEVELS: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.25, 0.5];

/// Improvement over Baseline on the *true* network when optimizing on
/// an estimate calibrated with the given per-probe noise.
pub fn improvement_under_noise(
    app: AppKind,
    nodes_per_site: usize,
    noise_cv: f64,
    probes: usize,
    seed: u64,
) -> f64 {
    let truth = crate::setup::ec2_network(nodes_per_site, seed);
    let n = 4 * nodes_per_site;
    let pattern = app.workload(n).pattern();

    let calibrated = Calibrator::new(CalibrationConfig {
        days: 1,
        probes_per_day: probes,
        inter_noise_cv: noise_cv,
        intra_noise_cv: noise_cv * 1.5,
        seed: seed ^ 0x4015E,
        ..CalibrationConfig::default()
    })
    .calibrate(&truth);

    let estimated_problem = MappingProblem::new(
        pattern.clone(),
        calibrated.estimated,
        ConstraintVector::none(n),
    );
    let mapping = GeoMapper {
        seed,
        ..GeoMapper::default()
    }
    .map(&estimated_problem);

    // Evaluate on the truth.
    let true_problem = MappingProblem::unconstrained(pattern, truth);
    let base = mean(
        &(0..5)
            .map(|i| {
                cost(
                    &true_problem,
                    &RandomMapper::with_seed(seed + i).map(&true_problem),
                )
            })
            .collect::<Vec<_>>(),
    );
    improvement_pct(base, cost(&true_problem, &mapping))
}

/// Run the sweep.
pub fn run(ctx: &ExpContext) {
    println!("== Robustness: improvement on ground truth vs calibration noise ==");
    let nodes = ctx.scaled(16, 4);
    let probes = ctx.scaled(10, 4);
    let apps = [AppKind::Lu, AppKind::KMeans];
    let mut csv = Csv::new(&["app", "noise_cv", "improvement_pct"]);
    println!(
        "{:<10} {}",
        "noise cv",
        apps.map(|a| format!("{:>9}", a.name())).join(" ")
    );
    for cv in NOISE_LEVELS {
        let mut cells = Vec::new();
        for app in apps {
            let imp = improvement_under_noise(app, nodes, cv, probes, ctx.seed);
            cells.push(format!("{imp:>9.1}"));
            csv.row(&[app.name().into(), format!("{cv}"), format!("{imp:.2}")]);
        }
        println!("{cv:<10} {}", cells.join(" "));
    }
    ctx.write_csv("robustness_noise.csv", &csv.finish());
    println!("(expected: flat until the noise rivals the intra/inter gap, then graceful decline)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_calibration_matches_direct_optimization() {
        // cv=0 probes measure the exact alpha-beta times; improvement on
        // truth must essentially equal the truth-optimized improvement.
        let direct = improvement_under_noise(AppKind::Lu, 4, 0.0, 2, 9);
        assert!(direct > 20.0, "noiseless improvement only {direct}%");
    }

    #[test]
    fn moderate_noise_degrades_gracefully() {
        let clean = improvement_under_noise(AppKind::Lu, 4, 0.0, 4, 5);
        let noisy = improvement_under_noise(AppKind::Lu, 4, 0.1, 4, 5);
        // 10% per-probe noise must not wipe out the benefit.
        assert!(noisy > 0.5 * clean, "clean {clean}% vs noisy {noisy}%");
    }

    #[test]
    fn runs_in_smoke_mode() {
        run(&ExpContext::smoke());
    }
}
