//! Figures 5 and 6: overall performance improvement of the five
//! applications over Baseline, on the emulated EC2 deployment.
//!
//! * **Fig. 5** replays each application end-to-end on the simulated
//!   message-passing runtime *including computation* (the paper's real
//!   EC2 runs), so computation-bound apps (DNN) show small improvements.
//! * **Fig. 6** zeroes computation (the paper's ns-2 simulation study),
//!   isolating communication; improvements grow accordingly.
//!
//! Expected shape (§5.3/5.4): Geo wins everywhere (~50 % on average, up
//! to 90 %); Greedy strong on BT/SP/LU but weak (< 10 %) on K-means and
//! DNN; MPIPP a uniform 10–30 %.

use crate::setup::app_problem;
use crate::util::{improvement_pct, mean, std_error, Csv, ExpContext};
use baselines::{paper_mappers_instrumented, RandomMapper};
use commgraph::apps::AppKind;
use geomap_core::{Mapper, MappingProblem, Metrics, Trace};
use mpirt::RunConfig;

/// Measured improvements of one app: `(name, greedy, mpipp, geo)` in %.
pub struct AppRow {
    /// Application name.
    pub app: &'static str,
    /// Improvement over Baseline per algorithm, in percent.
    pub improvements: [f64; 3],
    /// Standard error of the baseline makespans.
    pub baseline_stderr: f64,
}

/// Execute one mapping and report the makespan. When `metrics` is
/// enabled the run's full telemetry (per-link traffic, per-rank
/// breakdowns) is exported through it; when `trace` is enabled the
/// replay records per-rank intervals and per-link message lifecycles.
fn makespan(
    problem: &MappingProblem,
    mapping: &geomap_core::Mapping,
    cfg: &RunConfig,
    app: AppKind,
    metrics: &Metrics,
    trace: &Trace,
) -> f64 {
    let workload = app.workload(problem.num_processes());
    let result = mpirt::execute_workload_traced(
        workload.as_ref(),
        problem.network(),
        mapping.as_slice(),
        cfg,
        trace,
    );
    result.emit_metrics(metrics);
    result.makespan
}

/// Shared driver for both figures. `label` scopes the metrics stream
/// (`"fig5"` / `"fig6"`), giving records like
/// `fig5/LU/Geo-distributed/search.swaps_accepted` and
/// `fig5/LU/Geo-distributed/runtime/makespan_s`.
pub fn improvements(ctx: &ExpContext, cfg: &RunConfig, label: &str) -> Vec<AppRow> {
    let fig_metrics = ctx.metrics.scoped(label);
    let baseline_runs = ctx.scaled(10, 3);
    let nodes_per_site = ctx.scaled(16, 4);
    AppKind::ALL
        .iter()
        .map(|&app| {
            let app_metrics = fig_metrics.scoped(app.name());
            let problem = app_problem(app, nodes_per_site, 0.2, ctx.seed);
            let baselines: Vec<f64> = (0..baseline_runs)
                .map(|i| {
                    let m = RandomMapper::with_seed(ctx.seed.wrapping_add(i as u64)).map(&problem);
                    // Baseline replays stay untraced: ten random runs per
                    // app would drown the optimized timelines.
                    makespan(&problem, &m, cfg, app, &Metrics::off(), &Trace::off())
                })
                .collect();
            let base = mean(&baselines);
            app_metrics.gauge("baseline_makespan_s", base);
            let mut improvements = [0.0; 3];
            for (slot, mapper) in paper_mappers_instrumented(ctx.seed, &app_metrics, &ctx.trace)
                .iter()
                .enumerate()
            {
                let m = mapper.map(&problem);
                m.validate(&problem).unwrap();
                let per_mapper = app_metrics.scoped(mapper.name());
                let t = makespan(
                    &problem,
                    &m,
                    cfg,
                    app,
                    &per_mapper.scoped("runtime"),
                    &ctx.trace,
                );
                improvements[slot] = improvement_pct(base, t);
                per_mapper.gauge("improvement_pct", improvements[slot]);
            }
            AppRow {
                app: app.name(),
                improvements,
                baseline_stderr: std_error(&baselines),
            }
        })
        .collect()
}

fn report(title: &str, file: &str, rows: &[AppRow], ctx: &ExpContext) {
    println!("== {title} ==");
    println!(
        "{:<10} {:>8} {:>8} {:>8}   (improvement % over Baseline)",
        "app", "Greedy", "MPIPP", "Geo"
    );
    let mut csv = Csv::new(&[
        "app",
        "greedy_pct",
        "mpipp_pct",
        "geo_pct",
        "baseline_stderr",
    ]);
    for r in rows {
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1}",
            r.app, r.improvements[0], r.improvements[1], r.improvements[2]
        );
        csv.row(&[
            r.app.into(),
            format!("{:.2}", r.improvements[0]),
            format!("{:.2}", r.improvements[1]),
            format!("{:.2}", r.improvements[2]),
            format!("{:.4}", r.baseline_stderr),
        ]);
    }
    let geo_avg = mean(&rows.iter().map(|r| r.improvements[2]).collect::<Vec<_>>());
    println!("Geo-distributed mean improvement: {geo_avg:.1}%");
    ctx.write_csv(file, &csv.finish());

    // Companion figure.
    let categories: Vec<&str> = rows.iter().map(|r| r.app).collect();
    let series: Vec<(&str, Vec<f64>)> = ["Greedy", "MPIPP", "Geo-distributed"]
        .iter()
        .enumerate()
        .map(|(i, name)| (*name, rows.iter().map(|r| r.improvements[i]).collect()))
        .collect();
    let svg =
        crate::svg::grouped_bars(title, &categories, &series, "improvement over Baseline (%)");
    ctx.write_csv(&file.replace(".csv", ".svg"), &svg);
}

/// Fig. 5: total time (computation included).
pub fn run_fig5(ctx: &ExpContext) {
    let rows = improvements(ctx, &RunConfig::default(), "fig5");
    report(
        "Fig. 5: overall improvement on emulated EC2 (with computation)",
        "fig5_ec2_improvement.csv",
        &rows,
        ctx,
    );
}

/// Fig. 6: communication time only.
pub fn run_fig6(ctx: &ExpContext) {
    let rows = improvements(ctx, &RunConfig::comm_only(), "fig6");
    report(
        "Fig. 6: communication-only improvement (simulation)",
        "fig6_sim_improvement.csv",
        &rows,
        ctx,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_wins_on_every_app_comm_only() {
        let ctx = ExpContext::smoke();
        let rows = improvements(&ctx, &RunConfig::comm_only(), "fig6");
        for r in &rows {
            let geo = r.improvements[2];
            assert!(geo > 0.0, "{}: geo improvement {geo}", r.app);
            if r.app == "DNN" {
                // Known deviation (see EXPERIMENTS.md): on the synthetic
                // network bandwidth and latency are strongly correlated,
                // so bandwidth-greedy placement is accidentally good for
                // the latency-bound DNN makespan. Geo must still clearly
                // beat Baseline and stay competitive.
                assert!(geo > 15.0, "DNN: geo only {geo}%");
                continue;
            }
            // Makespan is a noisy proxy for Eq. 3 at smoke scale (16
            // processes): the simulated runtime serializes messages in
            // ways the α–β objective does not see, so a mapping that is
            // strictly cheaper under Eq. 3 can replay a few points worse.
            // The modeled-objective dominance is asserted exactly below;
            // here geo only has to stay in the same band.
            assert!(
                geo + 10.0 >= r.improvements[0] && geo + 10.0 >= r.improvements[1],
                "{}: geo {geo} far below a baseline {:?}",
                r.app,
                r.improvements
            );
        }
    }

    #[test]
    fn metrics_stream_covers_mappers_and_runtime() {
        use geomap_core::MemorySink;
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let ctx = ExpContext {
            metrics: Metrics::new(sink.clone()),
            ..ExpContext::smoke()
        };
        improvements(&ctx, &RunConfig::comm_only(), "fig6");
        for mapper in ["Greedy", "MPIPP", "Geo-distributed"] {
            assert!(
                sink.has(&format!("fig6/LU/{mapper}"), "improvement_pct"),
                "no improvement gauge for {mapper}"
            );
            assert!(
                sink.has(&format!("fig6/LU/{mapper}/runtime"), "makespan_s"),
                "no runtime telemetry for {mapper}"
            );
        }
        // The swap-based mappers report their search statistics through
        // the same stream.
        for mapper in ["MPIPP", "Geo-distributed"] {
            assert!(
                sink.has(&format!("fig6/LU/{mapper}"), "search.swaps_evaluated"),
                "no search stats for {mapper}"
            );
        }
        assert!(sink.has("fig6/LU", "baseline_makespan_s"));
    }

    #[test]
    fn geo_never_loses_the_modeled_objective() {
        // The §5.3 claim the optimizer actually controls: on every
        // workload, Geo's Eq. 3 cost is no worse than Greedy's or
        // MPIPP's on the same problem instance.
        use geomap_core::cost;
        let ctx = ExpContext::smoke();
        for &app in commgraph::apps::AppKind::ALL.iter() {
            let problem = app_problem(app, ctx.scaled(16, 4), 0.2, ctx.seed);
            let costs: Vec<(&'static str, f64)> = baselines::paper_mappers(ctx.seed)
                .iter()
                .map(|m| (m.name(), cost(&problem, &m.map(&problem))))
                .collect();
            let geo = costs
                .iter()
                .find(|(n, _)| *n == "Geo-distributed")
                .unwrap()
                .1;
            for &(name, c) in &costs {
                assert!(
                    geo <= c * (1.0 + 1e-9),
                    "{}: geo cost {geo} worse than {name}'s {c}",
                    app.name()
                );
            }
        }
    }
}
