//! Figure 3: the communication pattern matrices of BT, SP, LU, K-means
//! and DNN at 64 processes, from application profiling.
//!
//! Prints an ASCII heatmap per application (darker = heavier traffic),
//! reports the structural metrics the paper calls out (diagonality, the
//! two LU message sizes, DNN's small volume), and writes each matrix as
//! an edge-list CSV.

use crate::util::{Csv, ExpContext};
use commgraph::apps::AppKind;

/// Run the figure.
pub fn run(ctx: &ExpContext) {
    let n = ctx.scaled(64, 16);
    println!("== Fig. 3: communication pattern matrices ({n} processes) ==");
    let mut summary = Csv::new(&[
        "app",
        "total_mb",
        "total_msgs",
        "edges",
        "diagonal_locality",
    ]);
    for kind in AppKind::ALL {
        let pattern = kind.workload(n).pattern();
        let band = (n as f64).sqrt() as usize + 1;
        let locality = pattern.diagonal_locality(band);
        println!(
            "\n--- {kind}: {:.1} MB total, {} messages, {} edges, locality(±{band}) = {locality:.2} ---",
            pattern.total_bytes() / 1e6,
            pattern.total_msgs(),
            pattern.num_edges(),
        );
        print!("{}", pattern.ascii_heatmap(n.div_ceil(32).max(1)));
        summary.row(&[
            kind.name().into(),
            format!("{:.3}", pattern.total_bytes() / 1e6),
            format!("{}", pattern.total_msgs()),
            format!("{}", pattern.num_edges()),
            format!("{locality:.4}"),
        ]);
        ctx.write_csv(
            &format!(
                "fig3_{}_edges.csv",
                kind.name().to_lowercase().replace('-', "")
            ),
            &pattern.to_csv(),
        );
    }
    ctx.write_csv("fig3_summary.csv", &summary.finish());
    println!("\n(Fig. 3 check: BT/SP/LU near-diagonal; K-means complex; DNN small traffic)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_smoke_mode() {
        run(&ExpContext::smoke());
    }
}
