//! Figure 4: optimization overhead of the compared algorithms at
//! different scales ("#sites/#processes"), normalized to Baseline.
//!
//! Scales match the paper: 1/32, 2/64, 4/64, 4/128, 4/256. Expected
//! shape (§5.2): Baseline ≪ Greedy ≈ Geo ≪ MPIPP; Geo == Greedy at one
//! site; Geo's overhead grows with the number of sites (the κ! factor)
//! and MPIPP's grows fastest with N.

use crate::util::{fmt_secs, timed, Csv, ExpContext};
use baselines::{GreedyMapper, MpippMapper, RandomMapper};
use commgraph::apps::AppKind;
use geomap_core::{GeoMapper, Mapper, MappingProblem};
use geonet::{presets, InstanceType};

/// The paper's Fig. 4 scales as `(sites, processes)`.
pub const SCALES: [(usize, usize); 5] = [(1, 32), (2, 64), (4, 64), (4, 128), (4, 256)];

fn problem_at(sites: usize, processes: usize, seed: u64) -> MappingProblem {
    let regions: Vec<&str> =
        ["us-east-1", "us-west-2", "ap-southeast-1", "eu-west-1"][..sites].to_vec();
    let net_sites = presets::ec2_sites(&regions, processes / sites);
    let net = geonet::SynthNetworkBuilder::new(geonet::SynthConfig {
        seed,
        ..geonet::SynthConfig::ec2(InstanceType::M4Xlarge)
    })
    .build(net_sites);
    let pattern = AppKind::Lu.workload(processes).pattern();
    MappingProblem::unconstrained(pattern, net)
}

/// Median-of-3 wall-clock of one mapper on one problem, in seconds.
fn overhead_secs(mapper: &dyn Mapper, problem: &MappingProblem) -> f64 {
    let mut times: Vec<f64> = (0..3)
        .map(|_| {
            let (m, t) = timed(|| mapper.map(problem));
            m.validate(problem).unwrap();
            t.as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[1]
}

/// Run the figure.
pub fn run(ctx: &ExpContext) {
    println!("== Fig. 4: optimization overhead (normalized to Baseline) ==");
    let scales: Vec<(usize, usize)> = if ctx.quick {
        vec![(1, 16), (2, 16), (4, 32)]
    } else {
        SCALES.to_vec()
    };
    let mut csv = Csv::new(&[
        "sites",
        "processes",
        "baseline_s",
        "greedy_s",
        "mpipp_s",
        "geo_s",
        "greedy_norm",
        "mpipp_norm",
        "geo_norm",
    ]);
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11} | normalized G/M/Geo",
        "scale", "Baseline", "Greedy", "MPIPP", "Geo"
    );
    let fig_metrics = ctx.metrics.scoped("fig4");
    for (sites, processes) in scales {
        let scale_metrics = fig_metrics.scoped(&format!("{sites}x{processes}"));
        let problem = problem_at(sites, processes, ctx.seed);
        let t_base = overhead_secs(&RandomMapper::with_seed(ctx.seed), &problem).max(1e-7);
        let t_greedy = overhead_secs(&GreedyMapper::default(), &problem);
        let t_mpipp = overhead_secs(&MpippMapper::with_seed(ctx.seed), &problem);
        let t_geo = overhead_secs(
            &GeoMapper {
                seed: ctx.seed,
                ..GeoMapper::default()
            },
            &problem,
        );
        for (name, t) in [
            ("baseline", t_base),
            ("greedy", t_greedy),
            ("mpipp", t_mpipp),
            ("geo", t_geo),
        ] {
            scale_metrics.timing(&format!("overhead.{name}"), t);
        }
        println!(
            "{:<10} {:>11} {:>11} {:>11} {:>11} | {:.0}x / {:.0}x / {:.0}x",
            format!("{sites}/{processes}"),
            fmt_secs(t_base),
            fmt_secs(t_greedy),
            fmt_secs(t_mpipp),
            fmt_secs(t_geo),
            t_greedy / t_base,
            t_mpipp / t_base,
            t_geo / t_base,
        );
        csv.row(&[
            sites.to_string(),
            processes.to_string(),
            format!("{t_base:.6}"),
            format!("{t_greedy:.6}"),
            format!("{t_mpipp:.6}"),
            format!("{t_geo:.6}"),
            format!("{:.1}", t_greedy / t_base),
            format!("{:.1}", t_mpipp / t_base),
            format!("{:.1}", t_geo / t_base),
        ]);
    }
    ctx.write_csv("fig4_overhead.csv", &csv.finish());
    println!("(expected shape: MPIPP >> Geo >= Greedy >> Baseline; Geo == Greedy trend at 1 site)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_smoke_mode() {
        run(&ExpContext::smoke());
    }

    #[test]
    fn mpipp_overhead_exceeds_greedy_at_64() {
        let p = problem_at(4, 64, 1);
        let g = overhead_secs(&GreedyMapper::default(), &p);
        let m = overhead_secs(&MpippMapper::with_seed(1), &p);
        assert!(m > g, "MPIPP {m} not above Greedy {g}");
    }
}
