//! Extension experiments beyond the paper's evaluation — its two stated
//! pieces of future work (§7):
//!
//! * **azure** — "first extend this study onto different clouds such as
//!   Windows Azure": the Fig. 6 communication-improvement comparison
//!   rerun on the Azure network profile (Table 3 fit: steeper distance
//!   decay, lower absolute WAN bandwidth).
//! * **multicloud** — "later consider ... multiple cloud providers": the
//!   same comparison on a combined EC2+Azure deployment with peering
//!   penalties on cross-provider links, plus the multi-site allowed-set
//!   constraints ("any EU region of either provider") that only make
//!   sense in that setting.

use crate::util::{improvement_pct, mean, Csv, ExpContext};
use baselines::{paper_mappers, RandomMapper};
use commgraph::apps::AppKind;
use geomap_core::{cost, AllowedSites, ConstraintVector, GeoMapperMulti, Mapper, MappingProblem};
use geonet::presets::MultiCloud;
use geonet::SiteId;

fn improvement_table(title: &str, file: &str, network: &geonet::SiteNetwork, ctx: &ExpContext) {
    println!("== {title} ==");
    let n = network.total_nodes();
    println!("network: {}", network.summary());
    println!(
        "{:<10} {:>8} {:>8} {:>8}   (improvement % over Baseline, Eq. 3 cost)",
        "app", "Greedy", "MPIPP", "Geo"
    );
    let mut csv = Csv::new(&["app", "greedy_pct", "mpipp_pct", "geo_pct"]);
    for app in AppKind::ALL {
        let pattern = app.workload(n).pattern();
        let problem = MappingProblem::unconstrained(pattern, network.clone());
        let samples = ctx.scaled(8, 3);
        let base = mean(
            &(0..samples)
                .map(|i| {
                    cost(
                        &problem,
                        &RandomMapper::with_seed(ctx.seed + i as u64).map(&problem),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let mut row = Vec::new();
        for mapper in paper_mappers(ctx.seed) {
            let imp = improvement_pct(base, cost(&problem, &mapper.map(&problem)));
            row.push(imp);
        }
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1}",
            app.name(),
            row[0],
            row[1],
            row[2]
        );
        csv.row(&[
            app.name().into(),
            format!("{:.2}", row[0]),
            format!("{:.2}", row[1]),
            format!("{:.2}", row[2]),
        ]);
    }
    ctx.write_csv(file, &csv.finish());
}

/// Azure validation run.
pub fn run_azure(ctx: &ExpContext) {
    let nodes = ctx.scaled(16, 4);
    let network = geonet::presets::azure_network(
        &["East US", "West Europe", "Japan East", "Southeast Asia"],
        nodes,
        ctx.seed,
    );
    improvement_table(
        "Extension: improvement on Windows Azure (future work #1)",
        "ext_azure_improvement.csv",
        &network,
        ctx,
    );
}

/// Multi-provider run, including allowed-set constraints.
pub fn run_multicloud(ctx: &ExpContext) {
    let nodes = ctx.scaled(8, 4);
    let mc = MultiCloud {
        nodes,
        seed: ctx.seed,
        ..MultiCloud::default()
    };
    let network = mc.build();
    improvement_table(
        "Extension: improvement on a combined EC2+Azure deployment (future work #2)",
        "ext_multicloud_improvement.csv",
        &network,
        ctx,
    );

    // Allowed-set constraints across providers: EU data may live in any
    // EU region of either provider (eu-west-1 = site 1, West Europe =
    // site 4 in the default MultiCloud layout).
    println!("\n-- multi-site constraints: EU data on any EU region of either provider --");
    let n = network.total_nodes();
    let eu_sites: Vec<SiteId> = network
        .sites()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "eu-west-1" || s.name == "West Europe")
        .map(|(i, _)| SiteId(i))
        .collect();
    assert_eq!(
        eu_sites.len(),
        2,
        "default MultiCloud must include two EU regions"
    );
    let pattern = AppKind::KMeans.workload(n).pattern();
    let problem = MappingProblem::new(pattern, network, ConstraintVector::none(n));
    let mut allowed = AllowedSites::unrestricted(n);
    let eu_processes = n / 4;
    for i in 0..eu_processes {
        allowed.restrict(i, &eu_sites);
    }
    let mapping = GeoMapperMulti::new(allowed.clone()).map(&problem);
    assert!(allowed.satisfied_by(mapping.as_slice()));
    let base = cost(&problem, &RandomMapper::with_seed(ctx.seed).map(&problem));
    let multi = cost(&problem, &mapping);
    println!(
        "{eu_processes}/{n} processes restricted to {} EU sites: cost {multi:.1}s vs random {base:.1}s ({:.1}% better), policy holds",
        eu_sites.len(),
        improvement_pct(base, multi)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_runs_in_smoke_mode() {
        run_azure(&ExpContext::smoke());
    }

    #[test]
    fn multicloud_runs_in_smoke_mode() {
        run_multicloud(&ExpContext::smoke());
    }
}
