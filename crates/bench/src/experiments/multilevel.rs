//! Multilevel scaling experiment: coarsen–map–refine vs the direct
//! solver on the Azure 20-region preset.
//!
//! The paper's Fig. 4 stops at 4/256 because every compared algorithm
//! is super-linear in N; the multilevel solver exists to push the same
//! Eq. 3 objective to 100k+ ranks. This experiment sweeps N over a
//! clustered workload (the locality structure heavy-edge matching is
//! built to exploit), timing the multilevel solve at every scale and
//! the direct [`GeoMapper`] wherever it is still affordable, reporting
//! the cost ratio at each overlap point.
//!
//! `repro multilevel` prints the table and writes
//! `multilevel_scaling.csv`; the `multilevel_bench` binary reuses
//! [`problem_at`]/[`run_scale`] verbatim for the acceptance artifact
//! `BENCH_multilevel.json` (N = 262144 in single-digit seconds, cost
//! parity ±5% at every N where both solvers run).

use crate::util::{fmt_secs, timed, Csv, ExpContext};
use commgraph::apps::{ClusteredGraph, Workload};
use geomap_core::{
    cost, GeoMapper, Mapper, MappingProblem, Metrics, MultilevelConfig, MultilevelMapper, Trace,
};
use geonet::presets;

/// The full N sweep (the last point is the acceptance scale).
pub const SWEEP: [usize; 4] = [4096, 16384, 65536, 262144];
/// Quick-mode sweep.
pub const QUICK_SWEEP: [usize; 2] = [256, 1024];
/// Largest N the direct solver runs at in the full sweep (the whole
/// point of the hierarchy is that direct does not scale past it).
pub const DIRECT_LIMIT: usize = 4096;

/// One scale point: multilevel always, direct when it ran.
pub struct ScaleRun {
    /// Rank count of this scale point.
    pub n: usize,
    /// Multilevel solve wall-clock, seconds.
    pub ml_time_s: f64,
    /// Eq. 3 cost of the multilevel mapping.
    pub ml_cost: f64,
    /// Direct-solver wall-clock (`None` when `n` was over the limit).
    pub direct_time_s: Option<f64>,
    /// Eq. 3 cost of the direct mapping, when it ran.
    pub direct_cost: Option<f64>,
}

impl ScaleRun {
    /// Multilevel cost over direct cost, where direct ran.
    pub fn ratio(&self) -> Option<f64> {
        self.direct_cost.map(|d| self.ml_cost / d)
    }
}

/// `n` ranks of the clustered workload over the Azure 20-region preset
/// with 25% headroom.
pub fn problem_at(n: usize, seed: u64) -> MappingProblem {
    let per_region = ((n as f64) * 1.25 / 20.0).ceil() as usize;
    let net = presets::azure20_network(per_region, seed);
    let pattern = ClusteredGraph {
        n,
        cluster: 64,
        degree: 8,
        locality: 0.8,
        max_bytes: 1 << 20,
        seed: seed ^ 0xC1A5,
    }
    .pattern();
    MappingProblem::unconstrained(pattern, net)
}

/// Solve one scale point: multilevel always, the direct solver when
/// `n <= direct_limit`. Both mappings are validated before timing is
/// reported.
pub fn run_scale(
    n: usize,
    seed: u64,
    config: MultilevelConfig,
    direct_limit: usize,
    metrics: &Metrics,
    trace: &Trace,
) -> ScaleRun {
    let problem = problem_at(n, seed);
    let inner = GeoMapper {
        seed,
        ..GeoMapper::default()
    };
    let ml = MultilevelMapper {
        config,
        metrics: metrics.clone(),
        trace: trace.clone(),
        inner: inner.clone(),
    };
    let (mapping, t) = timed(|| ml.map(&problem));
    mapping.validate(&problem).unwrap();
    let ml_cost = cost(&problem, &mapping);
    let (direct_time_s, direct_cost) = if n <= direct_limit {
        let (direct, td) = timed(|| inner.map(&problem));
        direct.validate(&problem).unwrap();
        (Some(td.as_secs_f64()), Some(cost(&problem, &direct)))
    } else {
        (None, None)
    };
    ScaleRun {
        n,
        ml_time_s: t.as_secs_f64(),
        ml_cost,
        direct_time_s,
        direct_cost,
    }
}

/// Run the experiment (`repro multilevel`).
pub fn run(ctx: &ExpContext) {
    println!("== Multilevel: coarsen-map-refine vs direct at scale (Azure 20 regions) ==");
    let (sweep, config, direct_limit) = if ctx.quick {
        (
            QUICK_SWEEP.to_vec(),
            MultilevelConfig {
                coarsen_cutoff: 64,
                ..MultilevelConfig::default()
            },
            QUICK_SWEEP[0],
        )
    } else {
        (SWEEP.to_vec(), MultilevelConfig::default(), DIRECT_LIMIT)
    };
    let mut csv = Csv::new(&[
        "n",
        "ml_time_s",
        "ml_cost",
        "direct_time_s",
        "direct_cost",
        "cost_ratio",
    ]);
    println!(
        "{:>8} {:>12} {:>16} {:>12} {:>16} {:>8}",
        "N", "multilevel", "ml cost", "direct", "direct cost", "ratio"
    );
    let exp_metrics = ctx.metrics.scoped("multilevel_exp");
    for n in sweep {
        let r = run_scale(n, ctx.seed, config, direct_limit, &ctx.metrics, &ctx.trace);
        exp_metrics.timing(&format!("solve.{n}"), r.ml_time_s);
        println!(
            "{:>8} {:>12} {:>16.6} {:>12} {:>16} {:>8}",
            r.n,
            fmt_secs(r.ml_time_s),
            r.ml_cost,
            r.direct_time_s.map_or("-".into(), fmt_secs),
            r.direct_cost.map_or("-".into(), |c| format!("{c:.6}")),
            r.ratio().map_or("-".into(), |x| format!("{x:.3}")),
        );
        csv.row(&[
            r.n.to_string(),
            format!("{:.6}", r.ml_time_s),
            format!("{:.6}", r.ml_cost),
            r.direct_time_s.map_or(String::new(), |t| format!("{t:.6}")),
            r.direct_cost.map_or(String::new(), |c| format!("{c:.6}")),
            r.ratio().map_or(String::new(), |x| format!("{x:.6}")),
        ]);
    }
    ctx.write_csv("multilevel_scaling.csv", &csv.finish());
    println!("(expected shape: multilevel near-linear in N; ratio within 1.05 at every overlap)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_smoke_mode() {
        run(&ExpContext::smoke());
    }

    #[test]
    fn quick_scale_point_keeps_cost_parity() {
        let r = run_scale(
            QUICK_SWEEP[0],
            7,
            MultilevelConfig {
                coarsen_cutoff: 64,
                ..MultilevelConfig::default()
            },
            QUICK_SWEEP[0],
            &Metrics::off(),
            &Trace::off(),
        );
        let ratio = r.ratio().expect("direct ran at the quick scale");
        assert!(ratio <= 1.05, "cost ratio {ratio} above the 5% band");
    }
}
