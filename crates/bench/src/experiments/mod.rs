//! One module per paper artifact. See DESIGN.md §4 for the experiment
//! index mapping each table/figure to workloads, modules and outputs.

pub mod ablation;
pub mod ext_clouds;
pub mod fig3;
pub mod fig4;
pub mod fig56;
pub mod fig7;
pub mod fig8;
pub mod fig910;
pub mod multilevel;
pub mod robustness;
pub mod tables;

use crate::util::ExpContext;

/// Every experiment id the `repro` binary accepts (besides `all`).
pub const ALL_EXPERIMENTS: [&str; 16] = [
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablations",
    "azure",
    "multicloud",
    "multilevel",
    "robustness",
];

/// Dispatch one experiment by id. Returns `false` for unknown ids.
pub fn run(id: &str, ctx: &ExpContext) -> bool {
    match id {
        "table1" => tables::table1(ctx),
        "table2" => tables::table2(ctx),
        "table3" => tables::table3(ctx),
        "fig3" => fig3::run(ctx),
        "fig4" => fig4::run(ctx),
        "fig5" => fig56::run_fig5(ctx),
        "fig6" => fig56::run_fig6(ctx),
        "fig7" => fig7::run(ctx),
        "fig8" => fig8::run(ctx),
        "fig9" => fig910::run_fig9(ctx),
        "fig10" => fig910::run_fig10(ctx),
        "ablations" => ablation::run(ctx),
        "azure" => ext_clouds::run_azure(ctx),
        "multicloud" => ext_clouds::run_multicloud(ctx),
        "multilevel" => multilevel::run(ctx),
        "robustness" => robustness::run(ctx),
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_rejected() {
        assert!(!run("fig99", &ExpContext::smoke()));
    }

    #[test]
    fn registry_ids_are_unique() {
        let mut ids = ALL_EXPERIMENTS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_EXPERIMENTS.len());
    }
}
