//! Figures 9 and 10: the Monte Carlo mapping study.
//!
//! * **Fig. 9** — the CDF of normalized communication time over many
//!   random mappings, with the costs achieved by Greedy, MPIPP and
//!   Geo-distributed marked. The paper's headline: the probability that
//!   a random mapping beats Geo is < 1 % (LU) or < 0.1 % (K-means/DNN).
//! * **Fig. 10** — the best-of-K curve: minimal cost after K random
//!   draws, decreasing ~logarithmically; Geo reaches the same level at
//!   K ≈ 10⁴ draws' budget.
//!
//! The paper uses 10⁷ draws; the full run here defaults to 10⁵ (the
//! tail estimate is stable well before that — the CSV records the exact
//! count used).

use crate::setup::app_problem;
use crate::util::{Csv, ExpContext};
use baselines::{paper_mappers_instrumented, MonteCarlo};
use commgraph::apps::AppKind;
use geomap_core::{cost, GeoMapper, Mapper};

const APPS: [AppKind; 3] = [AppKind::Lu, AppKind::KMeans, AppKind::Dnn];

/// Fig. 9: CDF + algorithm markers.
pub fn run_fig9(ctx: &ExpContext) {
    println!("== Fig. 9: CDF of normalized communication time (Monte Carlo) ==");
    let samples = ctx.scaled(100_000, 2_000);
    let mut csv = Csv::new(&["app", "quantile", "normalized_cost"]);
    let mut markers = Csv::new(&[
        "app",
        "algorithm",
        "normalized_cost",
        "fraction_of_random_below",
    ]);
    for app in APPS {
        let problem = app_problem(app, ctx.scaled(16, 4), 0.2, ctx.seed);
        let mc = MonteCarlo::new(samples, ctx.seed);
        let sorted = mc.cdf(&problem);
        let max = *sorted.last().expect("samples > 0");

        // Down-sample the CDF to 200 points for the CSV.
        let points = 200.min(sorted.len());
        for p in 0..points {
            let idx = (p * (sorted.len() - 1)) / (points.max(2) - 1);
            csv.row(&[
                app.name().into(),
                format!("{:.5}", (idx + 1) as f64 / sorted.len() as f64),
                format!("{:.5}", sorted[idx] / max),
            ]);
        }

        println!("\n--- {app} ({samples} draws) ---");
        let mut marker_points: Vec<(&str, f64)> = Vec::new();
        let app_metrics = ctx.metrics.scoped("fig9").scoped(app.name());
        let mut geo_mapping = None;
        let algos: Vec<(&str, f64)> =
            paper_mappers_instrumented(ctx.seed, &app_metrics, &ctx.trace)
                .iter()
                .map(|mapper| {
                    let m = mapper.map(&problem);
                    let c = cost(&problem, &m);
                    if mapper.name() == "Geo-distributed" {
                        geo_mapping = Some(m);
                    }
                    (mapper.name(), c)
                })
                .collect();
        // With tracing on, replay the winning mapping through the
        // simulated runtime so the trace shows all three layers: search
        // trajectories, mpirt rank intervals, simnet message timelines.
        if ctx.trace.enabled() {
            let workload = app.workload(problem.num_processes());
            let result = mpirt::execute_workload_traced(
                workload.as_ref(),
                problem.network(),
                geo_mapping.as_ref().expect("Geo mapper ran").as_slice(),
                &mpirt::RunConfig::comm_only(),
                &ctx.trace,
            );
            println!(
                "  traced replay of Geo-distributed mapping: makespan {:.4}s",
                result.makespan
            );
        }
        for (name, c) in algos {
            let frac = MonteCarlo::fraction_below(&sorted, c);
            println!(
                "  {name:<16} normalized {:.3}, P(random beats it) = {:.4}",
                c / max,
                frac
            );
            markers.row(&[
                app.name().into(),
                name.into(),
                format!("{:.5}", c / max),
                format!("{frac:.6}"),
            ]);
            marker_points.push((name, c / max));
        }
        let normalized: Vec<f64> = sorted.iter().map(|c| c / max).collect();
        let svg = crate::svg::cdf_with_markers(
            &format!("Fig. 9 — {app}: CDF of normalized communication time"),
            &normalized,
            &marker_points,
        );
        ctx.write_csv(
            &format!("fig9_{}.svg", app.name().to_lowercase().replace('-', "")),
            &svg,
        );
    }
    ctx.write_csv("fig9_cdf.csv", &csv.finish());
    ctx.write_csv("fig9_markers.csv", &markers.finish());
    println!("\n(expected: Geo in the <1% tail for LU, <0.1% for K-means/DNN)");
}

/// Fig. 10: best-of-K random search.
pub fn run_fig10(ctx: &ExpContext) {
    println!("== Fig. 10: normalized minimal cost vs Monte Carlo budget K ==");
    let max_k = ctx.scaled(1_000_000, 4_096);
    let ks: Vec<usize> = {
        let mut v = Vec::new();
        let mut k = 1usize;
        while k <= max_k {
            v.push(k);
            k *= 4;
        }
        if *v.last().unwrap() != max_k {
            v.push(max_k);
        }
        v
    };
    let mut csv = Csv::new(&["app", "k", "normalized_min_cost", "geo_normalized_cost"]);
    for app in APPS {
        let problem = app_problem(app, ctx.scaled(16, 4), 0.2, ctx.seed);
        let mc = MonteCarlo::new(max_k, ctx.seed);
        let curve = mc.best_of_k_curve(&problem, &ks);
        let norm = curve[0].1; // K=1: a single random draw
        let geo = cost(
            &problem,
            &GeoMapper {
                seed: ctx.seed,
                ..GeoMapper::default()
            }
            .map(&problem),
        );
        println!("\n--- {app} (Geo at {:.3} of K=1 cost) ---", geo / norm);
        println!("{:<10} {:>12}", "K", "min/K1");
        for (k, c) in &curve {
            println!("{k:<10} {:>12.4}", c / norm);
            csv.row(&[
                app.name().into(),
                k.to_string(),
                format!("{:.5}", c / norm),
                format!("{:.5}", geo / norm),
            ]);
        }
        let final_best = curve.last().unwrap().1;
        println!(
            "  random search needs K≈{max_k} to reach {:.3}; Geo achieves {:.3} in one run",
            final_best / norm,
            geo / norm
        );
        let pts: Vec<(f64, f64)> = curve.iter().map(|(k, c)| (*k as f64, c / norm)).collect();
        let geo_line: Vec<(f64, f64)> = vec![(1.0, geo / norm), (max_k as f64, geo / norm)];
        let svg = crate::svg::lines(
            &format!("Fig. 10 — {app}: best-of-K random search"),
            &[
                ("best of K random", pts),
                ("Geo-distributed (one run)", geo_line),
            ],
            "K (random mappings tried)",
            "normalized minimal cost",
            true,
        );
        ctx.write_csv(
            &format!("fig10_{}.svg", app.name().to_lowercase().replace('-', "")),
            &svg,
        );
    }
    ctx.write_csv("fig10_best_of_k.csv", &csv.finish());
    println!("\n(expected: ~log(K) decline; Geo comparable to the best Monte Carlo result)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_runs_in_smoke_mode() {
        run_fig9(&ExpContext::smoke());
    }

    #[test]
    fn fig10_runs_in_smoke_mode() {
        run_fig10(&ExpContext::smoke());
    }
}
