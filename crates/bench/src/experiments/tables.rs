//! Tables 1–3: the network-heterogeneity measurements motivating the
//! paper (Observations 1 and 2, §2.1).
//!
//! Each table runs the simulated SKaMPI calibration against the
//! synthetic ground truth and prints measured bandwidth/latency next to
//! the paper's published values.

use crate::util::{Csv, ExpContext};
use geonet::synth::{SynthConfig, SynthNetworkBuilder};
use geonet::{presets, CalibrationConfig, Calibrator, InstanceType, SiteId, MB};

fn calibrated(net: &geonet::SiteNetwork, seed: u64) -> geonet::SiteNetwork {
    Calibrator::new(CalibrationConfig {
        seed,
        ..CalibrationConfig::default()
    })
    .calibrate(net)
    .estimated
}

/// Table 1: average network bandwidth (MB/s) of five instance types
/// within US East, within Singapore, and across the two regions.
pub fn table1(ctx: &ExpContext) {
    println!("== Table 1: bandwidth (MB/s) by instance type ==");
    println!(
        "{:<12} {:>9} {:>10} {:>13} | paper (USE/SGP/cross)",
        "type", "US East", "Singapore", "cross-region"
    );
    let paper = [
        (15.0, 22.0, 5.4),
        (80.0, 78.0, 6.3),
        (84.0, 82.0, 6.3),
        (102.0, 103.0, 6.4),
        (148.0, 204.0, 6.6),
    ];
    let mut csv = Csv::new(&[
        "instance",
        "us_east_mbps",
        "singapore_mbps",
        "cross_mbps",
        "paper_us_east",
        "paper_singapore",
        "paper_cross",
    ]);
    for (ty, (p_use, p_sgp, p_x)) in InstanceType::TABLE1.iter().zip(paper) {
        let sites = presets::ec2_sites(&["us-east-1", "ap-southeast-1"], 2);
        let net = SynthNetworkBuilder::new(SynthConfig {
            seed: ctx.seed,
            ..SynthConfig::ec2(*ty)
        })
        .build(sites);
        let est = calibrated(&net, ctx.seed);
        let use_ = est.bandwidth(SiteId(0), SiteId(0)) / MB;
        let sgp = est.bandwidth(SiteId(1), SiteId(1)) / MB;
        let cross = est.bandwidth(SiteId(0), SiteId(1)) / MB;
        println!(
            "{:<12} {use_:>9.1} {sgp:>10.1} {cross:>13.1} | {p_use}/{p_sgp}/{p_x}",
            ty.name()
        );
        csv.row(&[
            ty.name().into(),
            format!("{use_:.2}"),
            format!("{sgp:.2}"),
            format!("{cross:.2}"),
            p_use.to_string(),
            p_sgp.to_string(),
            p_x.to_string(),
        ]);
    }
    ctx.write_csv("table1_instance_bandwidth.csv", &csv.finish());
}

/// Table 2: c3.8xlarge bandwidth/latency from US East to US West,
/// Ireland and Singapore (distance ordering).
pub fn table2(ctx: &ExpContext) {
    println!("\n== Table 2: EC2 cross-region performance vs distance (c3.8xlarge) ==");
    let sites = presets::ec2_sites(
        &["us-east-1", "us-west-2", "eu-west-1", "ap-southeast-1"],
        2,
    );
    let net = SynthNetworkBuilder::new(SynthConfig {
        seed: ctx.seed,
        ..SynthConfig::ec2(InstanceType::C38xlarge)
    })
    .build(sites);
    let est = calibrated(&net, ctx.seed);
    let mut csv = Csv::new(&[
        "pair",
        "distance_km",
        "bandwidth_mbps",
        "latency_ms",
        "paper_bandwidth_mbps",
        "paper_distance",
    ]);
    println!(
        "{:<24} {:>9} {:>10} {:>9} | paper bw / distance",
        "pair", "dist km", "bw MB/s", "lat ms"
    );
    let rows = [
        (1usize, "US West", 21.0, "Short"),
        (2, "Ireland", 19.0, "Medium"),
        (3, "Singapore", 6.6, "Long"),
    ];
    for (idx, name, paper_bw, paper_dist) in rows {
        let d = est.site(SiteId(0)).distance_km(est.site(SiteId(idx)));
        let bw = est.bandwidth(SiteId(0), SiteId(idx)) / MB;
        let lat = est.latency(SiteId(0), SiteId(idx)) * 1e3;
        println!(
            "{:<24} {d:>9.0} {bw:>10.1} {lat:>9.1} | {paper_bw} / {paper_dist}",
            format!("US East -> {name}")
        );
        csv.row(&[
            format!("us-east-1->{name}"),
            format!("{d:.0}"),
            format!("{bw:.2}"),
            format!("{lat:.2}"),
            paper_bw.to_string(),
            paper_dist.into(),
        ]);
    }
    println!("(paper's EC2 latency row is unit-inconsistent — see EXPERIMENTS.md; the distance ordering is what matters)");
    ctx.write_csv("table2_ec2_distance.csv", &csv.finish());
}

/// Table 3: Azure Standard D2 within East US and to West Europe / Japan
/// East.
pub fn table3(ctx: &ExpContext) {
    println!("\n== Table 3: Azure cross-region performance (Standard D2) ==");
    let net = presets::azure_network(&["East US", "West Europe", "Japan East"], 2, ctx.seed);
    let est = calibrated(&net, ctx.seed);
    let mut csv = Csv::new(&[
        "pair",
        "bandwidth_mbps",
        "latency_ms",
        "paper_bandwidth_mbps",
        "paper_latency_ms",
    ]);
    println!(
        "{:<26} {:>10} {:>9} | paper bw / lat",
        "pair", "bw MB/s", "lat ms"
    );
    let rows = [
        (0usize, "East US (intra)", 62.0, 0.82),
        (1, "West Europe", 2.9, 42.0),
        (2, "Japan East", 1.3, 77.0),
    ];
    for (idx, name, p_bw, p_lat) in rows {
        let bw = est.bandwidth(SiteId(0), SiteId(idx)) / MB;
        let lat = est.latency(SiteId(0), SiteId(idx)) * 1e3;
        println!("{name:<26} {bw:>10.1} {lat:>9.2} | {p_bw} / {p_lat}");
        csv.row(&[
            format!("East US->{name}"),
            format!("{bw:.2}"),
            format!("{lat:.2}"),
            p_bw.to_string(),
            p_lat.to_string(),
        ]);
    }
    ctx.write_csv("table3_azure.csv", &csv.finish());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_run_in_smoke_mode() {
        let ctx = ExpContext::smoke();
        table1(&ctx);
        table2(&ctx);
        table3(&ctx);
    }
}
