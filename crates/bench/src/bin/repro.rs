//! Reproduce the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--quick] [--seed N] [--out DIR] [--no-csv]
//!                       [--metrics FILE|-] [--trace FILE|-]
//! repro all [--quick]
//! repro list
//! ```

use geomap_bench::experiments::{self, ALL_EXPERIMENTS};
use geomap_bench::util::default_results_dir;
use geomap_bench::ExpContext;
use geomap_core::{JsonLinesSink, Metrics, RingBufferSink, Trace};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Retained trace events before the ring starts evicting the oldest.
const TRACE_CAPACITY: usize = 1 << 20;

/// Where `--trace` writes the Chrome JSON when the run finishes. The
/// file is created at argument-parse time so a bad path fails fast,
/// before hours of experiments.
enum TraceDest {
    Stdout,
    File(PathBuf, std::fs::File),
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment>... [--quick] [--seed N] [--out DIR] [--no-csv] \
         [--metrics FILE|-] [--trace FILE|-]"
    );
    eprintln!("       repro all | list");
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
    eprintln!("`-` streams to stdout; --trace writes Chrome trace-event JSON (Perfetto)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut ctx = ExpContext {
        quick: false,
        seed: 0x5C17,
        out_dir: Some(default_results_dir()),
        metrics: Metrics::off(),
        trace: Trace::off(),
    };
    let mut trace_out: Option<(Arc<RingBufferSink>, TraceDest)> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => ctx.quick = true,
            "--no-csv" => ctx.out_dir = None,
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                ctx.seed = v;
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return usage();
                };
                ctx.out_dir = Some(PathBuf::from(v));
            }
            "--metrics" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--metrics needs a file path (or `-` for stdout)");
                    return usage();
                };
                let sink = if v == "-" {
                    JsonLinesSink::from_writer(std::io::stdout())
                } else {
                    let path = PathBuf::from(v);
                    match JsonLinesSink::create(&path) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("--metrics: cannot create {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                };
                ctx.metrics = Metrics::new(Arc::new(sink));
            }
            "--trace" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--trace needs a file path (or `-` for stdout)");
                    return usage();
                };
                let dest = if v == "-" {
                    TraceDest::Stdout
                } else {
                    let path = PathBuf::from(v);
                    match std::fs::File::create(&path) {
                        Ok(f) => TraceDest::File(path, f),
                        Err(e) => {
                            eprintln!("--trace: cannot create {v}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                };
                let sink = Arc::new(RingBufferSink::new(TRACE_CAPACITY));
                ctx.trace = Trace::new(sink.clone());
                trace_out = Some((sink, dest));
            }
            "list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    if ids.is_empty() {
        return usage();
    }

    for id in &ids {
        if !experiments::run(id, &ctx) {
            eprintln!("unknown experiment {id:?}");
            return usage();
        }
        println!();
    }
    ctx.metrics.flush();
    if let Some((sink, dest)) = trace_out {
        if sink.dropped() > 0 {
            eprintln!(
                "--trace: ring buffer full, dropped the oldest {} events",
                sink.dropped()
            );
        }
        let json = sink.to_chrome_json();
        match dest {
            TraceDest::Stdout => {
                if let Err(e) = std::io::stdout().write_all(json.as_bytes()) {
                    eprintln!("--trace: write to stdout failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            TraceDest::File(path, mut f) => {
                if let Err(e) = f.write_all(json.as_bytes()) {
                    eprintln!("--trace: write {} failed: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "  -> wrote {} (load in Perfetto / chrome://tracing)",
                    path.display()
                );
            }
        }
    }
    ExitCode::SUCCESS
}
