//! Reproduce the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--quick] [--seed N] [--out DIR] [--no-csv]
//!                       [--metrics FILE]
//! repro all [--quick]
//! repro list
//! ```

use geomap_bench::experiments::{self, ALL_EXPERIMENTS};
use geomap_bench::util::default_results_dir;
use geomap_bench::ExpContext;
use geomap_core::{JsonLinesSink, Metrics};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment>... [--quick] [--seed N] [--out DIR] [--no-csv] [--metrics FILE]"
    );
    eprintln!("       repro all | list");
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut ctx = ExpContext {
        quick: false,
        seed: 0x5C17,
        out_dir: Some(default_results_dir()),
        metrics: Metrics::off(),
    };

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => ctx.quick = true,
            "--no-csv" => ctx.out_dir = None,
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                ctx.seed = v;
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return usage();
                };
                ctx.out_dir = Some(PathBuf::from(v));
            }
            "--metrics" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--metrics needs a file path");
                    return usage();
                };
                let path = PathBuf::from(v);
                let sink = match JsonLinesSink::create(&path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("--metrics: cannot create {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                };
                ctx.metrics = Metrics::new(Arc::new(sink));
            }
            "list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    if ids.is_empty() {
        return usage();
    }

    for id in &ids {
        if !experiments::run(id, &ctx) {
            eprintln!("unknown experiment {id:?}");
            return usage();
        }
        println!();
    }
    ctx.metrics.flush();
    ExitCode::SUCCESS
}
