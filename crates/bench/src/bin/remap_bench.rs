//! Repair-vs-cold benchmark for the bounded-migration re-solver.
//!
//! ```text
//! remap_bench [--quick] [--ranks N] [--degrade-sites K] [--seed S]
//!             [--out FILE]
//! ```
//!
//! The scenario the reconciler lives in, at acceptance scale: an
//! `N`-rank application (default 4096) solved cold on the Azure-region
//! preset, then hit by drift — the WAN links of `K` seeded regions
//! degrade (latency ×16, bandwidth ÷16), exactly the calibration-drift
//! signal the daemon's control loop watches. From the now-stale
//! placement the harness measures:
//!
//! 1. **cold re-solve** — the full SC'17 pipeline (`GeoMapper`:
//!    grouping, order search, packing, refinement) on the drifted
//!    network, from scratch — the daemon's only option before the
//!    remap subsystem existed;
//! 2. **bounded repair** — `repair()` from the stale mapping at a
//!    sweep of migration budgets (5%, 10%, 25%, 50% of ranks), each
//!    timed end-to-end including its `CostTables` build, exactly what
//!    `handle_remap` pays;
//! 3. **oracle parity** — the unbounded repair against `cold_resolve`,
//!    required bit-identical (same mapping, same cost bits).
//!
//! Writes `BENCH_remap.json` and enforces the acceptance gates: some
//! sweep point with migration budget >= 25% of ranks must run >= 10x
//! faster than the cold re-solve AND land within 5% of its Eq. 3 cost.
//! Quick mode (`--quick`, N=512) records the same document but skips
//! the speedup gate — small instances don't amortize the solver's
//! fixed costs the way N=4096 does.

use commgraph::apps::AppKind;
use geomap_core::{cold_resolve, cost, repair, GeoMapper, Mapper, MappingProblem, RemapConfig};
use geomap_service::json::{obj, Json};
use geonet::{presets, SiteId, SiteNetwork, SquareMatrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::process::ExitCode;
use std::time::Instant;

struct Config {
    ranks: usize,
    degrade_sites: usize,
    seed: u64,
    quick: bool,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        ranks: 4096,
        degrade_sites: 2,
        seed: 0x2E5C17,
        quick: false,
        out: "BENCH_remap.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => {
                cfg.quick = true;
                cfg.ranks = 512;
            }
            "--ranks" => {
                cfg.ranks = val("--ranks")?
                    .parse()
                    .map_err(|e| format!("--ranks: {e}"))?
            }
            "--degrade-sites" => {
                cfg.degrade_sites = val("--degrade-sites")?
                    .parse()
                    .map_err(|e| format!("--degrade-sites: {e}"))?
            }
            "--seed" => cfg.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => cfg.out = val("--out")?.clone(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

/// Degrade every WAN link touching any site in `victims`: latency ×16,
/// bandwidth ÷16. Intra-site links are untouched. This is the drift the
/// reconciler's calibration-staleness signal stands in for.
fn degrade(net: &SiteNetwork, victims: &[usize]) -> SiteNetwork {
    let hit = |k: usize, l: usize| k != l && (victims.contains(&k) || victims.contains(&l));
    let m = net.num_sites();
    let lt = SquareMatrix::from_fn(m, |k, l| {
        let base = net.latency(SiteId(k), SiteId(l));
        if hit(k, l) {
            base * 16.0
        } else {
            base
        }
    });
    let bt = SquareMatrix::from_fn(m, |k, l| {
        let base = net.bandwidth(SiteId(k), SiteId(l));
        if hit(k, l) {
            base / 16.0
        } else {
            base
        }
    });
    SiteNetwork::new(net.sites().to_vec(), lt, bt)
}

fn run() -> Result<String, String> {
    let cfg = parse_args()?;
    let n = cfg.ranks;
    // The Azure preset: all ten regions, enough nodes per region for N
    // ranks plus 25% headroom (repairs need somewhere to move to).
    let regions = 10;
    let per_site = (n as f64 * 1.25 / regions as f64).ceil() as usize;
    if cfg.degrade_sites >= regions {
        return Err(format!(
            "--degrade-sites must leave at least one healthy region (got {} of {regions})",
            cfg.degrade_sites
        ));
    }
    let healthy = presets::azure_network(&[], per_site, cfg.seed);
    let pattern = AppKind::parse("kmeans")
        .expect("kmeans is a known app")
        .workload(n)
        .pattern();

    // Phase 0: the placement as it stood before the drift — a cold
    // solve against the healthy network.
    eprintln!("remap_bench: N={n} ranks over {regions} Azure regions ({per_site} nodes each)");
    let mapper = GeoMapper {
        seed: cfg.seed,
        ..GeoMapper::default()
    };
    let before = MappingProblem::unconstrained(pattern.clone(), healthy.clone());
    let stale_mapping = mapper.map(&before);
    let healthy_cost = cost(&before, &stale_mapping);
    eprintln!("  healthy placement: Eq.3 cost {healthy_cost:.6}");

    // Phase 1: drift strikes — seeded victim regions degrade — and the
    // cold re-solve on the drifted network is timed.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD21F7);
    let mut victims: Vec<usize> = Vec::new();
    while victims.len() < cfg.degrade_sites {
        let v = rng.random_range(0..regions);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    victims.sort_unstable();
    let drifted = degrade(&healthy, &victims);
    let problem = MappingProblem::unconstrained(pattern, drifted);
    let stale_cost = cost(&problem, &stale_mapping);
    eprintln!(
        "  drift: regions {victims:?} degraded (latency x16, bandwidth /16); \
         riding out the stale mapping costs {stale_cost:.6} ({:+.1}%)",
        (stale_cost / healthy_cost - 1.0) * 100.0
    );
    let t0 = Instant::now();
    let cold_mapping = mapper.map(&problem);
    let cold_s = t0.elapsed().as_secs_f64();
    let cold_cost = cost(&problem, &cold_mapping);
    eprintln!("  cold re-solve: {cold_s:.3} s, Eq.3 cost {cold_cost:.6}");

    // Phase 2: the budget sweep, repairing from the stale mapping.
    let mut sweep = Vec::new();
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    for frac in [0.05, 0.10, 0.25, 0.50] {
        let budget = ((n as f64) * frac).ceil() as usize;
        let t0 = Instant::now();
        let outcome = repair(
            &problem,
            &stale_mapping,
            &RemapConfig {
                budget: Some(budget),
                alpha: 0.0,
                ..RemapConfig::default()
            },
        );
        let repair_s = t0.elapsed().as_secs_f64();
        let speedup = cold_s / repair_s;
        let ratio = outcome.new_cost / cold_cost;
        eprintln!(
            "  repair @{:>4.0}% budget ({budget:>5} moves allowed): {repair_s:.3} s \
             ({speedup:.1}x cold), moved {}, cost {:.6} ({:.2}% of cold)",
            frac * 100.0,
            outcome.moved.len(),
            outcome.new_cost,
            ratio * 100.0
        );
        rows.push((frac, speedup, ratio));
        sweep.push(obj(vec![
            ("budget_frac", Json::Num(frac)),
            ("budget", Json::Num(budget as f64)),
            ("time_s", Json::Num(repair_s)),
            ("moved", Json::Num(outcome.moved.len() as f64)),
            ("ops", Json::Num(outcome.ops as f64)),
            ("passes", Json::Num(outcome.passes_run as f64)),
            ("cost", Json::Num(outcome.new_cost)),
            ("cost_vs_cold", Json::Num(ratio)),
            ("speedup_vs_cold", Json::Num(speedup)),
        ]));
    }

    // Phase 3: oracle parity — unbounded repair is the cold-resolve
    // oracle, bit for bit.
    let unbounded = repair(
        &problem,
        &stale_mapping,
        &RemapConfig {
            budget: None,
            alpha: 0.0,
            ..RemapConfig::default()
        },
    );
    let oracle = cold_resolve(&problem, &stale_mapping, RemapConfig::default().passes);
    let bit_exact = unbounded.mapping.as_slice() == oracle.mapping.as_slice()
        && unbounded.new_cost.to_bits() == oracle.new_cost.to_bits();
    if !bit_exact {
        return Err("unbounded repair diverged from the cold-resolve oracle".into());
    }

    // The acceptance gate: among budgets >= 25% of ranks, the point
    // that meets cost parity (within 5% of cold) with the best speedup.
    let (gate_frac, gate_speedup, gate_ratio) = rows
        .iter()
        .filter(|(frac, _, _)| *frac >= 0.25 - 1e-9)
        .filter(|(_, _, ratio)| *ratio <= 1.05)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .copied()
        .unwrap_or_else(|| {
            // No qualifying point: report the best-parity large-budget
            // row so the failure message and JSON stay informative.
            rows.iter()
                .filter(|(frac, _, _)| *frac >= 0.25 - 1e-9)
                .min_by(|a, b| a.2.total_cmp(&b.2))
                .copied()
                .expect("sweep always contains budgets >= 25%")
        });

    let doc = obj(vec![
        (
            "config",
            obj(vec![
                ("ranks", Json::Num(n as f64)),
                ("regions", Json::Num(regions as f64)),
                ("nodes_per_region", Json::Num(per_site as f64)),
                (
                    "degraded_regions",
                    Json::Arr(victims.iter().map(|&v| Json::Num(v as f64)).collect()),
                ),
                ("seed", Json::Num(cfg.seed as f64)),
                ("quick", Json::Bool(cfg.quick)),
            ]),
        ),
        (
            "drift",
            obj(vec![
                ("healthy_cost", Json::Num(healthy_cost)),
                ("stale_cost", Json::Num(stale_cost)),
                ("stale_vs_healthy", Json::Num(stale_cost / healthy_cost)),
            ]),
        ),
        (
            "cold",
            obj(vec![
                ("time_s", Json::Num(cold_s)),
                ("cost", Json::Num(cold_cost)),
            ]),
        ),
        ("repairs", Json::Arr(sweep)),
        (
            "oracle",
            obj(vec![(
                "unbounded_matches_cold_resolve",
                Json::Bool(bit_exact),
            )]),
        ),
        (
            "gates",
            obj(vec![
                ("budget_frac", Json::Num(gate_frac)),
                ("speedup", Json::Num(gate_speedup)),
                ("meets_10x_target", Json::Bool(gate_speedup >= 10.0)),
                ("cost_ratio", Json::Num(gate_ratio)),
                ("within_5pct_of_cold", Json::Bool(gate_ratio <= 1.05)),
            ]),
        ),
    ]);
    std::fs::write(&cfg.out, format!("{}\n", doc.emit()))
        .map_err(|e| format!("cannot write {:?}: {e}", cfg.out))?;

    // Cost parity is solver quality, not hardware speed: it gates in
    // quick mode too. The 10x wall-clock gate needs the full N to
    // amortize the cold pipeline's fixed costs.
    if gate_ratio > 1.05 {
        return Err(format!(
            "no budget >= 25% of ranks lands within 5% of the cold cost (best: {:.2}% at {:.0}% budget)",
            gate_ratio * 100.0,
            gate_frac * 100.0
        ));
    }
    if !cfg.quick && gate_speedup < 10.0 {
        return Err(format!(
            "repair at {:.0}% budget is only {gate_speedup:.1}x faster than the cold re-solve; target is 10x",
            gate_frac * 100.0
        ));
    }
    Ok(format!(
        "wrote {}: cold re-solve {cold_s:.3} s; repair @{:.0}% budget {:.1}x faster at {:.2}% of \
         cold cost; unbounded repair bit-identical to the cold-resolve oracle",
        cfg.out,
        gate_frac * 100.0,
        gate_speedup,
        gate_ratio * 100.0
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("remap_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
