//! Re-render SVG figures from existing results CSVs without re-running
//! the (expensive) experiments. Currently supports Fig. 7.
//!
//! ```text
//! cargo run -p geomap-bench --release --bin render -- results/fig7_scales.csv results/
//! ```

use geomap_bench::svg;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [csv_path, out_dir] = args.as_slice() else {
        eprintln!("usage: render <fig7_scales.csv> <out_dir>");
        return ExitCode::FAILURE;
    };
    let csv = match std::fs::read_to_string(csv_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {csv_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // app -> (greedy points, geo points)
    type Series = (Vec<(f64, f64)>, Vec<(f64, f64)>);
    let mut apps: BTreeMap<String, Series> = BTreeMap::new();
    for line in csv.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 5 {
            continue;
        }
        let (Ok(machines), Ok(greedy), Ok(geo)) = (
            f[1].parse::<f64>(),
            f[2].parse::<f64>(),
            f[4].parse::<f64>(),
        ) else {
            continue;
        };
        let entry = apps.entry(f[0].to_string()).or_default();
        entry.0.push((machines, greedy));
        entry.1.push((machines, geo));
    }
    for (app, (greedy, geo)) in apps {
        let rendered = svg::lines(
            &format!("Fig. 7 — {app}: improvement vs scale"),
            &[("Greedy", greedy), ("Geo-distributed", geo)],
            "machines",
            "improvement over Baseline (%)",
            true,
        );
        let name = format!("fig7_{}.svg", app.to_lowercase().replace('-', ""));
        let path = std::path::Path::new(out_dir).join(&name);
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
