//! Load generator for the mapping daemon.
//!
//! ```text
//! service_load [--quick] [--requests N] [--clients C] [--workers W]
//!              [--ranks R] [--seed S] [--out FILE]
//!              [--pipeline-threads T] [--pool P] [--batch B]
//!              [--pipelined-requests N]
//! ```
//!
//! Starts a daemon on an ephemeral loopback port, then drives six
//! phases over real TCP connections:
//!
//! 1. **miss** — every request carries a distinct calibration seed, so
//!    each one runs the full campaign + solve;
//! 2. **problem-hit** — one shared topology, distinct solver seeds, so
//!    the calibration/problem tier is reused and only the solve runs;
//! 3. **result-hit** — identical requests over v1 JSON lines, served
//!    from the result cache without solving (the wire baseline);
//! 4. **result-hit v2** — the same requests as binary frames, one
//!    connection per client, one request in flight at a time;
//! 5. **result-hit pipelined** — T pooled clients x P connections each
//!    (T*P concurrent sockets), B binary-framed requests in flight per
//!    pipeline call;
//! 6. **result-hit federated** — a fresh 3-daemon federation: distinct
//!    problems primed through the consistent-hash router, then repeated
//!    — every repeat must ride its ring home into a warm result cache
//!    (shard-affinity hit rate, acceptance >= 0.8).
//!
//! Records throughput and p50/p95/p99 client-observed latency per
//! phase to `BENCH_service.json`, including the result-hit vs miss
//! median speedup (acceptance >= 5x) and the pipelined-vs-sequential
//! result-hit throughput ratio (acceptance >= 10x). Pipelined and
//! federated p50s are *amortized per request* (one batch's wall clock
//! spread over its requests), not a wire round-trip time.

use commgraph::apps::AppKind;
use geomap_service::json::{obj, Json};
use geomap_service::proto::{CacheTier, Response};
use geomap_service::{
    FederatedPool, MapRequest, MappingServer, MappingService, PooledClient, Request, ServiceClient,
    ServiceConfig, WireFormat,
};
use geonet::{presets, InstanceType};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    requests: usize,
    clients: usize,
    workers: usize,
    ranks: usize,
    seed: u64,
    quick: bool,
    out: String,
    pipeline_threads: usize,
    pool: usize,
    batch: usize,
    pipelined_requests: usize,
}

struct PhaseStats {
    name: &'static str,
    wall_s: f64,
    latencies_ms: Vec<f64>,
    tiers: BTreeMap<&'static str, usize>,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// Fire `requests` map requests from `clients` concurrent connections;
/// `make` builds request `i`.
fn run_phase(
    name: &'static str,
    addr: &str,
    cfg: &Config,
    format: WireFormat,
    make: impl Fn(usize) -> MapRequest + Send + Sync,
) -> Result<PhaseStats, String> {
    let make = &make;
    let started = Instant::now();
    let results: Vec<Result<(f64, CacheTier), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut client =
                        ServiceClient::connect_with(addr, Some(Duration::from_secs(120)), format)?;
                    for i in (c..cfg.requests).step_by(cfg.clients) {
                        let t0 = Instant::now();
                        let resp = client.map(make(i))?;
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        match resp {
                            Response::Map(m) => out.push(Ok((ms, m.cached))),
                            other => return Err(format!("{name} request {i}: {other:?}")),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join().expect("client thread") {
                Ok(v) => v,
                Err(e) => vec![Err(e)],
            })
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies_ms = Vec::with_capacity(cfg.requests);
    let mut tiers: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in results {
        let (ms, tier) = r?;
        latencies_ms.push(ms);
        *tiers.entry(tier.label()).or_insert(0) += 1;
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(PhaseStats {
        name,
        wall_s,
        latencies_ms,
        tiers,
    })
}

/// Fire result-hit requests through `threads` pooled pipelined
/// clients, `batch` requests in flight per pipeline call. Latencies
/// are amortized: one batch's wall clock spread over its requests.
fn run_pipelined_phase(
    name: &'static str,
    addr: &str,
    cfg: &Config,
    make: impl Fn(usize) -> MapRequest + Send + Sync,
) -> Result<PhaseStats, String> {
    let make = &make;
    let per_thread = cfg.pipelined_requests / cfg.pipeline_threads;
    let rounds = (per_thread / cfg.batch).max(1);
    let started = Instant::now();
    let results: Vec<Result<(f64, CacheTier), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.pipeline_threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut client =
                        PooledClient::new(addr, cfg.pool, Some(Duration::from_secs(120)));
                    for r in 0..rounds {
                        let batch: Vec<Request> = (0..cfg.batch)
                            .map(|b| Request::Map(make(t * 1_000_000 + r * 1_000 + b)))
                            .collect();
                        let t0 = Instant::now();
                        let responses = client.pipeline(&batch)?;
                        let ms = t0.elapsed().as_secs_f64() * 1e3 / cfg.batch as f64;
                        for resp in responses {
                            match resp {
                                Response::Map(m) => out.push(Ok((ms, m.cached))),
                                other => {
                                    return Err(format!("{name} thread {t} round {r}: {other:?}"))
                                }
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join().expect("pipeline thread") {
                Ok(v) => v,
                Err(e) => vec![Err(e)],
            })
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies_ms = Vec::new();
    let mut tiers: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in results {
        let (ms, tier) = r?;
        latencies_ms.push(ms);
        *tiers.entry(tier.label()).or_insert(0) += 1;
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(PhaseStats {
        name,
        wall_s,
        latencies_ms,
        tiers,
    })
}

/// Phase 6 — the result-hit workload against a fresh 3-daemon
/// federation. Distinct problems are primed through the consistent-hash
/// router, then the same batch is repeated for `rounds`; the federated
/// result-hit rate on the repeats is the shard-affinity metric (a
/// repeat that lands on the wrong shard re-solves as a miss there).
/// Latencies are amortized like the pipelined phase. Returns the phase
/// plus the affinity hit rate.
fn run_federated_phase(cfg: &Config, pattern_csv: &str) -> Result<(PhaseStats, f64), String> {
    const SHARDS: usize = 3;
    let mut servers = Vec::with_capacity(SHARDS);
    let mut addrs = Vec::with_capacity(SHARDS);
    for _ in 0..SHARDS {
        let service = MappingService::new(
            presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42),
            ServiceConfig {
                workers: cfg.workers,
                problem_cache_capacity: cfg.requests + 1,
                result_cache_capacity: cfg.requests + 1,
                ..ServiceConfig::default()
            },
        );
        let server =
            MappingServer::bind(service, "127.0.0.1:0").map_err(|e| format!("bind shard: {e}"))?;
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    let mut pool = FederatedPool::new(&addrs, cfg.pool, Some(Duration::from_secs(120)));

    // Distinct problems: the solver seed is a problem-defining field,
    // so each gets its own ring position and result-cache entry.
    let problems = cfg.requests.max(1);
    let make = |i: usize, id: &str| MapRequest {
        seed: cfg.seed + i as u64,
        ..MapRequest::new(format!("{id}-{i}"), pattern_csv)
    };
    let prime: Vec<MapRequest> = (0..problems).map(|i| make(i, "fed-prime")).collect();
    for resp in pool.map_batch(&prime)? {
        if let Response::Error(e) = resp {
            return Err(format!("federated prime rejected: {e:?}"));
        }
    }
    let hits_before: u64 = pool.stats()?.iter().map(|s| s.result_hits).sum();

    let rounds = (cfg.pipelined_requests / problems).clamp(1, 64);
    let started = Instant::now();
    let mut latencies_ms = Vec::with_capacity(rounds * problems);
    let mut tiers: BTreeMap<&'static str, usize> = BTreeMap::new();
    for round in 0..rounds {
        let batch: Vec<MapRequest> = (0..problems)
            .map(|i| MapRequest {
                id: format!("fed-repeat-{round}-{i}"),
                ..make(i, "fed-repeat")
            })
            .collect();
        let t0 = Instant::now();
        let responses = pool.map_batch(&batch)?;
        let ms = t0.elapsed().as_secs_f64() * 1e3 / problems as f64;
        for resp in responses {
            match resp {
                Response::Map(m) => {
                    latencies_ms.push(ms);
                    *tiers.entry(m.cached.label()).or_insert(0) += 1;
                }
                other => return Err(format!("federated round {round}: {other:?}")),
            }
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let hits_after: u64 = pool.stats()?.iter().map(|s| s.result_hits).sum();
    let measured = (rounds * problems) as f64;
    let affinity = (hits_after - hits_before) as f64 / measured;

    pool.shutdown()?;
    for server in servers {
        server.join();
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok((
        PhaseStats {
            name: "result_hit_federated",
            wall_s,
            latencies_ms,
            tiers,
        },
        affinity,
    ))
}

fn phase_json(p: &PhaseStats) -> Json {
    let n = p.latencies_ms.len();
    obj(vec![
        ("name", Json::Str(p.name.into())),
        ("requests", Json::Num(n as f64)),
        ("wall_s", Json::Num(p.wall_s)),
        ("throughput_rps", Json::Num(n as f64 / p.wall_s)),
        (
            "mean_ms",
            Json::Num(p.latencies_ms.iter().sum::<f64>() / n as f64),
        ),
        ("p50_ms", Json::Num(percentile(&p.latencies_ms, 0.50))),
        ("p95_ms", Json::Num(percentile(&p.latencies_ms, 0.95))),
        ("p99_ms", Json::Num(percentile(&p.latencies_ms, 0.99))),
        (
            "tiers",
            Json::Obj(
                p.tiers
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
    ])
}

fn parse_args() -> Result<Config, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config {
        requests: 64,
        clients: 8,
        workers: 4,
        ranks: 16,
        seed: 0x5C17,
        quick: false,
        out: "BENCH_service.json".into(),
        pipeline_threads: 8,
        pool: 8,
        batch: 64,
        pipelined_requests: 16_384,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--quick" => cfg.quick = true,
            "--requests" => cfg.requests = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => cfg.clients = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => cfg.workers = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ranks" => cfg.ranks = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cfg.seed = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--out" => cfg.out = value(&mut i)?,
            "--pipeline-threads" => {
                cfg.pipeline_threads = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--pool" => cfg.pool = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--batch" => cfg.batch = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--pipelined-requests" => {
                cfg.pipelined_requests = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if cfg.quick {
        cfg.requests = cfg.requests.min(16);
        cfg.pipelined_requests = cfg.pipelined_requests.min(2_048);
    }
    cfg.clients = cfg.clients.clamp(1, cfg.requests.max(1));
    cfg.pipeline_threads = cfg.pipeline_threads.max(1);
    cfg.pool = cfg.pool.max(1);
    cfg.batch = cfg.batch.max(1);
    Ok(cfg)
}

fn run() -> Result<String, String> {
    let cfg = parse_args()?;
    let network = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42);
    let pattern_csv = Arc::new(
        AppKind::parse("sp")
            .expect("sp exists")
            .workload(cfg.ranks)
            .pattern()
            .to_csv(),
    );
    let service = MappingService::new(
        network,
        ServiceConfig {
            workers: cfg.workers,
            // Phase 1 needs every distinct topology to stay resident.
            problem_cache_capacity: cfg.requests + 1,
            result_cache_capacity: cfg.requests + 1,
            ..ServiceConfig::default()
        },
    );
    let server = MappingServer::bind(service, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().to_string();
    eprintln!(
        "daemon on {addr}: {} requests x 3 phases, {} clients, {} workers, {} ranks",
        cfg.requests, cfg.clients, cfg.workers, cfg.ranks
    );

    let base = |i: usize, id: &str| MapRequest {
        seed: cfg.seed,
        ..MapRequest::new(format!("{id}-{i}"), pattern_csv.as_str())
    };

    // Phase 1 — full misses: a fresh calibration campaign per request.
    let miss = run_phase("miss", &addr, &cfg, WireFormat::V1Json, |i| MapRequest {
        calibration: geomap_service::proto::CalibSpec {
            seed: 0xBEEF + i as u64,
            ..Default::default()
        },
        ..base(i, "miss")
    })?;
    eprintln!(
        "  miss:        p50 {:.2} ms",
        percentile(&miss.latencies_ms, 0.5)
    );

    // Phase 2 — problem-tier hits: shared topology (warmed first so
    // the single miss doesn't pollute the stats), distinct solve seeds.
    {
        let mut warm = ServiceClient::connect(&addr, Some(Duration::from_secs(120)))?;
        warm.map(base(usize::MAX, "warm-problem"))?;
    }
    let problem = run_phase("problem_hit", &addr, &cfg, WireFormat::V1Json, |i| {
        MapRequest {
            seed: cfg.seed + 1 + i as u64,
            ..base(i, "problem")
        }
    })?;
    eprintln!(
        "  problem hit: p50 {:.2} ms",
        percentile(&problem.latencies_ms, 0.5)
    );

    // Phase 3 — result-tier hits: identical requests (the warm request
    // above already solved this exact problem/seed pair).
    let result = run_phase("result_hit", &addr, &cfg, WireFormat::V1Json, |i| {
        base(i, "result")
    })?;
    eprintln!(
        "  result hit:  p50 {:.2} ms ({:.0} rps over v1)",
        percentile(&result.latencies_ms, 0.5),
        result.latencies_ms.len() as f64 / result.wall_s,
    );

    // Phase 4 — the same result-tier hits over binary frames.
    let result_v2 = run_phase("result_hit_v2", &addr, &cfg, WireFormat::V2Binary, |i| {
        base(i, "result")
    })?;
    eprintln!(
        "  result v2:   p50 {:.2} ms ({:.0} rps)",
        percentile(&result_v2.latencies_ms, 0.5),
        result_v2.latencies_ms.len() as f64 / result_v2.wall_s,
    );

    // Phase 5 — pooled pipelined frames: T threads x P connections,
    // B requests in flight per pipeline call.
    let pipelined =
        run_pipelined_phase("result_hit_pipelined", &addr, &cfg, |i| base(i, "result"))?;
    eprintln!(
        "  pipelined:   amortized p50 {:.3} ms ({:.0} rps over {} connections)",
        percentile(&pipelined.latencies_ms, 0.5),
        pipelined.latencies_ms.len() as f64 / pipelined.wall_s,
        cfg.pipeline_threads * cfg.pool,
    );

    // Phase 6 — the same result-hit workload across a fresh 3-shard
    // federation, routed by consistent hashing.
    let (federated, affinity) = run_federated_phase(&cfg, &pattern_csv)?;
    eprintln!(
        "  federated:   amortized p50 {:.3} ms ({:.0} rps over 3 shards, affinity {:.2})",
        percentile(&federated.latencies_ms, 0.5),
        federated.latencies_ms.len() as f64 / federated.wall_s,
        affinity,
    );

    let mut shutdown = ServiceClient::connect(&addr, Some(Duration::from_secs(10)))?;
    shutdown.shutdown("load-gen")?;
    // Detailed stats carry the server-side latency histograms — the
    // daemon's own measurement of the same phases, immune to client
    // scheduling noise and exact under bucket-wise merging.
    let stats = server.service().stats("load-gen", true);
    server.join();
    let server_hists: Vec<Json> = stats
        .detail
        .as_ref()
        .map(|d| {
            d.hists
                .iter()
                .filter(|h| h.count > 0)
                .map(|h| {
                    obj(vec![
                        ("name", Json::Str(h.name.clone())),
                        ("count", Json::Num(h.count as f64)),
                        ("p50_ms", Json::Num(h.p50_us as f64 / 1e3)),
                        ("p90_ms", Json::Num(h.p90_us as f64 / 1e3)),
                        ("p99_ms", Json::Num(h.p99_us as f64 / 1e3)),
                        ("p999_ms", Json::Num(h.p999_us as f64 / 1e3)),
                        ("mean_ms", Json::Num(h.sum_us as f64 / h.count as f64 / 1e3)),
                    ])
                })
                .collect()
        })
        .unwrap_or_default();
    if let Some(e2e) = stats
        .detail
        .as_ref()
        .and_then(|d| d.hists.iter().find(|h| h.name == "map_e2e"))
    {
        eprintln!(
            "  server-side: map e2e p50 {:.2} ms p99 {:.2} ms over {} requests (histogram read-back)",
            e2e.p50_us as f64 / 1e3,
            e2e.p99_us as f64 / 1e3,
            e2e.count,
        );
    }

    let miss_p50 = percentile(&miss.latencies_ms, 0.5);
    let result_p50 = percentile(&result.latencies_ms, 0.5);
    let problem_p50 = percentile(&problem.latencies_ms, 0.5);
    let speedup = miss_p50 / result_p50;
    let sequential_rps = result.latencies_ms.len() as f64 / result.wall_s;
    let pipelined_rps = pipelined.latencies_ms.len() as f64 / pipelined.wall_s;
    let wire_speedup = pipelined_rps / sequential_rps;
    let doc = obj(vec![
        (
            "config",
            obj(vec![
                ("requests_per_phase", Json::Num(cfg.requests as f64)),
                ("clients", Json::Num(cfg.clients as f64)),
                ("workers", Json::Num(cfg.workers as f64)),
                ("ranks", Json::Num(cfg.ranks as f64)),
                ("seed", Json::Num(cfg.seed as f64)),
                ("quick", Json::Bool(cfg.quick)),
                ("pipeline_threads", Json::Num(cfg.pipeline_threads as f64)),
                ("pool", Json::Num(cfg.pool as f64)),
                ("batch", Json::Num(cfg.batch as f64)),
                (
                    "concurrent_connections",
                    Json::Num((cfg.pipeline_threads * cfg.pool) as f64),
                ),
            ]),
        ),
        (
            "phases",
            Json::Arr(vec![
                phase_json(&miss),
                phase_json(&problem),
                phase_json(&result),
                phase_json(&result_v2),
                phase_json(&pipelined),
                phase_json(&federated),
            ]),
        ),
        (
            "federation",
            obj(vec![
                ("shards", Json::Num(3.0)),
                ("affinity_hit_rate", Json::Num(affinity)),
                ("meets_affinity_target", Json::Bool(affinity >= 0.8)),
            ]),
        ),
        (
            "speedup",
            obj(vec![
                ("result_hit_vs_miss_p50", Json::Num(speedup)),
                ("problem_hit_vs_miss_p50", Json::Num(miss_p50 / problem_p50)),
                ("meets_5x_target", Json::Bool(speedup >= 5.0)),
                (
                    "pipelined_vs_sequential_result_rps",
                    Json::Num(wire_speedup),
                ),
                ("meets_10x_target", Json::Bool(wire_speedup >= 10.0)),
            ]),
        ),
        (
            "server_totals",
            obj(vec![
                ("served", Json::Num(stats.served as f64)),
                ("result_hits", Json::Num(stats.result_hits as f64)),
                ("problem_hits", Json::Num(stats.problem_hits as f64)),
                ("misses", Json::Num(stats.misses as f64)),
                ("rejected", Json::Num(stats.rejected as f64)),
            ]),
        ),
        // Server-side histogram read-back (µs-bucketed, per request
        // kind): the daemon's own latency record, kept alongside the
        // client-observed per-phase percentiles above.
        ("server_hists", Json::Arr(server_hists)),
    ]);
    std::fs::write(&cfg.out, format!("{}\n", doc.emit()))
        .map_err(|e| format!("cannot write {:?}: {e}", cfg.out))?;

    if speedup < 5.0 {
        return Err(format!(
            "cache-hit speedup {speedup:.1}x below the 5x target (miss p50 {miss_p50:.2} ms, result-hit p50 {result_p50:.2} ms)"
        ));
    }
    // Quick mode is a smoke run on whatever hardware CI hands us;
    // only full runs enforce the wire-throughput target.
    if !cfg.quick && wire_speedup < 10.0 {
        return Err(format!(
            "pipelined result-hit throughput {pipelined_rps:.0} rps is only {wire_speedup:.1}x \
             the sequential v1 baseline ({sequential_rps:.0} rps); target is 10x"
        ));
    }
    // Affinity is routing correctness, not hardware throughput: the
    // gate holds in quick mode too.
    if affinity < 0.8 {
        return Err(format!(
            "federated shard-affinity hit rate {affinity:.2} below the 0.8 target: \
             repeats are not landing on the shards that solved them"
        ));
    }
    Ok(format!(
        "wrote {}: miss p50 {miss_p50:.2} ms, problem-hit p50 {problem_p50:.2} ms, result-hit p50 {result_p50:.2} ms ({speedup:.1}x); pipelined {pipelined_rps:.0} rps = {wire_speedup:.1}x sequential v1 ({sequential_rps:.0} rps); federated affinity {affinity:.2}",
        cfg.out
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("service_load: {e}");
            ExitCode::FAILURE
        }
    }
}
