//! Load generator for the mapping daemon.
//!
//! ```text
//! service_load [--quick] [--requests N] [--clients C] [--workers W]
//!              [--ranks R] [--seed S] [--out FILE]
//! ```
//!
//! Starts a daemon on an ephemeral loopback port, then drives three
//! phases of `N` concurrent requests each over real TCP connections:
//!
//! 1. **miss** — every request carries a distinct calibration seed, so
//!    each one runs the full campaign + solve;
//! 2. **problem-hit** — one shared topology, distinct solver seeds, so
//!    the calibration/problem tier is reused and only the solve runs;
//! 3. **result-hit** — identical requests, served from the result
//!    cache without solving.
//!
//! Records throughput and p50/p95/p99 client-observed latency per
//! phase to `BENCH_service.json`, including the result-hit vs miss
//! median speedup (the acceptance target is >= 5x).

use commgraph::apps::AppKind;
use geomap_service::json::{obj, Json};
use geomap_service::proto::{CacheTier, Response};
use geomap_service::{MapRequest, MappingServer, MappingService, ServiceClient, ServiceConfig};
use geonet::{presets, InstanceType};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    requests: usize,
    clients: usize,
    workers: usize,
    ranks: usize,
    seed: u64,
    quick: bool,
    out: String,
}

struct PhaseStats {
    name: &'static str,
    wall_s: f64,
    latencies_ms: Vec<f64>,
    tiers: BTreeMap<&'static str, usize>,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// Fire `requests` map requests from `clients` concurrent connections;
/// `make` builds request `i`.
fn run_phase(
    name: &'static str,
    addr: &str,
    cfg: &Config,
    make: impl Fn(usize) -> MapRequest + Send + Sync,
) -> Result<PhaseStats, String> {
    let make = &make;
    let started = Instant::now();
    let results: Vec<Result<(f64, CacheTier), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut client = ServiceClient::connect(addr, Some(Duration::from_secs(120)))?;
                    for i in (c..cfg.requests).step_by(cfg.clients) {
                        let t0 = Instant::now();
                        let resp = client.map(make(i))?;
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        match resp {
                            Response::Map(m) => out.push(Ok((ms, m.cached))),
                            other => return Err(format!("{name} request {i}: {other:?}")),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join().expect("client thread") {
                Ok(v) => v,
                Err(e) => vec![Err(e)],
            })
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies_ms = Vec::with_capacity(cfg.requests);
    let mut tiers: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in results {
        let (ms, tier) = r?;
        latencies_ms.push(ms);
        *tiers.entry(tier.label()).or_insert(0) += 1;
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(PhaseStats {
        name,
        wall_s,
        latencies_ms,
        tiers,
    })
}

fn phase_json(p: &PhaseStats) -> Json {
    let n = p.latencies_ms.len();
    obj(vec![
        ("name", Json::Str(p.name.into())),
        ("requests", Json::Num(n as f64)),
        ("wall_s", Json::Num(p.wall_s)),
        ("throughput_rps", Json::Num(n as f64 / p.wall_s)),
        (
            "mean_ms",
            Json::Num(p.latencies_ms.iter().sum::<f64>() / n as f64),
        ),
        ("p50_ms", Json::Num(percentile(&p.latencies_ms, 0.50))),
        ("p95_ms", Json::Num(percentile(&p.latencies_ms, 0.95))),
        ("p99_ms", Json::Num(percentile(&p.latencies_ms, 0.99))),
        (
            "tiers",
            Json::Obj(
                p.tiers
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
    ])
}

fn parse_args() -> Result<Config, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config {
        requests: 64,
        clients: 8,
        workers: 4,
        ranks: 16,
        seed: 0x5C17,
        quick: false,
        out: "BENCH_service.json".into(),
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--quick" => cfg.quick = true,
            "--requests" => cfg.requests = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => cfg.clients = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => cfg.workers = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ranks" => cfg.ranks = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cfg.seed = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--out" => cfg.out = value(&mut i)?,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if cfg.quick {
        cfg.requests = cfg.requests.min(16);
    }
    cfg.clients = cfg.clients.clamp(1, cfg.requests.max(1));
    Ok(cfg)
}

fn run() -> Result<String, String> {
    let cfg = parse_args()?;
    let network = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42);
    let pattern_csv = Arc::new(
        AppKind::parse("sp")
            .expect("sp exists")
            .workload(cfg.ranks)
            .pattern()
            .to_csv(),
    );
    let service = MappingService::new(
        network,
        ServiceConfig {
            workers: cfg.workers,
            // Phase 1 needs every distinct topology to stay resident.
            problem_cache_capacity: cfg.requests + 1,
            result_cache_capacity: cfg.requests + 1,
            ..ServiceConfig::default()
        },
    );
    let server = MappingServer::bind(service, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().to_string();
    eprintln!(
        "daemon on {addr}: {} requests x 3 phases, {} clients, {} workers, {} ranks",
        cfg.requests, cfg.clients, cfg.workers, cfg.ranks
    );

    let base = |i: usize, id: &str| MapRequest {
        seed: cfg.seed,
        ..MapRequest::new(format!("{id}-{i}"), pattern_csv.as_str())
    };

    // Phase 1 — full misses: a fresh calibration campaign per request.
    let miss = run_phase("miss", &addr, &cfg, |i| MapRequest {
        calibration: geomap_service::proto::CalibSpec {
            seed: 0xBEEF + i as u64,
            ..Default::default()
        },
        ..base(i, "miss")
    })?;
    eprintln!(
        "  miss:        p50 {:.2} ms",
        percentile(&miss.latencies_ms, 0.5)
    );

    // Phase 2 — problem-tier hits: shared topology (warmed first so
    // the single miss doesn't pollute the stats), distinct solve seeds.
    {
        let mut warm = ServiceClient::connect(&addr, Some(Duration::from_secs(120)))?;
        warm.map(base(usize::MAX, "warm-problem"))?;
    }
    let problem = run_phase("problem_hit", &addr, &cfg, |i| MapRequest {
        seed: cfg.seed + 1 + i as u64,
        ..base(i, "problem")
    })?;
    eprintln!(
        "  problem hit: p50 {:.2} ms",
        percentile(&problem.latencies_ms, 0.5)
    );

    // Phase 3 — result-tier hits: identical requests (the warm request
    // above already solved this exact problem/seed pair).
    let result = run_phase("result_hit", &addr, &cfg, |i| base(i, "result"))?;
    eprintln!(
        "  result hit:  p50 {:.2} ms",
        percentile(&result.latencies_ms, 0.5)
    );

    let mut shutdown = ServiceClient::connect(&addr, Some(Duration::from_secs(10)))?;
    shutdown.shutdown("load-gen")?;
    let stats = server.service().stats("load-gen");
    server.join();

    let miss_p50 = percentile(&miss.latencies_ms, 0.5);
    let result_p50 = percentile(&result.latencies_ms, 0.5);
    let problem_p50 = percentile(&problem.latencies_ms, 0.5);
    let speedup = miss_p50 / result_p50;
    let doc = obj(vec![
        (
            "config",
            obj(vec![
                ("requests_per_phase", Json::Num(cfg.requests as f64)),
                ("clients", Json::Num(cfg.clients as f64)),
                ("workers", Json::Num(cfg.workers as f64)),
                ("ranks", Json::Num(cfg.ranks as f64)),
                ("seed", Json::Num(cfg.seed as f64)),
                ("quick", Json::Bool(cfg.quick)),
            ]),
        ),
        (
            "phases",
            Json::Arr(vec![
                phase_json(&miss),
                phase_json(&problem),
                phase_json(&result),
            ]),
        ),
        (
            "speedup",
            obj(vec![
                ("result_hit_vs_miss_p50", Json::Num(speedup)),
                ("problem_hit_vs_miss_p50", Json::Num(miss_p50 / problem_p50)),
                ("meets_5x_target", Json::Bool(speedup >= 5.0)),
            ]),
        ),
        (
            "server_totals",
            obj(vec![
                ("served", Json::Num(stats.served as f64)),
                ("result_hits", Json::Num(stats.result_hits as f64)),
                ("problem_hits", Json::Num(stats.problem_hits as f64)),
                ("misses", Json::Num(stats.misses as f64)),
                ("rejected", Json::Num(stats.rejected as f64)),
            ]),
        ),
    ]);
    std::fs::write(&cfg.out, format!("{}\n", doc.emit()))
        .map_err(|e| format!("cannot write {:?}: {e}", cfg.out))?;

    if speedup < 5.0 {
        return Err(format!(
            "cache-hit speedup {speedup:.1}x below the 5x target (miss p50 {miss_p50:.2} ms, result-hit p50 {result_p50:.2} ms)"
        ));
    }
    Ok(format!(
        "wrote {}: miss p50 {miss_p50:.2} ms, problem-hit p50 {problem_p50:.2} ms, result-hit p50 {result_p50:.2} ms ({speedup:.1}x)",
        cfg.out
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("service_load: {e}");
            ExitCode::FAILURE
        }
    }
}
