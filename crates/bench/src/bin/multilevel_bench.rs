//! Acceptance benchmark for the multilevel coarsen–map–refine solver.
//!
//! ```text
//! multilevel_bench [--quick] [--max-n N] [--direct-limit N] [--seed S]
//!                  [--out FILE]
//! ```
//!
//! Sweeps N over the clustered workload on the Azure 20-region preset
//! (the same scale points as `repro multilevel`), timing the multilevel
//! solve at every N and the direct `GeoMapper` wherever `n <=
//! --direct-limit`. Writes `BENCH_multilevel.json` and enforces the
//! acceptance gates:
//!
//! * **cost parity** — at every N where both solvers ran, the
//!   multilevel Eq. 3 cost is within 5% of the direct solver's;
//! * **wall clock** — the largest N solves in single-digit seconds
//!   (< 10 s). Skipped under `--quick`, whose small sweep exists to
//!   exercise the document shape, not the scale claim.
//!
//! The CI `multilevel-smoke` job runs `--max-n 65536` with a pinned
//! seed (the N=4096 direct solve is the slow half of that job) and
//! re-checks the gates from the JSON with an independent validator.

use geomap_bench::experiments::multilevel::{run_scale, DIRECT_LIMIT, QUICK_SWEEP, SWEEP};
use geomap_core::{Metrics, MultilevelConfig, Trace};
use geomap_service::json::{obj, Json};
use std::process::ExitCode;

/// The wall-clock gate at the acceptance scale: "single-digit seconds".
const WALLCLOCK_LIMIT_S: f64 = 10.0;
/// The cost-parity gate wherever direct ran.
const PARITY_LIMIT: f64 = 1.05;

struct Config {
    max_n: usize,
    direct_limit: usize,
    seed: u64,
    quick: bool,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        max_n: usize::MAX,
        direct_limit: DIRECT_LIMIT,
        seed: 0x5C17,
        quick: false,
        out: "BENCH_multilevel.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--max-n" => {
                cfg.max_n = val("--max-n")?
                    .parse()
                    .map_err(|e| format!("--max-n: {e}"))?
            }
            "--direct-limit" => {
                cfg.direct_limit = val("--direct-limit")?
                    .parse()
                    .map_err(|e| format!("--direct-limit: {e}"))?
            }
            "--seed" => cfg.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => cfg.out = val("--out")?.clone(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

fn run() -> Result<String, String> {
    let cfg = parse_args()?;
    let (sweep, ml): (Vec<usize>, MultilevelConfig) = if cfg.quick {
        (
            QUICK_SWEEP.to_vec(),
            MultilevelConfig {
                coarsen_cutoff: 64,
                ..MultilevelConfig::default()
            },
        )
    } else {
        (
            SWEEP.iter().copied().filter(|&n| n <= cfg.max_n).collect(),
            MultilevelConfig::default(),
        )
    };
    if sweep.is_empty() {
        return Err(format!("--max-n {} leaves no scale points", cfg.max_n));
    }

    let mut runs = Vec::new();
    let mut worst_ratio: Option<(usize, f64)> = None;
    let mut largest: Option<(usize, f64)> = None;
    for &n in &sweep {
        eprintln!("multilevel_bench: N={n} over 20 Azure regions...");
        let r = run_scale(
            n,
            cfg.seed,
            ml,
            cfg.direct_limit,
            &Metrics::off(),
            &Trace::off(),
        );
        eprintln!(
            "  multilevel {:.3} s, cost {:.6}{}",
            r.ml_time_s,
            r.ml_cost,
            match (r.direct_time_s, r.ratio()) {
                (Some(td), Some(ratio)) => format!("; direct {td:.3} s, cost ratio {ratio:.4}"),
                _ => "; direct skipped (over --direct-limit)".to_string(),
            }
        );
        if let Some(ratio) = r.ratio() {
            if worst_ratio.is_none_or(|(_, w)| ratio > w) {
                worst_ratio = Some((n, ratio));
            }
        }
        largest = Some((n, r.ml_time_s));
        runs.push(obj(vec![
            ("n", Json::Num(n as f64)),
            ("ml_time_s", Json::Num(r.ml_time_s)),
            ("ml_cost", Json::Num(r.ml_cost)),
            (
                "direct_time_s",
                r.direct_time_s.map_or(Json::Null, Json::Num),
            ),
            ("direct_cost", r.direct_cost.map_or(Json::Null, Json::Num)),
            ("cost_ratio", r.ratio().map_or(Json::Null, Json::Num)),
        ]));
    }

    let (largest_n, largest_s) = largest.expect("sweep is non-empty");
    let parity_ok = worst_ratio.is_none_or(|(_, w)| w <= PARITY_LIMIT);
    let wallclock_ok = largest_s < WALLCLOCK_LIMIT_S;
    let doc = obj(vec![
        (
            "config",
            obj(vec![
                ("regions", Json::Num(20.0)),
                ("coarsen_cutoff", Json::Num(ml.coarsen_cutoff as f64)),
                ("match_rounds", Json::Num(ml.match_rounds as f64)),
                ("refine_passes", Json::Num(ml.refine_passes as f64)),
                ("direct_limit", Json::Num(cfg.direct_limit as f64)),
                ("seed", Json::Num(cfg.seed as f64)),
                ("quick", Json::Bool(cfg.quick)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
        (
            "gates",
            obj(vec![
                ("parity_limit", Json::Num(PARITY_LIMIT)),
                (
                    "worst_cost_ratio",
                    worst_ratio.map_or(Json::Null, |(_, w)| Json::Num(w)),
                ),
                (
                    "worst_ratio_n",
                    worst_ratio.map_or(Json::Null, |(n, _)| Json::Num(n as f64)),
                ),
                ("parity_within_5pct", Json::Bool(parity_ok)),
                ("wallclock_limit_s", Json::Num(WALLCLOCK_LIMIT_S)),
                ("largest_n", Json::Num(largest_n as f64)),
                ("largest_n_time_s", Json::Num(largest_s)),
                ("single_digit_seconds", Json::Bool(wallclock_ok)),
            ]),
        ),
    ]);
    std::fs::write(&cfg.out, format!("{}\n", doc.emit()))
        .map_err(|e| format!("cannot write {:?}: {e}", cfg.out))?;

    // Cost parity is solver quality, not hardware speed: it gates in
    // quick mode too. The wall-clock gate is the acceptance-scale claim
    // and only means something on the full sweep.
    if !parity_ok {
        let (n, w) = worst_ratio.expect("parity can only fail where direct ran");
        return Err(format!(
            "multilevel cost at N={n} is {:.2}% of direct — outside the 5% band",
            w * 100.0
        ));
    }
    if !cfg.quick && !wallclock_ok {
        return Err(format!(
            "N={largest_n} took {largest_s:.3} s; the acceptance gate is < {WALLCLOCK_LIMIT_S} s"
        ));
    }
    Ok(format!(
        "wrote {}: N={largest_n} in {largest_s:.3} s{}",
        cfg.out,
        worst_ratio.map_or(String::new(), |(n, w)| format!(
            "; worst cost ratio {w:.4} (at N={n})"
        ))
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("multilevel_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
