//! Shared harness utilities: experiment context, CSV output, metrics.

use geomap_core::{Metrics, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Shared knobs of an experiment run.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Shrink sample counts and sweeps for smoke tests.
    pub quick: bool,
    /// Master seed; every derived RNG hangs off this.
    pub seed: u64,
    /// Output directory for CSV artifacts (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Observability handle; experiments scope it per figure/app/mapper
    /// and thread it into the mappers and the simulated runtime.
    /// Disabled by default (`repro --metrics <path>` turns it on).
    pub metrics: Metrics,
    /// Event-level trace handle; experiments thread it into the mappers
    /// and the simulated runtime so one run yields a Perfetto-loadable
    /// timeline. Disabled by default (`repro --trace <path>` turns it
    /// on).
    pub trace: Trace,
}

impl Default for ExpContext {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 0x5C17,
            out_dir: Some(default_results_dir()),
            metrics: Metrics::off(),
            trace: Trace::off(),
        }
    }
}

impl ExpContext {
    /// Quick-mode context writing nowhere (for tests).
    pub fn smoke() -> Self {
        Self {
            quick: true,
            seed: 0x5C17,
            out_dir: None,
            metrics: Metrics::off(),
            trace: Trace::off(),
        }
    }

    /// Pick `full` normally, `quick` under `--quick`.
    pub fn scaled(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Write a CSV artifact (no-op when `out_dir` is `None`).
    pub fn write_csv(&self, name: &str, contents: &str) {
        let Some(dir) = &self.out_dir else { return };
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        println!("  -> wrote {}", path.display());
    }
}

/// `results/` next to the workspace root, overridable via
/// `GEOMAP_RESULTS`.
pub fn default_results_dir() -> PathBuf {
    std::env::var_os("GEOMAP_RESULTS").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Percentage improvement of `value` over `baseline` (the paper's
/// figures-of-merit): `(baseline − value)/baseline · 100`.
pub fn improvement_pct(baseline: f64, value: f64) -> f64 {
    assert!(baseline > 0.0, "baseline must be positive, got {baseline}");
    (baseline - value) / baseline * 100.0
}

/// Wall-clock a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Simple CSV assembly: header plus rows of stringified cells.
pub struct Csv {
    buf: String,
    cols: usize,
}

impl Csv {
    /// Start a CSV with the given header columns.
    pub fn new(header: &[&str]) -> Self {
        let mut buf = String::new();
        writeln!(buf, "{}", header.join(",")).unwrap();
        Self {
            buf,
            cols: header.len(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the column count doesn't match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.cols, "row width mismatch");
        writeln!(self.buf, "{}", cells.join(",")).unwrap();
        self
    }

    /// Finish and return the contents.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Format seconds compactly for table output.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    assert!(!v.is_empty(), "mean of empty slice");
    v.iter().sum::<f64>() / v.len() as f64
}

/// Sample standard error of the mean (0 for fewer than two samples).
pub fn std_error(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    let var = v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
    (var / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100.0, 50.0), 50.0);
        assert_eq!(improvement_pct(100.0, 100.0), 0.0);
        assert!(improvement_pct(100.0, 110.0) < 0.0);
    }

    #[test]
    fn csv_assembly() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["1".into(), "2".into()]);
        let s = c.finish();
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn csv_checks_width() {
        Csv::new(&["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn stats_helpers() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(mean(&v), 2.0);
        assert!(std_error(&v) > 0.0);
        assert_eq!(std_error(&[5.0]), 0.0);
    }

    #[test]
    fn scaled_picks_by_mode() {
        let mut ctx = ExpContext::smoke();
        assert_eq!(ctx.scaled(100, 5), 5);
        ctx.quick = false;
        assert_eq!(ctx.scaled(100, 5), 100);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(5e-5).ends_with("us"));
        assert!(fmt_secs(5e-2).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }
}
