//! Differential oracle for the multilevel solver, on the paper's
//! Fig. 4 / Fig. 5 setups (the five applications over the emulated
//! 4-region EC2 deployment).
//!
//! Two gates, both tier-1 (they run under plain `cargo test`, not just
//! the bench):
//!
//! * **Degenerate bit-identity** — with a coarsening cutoff at or
//!   above `N`, the multilevel solver *is* the direct [`GeoMapper`]:
//!   the inner solver sees the untouched problem on the same RNG
//!   stream, so the mapping must match bit for bit, at every `N ≤
//!   4096` shape we can afford here.
//! * **±5 % cost band** — full multilevel (cutoff forcing several
//!   levels) stays within 5 % of the direct solver's Eq. 3 cost on
//!   every Fig. 4/Fig. 5 application, and stays feasible.

use commgraph::apps::AppKind;
use geomap_core::{cost, GeoMapper, Mapper, MappingProblem, MultilevelConfig, MultilevelMapper};
use geonet::{presets, InstanceType};

const APPS: [AppKind; 5] = [
    AppKind::Bt,
    AppKind::Sp,
    AppKind::Lu,
    AppKind::KMeans,
    AppKind::Dnn,
];

/// One Fig. 5-style problem: `n` ranks of `app` over the paper's
/// 4-region EC2 network with just enough slack capacity.
fn fig_problem(app: AppKind, n: usize, seed: u64) -> MappingProblem {
    let net = presets::paper_ec2_network(n.div_ceil(4) + 1, InstanceType::M4Xlarge, seed);
    MappingProblem::unconstrained(app.workload(n).pattern(), net)
}

#[test]
fn degenerate_cutoff_matches_direct_solver_bit_for_bit() {
    for app in APPS {
        for n in [16usize, 64, 256] {
            let problem = fig_problem(app, n, 7);
            let inner = GeoMapper::default();
            let direct = inner.map(&problem);
            let multilevel = MultilevelMapper {
                config: MultilevelConfig {
                    coarsen_cutoff: 4096,
                    ..MultilevelConfig::default()
                },
                inner,
                ..MultilevelMapper::default()
            }
            .map(&problem);
            assert_eq!(
                multilevel.as_slice(),
                direct.as_slice(),
                "{app:?} at n={n}: degenerate multilevel diverged from GeoMapper"
            );
        }
    }
}

#[test]
fn full_multilevel_within_five_percent_of_direct() {
    for app in APPS {
        let n = 64;
        let problem = fig_problem(app, n, 7);
        let inner = GeoMapper::default();
        let direct_cost = cost(&problem, &inner.map(&problem));
        let mapper = MultilevelMapper {
            // Cutoff 8 on 64 ranks forces a real hierarchy (~3 levels).
            config: MultilevelConfig {
                coarsen_cutoff: 8,
                match_rounds: 2,
                refine_passes: 3,
            },
            inner,
            ..MultilevelMapper::default()
        };
        let mapping = mapper.map(&problem);
        mapping.validate(&problem).unwrap();
        let ml_cost = cost(&problem, &mapping);
        let ratio = ml_cost / direct_cost;
        assert!(
            ratio <= 1.05,
            "{app:?}: multilevel cost {ml_cost} is {:.1}% above direct {direct_cost}",
            (ratio - 1.0) * 100.0
        );
        assert!(
            ratio > 0.2,
            "{app:?}: multilevel cost {ml_cost} suspiciously below direct {direct_cost}"
        );
    }
}
