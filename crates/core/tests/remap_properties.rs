//! Property harness for the bounded-migration incremental re-solver.
//!
//! Four laws, each over randomized problems, randomized feasible
//! starting assignments, and randomized budgets (proptest):
//!
//! 1. **Budget** — the repair never moves more ranks than the migration
//!    budget allows, and `moved` is exactly the set of ranks whose site
//!    changed from the start.
//! 2. **Pins** — a rank pinned by the Eq. 5 constraint vector never
//!    moves, whatever the budget.
//! 3. **Monotonicity** — the repaired Eq. 3 cost never exceeds the
//!    starting cost. This holds for *every* α ≥ 0: the search starts at
//!    the current placement (zero migrations), so any accepted endpoint
//!    satisfies `cost_new + α·moved ≤ cost_start`, hence
//!    `cost_new ≤ cost_start`.
//! 4. **Oracle** — with the budget non-binding (`None`) and α = 0 the
//!    repair *is* the cold re-solve: same passes over the same
//!    neighborhood from the same start, bit-identical mapping and cost.

use commgraph::pattern::PatternBuilder;
use commgraph::CommPattern;
use geomap_core::{
    cold_resolve, cost, repair, ConstraintVector, Mapping, MappingProblem, RemapConfig,
};
use geonet::{GeoCoord, Site, SiteId, SiteNetwork, SquareMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random problem: `n` processes over `m` sites with random directed
/// traffic and random positive `LT`/`BT`; half the instances carry
/// random pin constraints.
fn random_problem(n: usize, m: usize, seed: u64) -> MappingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = PatternBuilder::new(n);
    for _ in 0..(n * 3).max(4) {
        let src = rng.random_range(0..n);
        let dst = rng.random_range(0..n);
        if src == dst {
            continue;
        }
        b.record_many(
            src,
            dst,
            rng.random_range(1..2_000_000u64),
            rng.random_range(1..64u64),
        );
    }
    let pattern = ensure_nonempty(b.build(), n);
    // A little slack above perfectly-tight capacity so repairs have
    // somewhere to move ranks to.
    let per_site = n.div_ceil(m) + 1;
    let sites: Vec<Site> = (0..m)
        .map(|k| Site::new(format!("s{k}"), GeoCoord::new(k as f64, 0.0), per_site))
        .collect();
    let lt = SquareMatrix::from_fn(m, |k, l| {
        if k == l {
            rng.random_range(1e-5..1e-4)
        } else {
            rng.random_range(1e-3..0.2)
        }
    });
    let bt = SquareMatrix::from_fn(m, |k, l| {
        if k == l {
            rng.random_range(1e9..1e10)
        } else {
            rng.random_range(1e6..1e8)
        }
    });
    let net = SiteNetwork::new(sites, lt, bt);
    let constraints = if rng.random_bool(0.5) {
        ConstraintVector::random(
            n,
            rng.random_range(0.1..0.4),
            &net.capacities(),
            seed ^ 0xC1,
        )
    } else {
        ConstraintVector::none(n)
    };
    MappingProblem::new(pattern, net, constraints)
}

fn ensure_nonempty(pattern: CommPattern, n: usize) -> CommPattern {
    if (0..n).any(|i| !pattern.out_edges(i).is_empty()) {
        return pattern;
    }
    let mut b = PatternBuilder::new(n);
    for i in 0..n {
        b.record_many(i, (i + 1) % n, 1000, 1);
    }
    b.build()
}

/// Random feasible starting assignment honouring capacities and pins —
/// the "current placement" a drift event leaves behind.
fn random_start(problem: &MappingProblem, rng: &mut StdRng) -> Mapping {
    let n = problem.num_processes();
    let mut free = problem.free_capacities();
    let mut sites: Vec<Option<SiteId>> = (0..n).map(|i| problem.constraints().pin_of(i)).collect();
    for s in sites.iter_mut() {
        if s.is_none() {
            loop {
                let k = rng.random_range(0..free.len());
                if free[k] > 0 {
                    free[k] -= 1;
                    *s = Some(SiteId(k));
                    break;
                }
            }
        }
    }
    Mapping::new(sites.into_iter().map(|s| s.unwrap()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Properties 1–3 in one sweep: budget respected, `moved` exact,
    /// pins immobile, Eq. 3 cost monotone — across random budgets and
    /// random α (including α = 0 and large α).
    #[test]
    fn prop_budget_pins_and_monotonicity(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2EA1);
        let n = rng.random_range(6..48usize);
        let m = rng.random_range(2..6usize);
        let problem = random_problem(n, m, seed);
        let start = random_start(&problem, &mut rng);
        let start_cost = cost(&problem, &start);

        let budget = rng.random_range(0..=n);
        let alpha = [0.0, 1e-6, start_cost.abs() * 0.01][rng.random_range(0..3usize)];
        let outcome = repair(
            &problem,
            &start,
            &RemapConfig { budget: Some(budget), alpha, ..RemapConfig::default() },
        );

        // Budget: migrations never exceed it, and `moved` is exactly
        // the diff against the start.
        let diff: Vec<usize> = (0..n)
            .filter(|&i| outcome.mapping.site_of(i) != start.site_of(i))
            .collect();
        prop_assert!(diff.len() <= budget,
            "moved {} ranks past a budget of {budget}", diff.len());
        let mut moved = outcome.moved.clone();
        moved.sort_unstable();
        prop_assert_eq!(moved, diff, "`moved` is not the exact start diff");

        // Pins: Eq. 5 holds on the repaired placement and no pinned
        // rank changed site.
        prop_assert!(problem.constraints().satisfied_by(outcome.mapping.as_slice()));
        for i in 0..n {
            if let Some(pin) = problem.constraints().pin_of(i) {
                prop_assert_eq!(outcome.mapping.site_of(i), pin);
                prop_assert_eq!(outcome.mapping.site_of(i), start.site_of(i));
            }
        }

        // Feasibility: the repair never overfills a site.
        prop_assert!(outcome.mapping.validate(&problem).is_ok());

        // Monotonicity: Eq. 3 never worsens, for any α ≥ 0.
        prop_assert!(outcome.new_cost <= outcome.old_cost + 1e-9 * start_cost.abs().max(1.0),
            "repair worsened Eq. 3: {} -> {}", outcome.old_cost, outcome.new_cost);
        // And the reported costs are real Eq. 3 evaluations.
        prop_assert!((outcome.old_cost - start_cost).abs() <= 1e-9 * start_cost.abs().max(1.0));
        let recomputed = cost(&problem, &outcome.mapping);
        prop_assert!((outcome.new_cost - recomputed).abs() <= 1e-9 * recomputed.abs().max(1.0),
            "reported new_cost {} vs recompute {}", outcome.new_cost, recomputed);
    }

    /// Property 4: unbounded, α = 0 repair is bit-identical to the
    /// cold-resolve oracle (same mapping, same cost bits).
    #[test]
    fn prop_unbounded_repair_matches_cold_resolve(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x01D);
        let n = rng.random_range(6..40usize);
        let m = rng.random_range(2..5usize);
        let problem = random_problem(n, m, seed ^ 0xFACE);
        let start = random_start(&problem, &mut rng);

        let config = RemapConfig { budget: None, alpha: 0.0, ..RemapConfig::default() };
        let repaired = repair(&problem, &start, &config);
        let oracle = cold_resolve(&problem, &start, config.passes);

        prop_assert_eq!(repaired.mapping.as_slice(), oracle.mapping.as_slice(),
            "unbounded repair diverged from the cold-resolve oracle");
        prop_assert_eq!(repaired.new_cost.to_bits(), oracle.new_cost.to_bits());
        prop_assert_eq!(repaired.passes_run, oracle.passes_run);
    }

    /// Degenerate budgets behave: zero budget is a no-op that still
    /// reports honest costs.
    #[test]
    fn prop_zero_budget_changes_nothing(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2E20);
        let n = rng.random_range(4..32usize);
        let problem = random_problem(n, 3, seed ^ 0xBEEF);
        let start = random_start(&problem, &mut rng);
        let outcome = repair(
            &problem,
            &start,
            &RemapConfig { budget: Some(0), alpha: 0.0, ..RemapConfig::default() },
        );
        prop_assert_eq!(outcome.mapping.as_slice(), start.as_slice());
        prop_assert!(outcome.moved.is_empty());
        prop_assert_eq!(outcome.new_cost.to_bits(), outcome.old_cost.to_bits());
    }
}
