//! Behavioural tests of the Geo-distributed algorithm beyond unit level:
//! grouping interplay, order-search value, scaling smoke, and the
//! degenerate cases the paper calls out.

use commgraph::apps::{AppKind, RandomGraph, Ring, Stencil2D, Workload};
use geomap_core::{
    cost, ConstraintVector, CostModel, GeoMapper, Mapper, MappingProblem, OrderSearch,
};
use geonet::{presets, InstanceType, SiteId};

fn ec2(nodes: usize, seed: u64) -> geonet::SiteNetwork {
    presets::paper_ec2_network(nodes, InstanceType::M4Xlarge, seed)
}

#[test]
fn eleven_region_mapping_with_grouping() {
    // The grouping optimization is motivated by large M: map onto all 11
    // EC2 regions with kappa=4 (11! orders would be infeasible).
    let net = presets::ec2_global_network(4, InstanceType::M4Xlarge, 2);
    let pattern = RandomGraph {
        n: 44,
        degree: 4,
        max_bytes: 500_000,
        seed: 2,
    }
    .pattern();
    let problem = MappingProblem::unconstrained(pattern, net);
    let mapper = GeoMapper::with_kappa(4);
    let m = mapper.map(&problem);
    m.validate(&problem).unwrap();
    // Clearly better than a random spread.
    let random = baseline_cost(&problem);
    assert!(cost(&problem, &m) < 0.8 * random);
}

fn baseline_cost(problem: &MappingProblem) -> f64 {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut total = 0.0;
    for _ in 0..5 {
        // Local shuffle-based random mapping honouring constraints
        // (avoid depending on the baselines crate from core's tests).
        let mut slots: Vec<SiteId> = Vec::new();
        for (j, c) in problem.free_capacities().iter().enumerate() {
            slots.extend(std::iter::repeat_n(SiteId(j), *c));
        }
        for i in (1..slots.len()).rev() {
            let j = rng.random_range(0..=i);
            slots.swap(i, j);
        }
        let mut next = 0;
        let assignment: Vec<SiteId> = (0..problem.num_processes())
            .map(|i| {
                problem.constraints().pin_of(i).unwrap_or_else(|| {
                    let s = slots[next];
                    next += 1;
                    s
                })
            })
            .collect();
        total += cost(problem, &geomap_core::Mapping::new(assignment));
    }
    total / 5.0
}

#[test]
fn order_search_strictly_helps_on_asymmetric_rings() {
    // A directed ring of site-sized blocks: the block-to-site order
    // decides which WAN links carry traffic, exactly what the κ! search
    // optimizes. Count how often exhaustive beats first-only.
    let mut wins = 0;
    let mut strict = 0;
    for seed in 0..8 {
        let net = ec2(8, seed);
        let pattern = Ring {
            n: 32,
            iterations: 4,
            bytes: 2_000_000,
        }
        .pattern();
        let problem = MappingProblem::unconstrained(pattern, net);
        let full = GeoMapper {
            seed,
            refine: false,
            ..GeoMapper::default()
        };
        let first = GeoMapper {
            order_search: OrderSearch::FirstOnly,
            ..full.clone()
        };
        let c_full = cost(&problem, &full.map(&problem));
        let c_first = cost(&problem, &first.map(&problem));
        assert!(c_full <= c_first + 1e-9, "seed {seed}");
        wins += 1;
        if c_full < c_first - 1e-9 {
            strict += 1;
        }
    }
    assert_eq!(wins, 8);
    assert!(
        strict >= 3,
        "order search never strictly helped ({strict}/8)"
    );
}

#[test]
fn refinement_never_hurts_and_often_helps() {
    // Refinement earns its keep on *constrained* problems: pinned
    // processes force the greedy packing into positions a swap pass can
    // fix (unconstrained packings are frequently already swap-optimal).
    let mut helped = 0;
    for seed in 0..6 {
        let net = ec2(8, seed);
        let pattern = AppKind::KMeans.workload(32).pattern();
        let constraints = ConstraintVector::random(32, 0.2, &net.capacities(), seed);
        let problem = MappingProblem::new(pattern, net, constraints);
        let with = GeoMapper {
            seed,
            ..GeoMapper::default()
        };
        let without = GeoMapper {
            refine: false,
            ..with.clone()
        };
        let c_with = cost(&problem, &with.map(&problem));
        let c_without = cost(&problem, &without.map(&problem));
        assert!(
            c_with <= c_without + 1e-9,
            "seed {seed}: {c_with} > {c_without}"
        );
        if c_with < c_without - 1e-9 {
            helped += 1;
        }
    }
    assert!(helped >= 3, "refinement helped only {helped}/6 runs");
}

#[test]
fn stencil_blocks_map_to_contiguous_sites() {
    // A 2-D stencil on 4 sites: Geo should cut far fewer halo edges
    // than a random spread.
    let net = ec2(16, 4);
    let w = Stencil2D {
        n: 64,
        iterations: 3,
        bytes: 1_000_000,
    };
    let pattern = w.pattern();
    let problem = MappingProblem::unconstrained(pattern.clone(), net);
    let m = GeoMapper::default().map(&problem);
    let cut: f64 = (0..64)
        .flat_map(|i| pattern.out_edges(i).iter().map(move |e| (i, e)))
        .filter(|(i, e)| m.site_of(*i) != m.site_of(e.dst))
        .map(|(_, e)| e.bytes)
        .sum();
    let frac = cut / pattern.total_bytes();
    // A perfect 4-quadrant split of a 8x8 torus stencil cuts 32 of 256
    // directed edges (12.5%); allow slack but demand real locality.
    assert!(frac < 0.35, "cut fraction {frac}");
}

#[test]
fn latency_only_objective_degrades_bandwidth_heavy_apps() {
    // Ablation sanity: optimizing only AG·LT on a volume-dominated app
    // must not beat the full objective (evaluated under the full model).
    let net = ec2(16, 6);
    let pattern = AppKind::Bt.workload(64).pattern();
    let problem = MappingProblem::unconstrained(pattern, net);
    let full = GeoMapper::default().map(&problem);
    let lat_only = GeoMapper {
        cost_model: CostModel::LatencyOnly,
        ..GeoMapper::default()
    }
    .map(&problem);
    assert!(cost(&problem, &full) <= cost(&problem, &lat_only) + 1e-9);
}

#[test]
fn unbalanced_capacities_are_respected() {
    // Sites with very different node counts: 1, 2, 4, 25.
    let mut sites = presets::paper_ec2_sites(1);
    sites[1].nodes = 2;
    sites[2].nodes = 4;
    sites[3].nodes = 25;
    let net = geonet::SynthNetworkBuilder::new(geonet::SynthConfig::default()).build(sites);
    let pattern = RandomGraph {
        n: 32,
        degree: 3,
        max_bytes: 100_000,
        seed: 1,
    }
    .pattern();
    let problem = MappingProblem::unconstrained(pattern, net);
    let m = GeoMapper::default().map(&problem);
    m.validate(&problem).unwrap();
    let counts = m.site_counts(4);
    assert!(counts[0] <= 1 && counts[1] <= 2 && counts[2] <= 4);
    assert_eq!(counts.iter().sum::<usize>(), 32);
}

#[test]
fn spare_capacity_is_allowed() {
    // More nodes than processes: mapping simply leaves slots free.
    let net = ec2(16, 7); // 64 nodes
    let pattern = Ring {
        n: 20,
        iterations: 1,
        bytes: 1000,
    }
    .pattern();
    let problem = MappingProblem::unconstrained(pattern, net);
    let m = GeoMapper::default().map(&problem);
    m.validate(&problem).unwrap();
    assert_eq!(m.len(), 20);
}

#[test]
fn heavily_constrained_problem_is_still_optimized() {
    let net = ec2(8, 8);
    let pattern = AppKind::Sp.workload(32).pattern();
    let constraints = ConstraintVector::random(32, 0.8, &net.capacities(), 3);
    let problem = MappingProblem::new(pattern, net, constraints);
    let geo = cost(&problem, &GeoMapper::default().map(&problem));
    let random = baseline_cost(&problem);
    // Only ~6 free processes, but placing them well still helps.
    assert!(geo <= random, "geo {geo} vs random {random}");
}
