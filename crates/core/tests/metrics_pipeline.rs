//! End-to-end observability: one enabled [`Metrics`] handle on the
//! pipeline must yield populated, mutually consistent phase timers and
//! search counters — and must not change any mapping decision.

use commgraph::apps::AppKind;
use geomap_core::pipeline::{run, PipelineConfig};
use geomap_core::{ConstraintVector, MemorySink, Metrics};
use geonet::{presets, InstanceType};
use std::sync::Arc;

fn run_with_sink() -> (Arc<MemorySink>, geomap_core::Mapping) {
    let truth = presets::paper_ec2_network(8, InstanceType::M4Xlarge, 7);
    let program = AppKind::Lu.workload(32).program();
    let sink = Arc::new(MemorySink::new());
    let config = PipelineConfig {
        metrics: Metrics::new(sink.clone()),
        ..PipelineConfig::default()
    };
    let result = run(&program, &truth, ConstraintVector::none(32), &config);
    (sink, result.mapping)
}

#[test]
fn pipeline_phases_are_all_timed() {
    let (sink, _) = run_with_sink();
    for phase in ["phase.profiling", "phase.calibration", "phase.optimization"] {
        assert!(sink.has("pipeline", phase), "missing pipeline {phase}");
    }
    // The mapper inherited the pipeline's handle: Algorithm 1's own
    // phases land under the mapper's scope.
    for phase in [
        "phase.grouping",
        "phase.order_search",
        "phase.packing",
        "phase.refinement",
    ] {
        assert!(sink.has("Geo-distributed", phase), "missing mapper {phase}");
    }
    // Phase nesting: the optimization wall time must cover the mapper's
    // wall-clock phases it contains (grouping + order search +
    // refinement; packing is CPU time inside order_search and may
    // exceed wall time on the rayon pool).
    let optimization = sink.sum("pipeline", "phase.optimization");
    let inner = sink.sum("Geo-distributed", "phase.grouping")
        + sink.sum("Geo-distributed", "phase.order_search")
        + sink.sum("Geo-distributed", "phase.refinement");
    assert!(
        inner <= optimization * 1.05 + 0.005,
        "inner phases ({inner:.6}s) exceed the optimization wall ({optimization:.6}s)"
    );
}

#[test]
fn search_counters_are_populated_and_consistent() {
    let (sink, _) = run_with_sink();
    let evaluated = sink.sum("Geo-distributed", "search.swaps_evaluated");
    let accepted = sink.sum("Geo-distributed", "search.swaps_accepted");
    let terms = sink.sum("Geo-distributed", "search.terms");
    let orders = sink.sum("Geo-distributed", "search.orders_evaluated");
    let groups = sink.sum("Geo-distributed", "search.groups");
    let restarts = sink.sum("Geo-distributed", "search.restarts");
    let passes = sink.sum("Geo-distributed", "search.passes");
    assert!(orders >= 1.0, "orders_evaluated {orders}");
    assert!(groups >= 1.0, "groups {groups}");
    assert!(evaluated > 0.0, "swaps_evaluated {evaluated}");
    assert!(
        accepted <= evaluated,
        "accepted {accepted} > evaluated {evaluated}"
    );
    assert!(restarts >= 1.0, "refinement multi-starts {restarts}");
    // Every restart runs at least one sweep.
    assert!(passes >= restarts, "passes {passes} < restarts {restarts}");
    // Each candidate Δ touches at least one α–β term, and the evaluator
    // construction contributes on top.
    assert!(terms >= evaluated, "terms {terms} < evaluated {evaluated}");
}

#[test]
fn instrumentation_never_changes_the_mapping() {
    let (_, instrumented) = run_with_sink();
    let truth = presets::paper_ec2_network(8, InstanceType::M4Xlarge, 7);
    let program = AppKind::Lu.workload(32).program();
    let plain = run(
        &program,
        &truth,
        ConstraintVector::none(32),
        &PipelineConfig::default(),
    );
    assert_eq!(instrumented, plain.mapping);
}
