//! Equivalence harness for the incremental Δ-cost engine.
//!
//! Pins `CostEvaluator` (cached `O(deg)` deltas) to the ground truth on
//! three levels:
//!
//! 1. **Delta equivalence** — `swap_delta`/`move_delta` match a full
//!    Eq. 3 recompute within `1e-9` relative, over randomized `CG`/`AG`
//!    patterns, randomized `LT`/`BT` matrices, random constraint
//!    vectors, and long randomized apply/revert sequences (proptest).
//! 2. **Exhaustive small instances** — every one of the `N·(N−1)/2`
//!    swaps for `N ≤ 16`, all three cost models.
//! 3. **Oracle regression** — `GeoMapper` produces *bit-identical*
//!    mappings whether its refinement runs on the incremental engine or
//!    the full-recompute oracle, on the Fig. 5 mini-setup (4 sites × 16
//!    nodes, N = 64, all five paper workloads). The MPIPP twin of this
//!    test lives in the baselines crate (`mpipp::tests`).

use commgraph::apps::AppKind;
use commgraph::pattern::PatternBuilder;
use commgraph::CommPattern;
use geomap_core::delta::{CostEval, CostEvaluator, CostTables, Evaluation, FullRecomputeEval};
use geomap_core::{
    cost_with_model, ConstraintVector, CostModel, GeoMapper, Mapper, Mapping, MappingProblem,
};
use geonet::{presets, GeoCoord, InstanceType, Site, SiteNetwork, SquareMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random problem: `n` processes over `m` sites with random directed
/// `CG`/`AG` (density ~`degree/n`) and random positive `LT`/`BT`.
fn random_problem(n: usize, m: usize, seed: u64) -> MappingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = PatternBuilder::new(n);
    let edges = (n * 3).max(4);
    for _ in 0..edges {
        let src = rng.random_range(0..n);
        let dst = rng.random_range(0..n);
        if src == dst {
            continue;
        }
        let bytes = rng.random_range(1..2_000_000u64);
        let msgs = rng.random_range(1..64u64);
        b.record_many(src, dst, bytes, msgs);
    }
    let pattern = ensure_nonempty(b.build(), n);
    let sites: Vec<Site> = (0..m)
        .map(|k| {
            Site::new(
                format!("s{k}"),
                GeoCoord::new(k as f64, -(k as f64)),
                n.div_ceil(m),
            )
        })
        .collect();
    let lt = SquareMatrix::from_fn(m, |k, l| {
        if k == l {
            rng.random_range(1e-5..1e-4)
        } else {
            rng.random_range(1e-3..0.2)
        }
    });
    let bt = SquareMatrix::from_fn(m, |k, l| {
        if k == l {
            rng.random_range(1e9..1e10)
        } else {
            rng.random_range(1e6..1e8)
        }
    });
    let net = SiteNetwork::new(sites, lt, bt);
    let constraints = if rng.random_bool(0.5) {
        ConstraintVector::random(
            n,
            rng.random_range(0.1..0.5),
            &net.capacities(),
            seed ^ 0xC1,
        )
    } else {
        ConstraintVector::none(n)
    };
    MappingProblem::new(pattern, net, constraints)
}

/// An all-isolated pattern breaks nothing, but make the common case a
/// connected one: add a ring edge when the random draw came up empty.
fn ensure_nonempty(pattern: CommPattern, n: usize) -> CommPattern {
    if (0..n).any(|i| !pattern.out_edges(i).is_empty()) {
        return pattern;
    }
    let mut b = PatternBuilder::new(n);
    for i in 0..n {
        b.record_many(i, (i + 1) % n, 1000, 1);
    }
    b.build()
}

/// Random feasible assignment honouring capacities and pins.
fn random_assignment(problem: &MappingProblem, rng: &mut StdRng) -> Vec<geonet::SiteId> {
    let n = problem.num_processes();
    let mut free = problem.free_capacities();
    let mut sites: Vec<Option<geonet::SiteId>> =
        (0..n).map(|i| problem.constraints().pin_of(i)).collect();
    for s in sites.iter_mut() {
        if s.is_none() {
            loop {
                let k = rng.random_range(0..free.len());
                if free[k] > 0 {
                    free[k] -= 1;
                    *s = Some(geonet::SiteId(k));
                    break;
                }
            }
        }
    }
    sites.into_iter().map(|s| s.unwrap()).collect()
}

/// Relative-tolerance check scaled by the instance's total cost.
fn assert_close(label: &str, got: f64, want: f64, scale: f64) {
    assert!(
        (got - want).abs() <= 1e-9 * scale.abs().max(1.0),
        "{label}: incremental {got} vs full recompute {want} (scale {scale})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: every swap delta matches the full Eq. 3 recompute.
    #[test]
    fn prop_swap_delta_matches_full_recompute(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A);
        let n = rng.random_range(4..40usize);
        let m = rng.random_range(2..6usize);
        let problem = random_problem(n, m, seed);
        let tables = CostTables::build(&problem, CostModel::Full);
        let sites = random_assignment(&problem, &mut rng);
        let eval = CostEvaluator::new(&tables, sites.clone());
        let scale = tables.total(&sites);
        for _ in 0..32 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let mut swapped = sites.clone();
            swapped.swap(a, b);
            let want = tables.total(&swapped) - tables.total(&sites);
            // Same-site swaps are exact no-ops for the engine.
            let want = if sites[a] == sites[b] { 0.0 } else { want };
            prop_assert!((eval.swap_delta(a, b) - want).abs() <= 1e-9 * scale.max(1.0));
        }
    }

    /// Property 2: every move delta matches the full Eq. 3 recompute.
    #[test]
    fn prop_move_delta_matches_full_recompute(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5);
        let n = rng.random_range(4..40usize);
        let m = rng.random_range(2..6usize);
        let problem = random_problem(n, m, seed);
        let tables = CostTables::build(&problem, CostModel::Full);
        let sites = random_assignment(&problem, &mut rng);
        let eval = CostEvaluator::new(&tables, sites.clone());
        let scale = tables.total(&sites);
        for _ in 0..32 {
            let i = rng.random_range(0..n);
            let to = geonet::SiteId(rng.random_range(0..m));
            let mut moved = sites.clone();
            moved[i] = to;
            let want = if sites[i] == to { 0.0 } else { tables.total(&moved) - tables.total(&sites) };
            prop_assert!((eval.move_delta(i, to) - want).abs() <= 1e-9 * scale.max(1.0));
        }
    }

    /// Property 3: long randomized apply/revert sequences keep the
    /// incremental engine in lockstep with the oracle, and reverting the
    /// whole sequence restores the initial state bitwise.
    #[test]
    fn prop_apply_revert_sequences_stay_in_lockstep(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7E57);
        let n = rng.random_range(6..32usize);
        let m = rng.random_range(2..5usize);
        let problem = random_problem(n, m, seed);
        let tables = CostTables::build(&problem, CostModel::Full);
        let sites = random_assignment(&problem, &mut rng);
        let mut inc = CostEvaluator::new(&tables, sites.clone());
        let mut full = FullRecomputeEval::new(&tables, sites.clone());
        let initial_total = inc.total();
        let scale = initial_total.abs().max(1.0);

        let mut live_ops = 0usize;
        for _ in 0..120 {
            match rng.random_range(0..4u32) {
                // Swap two random processes.
                0 | 1 => {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    let da = inc.apply_swap(a, b);
                    let db = full.apply_swap(a, b);
                    prop_assert!((da - db).abs() <= 1e-9 * scale);
                    live_ops += 1;
                }
                // Move a random process (capacity ignored on purpose:
                // delta math is independent of feasibility).
                2 => {
                    let i = rng.random_range(0..n);
                    let to = geonet::SiteId(rng.random_range(0..m));
                    let da = inc.apply_move(i, to);
                    let db = full.apply_move(i, to);
                    prop_assert!((da - db).abs() <= 1e-9 * scale);
                    live_ops += 1;
                }
                // Revert the most recent op on both engines.
                _ => {
                    let ra = inc.revert();
                    let rb = full.revert();
                    prop_assert_eq!(ra, rb);
                    live_ops = live_ops.saturating_sub(1);
                }
            }
            prop_assert_eq!(inc.sites(), full.sites());
            prop_assert!((inc.total() - full.total()).abs() <= 1e-9 * scale);
            // The incremental total must also track a fresh recompute.
            prop_assert!((inc.total() - tables.total(inc.sites())).abs() <= 1e-9 * scale);
        }
        // Unwind everything: exact initial state, bitwise.
        for _ in 0..live_ops {
            prop_assert!(inc.revert());
        }
        prop_assert!(!inc.revert());
        prop_assert_eq!(inc.sites(), &sites[..]);
        prop_assert_eq!(inc.total().to_bits(), initial_total.to_bits());
    }
}

/// Exhaustive: all N·(N−1)/2 swaps on every instance with N ≤ 16, under
/// all three cost models, against a brute-force recompute.
#[test]
fn exhaustive_all_swaps_small_instances() {
    for n in [2usize, 3, 5, 8, 12, 16] {
        for seed in 0..4u64 {
            let m = (n / 2).clamp(2, 5);
            let problem = random_problem(n, m, seed.wrapping_mul(977).wrapping_add(n as u64));
            let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
            let sites = random_assignment(&problem, &mut rng);
            for model in [
                CostModel::Full,
                CostModel::LatencyOnly,
                CostModel::BandwidthOnly,
            ] {
                let tables = CostTables::build(&problem, model);
                let eval = CostEvaluator::new(&tables, sites.clone());
                let base = tables.total(&sites);
                for a in 0..n {
                    for b in (a + 1)..n {
                        let mut swapped = sites.clone();
                        swapped.swap(a, b);
                        let want = if sites[a] == sites[b] {
                            0.0
                        } else {
                            tables.total(&swapped) - base
                        };
                        assert_close(
                            &format!("n={n} seed={seed} {model:?} swap ({a},{b})"),
                            eval.swap_delta(a, b),
                            want,
                            base,
                        );
                    }
                }
            }
        }
    }
}

/// The flat tables agree with the reference `cost_with_model` path on
/// real application workloads (the two are independent implementations
/// of Eq. 3).
#[test]
fn tables_match_reference_cost_on_paper_workloads() {
    let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 7);
    for &app in AppKind::ALL.iter() {
        let problem = MappingProblem::unconstrained(app.workload(64).pattern(), net.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let sites = random_assignment(&problem, &mut rng);
        let mapping = Mapping::new(sites.clone());
        for model in [
            CostModel::Full,
            CostModel::LatencyOnly,
            CostModel::BandwidthOnly,
        ] {
            let tables = CostTables::build(&problem, model);
            let want = cost_with_model(&problem, &mapping, model);
            assert_close(
                &format!("{} {model:?}", app.name()),
                tables.total(&sites),
                want,
                want,
            );
        }
    }
}

/// Oracle regression (Fig. 5 mini-setup: 4 sites × 16 nodes, N = 64):
/// GeoMapper's refinement produces bit-identical mappings on the
/// incremental engine and on the full-recompute oracle, for all five
/// paper workloads.
#[test]
fn geo_mapper_identical_on_both_engines_fig5_mini() {
    let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 3);
    for &app in AppKind::ALL.iter() {
        let problem = MappingProblem::unconstrained(app.workload(64).pattern(), net.clone());
        let incremental = GeoMapper {
            evaluation: Evaluation::Incremental,
            ..GeoMapper::default()
        }
        .map(&problem);
        let oracle = GeoMapper {
            evaluation: Evaluation::FullRecompute,
            ..GeoMapper::default()
        }
        .map(&problem);
        assert_eq!(
            incremental,
            oracle,
            "{}: refinement diverged between incremental and oracle evaluation",
            app.name()
        );
    }
}

/// Same regression with data-movement constraints in play.
#[test]
fn geo_mapper_identical_on_both_engines_with_constraints() {
    let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 5);
    let pattern = AppKind::KMeans.workload(64).pattern();
    let constraints = ConstraintVector::random(64, 0.2, &net.capacities(), 17);
    let problem = MappingProblem::new(pattern, net, constraints);
    let incremental = GeoMapper {
        evaluation: Evaluation::Incremental,
        ..GeoMapper::default()
    }
    .map(&problem);
    let oracle = GeoMapper {
        evaluation: Evaluation::FullRecompute,
        ..GeoMapper::default()
    }
    .map(&problem);
    assert_eq!(incremental, oracle);
}

/// Work-ratio acceptance check: at N = 1024 a full partner-edge
/// hill-climb pass evaluates ≥10× fewer α–β terms on the incremental
/// engine than on the full-recompute oracle.
#[test]
fn incremental_engine_saves_10x_terms_at_n1024() {
    let net = presets::paper_ec2_network(256, InstanceType::M4Xlarge, 1);
    let problem = MappingProblem::unconstrained(AppKind::Lu.workload(1024).pattern(), net);
    let tables = CostTables::build(&problem, CostModel::Full);
    let mut rng = StdRng::seed_from_u64(2);
    let sites = random_assignment(&problem, &mut rng);

    let counted_pass = |evaluation: Evaluation| -> (u64, Vec<geonet::SiteId>) {
        let mut eval = evaluation.evaluator(&tables, sites.clone());
        let before = eval.terms();
        geomap_core::sweep_hill_climb(eval.as_mut(), 1, &|_| true, &|_, _| true);
        (eval.terms() - before, eval.sites().to_vec())
    };

    let (inc_terms, inc_sites) = counted_pass(Evaluation::Incremental);
    let (full_terms, full_sites) = counted_pass(Evaluation::FullRecompute);
    assert_eq!(
        inc_sites, full_sites,
        "the two engines must take identical sweeps"
    );
    assert!(
        full_terms >= 10 * inc_terms,
        "expected ≥10× term savings at N=1024: incremental {inc_terms}, full {full_terms}"
    );
}
