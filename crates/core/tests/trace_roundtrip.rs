//! Round-trip contract of the trace layer: events recorded through a
//! [`Trace`] handle into a [`RingBufferSink`] export as Chrome
//! trace-event JSON that parses back with per-track monotonically
//! non-decreasing timestamps — the shape Perfetto and `chrome://tracing`
//! require — and instrumentation never changes algorithm results.

use geomap_core::{GeoMapper, Mapper, MappingProblem, RingBufferSink, Trace, TraceEventKind};
use std::sync::Arc;

/// A tiny hand-rolled reader for the subset of JSON the exporter emits:
/// one object per line between `[` and `]`, string values without
/// escapes beyond `\"`, and plain decimal numbers.
#[derive(Debug, PartialEq)]
struct ParsedEvent {
    ph: String,
    pid: u64,
    tid: u64,
    ts: Option<f64>,
    name: String,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

fn parse_chrome_json(json: &str) -> Vec<ParsedEvent> {
    let body = json
        .trim()
        .strip_prefix('[')
        .expect("opens as an array")
        .strip_suffix(']')
        .expect("closes as an array");
    body.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .map(|line| ParsedEvent {
            ph: field(line, "ph").expect("ph").to_string(),
            pid: field(line, "pid").expect("pid").parse().expect("pid int"),
            tid: field(line, "tid").expect("tid").parse().expect("tid int"),
            ts: field(line, "ts").map(|v| v.parse().expect("ts number")),
            name: field(line, "name").expect("name").to_string(),
        })
        .collect()
}

#[test]
fn ring_to_json_to_parse_back_is_lossless_and_monotonic() {
    let sink = Arc::new(RingBufferSink::new(1024));
    let trace = Trace::new(sink.clone());
    let a = trace.track("procA", "track one");
    let b = trace.track("procB", "track two");
    // Deliberately record out of timestamp order across tracks.
    trace.span_begin(a, "work", 0.5);
    trace.instant(b, "tick", 0.1);
    trace.counter(b, "depth", 0.2, 3.0);
    trace.span_end(a, "work", 0.9);
    trace.instant(a, "done", 0.9);

    let json = sink.to_chrome_json();
    let events = parse_chrome_json(&json);
    // 4 metadata records (2 tracks × process_name/thread_name) + 5 events.
    assert_eq!(events.len(), 9, "{json}");

    let meta: Vec<&ParsedEvent> = events.iter().filter(|e| e.ph == "M").collect();
    assert_eq!(meta.len(), 4);
    assert!(meta.iter().any(|e| e.name == "process_name" && e.pid == 1));
    assert!(meta
        .iter()
        .any(|e| e.name == "thread_name" && e.tid == b.0 as u64));

    // Every non-metadata event parses back with the µs timestamp, and
    // per-(pid,tid) timestamps are monotonically non-decreasing.
    let data: Vec<&ParsedEvent> = events.iter().filter(|e| e.ph != "M").collect();
    assert_eq!(data.len(), 5);
    let mut last: std::collections::HashMap<(u64, u64), f64> = Default::default();
    for e in &data {
        let ts = e.ts.expect("data events carry ts");
        let prev = last.entry((e.pid, e.tid)).or_insert(f64::NEG_INFINITY);
        assert!(
            ts >= *prev,
            "track ({},{}) went backwards: {ts} < {prev}",
            e.pid,
            e.tid
        );
        *prev = ts;
    }
    // Spot-check the µs conversion and counter naming.
    assert!(data.iter().any(|e| e.ph == "B" && e.ts == Some(500000.0)));
    assert!(
        data.iter()
            .any(|e| e.ph == "C" && e.name == "track two depth"),
        "counter name not track-prefixed: {json}"
    );
}

#[test]
fn capacity_bound_holds_and_drops_are_counted() {
    let sink = Arc::new(RingBufferSink::new(8));
    let trace = Trace::new(sink.clone());
    let t = trace.track("p", "t");
    for i in 0..50 {
        trace.instant(t, "e", i as f64);
    }
    let kept = sink.snapshot();
    assert_eq!(kept.len(), 8, "ring exceeded its capacity");
    assert_eq!(sink.dropped(), 42);
    // The survivors are the most recent events.
    assert!(kept.iter().all(|e| e.ts >= 42.0));
    assert!(kept.iter().all(|e| e.kind == TraceEventKind::Instant));
}

#[test]
fn tracing_is_bit_identical_at_the_mapper_level() {
    use commgraph::apps::AppKind;
    use geonet::{presets, InstanceType};
    let net = presets::paper_ec2_network(8, InstanceType::M4Xlarge, 2);
    let problem = MappingProblem::unconstrained(AppKind::KMeans.workload(32).pattern(), net);

    let plain = GeoMapper {
        seed: 7,
        ..GeoMapper::default()
    }
    .map(&problem);
    let sink = Arc::new(RingBufferSink::new(1 << 16));
    let traced = GeoMapper {
        seed: 7,
        trace: Trace::new(sink.clone()),
        ..GeoMapper::default()
    }
    .map(&problem);
    let off = GeoMapper {
        seed: 7,
        trace: Trace::off(),
        ..GeoMapper::default()
    }
    .map(&problem);

    assert_eq!(plain, traced, "recording events changed the mapping");
    assert_eq!(plain, off, "the off handle changed the mapping");
    assert!(
        !sink.snapshot().is_empty(),
        "the traced run recorded nothing"
    );
    // The exported JSON is already sorted, so a second export round-trip
    // stays monotonic per track too.
    let events = parse_chrome_json(&sink.to_chrome_json());
    assert!(events.iter().any(|e| e.ph == "B"));
    assert!(events.iter().any(|e| e.ph == "E"));
}
