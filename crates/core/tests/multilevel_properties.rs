//! Property harness for the multilevel coarsen–map–refine solver.
//!
//! Laws, each over randomized problems and randomized multilevel
//! configurations (proptest):
//!
//! 1. **Conservation** — coarsening loses nothing: at every level the
//!    aggregated rank weights sum to the base rank count, and the
//!    contracted edge traffic plus the internal (intra-vertex) traffic
//!    sums to the base totals *exactly* (all quantities are
//!    integer-valued `f64`s far below 2^53, so the sums are exact
//!    whatever the summation order).
//! 2. **Matching validity** — every coarse vertex absorbs one or two
//!    finer vertices (a rank is matched at most once per level), the
//!    projection is a total surjection, and pins never merge across
//!    different pin targets: a coarse vertex's pin is exactly the pin
//!    of each of its pinned members.
//! 3. **Cost preservation** — the Eq. 3 cost of *any* coarse
//!    assignment (contracted edges plus internal traffic charged at
//!    each vertex's own site) equals the base Eq. 3 cost of its
//!    projection, at every level, to float tolerance.
//! 4. **Load preservation / feasibility** — per-site rank-unit loads
//!    are identical before and after projection (so a feasible level
//!    assignment projects to a feasible base assignment), and the full
//!    solver's output mapping is feasible: capacities respected, every
//!    pin honoured.
//! 5. **Degenerate identity** — a coarsening cutoff at or above the
//!    rank count makes the multilevel solver the direct solver, bit
//!    for bit.

use commgraph::pattern::PatternBuilder;
use commgraph::CommPattern;
use geomap_core::multilevel::Hierarchy;
use geomap_core::{
    cost, ConstraintVector, GeoMapper, Mapper, Mapping, MappingProblem, MultilevelConfig,
    MultilevelMapper,
};
use geonet::{GeoCoord, Site, SiteId, SiteNetwork, SquareMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random problem: `n` processes over `m` sites with random directed
/// traffic and random positive `LT`/`BT`; half the instances carry
/// random pin constraints.
fn random_problem(n: usize, m: usize, seed: u64) -> MappingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = PatternBuilder::new(n);
    for _ in 0..(n * 3).max(4) {
        let src = rng.random_range(0..n);
        let dst = rng.random_range(0..n);
        if src == dst {
            continue;
        }
        b.record_many(
            src,
            dst,
            rng.random_range(1..2_000_000u64),
            rng.random_range(1..64u64),
        );
    }
    let pattern = ensure_nonempty(b.build(), n);
    let per_site = n.div_ceil(m) + 1;
    let sites: Vec<Site> = (0..m)
        .map(|k| Site::new(format!("s{k}"), GeoCoord::new(k as f64, 0.0), per_site))
        .collect();
    let lt = SquareMatrix::from_fn(m, |k, l| {
        if k == l {
            rng.random_range(1e-5..1e-4)
        } else {
            rng.random_range(1e-3..0.2)
        }
    });
    let bt = SquareMatrix::from_fn(m, |k, l| {
        if k == l {
            rng.random_range(1e9..1e10)
        } else {
            rng.random_range(1e6..1e8)
        }
    });
    let net = SiteNetwork::new(sites, lt, bt);
    let constraints = if rng.random_bool(0.5) {
        ConstraintVector::random(
            n,
            rng.random_range(0.1..0.4),
            &net.capacities(),
            seed ^ 0xC1,
        )
    } else {
        ConstraintVector::none(n)
    };
    MappingProblem::new(pattern, net, constraints)
}

fn ensure_nonempty(pattern: CommPattern, n: usize) -> CommPattern {
    if (0..n).any(|i| !pattern.out_edges(i).is_empty()) {
        return pattern;
    }
    let mut b = PatternBuilder::new(n);
    for i in 0..n {
        b.record_many(i, (i + 1) % n, 1000, 1);
    }
    b.build()
}

fn random_config(rng: &mut StdRng, n: usize) -> MultilevelConfig {
    MultilevelConfig {
        coarsen_cutoff: rng.random_range(4..(n / 2).max(5)),
        match_rounds: rng.random_range(1..4usize),
        refine_passes: rng.random_range(0..4usize),
    }
}

/// Member lists of each coarse vertex at one level.
fn members(coarse_of: &[usize], n_coarse: usize) -> Vec<Vec<usize>> {
    let mut m = vec![Vec::new(); n_coarse];
    for (fine, &c) in coarse_of.iter().enumerate() {
        m[c].push(fine);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Laws 1 and 2: exact conservation of rank weights and traffic,
    /// matching validity, and pin merging rules — at every level.
    #[test]
    fn prop_conservation_and_matching_validity(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3117);
        let n = rng.random_range(32..160usize);
        let m = rng.random_range(2..6usize);
        let problem = random_problem(n, m, seed);
        let config = random_config(&mut rng, n);
        let hierarchy = Hierarchy::coarsen(&problem, &config, seed ^ 0xAB);

        let base_bytes = problem.pattern().total_bytes();
        let base_msgs = problem.pattern().total_msgs();
        // The pins of the finer side of each level, for the merge law.
        let mut finer_pins: Vec<Option<SiteId>> =
            (0..n).map(|i| problem.constraints().pin_of(i)).collect();
        let mut finer_n = n;

        for (k, lvl) in hierarchy.levels.iter().enumerate() {
            // Rank weights: every base rank is in exactly one vertex.
            let weight_sum: usize = lvl.weights.iter().sum();
            prop_assert_eq!(weight_sum, n, "level {}: weights lost ranks", k);

            // Traffic conservation — exact, not approximate.
            let bytes = lvl.pattern.total_bytes()
                + lvl.internal_bytes.iter().sum::<f64>();
            let msgs = lvl.pattern.total_msgs()
                + lvl.internal_msgs.iter().sum::<f64>();
            prop_assert_eq!(bytes, base_bytes, "level {}: bytes not conserved", k);
            prop_assert_eq!(msgs, base_msgs, "level {}: msgs not conserved", k);

            // Matching validity: surjection, 1–2 members per vertex.
            prop_assert_eq!(lvl.coarse_of.len(), finer_n, "level {}: wrong domain", k);
            let mem = members(&lvl.coarse_of, lvl.n());
            for (c, ms) in mem.iter().enumerate() {
                prop_assert!(
                    (1..=2).contains(&ms.len()),
                    "level {k}: vertex {c} has {} members", ms.len()
                );
                // Pin merge law: pinned members all share one pin, and
                // the coarse vertex carries exactly it.
                let member_pins: Vec<Option<SiteId>> =
                    ms.iter().map(|&u| finer_pins[u]).collect();
                let coarse_pin = lvl.constraints.pin_of(c);
                for &p in &member_pins {
                    if p.is_some() {
                        prop_assert_eq!(
                            coarse_pin, p,
                            "level {}: vertex {} merged across pins", k, c
                        );
                    }
                }
                if member_pins.iter().all(|p| p.is_none()) {
                    prop_assert_eq!(coarse_pin, None);
                }
                // A pinned vertex never matches an unpinned one (the
                // strict compatibility rule), so pins are uniform.
                if ms.len() == 2 {
                    prop_assert_eq!(member_pins[0], member_pins[1],
                        "level {}: mixed-pin match at vertex {}", k, c);
                }
            }
            finer_pins = (0..lvl.n()).map(|i| lvl.constraints.pin_of(i)).collect();
            finer_n = lvl.n();
        }
        // Each level genuinely shrinks the graph.
        let mut prev = n;
        for lvl in &hierarchy.levels {
            prop_assert!(lvl.n() < prev);
            prev = lvl.n();
        }
    }

    /// Laws 3 and 4: any coarse assignment's level cost equals the base
    /// cost of its projection, and per-site rank loads survive
    /// projection unchanged.
    #[test]
    fn prop_projection_preserves_cost_and_loads(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
        let n = rng.random_range(32..128usize);
        let m = rng.random_range(2..6usize);
        let problem = random_problem(n, m, seed ^ 0xFACE);
        let config = random_config(&mut rng, n);
        let hierarchy = Hierarchy::coarsen(&problem, &config, seed ^ 0xCD);

        for (k, lvl) in hierarchy.levels.iter().enumerate() {
            // A random (not necessarily feasible) coarse assignment —
            // the cost identity is pointwise, not just on optima.
            let sites: Vec<SiteId> = (0..lvl.n())
                .map(|i| lvl.constraints.pin_of(i)
                    .unwrap_or_else(|| SiteId(rng.random_range(0..m))))
                .collect();
            let level_cost = hierarchy.cost_at(&problem, k, &sites);
            let projected = hierarchy.project_to_base(k, &sites);
            let base_cost = cost(&problem, &Mapping::new(projected.clone()));
            prop_assert!(
                (level_cost - base_cost).abs() <= 1e-9 * base_cost.abs().max(1.0),
                "level {}: cost {} vs projected base cost {}", k, level_cost, base_cost
            );

            // Load preservation: site-by-site rank weight is invariant.
            let mut level_load = vec![0usize; m];
            for i in 0..lvl.n() {
                level_load[sites[i].0] += lvl.weights[i];
            }
            let mut base_load = vec![0usize; m];
            for &s in &projected {
                base_load[s.0] += 1;
            }
            prop_assert_eq!(level_load, base_load, "level {}: loads changed", k);
        }
    }

    /// Law 4 (end to end): the solver's mapping is feasible — validate
    /// passes, every pin honoured, no site above capacity.
    #[test]
    fn prop_solver_output_is_feasible(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEA5);
        let n = rng.random_range(32..160usize);
        let m = rng.random_range(2..6usize);
        let problem = random_problem(n, m, seed ^ 0xB0B);
        let mapper = MultilevelMapper {
            config: random_config(&mut rng, n),
            inner: GeoMapper { seed: seed ^ 0x17, ..GeoMapper::default() },
            ..MultilevelMapper::default()
        };
        let mapping = mapper.map(&problem);
        prop_assert!(mapping.validate(&problem).is_ok(),
            "{:?}", mapping.validate(&problem));
        prop_assert!(problem.constraints().satisfied_by(mapping.as_slice()));
        let counts = mapping.site_counts(m);
        let caps = problem.network().capacities();
        for k in 0..m {
            prop_assert!(counts[k] <= caps[k], "site {} over capacity", k);
        }
        // And the reported placement prices out to a finite Eq. 3 cost.
        prop_assert!(cost(&problem, &mapping).is_finite());
    }

    /// Law 5: cutoff ≥ N degenerates to the direct solver bit for bit —
    /// same RNG stream, identical mapping.
    #[test]
    fn prop_degenerate_cutoff_is_direct_solver(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE6E);
        let n = rng.random_range(8..64usize);
        let m = rng.random_range(2..5usize);
        let problem = random_problem(n, m, seed ^ 0xD1FF);
        let inner = GeoMapper { seed: seed ^ 0x5C17, ..GeoMapper::default() };
        let direct = inner.map(&problem);
        let multilevel = MultilevelMapper {
            config: MultilevelConfig {
                coarsen_cutoff: n + rng.random_range(0..64usize),
                ..MultilevelConfig::default()
            },
            inner,
            ..MultilevelMapper::default()
        }
        .map(&problem);
        prop_assert_eq!(multilevel.as_slice(), direct.as_slice(),
            "degenerate multilevel diverged from the direct solver");
    }
}
