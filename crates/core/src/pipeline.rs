//! The end-to-end optimization pipeline (paper Fig. 2).
//!
//! The paper automates the whole flow so "users do not need to provide
//! any information on the network or applications": application
//! profiling (CYPRESS → `CG`/`AG`), network calibration (SKaMPI →
//! `LT`/`BT`), grouping, and mapping optimization. This module wires
//! those stages together: give it a program (or pre-profiled pattern)
//! and a ground-truth network, and it returns the mapping plus everything
//! measured along the way.

use crate::constraint::ConstraintVector;
use crate::cost::cost;
use crate::geo::GeoMapper;
use crate::mapping::Mapping;
use crate::metrics::Metrics;
use crate::multilevel::{MultilevelConfig, MultilevelMapper};
use crate::problem::MappingProblem;
use crate::Mapper;
use commgraph::{CommPattern, Program};
use geonet::{CalibrationConfig, CalibrationReport, Calibrator, SiteNetwork};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Network calibration campaign parameters.
    pub calibration: CalibrationConfig,
    /// The mapper (defaults to the paper's [`GeoMapper`]).
    pub mapper: GeoMapper,
    /// Use CYPRESS-style trace compression during profiling (kept as a
    /// switch so the ablation bench can measure its effect on profiling
    /// volume).
    pub compress_traces: bool,
    /// When set, the optimization stage wraps `mapper` in the
    /// [`MultilevelMapper`]: coarsen by heavy-edge matching, solve the
    /// coarsest graph with `mapper`, refine on the way back up. `None`
    /// (the default) keeps the direct solve.
    pub multilevel: Option<MultilevelConfig>,
    /// Observability handle for the pipeline phases. Phase timings are
    /// emitted under the scope `pipeline` (`phase.profiling`,
    /// `phase.calibration`, `phase.optimization`); a mapper whose own
    /// handle is off inherits this one, so one enabled handle covers the
    /// full Fig. 2 flow.
    pub metrics: Metrics,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            calibration: CalibrationConfig::default(),
            mapper: GeoMapper::default(),
            compress_traces: true,
            multilevel: None,
            metrics: Metrics::off(),
        }
    }
}

/// Everything the pipeline produced.
///
/// Declares the workspace's serde markers: the service crate's `wire`
/// module carries the actual JSON encoding, with the schema-stability
/// contract (serialize → deserialize → bit-identical Eq. 3 cost)
/// enforced by its round-trip tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// The profiled communication pattern.
    pub pattern: CommPattern,
    /// Trace compression ratio achieved during profiling (1.0 when
    /// compression is off or nothing repeated).
    pub compression_ratio: f64,
    /// The calibration report (estimated `LT`/`BT` + variation).
    pub calibration: CalibrationReport,
    /// The problem as the optimizer saw it (estimated network).
    pub problem: MappingProblem,
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Eq. 3 cost of the chosen mapping under the *estimated* network.
    pub estimated_cost: f64,
    /// Wall-clock spent in the mapping optimization itself (the paper's
    /// "optimization overhead", Fig. 4).
    pub optimization_time: Duration,
}

/// Run the full Fig. 2 pipeline on an application program.
///
/// Profiling executes the CYPRESS step on `program`; calibration probes
/// `truth`; the optimizer then works entirely from estimates, exactly as
/// the paper's deployment does.
pub fn run(
    program: &Program,
    truth: &SiteNetwork,
    constraints: ConstraintVector,
    config: &PipelineConfig,
) -> PipelineResult {
    // 1. Application profiling.
    let metrics = config.metrics.scoped("pipeline");
    let (pattern, compression_ratio) = metrics.timed("phase.profiling", || {
        let mut trace = commgraph::Trace::new();
        for rank in 0..program.num_ranks() {
            for op in program.rank_ops(rank) {
                if let commgraph::RankOp::Send { to, bytes } = op {
                    trace.push(rank, *to, *bytes);
                }
            }
        }
        if config.compress_traces {
            let compressed = trace.compress();
            (
                compressed.to_pattern(program.num_ranks()),
                compressed.compression_ratio(),
            )
        } else {
            (trace.to_pattern(program.num_ranks()), 1.0)
        }
    });
    run_with_pattern(pattern, compression_ratio, truth, constraints, config)
}

/// Run calibration + optimization on a pre-profiled pattern.
pub fn run_with_pattern(
    pattern: CommPattern,
    compression_ratio: f64,
    truth: &SiteNetwork,
    constraints: ConstraintVector,
    config: &PipelineConfig,
) -> PipelineResult {
    // 2. Network calibration.
    let metrics = config.metrics.scoped("pipeline");
    let calibration = metrics.timed("phase.calibration", || {
        Calibrator::new(config.calibration.clone()).calibrate(truth)
    });

    // 3 + 4. Grouping + mapping optimization on the *estimated* network.
    // A mapper without its own metrics handle inherits the pipeline's,
    // so grouping/order-search/packing/refinement timings land in the
    // same sink.
    let geo = if metrics.enabled() && !config.mapper.metrics.enabled() {
        GeoMapper {
            metrics: config.metrics.clone(),
            ..config.mapper.clone()
        }
    } else {
        config.mapper.clone()
    };
    let multilevel_holder;
    let direct_holder;
    let mapper: &dyn Mapper = if let Some(ml) = config.multilevel {
        multilevel_holder = MultilevelMapper {
            config: ml,
            metrics: geo.metrics.clone(),
            trace: geo.trace.clone(),
            inner: geo,
        };
        &multilevel_holder
    } else {
        direct_holder = geo;
        &direct_holder
    };
    let problem = MappingProblem::new(pattern.clone(), calibration.estimated.clone(), constraints);
    let start = Instant::now();
    let mapping = mapper.map(&problem);
    let optimization_time = start.elapsed();
    metrics.timing("phase.optimization", optimization_time.as_secs_f64());
    let estimated_cost = cost(&problem, &mapping);

    PipelineResult {
        pattern,
        compression_ratio,
        calibration,
        problem,
        mapping,
        estimated_cost,
        optimization_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph::apps::AppKind;
    use geonet::{presets, InstanceType};

    #[test]
    fn pipeline_end_to_end_on_lu() {
        let truth = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 7);
        let program = AppKind::Lu.workload(64).program();
        let result = run(
            &program,
            &truth,
            ConstraintVector::none(64),
            &PipelineConfig::default(),
        );
        result.mapping.validate(&result.problem).unwrap();
        // LU's iterative structure must compress well.
        assert!(
            result.compression_ratio > 3.0,
            "ratio {}",
            result.compression_ratio
        );
        assert!(result.estimated_cost > 0.0);
        // The mapping found on estimates must also be good on the truth:
        // compare against round-robin under the true network.
        let true_problem = MappingProblem::unconstrained(result.pattern.clone(), truth);
        let rr = Mapping::from((0..64).map(|i| i % 4).collect::<Vec<_>>());
        assert!(cost(&true_problem, &result.mapping) < cost(&true_problem, &rr));
    }

    #[test]
    fn compression_switch_changes_ratio_not_pattern() {
        let truth = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 7);
        let program = AppKind::Sp.workload(16).program();
        let on = run(
            &program,
            &truth,
            ConstraintVector::none(16),
            &PipelineConfig::default(),
        );
        let off = run(
            &program,
            &truth,
            ConstraintVector::none(16),
            &PipelineConfig {
                compress_traces: false,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(on.pattern, off.pattern);
        assert!(on.compression_ratio > off.compression_ratio);
        assert_eq!(off.compression_ratio, 1.0);
    }

    #[test]
    fn multilevel_config_flows_through() {
        let truth = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 7);
        let program = AppKind::Lu.workload(64).program();
        let result = run(
            &program,
            &truth,
            ConstraintVector::none(64),
            &PipelineConfig {
                multilevel: Some(MultilevelConfig {
                    coarsen_cutoff: 8,
                    ..MultilevelConfig::default()
                }),
                ..PipelineConfig::default()
            },
        );
        result.mapping.validate(&result.problem).unwrap();
        assert!(result.estimated_cost > 0.0);
    }

    #[test]
    fn constraints_flow_through() {
        let truth = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 7);
        let program = AppKind::KMeans.workload(16).program();
        let c = ConstraintVector::random(16, 0.5, &truth.capacities(), 3);
        let result = run(&program, &truth, c.clone(), &PipelineConfig::default());
        assert!(c.satisfied_by(result.mapping.as_slice()));
    }
}
