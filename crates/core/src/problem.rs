//! The geo-distributed process-mapping problem instance (paper §3.2).

use crate::constraint::ConstraintVector;
use commgraph::pattern::{CommPattern, Partner};
use geonet::{SiteId, SiteNetwork};

/// A complete problem instance: map `N` processes (with communication
/// pattern `CG`/`AG`) onto `M` sites (with `LT`/`BT` and capacities `I`)
/// subject to the data-movement constraint vector `C`.
#[derive(Debug, Clone)]
pub struct MappingProblem {
    pattern: CommPattern,
    network: SiteNetwork,
    constraints: ConstraintVector,
    /// Cached undirected partner lists (built once, used by every greedy
    /// mapper).
    partners: Vec<Vec<Partner>>,
    /// Bytes-equivalent of one message latency: the mean of `LT·BT` over
    /// all directed site pairs. Under the α–β model a message costs
    /// `LT + bytes/BT`, so `LT·BT` is how many bytes "one latency" is
    /// worth — it lets greedy heuristics weigh `AG` against `CG` with a
    /// single scalar.
    lat_eq_bytes: f64,
}

impl MappingProblem {
    /// Assemble a problem.
    ///
    /// # Panics
    /// Panics if the constraint vector length differs from `N`, if total
    /// capacity is smaller than `N`, or if the constraints alone exceed
    /// some site's capacity (no feasible mapping could exist).
    pub fn new(pattern: CommPattern, network: SiteNetwork, constraints: ConstraintVector) -> Self {
        let n = pattern.n();
        assert_eq!(
            constraints.len(),
            n,
            "constraint vector must have one entry per process"
        );
        assert!(
            network.total_nodes() >= n,
            "{} processes exceed {} total nodes",
            n,
            network.total_nodes()
        );
        let caps = network.capacities();
        let mut used = vec![0usize; network.num_sites()];
        for (i, c) in constraints.iter().enumerate() {
            if let Some(site) = c {
                assert!(
                    site.index() < network.num_sites(),
                    "process {i} constrained to unknown {site}"
                );
                used[site.index()] += 1;
                assert!(
                    used[site.index()] <= caps[site.index()],
                    "constraints alone overflow {site} (capacity {})",
                    caps[site.index()]
                );
            }
        }
        let partners = pattern.partners();
        let m = network.num_sites();
        let mut lat_eq_bytes = 0.0;
        for k in 0..m {
            for l in 0..m {
                lat_eq_bytes +=
                    network.latency(SiteId(k), SiteId(l)) * network.bandwidth(SiteId(k), SiteId(l));
            }
        }
        lat_eq_bytes /= (m * m) as f64;
        Self {
            pattern,
            network,
            constraints,
            partners,
            lat_eq_bytes,
        }
    }

    /// Problem without any data-movement constraints.
    pub fn unconstrained(pattern: CommPattern, network: SiteNetwork) -> Self {
        let n = pattern.n();
        Self::new(pattern, network, ConstraintVector::none(n))
    }

    /// Number of processes `N`.
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.pattern.n()
    }

    /// Number of sites `M`.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.network.num_sites()
    }

    /// The communication pattern (`CG`/`AG`).
    #[inline]
    pub fn pattern(&self) -> &CommPattern {
        &self.pattern
    }

    /// The network (`LT`/`BT`, sites, capacities).
    #[inline]
    pub fn network(&self) -> &SiteNetwork {
        &self.network
    }

    /// The data-movement constraints `C`.
    #[inline]
    pub fn constraints(&self) -> &ConstraintVector {
        &self.constraints
    }

    /// Cached undirected partner lists (peer, bidirectional bytes, msgs)
    /// per process.
    #[inline]
    pub fn partners(&self) -> &[Vec<Partner>] {
        &self.partners
    }

    /// Bytes-equivalent of one message latency (mean `LT·BT`).
    #[inline]
    pub fn latency_byte_equivalent(&self) -> f64 {
        self.lat_eq_bytes
    }

    /// Combined α–β weight of an undirected partner edge:
    /// `bytes + msgs · latency_byte_equivalent`. The "communication
    /// quantity" greedy heuristics maximize.
    #[inline]
    pub fn edge_weight(&self, p: &Partner) -> f64 {
        p.bytes + p.msgs * self.lat_eq_bytes
    }

    /// Node capacities per site (`I`), minus nothing — the raw vector.
    pub fn capacities(&self) -> Vec<usize> {
        self.network.capacities()
    }

    /// Capacities remaining after placing only the constrained processes.
    pub fn free_capacities(&self) -> Vec<usize> {
        let mut caps = self.network.capacities();
        for c in self.constraints.iter().flatten() {
            caps[c.index()] -= 1;
        }
        caps
    }

    /// Replace the constraint vector (e.g. for the Fig. 8 constraint-ratio
    /// sweep), revalidating feasibility.
    pub fn with_constraints(&self, constraints: ConstraintVector) -> Self {
        Self::new(self.pattern.clone(), self.network.clone(), constraints)
    }

    /// A compact description for logs.
    pub fn describe(&self) -> String {
        format!(
            "N={} processes, M={} sites, {} edges, constraint ratio {:.2}",
            self.num_processes(),
            self.num_sites(),
            self.pattern.num_edges(),
            self.constraints.ratio()
        )
    }

    /// All site ids.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> {
        (0..self.num_sites()).map(SiteId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph::apps::{Ring, Workload};
    use geonet::{presets, InstanceType};

    fn problem() -> MappingProblem {
        let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 16,
            iterations: 2,
            bytes: 1000,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn dimensions() {
        let p = problem();
        assert_eq!(p.num_processes(), 16);
        assert_eq!(p.num_sites(), 4);
        assert_eq!(p.capacities(), vec![4, 4, 4, 4]);
        assert_eq!(p.site_ids().count(), 4);
    }

    #[test]
    fn free_capacities_subtract_constraints() {
        let p = problem();
        let mut c = ConstraintVector::none(16);
        c.pin(0, SiteId(2));
        c.pin(5, SiteId(2));
        let p = p.with_constraints(c);
        assert_eq!(p.free_capacities(), vec![4, 4, 2, 4]);
    }

    #[test]
    fn partners_are_cached_and_consistent() {
        let p = problem();
        assert_eq!(p.partners().len(), 16);
        // Each ring rank exchanges with 2 peers.
        assert!(p.partners().iter().all(|ps| ps.len() == 2));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_processes_rejected() {
        let net = presets::paper_ec2_network(2, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 16,
            iterations: 1,
            bytes: 10,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn infeasible_constraints_rejected() {
        let net = presets::paper_ec2_network(1, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 4,
            iterations: 1,
            bytes: 10,
        }
        .pattern();
        let mut c = ConstraintVector::none(4);
        c.pin(0, SiteId(0));
        c.pin(1, SiteId(0));
        MappingProblem::new(pat, net, c);
    }

    #[test]
    #[should_panic(expected = "one entry per process")]
    fn wrong_constraint_len_rejected() {
        let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 4,
            iterations: 1,
            bytes: 10,
        }
        .pattern();
        MappingProblem::new(pat, net, ConstraintVector::none(5));
    }
}
