//! Event-level tracing with Chrome trace-event / Perfetto export.
//!
//! The metrics layer ([`crate::metrics`]) answers *how much*; this module
//! answers *why* by recording typed events on named tracks:
//!
//! * [`TraceSink`] — the backend trait: [`TraceSink::define_track`]
//!   registers a `(process, track)` pair under a [`TrackId`],
//!   [`TraceSink::record`] receives [`TraceEvent`]s.
//! * [`NullTraceSink`] — discards everything (the default).
//! * [`RingBufferSink`] — keeps the most recent `capacity` events in
//!   memory (older ones are dropped and counted) and exports them as a
//!   Chrome trace-event JSON array via
//!   [`RingBufferSink::to_chrome_json`], loadable in Perfetto or
//!   `chrome://tracing`.
//! * [`StreamingSink`] — writes Chrome trace events to a writer as they
//!   arrive. Unbounded and allocation-light, but the event stream is in
//!   emission order, not timestamp order (viewers sort on load).
//! * [`Trace`] — the cheap handle threaded through simnet, mpirt and the
//!   mappers. Disabled (`Trace::off`, the `Default`) every method is a
//!   `None` check and no clock is read — the same zero-cost-when-off
//!   contract as [`crate::Metrics`], guarded by the `simnet_trace_off`
//!   bench group in `geomap-bench`.
//!
//! Timestamps are `f64` seconds. Simulation layers (simnet, mpirt) pass
//! *simulated* time directly; search layers use [`Trace::now`] (wall
//! seconds since the handle was created). The exporter converts to the
//! microseconds Chrome expects.
//!
//! Track naming scheme (see DESIGN.md §5f): process `"simnet"` holds one
//! track per directed site pair (`"link s0->s1"`), process `"mpirt"` one
//! track per rank (`"rank 3"`), process `"search"` one track per mapper
//! phase (`"MPIPP"`, `"Geo-distributed refine[k]"`, ...).

use crate::metrics::escape_json;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifies one track (timeline row). Allocated by [`Trace::track`];
/// becomes the `tid` of the Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u32);

impl TrackId {
    /// The id handed out by a disabled handle. Recording against it is
    /// harmless (the disabled handle drops the event anyway).
    pub const DISABLED: TrackId = TrackId(u32::MAX);
}

/// What one recorded event means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Start of a duration span (`ph:"B"`). Must be closed by a
    /// [`TraceEventKind::SpanEnd`] on the same track; spans on one track
    /// must nest.
    SpanBegin,
    /// End of the innermost open span on the track (`ph:"E"`).
    SpanEnd,
    /// A point event (`ph:"i"`, thread-scoped).
    Instant,
    /// A counter sample (`ph:"C"`); `value` is the sampled level.
    Counter,
}

impl TraceEventKind {
    /// The Chrome trace-event `ph` phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            TraceEventKind::SpanBegin => "B",
            TraceEventKind::SpanEnd => "E",
            TraceEventKind::Instant => "i",
            TraceEventKind::Counter => "C",
        }
    }
}

/// One typed event. `name` is `&'static str` so the hot path never
/// allocates — dynamic naming belongs in the track, not the event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The track the event belongs to.
    pub track: TrackId,
    /// Event name (span/instant/counter name within the track).
    pub name: &'static str,
    /// Span begin/end, instant, or counter sample.
    pub kind: TraceEventKind,
    /// Timestamp in seconds (simulated or wall — per-track uniform).
    pub ts: f64,
    /// Counter value; 0.0 for other kinds.
    pub value: f64,
}

/// A registered track: its process group and display name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTrack {
    /// Track id (the Chrome `tid`).
    pub id: TrackId,
    /// Process group, e.g. `"simnet"` (the Chrome `pid` label).
    pub process: String,
    /// Track display name, e.g. `"link s0->s1"` or `"rank 3"`.
    pub name: String,
}

/// A trace backend. `record` is called from hot simulation loops when
/// tracing is enabled; implementations should be a buffer push.
pub trait TraceSink: Send + Sync {
    /// Register a track before events reference it.
    fn define_track(&self, id: TrackId, process: &str, name: &str);

    /// Record one event.
    fn record(&self, event: TraceEvent);

    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTraceSink;

impl TraceSink for NullTraceSink {
    fn define_track(&self, _id: TrackId, _process: &str, _name: &str) {}
    fn record(&self, _event: TraceEvent) {}
}

/// Bounded in-memory sink: keeps the most recent `capacity` events,
/// counts what it drops, and exports Chrome trace-event JSON.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    tracks: Mutex<Vec<TraceTrack>>,
    dropped: AtomicU64,
}

impl RingBufferSink {
    /// A sink keeping at most `capacity` events (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingBufferSink capacity must be > 0");
        Self {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            tracks: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// All retained events in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace lock")
            .iter()
            .copied()
            .collect()
    }

    /// All registered tracks in definition order.
    pub fn tracks(&self) -> Vec<TraceTrack> {
        self.tracks.lock().expect("trace lock").clone()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Export as one Chrome trace-event JSON array (strict JSON, no
    /// trailing comma): metadata events naming every process/track,
    /// then all retained events stable-sorted by timestamp, so each
    /// track's timestamps are monotonically non-decreasing.
    pub fn to_chrome_json(&self) -> String {
        let tracks = self.tracks();
        let mut events = self.snapshot();
        events.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        let pids = ProcessIds::new(&tracks);
        let mut out = String::with_capacity(64 * (events.len() + tracks.len()) + 2);
        out.push_str("[\n");
        let mut first = true;
        for t in &tracks {
            let pid = pids.pid_of(&t.process);
            push_meta(&mut out, &mut first, "process_name", pid, 0, &t.process);
            push_meta(&mut out, &mut first, "thread_name", pid, t.id.0, &t.name);
        }
        for e in &events {
            let (pid, counter_prefix) = match tracks.iter().find(|t| t.id == e.track) {
                Some(t) => (pids.pid_of(&t.process), t.name.as_str()),
                // Events on undefined tracks still export (pid 0).
                None => (0, ""),
            };
            push_event(&mut out, &mut first, e, pid, counter_prefix);
        }
        out.push_str("\n]\n");
        out
    }
}

impl TraceSink for RingBufferSink {
    fn define_track(&self, id: TrackId, process: &str, name: &str) {
        self.tracks.lock().expect("trace lock").push(TraceTrack {
            id,
            process: process.to_string(),
            name: name.to_string(),
        });
    }

    fn record(&self, event: TraceEvent) {
        let mut q = self.events.lock().expect("trace lock");
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    }
}

/// Streams Chrome trace events to a writer as they arrive. Events appear
/// in emission order (Perfetto and `chrome://tracing` sort on load);
/// call [`StreamingSink::finish`] (or drop the sink) to close the JSON
/// array.
pub struct StreamingSink {
    state: Mutex<StreamState>,
}

struct StreamState {
    out: Box<dyn Write + Send>,
    tracks: Vec<TraceTrack>,
    pids: Vec<String>,
    first: bool,
    finished: bool,
}

impl StreamingSink {
    /// Stream to an arbitrary writer; writes the opening `[` eagerly.
    pub fn from_writer(w: impl Write + Send + 'static) -> Self {
        let mut out: Box<dyn Write + Send> = Box::new(w);
        let _ = out.write_all(b"[\n");
        Self {
            state: Mutex::new(StreamState {
                out,
                tracks: Vec::new(),
                pids: Vec::new(),
                first: true,
                finished: false,
            }),
        }
    }

    /// Create (truncate) `path` and stream to it.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(io::BufWriter::new(file)))
    }

    /// Close the JSON array and flush. Idempotent.
    pub fn finish(&self) {
        let mut s = self.state.lock().expect("trace lock");
        if !s.finished {
            s.finished = true;
            let _ = s.out.write_all(b"\n]\n");
            let _ = s.out.flush();
        }
    }
}

impl fmt::Debug for StreamingSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StreamingSink")
    }
}

impl Drop for StreamingSink {
    fn drop(&mut self) {
        self.finish();
    }
}

impl TraceSink for StreamingSink {
    fn define_track(&self, id: TrackId, process: &str, name: &str) {
        let mut s = self.state.lock().expect("trace lock");
        if s.finished {
            return;
        }
        let (pid, new_process) = match s.pids.iter().position(|p| p == process) {
            Some(i) => (i as u32 + 1, false),
            None => {
                s.pids.push(process.to_string());
                (s.pids.len() as u32, true)
            }
        };
        let mut buf = String::with_capacity(128);
        let mut first = s.first;
        if new_process {
            push_meta(&mut buf, &mut first, "process_name", pid, 0, process);
        }
        push_meta(&mut buf, &mut first, "thread_name", pid, id.0, name);
        s.first = first;
        s.tracks.push(TraceTrack {
            id,
            process: process.to_string(),
            name: name.to_string(),
        });
        let _ = s.out.write_all(buf.as_bytes());
    }

    fn record(&self, event: TraceEvent) {
        let mut s = self.state.lock().expect("trace lock");
        if s.finished {
            return;
        }
        let (pid, prefix) = match s.tracks.iter().find(|t| t.id == event.track) {
            Some(t) => {
                let pid = s.pids.iter().position(|p| *p == t.process).unwrap_or(0) as u32 + 1;
                (pid, t.name.clone())
            }
            None => (0, String::new()),
        };
        let mut buf = String::with_capacity(128);
        let mut first = s.first;
        push_event(&mut buf, &mut first, &event, pid, &prefix);
        s.first = first;
        let _ = s.out.write_all(buf.as_bytes());
    }

    fn flush(&self) {
        let mut s = self.state.lock().expect("trace lock");
        let _ = s.out.flush();
    }
}

/// Process-name → Chrome `pid` assignment (1-based, definition order).
struct ProcessIds {
    names: Vec<String>,
}

impl ProcessIds {
    fn new(tracks: &[TraceTrack]) -> Self {
        let mut names: Vec<String> = Vec::new();
        for t in tracks {
            if !names.contains(&t.process) {
                names.push(t.process.clone());
            }
        }
        Self { names }
    }

    fn pid_of(&self, process: &str) -> u32 {
        self.names
            .iter()
            .position(|n| n == process)
            .map_or(0, |i| i as u32 + 1)
    }
}

/// Chrome wants microseconds; non-finite timestamps clamp to 0 so the
/// output stays strict JSON. Rust's `f64` Display never prints exponent
/// notation, so the plain form is valid JSON.
fn push_ts_us(out: &mut String, ts_s: f64) {
    let us = ts_s * 1e6;
    if us.is_finite() {
        out.push_str(&format!("{us}"));
    } else {
        out.push('0');
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn push_meta(out: &mut String, first: &mut bool, kind: &str, pid: u32, tid: u32, name: &str) {
    push_sep(out, first);
    out.push_str("{\"ph\":\"M\",\"name\":\"");
    out.push_str(kind);
    out.push_str(&format!(
        "\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
    ));
    escape_json(name, out);
    out.push_str("\"}}");
}

fn push_event(out: &mut String, first: &mut bool, e: &TraceEvent, pid: u32, counter_prefix: &str) {
    push_sep(out, first);
    out.push_str("{\"ph\":\"");
    out.push_str(e.kind.phase());
    out.push_str("\",\"name\":\"");
    if e.kind == TraceEventKind::Counter && !counter_prefix.is_empty() {
        // Chrome keys counters by (pid, name); prefixing the track name
        // keeps one counter series per track instead of merging them.
        escape_json(counter_prefix, out);
        out.push(' ');
    }
    escape_json(e.name, out);
    out.push_str(&format!("\",\"pid\":{pid},\"tid\":{},\"ts\":", e.track.0));
    push_ts_us(out, e.ts);
    match e.kind {
        TraceEventKind::Instant => out.push_str(",\"s\":\"t\"}"),
        TraceEventKind::Counter => {
            out.push_str(",\"args\":{\"value\":");
            if e.value.is_finite() {
                out.push_str(&format!("{}", e.value));
            } else {
                out.push('0');
            }
            out.push_str("}}");
        }
        TraceEventKind::SpanBegin | TraceEventKind::SpanEnd => out.push('}'),
    }
}

/// The handle threaded through simnet, mpirt and the mappers.
///
/// `Trace::off()` (the `Default`) carries no sink: every method is a
/// `None` check, [`Trace::now`] returns 0.0 without reading a clock, and
/// cloning is free. An enabled handle carries an `Arc<dyn TraceSink>`,
/// the wall-clock epoch, and the track-id allocator; handles cloned from
/// it share all three, so track ids stay unique across threads.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

struct TraceInner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    next_track: AtomicU32,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(_) => f.write_str("Trace(on)"),
            None => f.write_str("Trace(off)"),
        }
    }
}

impl Trace {
    /// The disabled handle (same as `Default`).
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled handle recording into `sink`; wall-clock timestamps
    /// ([`Trace::now`]) are measured from this call.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self {
            inner: Some(Arc::new(TraceInner {
                sink,
                epoch: Instant::now(),
                next_track: AtomicU32::new(1),
            })),
        }
    }

    /// Whether events go anywhere. Gate any non-trivial preparation
    /// (track bookkeeping, name formatting) on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocate a track under `process` with display `name`. Disabled
    /// handles return [`TrackId::DISABLED`] without formatting anything.
    pub fn track(&self, process: &str, name: &str) -> TrackId {
        match &self.inner {
            None => TrackId::DISABLED,
            Some(inner) => {
                let id = TrackId(inner.next_track.fetch_add(1, Ordering::Relaxed));
                inner.sink.define_track(id, process, name);
                id
            }
        }
    }

    /// Wall seconds since the handle was created (0.0 when disabled —
    /// no clock is read).
    #[inline]
    pub fn now(&self) -> f64 {
        match &self.inner {
            None => 0.0,
            Some(inner) => inner.epoch.elapsed().as_secs_f64(),
        }
    }

    /// Open a span at `ts` (seconds).
    #[inline]
    pub fn span_begin(&self, track: TrackId, name: &'static str, ts: f64) {
        if let Some(inner) = &self.inner {
            inner.sink.record(TraceEvent {
                track,
                name,
                kind: TraceEventKind::SpanBegin,
                ts,
                value: 0.0,
            });
        }
    }

    /// Close the innermost open span on `track` at `ts`.
    #[inline]
    pub fn span_end(&self, track: TrackId, name: &'static str, ts: f64) {
        if let Some(inner) = &self.inner {
            inner.sink.record(TraceEvent {
                track,
                name,
                kind: TraceEventKind::SpanEnd,
                ts,
                value: 0.0,
            });
        }
    }

    /// Record a point event at `ts`.
    #[inline]
    pub fn instant(&self, track: TrackId, name: &'static str, ts: f64) {
        if let Some(inner) = &self.inner {
            inner.sink.record(TraceEvent {
                track,
                name,
                kind: TraceEventKind::Instant,
                ts,
                value: 0.0,
            });
        }
    }

    /// Record a counter sample at `ts`.
    #[inline]
    pub fn counter(&self, track: TrackId, name: &'static str, ts: f64, value: f64) {
        if let Some(inner) = &self.inner {
            inner.sink.record(TraceEvent {
                track,
                name,
                kind: TraceEventKind::Counter,
                ts,
                value,
            });
        }
    }

    /// Run `f` inside a wall-clock span on `track`; when disabled the
    /// clock is never read.
    #[inline]
    pub fn spanned<T>(&self, track: TrackId, name: &'static str, f: impl FnOnce() -> T) -> T {
        match &self.inner {
            None => f(),
            Some(_) => {
                self.span_begin(track, name, self.now());
                let out = f();
                self.span_end(track, name, self.now());
                out
            }
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// A statically-available disabled handle, so borrowing contexts
/// ([`TraceScope::off`]) don't need an owned `Trace`.
static TRACE_OFF: Trace = Trace { inner: None };

/// A borrowed `(handle, track)` pair with wall-clock timestamps — the
/// single argument search entry points take, so instrumenting a
/// function adds one parameter. All methods are `None` checks when the
/// underlying handle is off.
#[derive(Clone, Copy, Debug)]
pub struct TraceScope<'a> {
    /// The handle events go through.
    pub trace: &'a Trace,
    /// The track they land on.
    pub track: TrackId,
}

impl<'a> TraceScope<'a> {
    /// Scope recording on `track` of `trace`.
    pub fn new(trace: &'a Trace, track: TrackId) -> Self {
        Self { trace, track }
    }

    /// The disabled scope: no events, no clock reads.
    pub fn off() -> TraceScope<'static> {
        TraceScope {
            trace: &TRACE_OFF,
            track: TrackId::DISABLED,
        }
    }

    /// Whether events go anywhere.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.trace.enabled()
    }

    /// Open a span at the current wall clock.
    #[inline]
    pub fn span_begin(&self, name: &'static str) {
        self.trace.span_begin(self.track, name, self.trace.now());
    }

    /// Close the innermost open span at the current wall clock.
    #[inline]
    pub fn span_end(&self, name: &'static str) {
        self.trace.span_end(self.track, name, self.trace.now());
    }

    /// Record a point event at the current wall clock.
    #[inline]
    pub fn instant(&self, name: &'static str) {
        self.trace.instant(self.track, name, self.trace.now());
    }

    /// Record a counter sample at the current wall clock.
    #[inline]
    pub fn counter(&self, name: &'static str, value: f64) {
        self.trace
            .counter(self.track, name, self.trace.now(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let t = Trace::off();
        assert!(!t.enabled());
        assert_eq!(t.track("p", "x"), TrackId::DISABLED);
        assert_eq!(t.now(), 0.0);
        t.span_begin(TrackId::DISABLED, "s", 1.0);
        t.span_end(TrackId::DISABLED, "s", 2.0);
        t.instant(TrackId::DISABLED, "i", 1.5);
        t.counter(TrackId::DISABLED, "c", 1.5, 3.0);
        assert_eq!(t.spanned(TrackId::DISABLED, "f", || 7), 7);
        t.flush();
        assert_eq!(format!("{t:?}"), "Trace(off)");
    }

    #[test]
    fn ring_buffer_keeps_most_recent_and_counts_drops() {
        let sink = Arc::new(RingBufferSink::new(3));
        let t = Trace::new(sink.clone());
        let tr = t.track("p", "t");
        for i in 0..5 {
            t.instant(tr, "e", i as f64);
        }
        assert_eq!(sink.dropped(), 2);
        let ev = sink.snapshot();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].ts, 2.0);
        assert_eq!(ev[2].ts, 4.0);
    }

    #[test]
    fn track_ids_are_unique_across_clones() {
        let sink = Arc::new(RingBufferSink::new(8));
        let t = Trace::new(sink.clone());
        let t2 = t.clone();
        let a = t.track("p", "a");
        let b = t2.track("q", "b");
        assert_ne!(a, b);
        assert_eq!(sink.tracks().len(), 2);
    }

    #[test]
    fn chrome_export_sorts_by_timestamp() {
        let sink = Arc::new(RingBufferSink::new(16));
        let t = Trace::new(sink.clone());
        let tr = t.track("simnet", "link s0->s1");
        t.instant(tr, "late", 5.0);
        t.span_begin(tr, "early", 1.0);
        t.span_end(tr, "early", 2.0);
        t.counter(tr, "queue_depth", 1.5, 2.0);
        let json = sink.to_chrome_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        let late = json.find("\"late\"").unwrap();
        let early = json.find("\"early\"").unwrap();
        assert!(early < late, "not sorted by ts:\n{json}");
        // The counter name is prefixed by its track name.
        assert!(json.contains("\"link s0->s1 queue_depth\""), "{json}");
        // Metadata names both the process and the track.
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
    }

    #[test]
    fn streaming_sink_produces_closed_array() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = StreamingSink::from_writer(Shared(buf.clone()));
        let t = Trace::new(Arc::new(NullTraceSink)); // allocator only
        let id = t.track("p", "x");
        sink.define_track(id, "mpirt", "rank 0");
        sink.record(TraceEvent {
            track: id,
            name: "compute",
            kind: TraceEventKind::SpanBegin,
            ts: 0.25,
            value: 0.0,
        });
        sink.record(TraceEvent {
            track: id,
            name: "compute",
            kind: TraceEventKind::SpanEnd,
            ts: 0.5,
            value: 0.0,
        });
        sink.finish();
        sink.finish(); // idempotent
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"rank 0\""), "{text}");
        assert!(text.contains("\"ph\":\"B\"") && text.contains("\"ph\":\"E\""));
        // ts in microseconds.
        assert!(text.contains("\"ts\":250000"), "{text}");
    }
}
