//! The mapping decision vector `P` (paper §3.2).

use crate::problem::MappingProblem;
use geonet::SiteId;
use serde::{Deserialize, Serialize};

/// A process→site assignment: element `i` is the site process `i` runs
/// in (the paper's `P`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    assignment: Vec<SiteId>,
}

impl Mapping {
    /// Wrap an assignment vector.
    pub fn new(assignment: Vec<SiteId>) -> Self {
        Self { assignment }
    }

    /// Number of processes.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True for a zero-process mapping.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Site of process `i`.
    #[inline]
    pub fn site_of(&self, i: usize) -> SiteId {
        self.assignment[i]
    }

    /// The raw assignment slice.
    #[inline]
    pub fn as_slice(&self) -> &[SiteId] {
        &self.assignment
    }

    /// Processes mapped to each site: `counts[j] = count(j, P)`.
    pub fn site_counts(&self, num_sites: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_sites];
        for s in &self.assignment {
            counts[s.index()] += 1;
        }
        counts
    }

    /// Processes mapped to site `j`.
    pub fn processes_in(&self, site: SiteId) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == site).then_some(i))
            .collect()
    }

    /// Swap the sites of two processes (the MPIPP exchange move).
    pub fn swap(&mut self, i: usize, j: usize) {
        self.assignment.swap(i, j);
    }

    /// Validate feasibility against a problem: correct length, every site
    /// in range, capacities respected (`count(j,P) ≤ I_j`), constraints
    /// honoured (`(P−C)∘C = 0`). Returns a description of the first
    /// violation.
    pub fn validate(&self, problem: &MappingProblem) -> Result<(), String> {
        if self.len() != problem.num_processes() {
            return Err(format!(
                "mapping has {} entries for {} processes",
                self.len(),
                problem.num_processes()
            ));
        }
        let m = problem.num_sites();
        for (i, s) in self.assignment.iter().enumerate() {
            if s.index() >= m {
                return Err(format!("process {i} mapped to out-of-range {s}"));
            }
        }
        let caps = problem.capacities();
        for (j, (&used, &cap)) in self.site_counts(m).iter().zip(&caps).enumerate() {
            if used > cap {
                return Err(format!(
                    "site {j} holds {used} processes but has {cap} nodes"
                ));
            }
        }
        if !problem.constraints().satisfied_by(&self.assignment) {
            return Err("data-movement constraints violated".into());
        }
        Ok(())
    }
}

impl From<Vec<usize>> for Mapping {
    fn from(v: Vec<usize>) -> Self {
        Mapping::new(v.into_iter().map(SiteId).collect())
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", s.index())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintVector;
    use crate::problem::MappingProblem;
    use commgraph::apps::{Ring, Workload};
    use geonet::{presets, InstanceType};

    fn problem() -> MappingProblem {
        let net = presets::paper_ec2_network(2, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 8,
            iterations: 1,
            bytes: 10,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    fn balanced() -> Mapping {
        Mapping::from(vec![0, 0, 1, 1, 2, 2, 3, 3])
    }

    #[test]
    fn accessors() {
        let m = balanced();
        assert_eq!(m.len(), 8);
        assert_eq!(m.site_of(4), SiteId(2));
        assert_eq!(m.site_counts(4), vec![2, 2, 2, 2]);
        assert_eq!(m.processes_in(SiteId(1)), vec![2, 3]);
        assert_eq!(m.to_string(), "[0 0 1 1 2 2 3 3]");
    }

    #[test]
    fn valid_mapping_passes() {
        balanced().validate(&problem()).unwrap();
    }

    #[test]
    fn overfull_site_fails() {
        let m = Mapping::from(vec![0, 0, 0, 1, 2, 2, 3, 3]);
        let err = m.validate(&problem()).unwrap_err();
        assert!(err.contains("site 0"), "{err}");
    }

    #[test]
    fn out_of_range_site_fails() {
        let m = Mapping::from(vec![0, 0, 1, 1, 2, 2, 3, 9]);
        assert!(m.validate(&problem()).unwrap_err().contains("out-of-range"));
    }

    #[test]
    fn wrong_length_fails() {
        let m = Mapping::from(vec![0, 1]);
        assert!(m.validate(&problem()).unwrap_err().contains("entries"));
    }

    #[test]
    fn constraint_violation_fails() {
        let mut c = ConstraintVector::none(8);
        c.pin(0, SiteId(3));
        let p = problem().with_constraints(c);
        assert!(balanced().validate(&p).unwrap_err().contains("constraints"));
    }

    #[test]
    fn swap_exchanges_assignments() {
        let mut m = balanced();
        m.swap(0, 7);
        assert_eq!(m.site_of(0), SiteId(3));
        assert_eq!(m.site_of(7), SiteId(0));
    }
}
