//! Zero-cost-when-off observability for the mapping pipeline.
//!
//! A long-running mapping service is only operable if the search is
//! visible: how long each pipeline phase took, how many swaps a local
//! search evaluated versus accepted, what the simulated runtime did to
//! each link. This module provides the plumbing:
//!
//! * [`MetricsSink`] — the backend trait. One method, [`MetricsSink::record`],
//!   receives `(scope, name, kind, value)` events.
//! * [`NullSink`] — discards everything (the default).
//! * [`MemorySink`] — accumulates records in memory; the test backend.
//! * [`JsonLinesSink`] — appends one JSON object per record to a writer;
//!   the `repro --metrics <path>` backend. JSON is hand-rolled (the
//!   workspace's vendored `serde` is a marker-trait shim).
//! * [`Metrics`] — the cheap handle threaded through mappers and the
//!   pipeline. Disabled (`Metrics::off`, the `Default`) it is a `None`
//!   check per call and takes no clock readings; every emission site is
//!   gated on it.
//!
//! The overhead contract: search hot loops never call the sink directly.
//! Mappers aggregate counters in plain integers ([`crate::delta::SearchStats`])
//! and report once per `map()`/phase boundary, so the refinement inner
//! loop is identical instructions with metrics on or off (guarded by the
//! `refine_pass` bench group in `geomap-bench`).

use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a recorded value means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count of events (swaps, messages, samples).
    Counter,
    /// A point-in-time measurement (a cost, a fraction).
    Gauge,
    /// A duration in seconds.
    Timing,
}

impl MetricKind {
    /// Stable lowercase label used in the JSON-lines output.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Timing => "timing",
        }
    }
}

/// A metrics backend. Implementations must be cheap enough to call a few
/// times per pipeline phase (not per candidate evaluation — aggregation
/// happens in the callers).
pub trait MetricsSink: Send + Sync {
    /// Record one observation. `scope` is a `/`-joined path (experiment,
    /// app, mapper), `name` the metric within it.
    fn record(&self, scope: &str, name: &str, kind: MetricKind, value: f64);

    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards every record.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn record(&self, _scope: &str, _name: &str, _kind: MetricKind, _value: f64) {}
}

/// One observation kept by [`MemorySink`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// `/`-joined scope path the record was emitted under.
    pub scope: String,
    /// Metric name within the scope.
    pub name: String,
    /// Counter, gauge or timing.
    pub kind: MetricKind,
    /// The observed value (counters are summable).
    pub value: f64,
}

/// In-memory sink for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<MetricRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records in emission order.
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        self.records.lock().expect("metrics lock").clone()
    }

    /// Sum of every record with this exact `scope` and `name` (0.0 when
    /// nothing matched).
    pub fn sum(&self, scope: &str, name: &str) -> f64 {
        self.records
            .lock()
            .expect("metrics lock")
            .iter()
            .filter(|r| r.scope == scope && r.name == name)
            .map(|r| r.value)
            .sum()
    }

    /// Sum of every record with this `name`, across all scopes.
    pub fn sum_named(&self, name: &str) -> f64 {
        self.records
            .lock()
            .expect("metrics lock")
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.value)
            .sum()
    }

    /// True when at least one record matches `scope` and `name`.
    pub fn has(&self, scope: &str, name: &str) -> bool {
        self.records
            .lock()
            .expect("metrics lock")
            .iter()
            .any(|r| r.scope == scope && r.name == name)
    }

    /// True when some record's name equals `name` and its scope ends
    /// with `scope_suffix` (mappers nest their own scope segment, so
    /// callers often know only the tail).
    pub fn has_suffixed(&self, scope_suffix: &str, name: &str) -> bool {
        self.records
            .lock()
            .expect("metrics lock")
            .iter()
            .any(|r| r.name == name && r.scope.ends_with(scope_suffix))
    }
}

impl MetricsSink for MemorySink {
    fn record(&self, scope: &str, name: &str, kind: MetricKind, value: f64) {
        self.records
            .lock()
            .expect("metrics lock")
            .push(MetricRecord {
                scope: scope.to_string(),
                name: name.to_string(),
                kind,
                value,
            });
    }
}

/// Appends one JSON object per record, newline-delimited:
/// `{"scope":"fig5/LU/MPIPP","name":"search.swaps_accepted","kind":"counter","value":42}`.
///
/// Non-finite values serialize as `null` so every line stays valid JSON.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Create (truncate) `path` and write records to it.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(io::BufWriter::new(file)))
    }

    /// Write records to an arbitrary writer (tests pass a `Vec<u8>`).
    pub fn from_writer(w: impl Write + Send + 'static) -> Self {
        Self {
            out: Mutex::new(Box::new(w)),
        }
    }
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonLinesSink")
    }
}

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
/// Shared with the trace exporter (`crate::trace`).
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl MetricsSink for JsonLinesSink {
    fn record(&self, scope: &str, name: &str, kind: MetricKind, value: f64) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"scope\":\"");
        escape_json(scope, &mut line);
        line.push_str("\",\"name\":\"");
        escape_json(name, &mut line);
        line.push_str("\",\"kind\":\"");
        line.push_str(kind.label());
        line.push_str("\",\"value\":");
        if value.is_finite() {
            // Rust's f64 Display never produces NaN/inf here and its
            // plain decimal form is valid JSON.
            line.push_str(&format!("{value}"));
        } else {
            line.push_str("null");
        }
        line.push('}');
        let mut out = self.out.lock().expect("metrics lock");
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("metrics lock").flush();
    }
}

/// The handle threaded through mappers, the pipeline and the runtime.
///
/// `Metrics::off()` (the `Default`) carries no sink: every method is a
/// `None` check, [`Metrics::timed`] runs the closure without touching
/// the clock, and cloning is free. An enabled handle carries an
/// `Arc<dyn MetricsSink>` plus its scope path; [`Metrics::scoped`]
/// derives child handles (`"fig5"` → `"fig5/LU"` → `"fig5/LU/MPIPP"`).
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsInner>>,
}

struct MetricsInner {
    sink: Arc<dyn MetricsSink>,
    scope: String,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Metrics(on, scope={:?})", inner.scope),
            None => f.write_str("Metrics(off)"),
        }
    }
}

impl Metrics {
    /// The disabled handle (same as `Default`).
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with an empty scope.
    pub fn new(sink: Arc<dyn MetricsSink>) -> Self {
        Self {
            inner: Some(Arc::new(MetricsInner {
                sink,
                scope: String::new(),
            })),
        }
    }

    /// Whether records go anywhere. Gate any non-trivial preparation
    /// (formatting, aggregation walks) on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A child handle whose scope is `self`'s with `/segment` appended.
    /// Disabled handles stay disabled for free.
    pub fn scoped(&self, segment: &str) -> Metrics {
        let Some(inner) = &self.inner else {
            return Metrics::off();
        };
        let scope = if inner.scope.is_empty() {
            segment.to_string()
        } else {
            format!("{}/{segment}", inner.scope)
        };
        Metrics {
            inner: Some(Arc::new(MetricsInner {
                sink: Arc::clone(&inner.sink),
                scope,
            })),
        }
    }

    /// The current scope path (empty when disabled or unscoped).
    pub fn scope(&self) -> &str {
        self.inner.as_ref().map_or("", |i| i.scope.as_str())
    }

    /// Record a counter increment.
    #[inline]
    pub fn counter(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .sink
                .record(&inner.scope, name, MetricKind::Counter, value as f64);
        }
    }

    /// Record a gauge observation.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .sink
                .record(&inner.scope, name, MetricKind::Gauge, value);
        }
    }

    /// Record a duration in seconds.
    #[inline]
    pub fn timing(&self, name: &str, seconds: f64) {
        if let Some(inner) = &self.inner {
            inner
                .sink
                .record(&inner.scope, name, MetricKind::Timing, seconds);
        }
    }

    /// Run `f`, recording its wall-clock duration as `name` when
    /// enabled; when disabled the clock is never read.
    #[inline]
    pub fn timed<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        match &self.inner {
            None => f(),
            Some(inner) => {
                let start = Instant::now();
                let out = f();
                inner.sink.record(
                    &inner.scope,
                    name,
                    MetricKind::Timing,
                    start.elapsed().as_secs_f64(),
                );
                out
            }
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert_and_cheap() {
        let m = Metrics::off();
        assert!(!m.enabled());
        m.counter("c", 1);
        m.gauge("g", 2.0);
        m.timing("t", 3.0);
        assert_eq!(m.timed("t", || 7), 7);
        assert!(!m.scoped("child").enabled());
        assert_eq!(m.scope(), "");
        assert_eq!(format!("{m:?}"), "Metrics(off)");
    }

    #[test]
    fn memory_sink_accumulates_with_scopes() {
        let sink = Arc::new(MemorySink::new());
        let m = Metrics::new(sink.clone());
        let child = m.scoped("fig5").scoped("LU");
        assert_eq!(child.scope(), "fig5/LU");
        child.counter("swaps", 3);
        child.counter("swaps", 4);
        child.gauge("cost", 1.5);
        m.timing("total", 0.25);
        assert_eq!(sink.sum("fig5/LU", "swaps"), 7.0);
        assert_eq!(sink.sum("fig5/LU", "cost"), 1.5);
        assert!(sink.has("", "total"));
        assert!(sink.has_suffixed("LU", "swaps"));
        assert!(!sink.has("fig5", "swaps"));
        assert_eq!(sink.sum_named("swaps"), 7.0);
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].kind, MetricKind::Counter);
        assert_eq!(snap[3].kind, MetricKind::Timing);
    }

    #[test]
    fn timed_records_a_timing() {
        let sink = Arc::new(MemorySink::new());
        let m = Metrics::new(sink.clone());
        let out = m.timed("phase", || 42);
        assert_eq!(out, 42);
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].kind, MetricKind::Timing);
        assert!(snap[0].value >= 0.0);
    }

    #[test]
    fn jsonl_sink_emits_one_valid_object_per_line() {
        use std::sync::Mutex as StdMutex;
        // Shared buffer we can inspect after the sink wrote to it.
        #[derive(Clone)]
        struct Shared(Arc<StdMutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared(Arc::new(StdMutex::new(Vec::new())));
        let sink = JsonLinesSink::from_writer(buf.clone());
        sink.record("fig5/LU", "search.swaps", MetricKind::Counter, 42.0);
        sink.record("a\"b\\c", "nan_gauge", MetricKind::Gauge, f64::NAN);
        sink.record("", "t", MetricKind::Timing, 0.125);
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"scope\":\"fig5/LU\",\"name\":\"search.swaps\",\"kind\":\"counter\",\"value\":42}"
        );
        // Escaping keeps the quote and backslash inside a JSON string.
        assert!(lines[1].contains("a\\\"b\\\\c"), "{}", lines[1]);
        // Non-finite values become null, not bare NaN.
        assert!(lines[1].ends_with("\"value\":null}"), "{}", lines[1]);
        assert!(lines[2].contains("\"kind\":\"timing\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
            // Balanced quotes (escaped ones excluded) — a cheap stand-in
            // for a JSON parser in this dependency-free workspace.
            let unescaped_quotes = l
                .as_bytes()
                .iter()
                .enumerate()
                .filter(|&(i, &b)| b == b'"' && (i == 0 || l.as_bytes()[i - 1] != b'\\'))
                .count();
            assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes: {l}");
        }
    }
}
