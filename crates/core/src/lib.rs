//! The SC'17 geo-distributed process-mapping contribution.
//!
//! This crate implements the paper's core: the constrained-optimization
//! formulation of geo-distributed process mapping (§3) and the
//! Geo-distributed mapping algorithm (§4, Algorithm 1).
//!
//! * [`problem::MappingProblem`] — `N` processes with a communication
//!   pattern (`CG`/`AG`), `M` sites with `LT`/`BT` matrices and node
//!   capacities `I`, and a data-movement [`constraint::ConstraintVector`]
//!   `C` pinning some processes to sites.
//! * [`mapping::Mapping`] — the decision vector `P` (process → site) with
//!   feasibility checking against both constraints (Eq. 5's
//!   `(P − C) ∘ C = 0`) and capacities (`count(j, P) ≤ I_j`).
//! * [`cost`] — the α–β cost function of Eq. 3:
//!   `Σ_{i,j} AG(i,j)·LT(P_i,P_j) + CG(i,j)/BT(P_i,P_j)`.
//! * [`delta`] — the incremental Δ-cost engine: flat [`delta::CostTables`]
//!   plus cached evaluators answering swap/move deltas in `O(deg)`, with
//!   a full-recompute oracle behind the same trait.
//! * [`grouping`] — the K-means grouping optimization over site
//!   coordinates that bounds the order search to `O(κ!)`.
//! * [`geo`] — Algorithm 1: for every order of the groups, greedily seed
//!   each site with the heaviest-communicating unmapped process and pack
//!   the site with its heaviest partners; keep the cheapest order.
//! * [`pipeline`] — the end-to-end flow of Fig. 2: application profiling
//!   → network calibration → grouping → mapping optimization.
//! * [`multilevel`] — the coarsen–map–refine solver for 100k+ ranks:
//!   heavy-edge matching contracts the commgraph level by level, the
//!   coarsest graph goes to the direct solver, and the Δ-cost engine
//!   refines each projection on the way back down.
//! * [`remap`] — online repair under churn: bounded-migration local
//!   search from the current (drifted) mapping, minimizing
//!   `Eq3 + α·moved_ranks` on the Δ-cost engine.

#![warn(missing_docs)]

pub mod constraint;
pub mod cost;
pub mod delta;
pub mod geo;
pub mod grouping;
pub mod mapping;
pub mod metrics;
pub mod multilevel;
pub mod multisite;
pub mod pipeline;
pub mod problem;
pub mod remap;
pub mod trace;

pub use constraint::ConstraintVector;
pub use cost::{cost, cost_with_model, model_components, pair_cost, CostModel};
pub use delta::{
    best_improving_swap, best_improving_swap_counted, polish, polish_stats, polish_stats_traced,
    polish_with_tables, polish_with_tables_stats, polish_with_tables_traced, sweep_hill_climb,
    sweep_hill_climb_stats, sweep_hill_climb_traced, CostEval, CostEvaluator, CostTables,
    CostTablesError, Evaluation, FullRecomputeEval, SearchStats,
};
pub use geo::{GeoMapper, OrderSearch, Seeding};
pub use grouping::group_sites;
pub use mapping::Mapping;
pub use metrics::{
    JsonLinesSink, MemorySink, MetricKind, MetricRecord, Metrics, MetricsSink, NullSink,
};
pub use multilevel::{Hierarchy, Level, MultilevelConfig, MultilevelMapper};
pub use multisite::{AllowedSites, GeoMapperMulti};
pub use problem::MappingProblem;
pub use remap::{cold_resolve, repair, repair_with_tables, RemapConfig, RemapOutcome};
pub use trace::{
    NullTraceSink, RingBufferSink, StreamingSink, Trace, TraceEvent, TraceEventKind, TraceScope,
    TraceSink, TraceTrack, TrackId,
};

/// A process-mapping algorithm: produces a feasible [`Mapping`] for a
/// [`MappingProblem`]. Implemented by [`GeoMapper`] here and by the
/// baselines crate (Random, Greedy, MPIPP, exhaustive, Monte Carlo).
pub trait Mapper {
    /// Display name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Compute a mapping. Implementations must return a feasible mapping
    /// (constraints honoured, capacities respected) for any valid
    /// problem.
    fn map(&self, problem: &MappingProblem) -> Mapping;
}
