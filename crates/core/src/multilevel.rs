//! Multilevel coarsen–map–refine solver (DESIGN.md §5g).
//!
//! The direct Geo mapper's per-order greedy + refine is superlinear in
//! the rank count and cannot touch the 100k–1M-rank graphs the ROADMAP
//! north-star asks for. Following the multilevel scheme of Schulz &
//! Träff's sparse-QAP mapper (VieM) and the heavy-edge tradition of
//! multilevel graph partitioning:
//!
//! 1. **Coarsen** — randomized heavy-edge matching contracts the
//!    communication graph level by level. Edge weights sum, rank
//!    weights aggregate, pin constraints merge; a pinned rank never
//!    matches a rank with a different (or absent) pin, so every coarse
//!    vertex has one well-defined pin. Traffic contracted *inside* a
//!    vertex is carried as cumulative `internal_bytes`/`internal_msgs`
//!    so the Eq. 3 cost of any coarse assignment equals the cost of its
//!    projection — exactly, not approximately.
//! 2. **Coarse solve** — the smallest graph goes to the existing
//!    [`GeoMapper`] machinery unchanged, on a network whose capacities
//!    are rescaled from rank units to vertex units. A rank-unit repair
//!    pass then sheds weight off any overfull site (cheapest Δ first),
//!    with a weight-aware first-fit fallback, so the placement is
//!    feasible against the *real* capacities.
//! 3. **Uncoarsen** — the mapping projects down one level at a time;
//!    after every projection the PR 1 Δ-cost engine's rayon best-swap
//!    scan runs as a capacity-aware refiner: equal-weight swaps (which
//!    keep per-site rank loads invariant by construction) plus a
//!    capacity-checked move pass.
//!
//! A [`MultilevelConfig::coarsen_cutoff`] at or above the rank count
//! disables coarsening entirely: the solver then *is* the inner direct
//! solver, bit for bit, on the same RNG stream — the differential
//! oracle in `tests/multilevel_differential.rs` pins this down.

use std::collections::BTreeMap;

use commgraph::{CommPattern, Edge};
use geonet::{Site, SiteId, SiteNetwork};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::constraint::ConstraintVector;
use crate::cost::{pair_cost, CostModel};
use crate::delta::{best_improving_swap_counted, sweep_hill_climb_traced, CostTables, Evaluation};
use crate::geo::GeoMapper;
use crate::mapping::Mapping;
use crate::metrics::Metrics;
use crate::problem::MappingProblem;
use crate::trace::{Trace, TraceScope};
use crate::Mapper;

/// Accept a candidate only when its Δ clears this margin — mirrors the
/// Δ-engine's own improvement epsilon so refinement cannot ping-pong on
/// float noise.
const IMPROVEMENT_THRESHOLD: f64 = -1e-12;

/// Below this class size the refiner uses the exhaustive rayon
/// best-swap scan; above it, the partner-edge hill-climb sweep. Kept
/// small: each accepted swap rescans the whole class, so the
/// to-convergence loop is O(steps · class²) swap evaluations.
const SWAP_SCAN_LIMIT: usize = 64;

/// A level whose matching shrinks the graph by less than this factor is
/// a stall: further levels would be near-copies, so coarsening stops.
const STALL_RATIO: f64 = 0.98;

/// A finer level only earns its own refinement sweep when it exposes at
/// least this factor more contracted edges than the last level refined.
/// Near the coarse end of a deep hierarchy the edge count barely
/// shrinks between levels (halving the vertices of a clustered graph
/// merges few edges), so refining every level re-walks nearly the same
/// graph for diminishing gains. The base level always refines.
const REFINE_GROWTH: f64 = 1.5;

/// Levels with fewer contracted edges than this always refine: a sweep
/// over a small graph costs next to nothing, and on shallow hierarchies
/// (small N) every level's sweep is what keeps cost parity with the
/// direct solver. The growth gate above only prunes *expensive* levels.
const REFINE_MIN_EDGES: usize = 1 << 16;

/// Hard backstop on hierarchy depth (a 2× shrink per level exhausts
/// any practical rank count long before this).
const MAX_LEVELS: usize = 64;

/// Knobs for the multilevel solve, threaded through
/// [`crate::pipeline::PipelineConfig`], the daemon's solve path, and
/// `geomap request`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultilevelConfig {
    /// Stop coarsening once a level has at most this many vertices; the
    /// inner solver runs on that coarsest graph. A cutoff at or above
    /// the rank count degenerates to the inner solver, bit for bit.
    pub coarsen_cutoff: usize,
    /// Randomized heavy-edge matchings tried per level; the one
    /// matching the most vertices (ties: the heavier matched weight)
    /// wins.
    pub match_rounds: usize,
    /// Refinement passes after each uncoarsening projection (and once
    /// more at the base level). Zero disables refinement.
    pub refine_passes: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            coarsen_cutoff: 1024,
            match_rounds: 2,
            refine_passes: 2,
        }
    }
}

/// One contracted level: the coarse graph plus the surjection back to
/// the next-finer level.
#[derive(Debug, Clone)]
pub struct Level {
    /// Finer-vertex → coarse-vertex surjection (`len()` = finer count).
    pub coarse_of: Vec<usize>,
    /// Aggregated rank weight per coarse vertex (how many base ranks it
    /// absorbs).
    pub weights: Vec<usize>,
    /// Bytes contracted *inside* each coarse vertex, cumulative over
    /// all finer levels — an Eq. 3 `(s, s)` term once mapped.
    pub internal_bytes: Vec<f64>,
    /// Messages contracted inside each coarse vertex (cumulative).
    pub internal_msgs: Vec<f64>,
    /// The contracted communication pattern (summed edge weights,
    /// intra-vertex edges folded into the internal totals).
    pub pattern: CommPattern,
    /// Merged pin constraints: every member of a vertex shares its pin.
    pub constraints: ConstraintVector,
}

impl Level {
    /// Coarse vertex count at this level.
    pub fn n(&self) -> usize {
        self.weights.len()
    }
}

/// The level stack produced by coarsening: `levels[0]` contracts the
/// base problem, `levels[k]` contracts `levels[k-1]`. Empty when the
/// cutoff already covers the base problem.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Finest-to-coarsest contraction stack.
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// Coarsen `problem` by randomized heavy-edge matching until the
    /// cutoff, a matching stall, or [`MAX_LEVELS`] stops it.
    pub fn coarsen(problem: &MappingProblem, config: &MultilevelConfig, seed: u64) -> Self {
        let n0 = problem.num_processes();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut levels: Vec<Level> = Vec::new();
        let mut pins: Vec<Option<SiteId>> =
            (0..n0).map(|i| problem.constraints().pin_of(i)).collect();
        let mut weights = vec![1usize; n0];
        let mut internal_bytes = vec![0.0; n0];
        let mut internal_msgs = vec![0.0; n0];
        let byte_eq = problem.latency_byte_equivalent();

        loop {
            // The working pattern lives inside the last pushed level
            // (or is the base problem's) — contraction reads it and
            // builds the next level's pattern fresh, so nothing is
            // cloned on the way down.
            let pattern = levels.last().map_or(problem.pattern(), |l| &l.pattern);
            if pattern.n() <= config.coarsen_cutoff || levels.len() >= MAX_LEVELS {
                break;
            }
            let adj = match_adjacency(pattern, byte_eq);
            let (mate, pairs) = best_matching(&adj, &pins, config.match_rounds.max(1), &mut rng);
            if pairs == 0 {
                break;
            }
            let n_fine = pattern.n();
            let n_coarse = n_fine - pairs;
            if (n_coarse as f64) > (n_fine as f64) * STALL_RATIO {
                break;
            }

            // Contract: coarse ids in first-member order keeps the
            // whole construction deterministic for a given RNG stream.
            let mut coarse_of = vec![usize::MAX; n_fine];
            let mut next = 0usize;
            for u in 0..n_fine {
                if coarse_of[u] != usize::MAX {
                    continue;
                }
                coarse_of[u] = next;
                if let Some(v) = mate[u] {
                    coarse_of[v] = next;
                }
                next += 1;
            }
            debug_assert_eq!(next, n_coarse);

            let mut w_c = vec![0usize; n_coarse];
            let mut ib_c = vec![0.0f64; n_coarse];
            let mut im_c = vec![0.0f64; n_coarse];
            let mut pins_c: Vec<Option<SiteId>> = vec![None; n_coarse];
            for u in 0..n_fine {
                let c = coarse_of[u];
                w_c[c] += weights[u];
                ib_c[c] += internal_bytes[u];
                im_c[c] += internal_msgs[u];
                if pins_c[c].is_none() {
                    pins_c[c] = pins[u];
                }
                debug_assert!(
                    pins[u].is_none() || pins_c[c] == pins[u],
                    "matched across different pins"
                );
            }
            // Contract edges by per-coarse-row accumulation, sorted and
            // duplicate-merged — O(E log deg) with flat rows, no per-edge
            // tree-map inserts.
            let mut rows: Vec<Vec<Edge>> = vec![Vec::new(); n_coarse];
            for u in 0..n_fine {
                let cu = coarse_of[u];
                for e in pattern.out_edges(u) {
                    let cv = coarse_of[e.dst];
                    if cu == cv {
                        ib_c[cu] += e.bytes;
                        im_c[cu] += e.msgs;
                    } else {
                        rows[cu].push(Edge {
                            dst: cv,
                            bytes: e.bytes,
                            msgs: e.msgs,
                        });
                    }
                }
            }
            for row in rows.iter_mut() {
                row.sort_unstable_by_key(|e| e.dst);
                let mut w = 0usize;
                for r in 1..row.len() {
                    if row[r].dst == row[w].dst {
                        let (rb, rm) = (row[r].bytes, row[r].msgs);
                        row[w].bytes += rb;
                        row[w].msgs += rm;
                    } else {
                        w += 1;
                        row[w] = row[r];
                    }
                }
                row.truncate(if row.is_empty() { 0 } else { w + 1 });
            }
            let coarse_pattern = CommPattern::from_edge_lists(rows);

            pins = pins_c;
            weights = w_c.clone();
            internal_bytes = ib_c.clone();
            internal_msgs = im_c.clone();
            levels.push(Level {
                coarse_of,
                weights: w_c,
                internal_bytes: ib_c,
                internal_msgs: im_c,
                pattern: coarse_pattern,
                constraints: ConstraintVector::from_pins(pins.clone()),
            });
        }
        Hierarchy { levels }
    }

    /// Number of contracted levels (0 ⇒ nothing was coarsened).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Project an assignment of `levels[level]` one step finer: to
    /// `levels[level-1]`, or to the base problem when `level == 0`.
    pub fn project(&self, level: usize, coarse_sites: &[SiteId]) -> Vec<SiteId> {
        self.levels[level]
            .coarse_of
            .iter()
            .map(|&c| coarse_sites[c])
            .collect()
    }

    /// Project an assignment of `levels[from_level]` all the way to the
    /// base problem.
    pub fn project_to_base(&self, from_level: usize, sites: &[SiteId]) -> Vec<SiteId> {
        let mut cur = sites.to_vec();
        for k in (0..=from_level).rev() {
            cur = self.project(k, &cur);
        }
        cur
    }

    /// Eq. 3 cost of an assignment at `levels[level]`: the contracted
    /// edges plus each vertex's internal traffic charged at its own
    /// site. Equals the base cost of the projected assignment.
    pub fn cost_at(&self, problem: &MappingProblem, level: usize, sites: &[SiteId]) -> f64 {
        let net = problem.network();
        let lvl = &self.levels[level];
        let mut total = 0.0;
        for i in 0..lvl.n() {
            let si = sites[i];
            for e in lvl.pattern.out_edges(i) {
                total += pair_cost(net, e.msgs, e.bytes, si, sites[e.dst]);
            }
            total += pair_cost(net, lvl.internal_msgs[i], lvl.internal_bytes[i], si, si);
        }
        total
    }
}

/// Pins may merge only when identical: unpinned with unpinned, or two
/// ranks pinned to the *same* site.
fn pin_compatible(a: Option<SiteId>, b: Option<SiteId>) -> bool {
    a == b
}

/// Undirected match adjacency for one level: every neighbour of `u`
/// (either direction) with the heavy-edge weight `bytes + byte_eq·msgs`
/// summed over both directions. Built once per level, so the matching
/// rounds probe flat rows instead of paying two reverse-direction
/// binary searches per edge per round.
fn match_adjacency(pattern: &CommPattern, byte_eq: f64) -> Vec<Vec<(u32, f64)>> {
    let n = pattern.n();
    // In-adjacency rows come out sorted for free (sources are visited
    // in order), and out-edge rows are sorted by construction — so each
    // undirected row is a two-pointer merge, never a sort.
    let mut in_rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for u in 0..n {
        for e in pattern.out_edges(u) {
            in_rows[e.dst].push((u as u32, e.bytes + byte_eq * e.msgs));
        }
    }
    (0..n)
        .map(|u| {
            let out = pattern.out_edges(u);
            let inr = &in_rows[u];
            let mut row: Vec<(u32, f64)> = Vec::with_capacity(out.len() + inr.len());
            let (mut a, mut b) = (0usize, 0usize);
            while a < out.len() || b < inr.len() {
                let entry = if b >= inr.len() || (a < out.len() && (out[a].dst as u32) < inr[b].0) {
                    let e = &out[a];
                    a += 1;
                    (e.dst as u32, e.bytes + byte_eq * e.msgs)
                } else if a >= out.len() || inr[b].0 < out[a].dst as u32 {
                    let e = inr[b];
                    b += 1;
                    e
                } else {
                    let (e, w_in) = (&out[a], inr[b].1);
                    a += 1;
                    b += 1;
                    (e.dst as u32, e.bytes + byte_eq * e.msgs + w_in)
                };
                row.push(entry);
            }
            row
        })
        .collect()
}

/// One randomized heavy-edge matching: visit vertices in a shuffled
/// order, match each unmatched vertex to its heaviest unmatched
/// pin-compatible neighbour (undirected weight from the precomputed
/// [`match_adjacency`]; ties to the smaller peer id).
fn heavy_edge_matching(
    adj: &[Vec<(u32, f64)>],
    pins: &[Option<SiteId>],
    rng: &mut StdRng,
) -> (Vec<Option<usize>>, usize, f64) {
    let n = adj.len();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut mate: Vec<Option<usize>> = vec![None; n];
    let mut pairs = 0usize;
    let mut matched_weight = 0.0f64;
    for &u in &order {
        if mate[u].is_some() {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for &(v, w) in &adj[u] {
            let v = v as usize;
            if mate[v].is_some() || !pin_compatible(pins[u], pins[v]) {
                continue;
            }
            let better = match best {
                None => true,
                Some((bw, bv)) => w > bw || (w == bw && v < bv),
            };
            if better {
                best = Some((w, v));
            }
        }
        if let Some((w, v)) = best {
            mate[u] = Some(v);
            mate[v] = Some(u);
            pairs += 1;
            matched_weight += w;
        }
    }
    (mate, pairs, matched_weight)
}

/// Try `rounds` seeded matchings and keep the one matching the most
/// vertices (ties: the heavier matched weight; further ties: the
/// earlier round).
fn best_matching(
    adj: &[Vec<(u32, f64)>],
    pins: &[Option<SiteId>],
    rounds: usize,
    rng: &mut StdRng,
) -> (Vec<Option<usize>>, usize) {
    let mut best: Option<(Vec<Option<usize>>, usize, f64)> = None;
    for _ in 0..rounds {
        let (mate, pairs, weight) = heavy_edge_matching(adj, pins, rng);
        let better = match &best {
            None => true,
            Some((_, bp, bw)) => pairs > *bp || (pairs == *bp && weight > *bw),
        };
        if better {
            best = Some((mate, pairs, weight));
        }
    }
    let (mate, pairs, _) = best.expect("at least one matching round");
    (mate, pairs)
}

/// Build the coarse network: same sites, `LT`/`BT` untouched, but
/// capacities rescaled from rank units to vertex units so the inner
/// solver's unit-capacity bookkeeping stays valid on weighted vertices.
fn vertex_unit_network(net: &SiteNetwork, cap_v: &[usize]) -> SiteNetwork {
    let sites: Vec<Site> = net
        .sites()
        .iter()
        .zip(cap_v)
        .map(|(s, &c)| Site::new(s.name.clone(), s.coord, c))
        .collect();
    SiteNetwork::new(sites, net.lt().clone(), net.bt().clone())
}

/// Solve one coarse level with the inner solver, then make the result
/// feasible against the *real* rank-unit capacities. `None` means even
/// first-fit could not place the level (the caller falls back to the
/// next finer level).
fn solve_coarse(problem: &MappingProblem, lvl: &Level, inner: &GeoMapper) -> Option<Vec<SiteId>> {
    let n_c = lvl.n();
    let caps = problem.network().capacities();
    let m = caps.len();

    let mut pin_vertices = vec![0usize; m];
    for i in 0..n_c {
        if let Some(p) = lvl.constraints.pin_of(i) {
            pin_vertices[p.0] += 1;
        }
    }

    // Vertex-unit capacities: scale by the mean vertex weight, bump by
    // largest remainder until they cover the vertex count, and keep
    // every site at least able to hold its own pinned vertices.
    let total_w: usize = lvl.weights.iter().sum();
    let mean_w = total_w as f64 / n_c as f64;
    let mut cap_v: Vec<usize> = caps
        .iter()
        .zip(&pin_vertices)
        .map(|(&c, &pv)| ((c as f64 / mean_w).floor() as usize).max(pv).max(1))
        .collect();
    let mut covered: usize = cap_v.iter().sum();
    while covered < n_c {
        let k = (0..m)
            .max_by(|&a, &b| {
                let fa = caps[a] as f64 / mean_w - cap_v[a] as f64;
                let fb = caps[b] as f64 / mean_w - cap_v[b] as f64;
                fa.total_cmp(&fb).then(b.cmp(&a))
            })
            .expect("at least one site");
        cap_v[k] += 1;
        covered += 1;
    }

    let scaled = MappingProblem::new(
        lvl.pattern.clone(),
        vertex_unit_network(problem.network(), &cap_v),
        lvl.constraints.clone(),
    );
    // The inner solver's own polish (24 multi-start hill-climbs, 50
    // passes each) only runs when the coarsest graph is small: near the
    // cutoff at large N the contracted graph is close to complete,
    // which degrades the polish's partner-edge sweeps to O(n²·deg), and
    // the uncoarsening refiner revisits this level anyway. On shallow
    // hierarchies the polish is cheap and carries real cost parity.
    let coarse_solver = GeoMapper {
        refine: lvl.pattern.num_edges() < REFINE_MIN_EDGES,
        ..inner.clone()
    };
    let coarse_mapping = coarse_solver.map(&scaled);

    // Rank-unit repair: the vertex-unit solve can overfill a site in
    // rank units when heavy vertices cluster. Shed weight off overfull
    // sites, cheapest Δ first; total overflow strictly decreases each
    // move, so this terminates.
    let tables = CostTables::build_from_pattern(&lvl.pattern, problem.network(), CostModel::Full);
    let mut eval = Evaluation::Incremental.evaluator(&tables, coarse_mapping.as_slice().to_vec());
    let mut loads = vec![0usize; m];
    for i in 0..n_c {
        loads[eval.sites()[i].0] += lvl.weights[i];
    }
    loop {
        let Some(k) = (0..m).find(|&k| loads[k] > caps[k]) else {
            return Some(eval.sites().to_vec());
        };
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..n_c {
            if eval.sites()[i].0 != k || lvl.constraints.pin_of(i).is_some() {
                continue;
            }
            for l in 0..m {
                if l == k || loads[l] + lvl.weights[i] > caps[l] {
                    continue;
                }
                let d = eval.move_delta(i, SiteId(l));
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, i, l));
                }
            }
        }
        match best {
            Some((_, i, l)) => {
                loads[k] -= lvl.weights[i];
                loads[l] += lvl.weights[i];
                eval.apply_move(i, SiteId(l));
            }
            // Wedged: no single move fits anywhere. Rebuild from
            // scratch with weight-aware first-fit.
            None => return first_fit(lvl, &caps),
        }
    }
}

/// Weight-aware first-fit-decreasing: pins first, then unpinned
/// vertices by descending weight into the roomiest feasible site
/// (worst-fit keeps slack spread out for the heavy tail).
fn first_fit(lvl: &Level, caps: &[usize]) -> Option<Vec<SiteId>> {
    let n = lvl.n();
    let m = caps.len();
    let mut free: Vec<i64> = caps.iter().map(|&c| c as i64).collect();
    let mut sites = vec![SiteId(0); n];
    let mut placed = vec![false; n];
    for i in 0..n {
        if let Some(p) = lvl.constraints.pin_of(i) {
            free[p.0] -= lvl.weights[i] as i64;
            sites[i] = p;
            placed[i] = true;
        }
    }
    if free.iter().any(|&f| f < 0) {
        return None;
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| !placed[i]).collect();
    order.sort_by(|&a, &b| lvl.weights[b].cmp(&lvl.weights[a]).then(a.cmp(&b)));
    for i in order {
        let k = (0..m)
            .filter(|&k| free[k] >= lvl.weights[i] as i64)
            .max_by_key(|&k| (free[k], std::cmp::Reverse(k)))?;
        free[k] -= lvl.weights[i] as i64;
        sites[i] = SiteId(k);
    }
    Some(sites)
}

/// Capacity-aware refinement of one level (or the base problem when
/// `level` is `None`): equal-weight swap classes keep per-site rank
/// loads invariant, a capacity-checked move pass relocates whole
/// vertices when a cheaper site has room. Small classes go through the
/// exhaustive rayon best-swap scan, large ones through the partner-edge
/// hill-climb.
fn refine_level(
    problem: &MappingProblem,
    level: Option<&Level>,
    sites: &mut Vec<SiteId>,
    passes: usize,
    scope: TraceScope<'_>,
) {
    if passes == 0 {
        return;
    }
    let caps = problem.network().capacities();
    let m = caps.len();
    let (tables, weights, pins): (CostTables, Vec<usize>, Vec<Option<SiteId>>) = match level {
        Some(lvl) => (
            CostTables::build_from_pattern(&lvl.pattern, problem.network(), CostModel::Full),
            lvl.weights.clone(),
            (0..lvl.n()).map(|i| lvl.constraints.pin_of(i)).collect(),
        ),
        None => {
            let n = problem.num_processes();
            let pins = (0..n).map(|i| problem.constraints().pin_of(i)).collect();
            (
                CostTables::build(problem, CostModel::Full),
                vec![1usize; n],
                pins,
            )
        }
    };
    let n = weights.len();
    let mut eval = Evaluation::Incremental.evaluator(&tables, std::mem::take(sites));

    let mut classes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        if pins[i].is_none() {
            classes.entry(weights[i]).or_default().push(i);
        }
    }
    let mut loads = vec![0usize; m];
    for i in 0..n {
        loads[eval.sites()[i].0] += weights[i];
    }

    let mut prev_total = eval.total();
    for _ in 0..passes {
        let mut improved = false;
        for (&w, class) in classes.iter().rev() {
            if class.len() < 2 {
                continue;
            }
            if class.len() <= SWAP_SCAN_LIMIT {
                // The rayon best-swap scan, applied to convergence
                // (bounded so a long improvement chain cannot stall an
                // uncoarsening pass).
                let mut steps = class.len() * 2;
                while steps > 0 {
                    let (best, _) =
                        best_improving_swap_counted(eval.as_ref(), class, IMPROVEMENT_THRESHOLD);
                    match best {
                        Some((a, b, _)) => {
                            eval.apply_swap(a, b);
                            scope.instant("swap");
                            improved = true;
                            steps -= 1;
                        }
                        None => break,
                    }
                }
            } else {
                let movable = |i: usize| pins[i].is_none() && weights[i] == w;
                let stats =
                    sweep_hill_climb_traced(eval.as_mut(), 1, &movable, &|_, _| true, scope);
                if stats.swaps_accepted > 0 {
                    improved = true;
                }
            }
        }
        // Move pass: whole-vertex relocation gated on real capacity.
        for i in 0..n {
            if pins[i].is_some() {
                continue;
            }
            let si = eval.sites()[i];
            let mut best: Option<(f64, usize)> = None;
            for l in 0..m {
                if l == si.0 || loads[l] + weights[i] > caps[l] {
                    continue;
                }
                let d = eval.move_delta(i, SiteId(l));
                if d < IMPROVEMENT_THRESHOLD && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, l));
                }
            }
            if let Some((_, l)) = best {
                loads[si.0] -= weights[i];
                loads[l] += weights[i];
                eval.apply_move(i, SiteId(l));
                scope.instant("move");
                improved = true;
            }
        }
        if !improved {
            break;
        }
        // Diminishing returns: a pass that moved the cost by less than
        // 0.1% will not earn the next one.
        let now = eval.total();
        if prev_total - now < 1e-3 * prev_total.abs() {
            break;
        }
        prev_total = now;
    }
    *sites = eval.sites().to_vec();
}

/// The multilevel coarsen–map–refine solver. Implements [`Mapper`]; the
/// inner [`GeoMapper`] handles the coarsest level (and the whole
/// problem when the cutoff disables coarsening).
#[derive(Debug, Clone)]
pub struct MultilevelMapper {
    /// Coarsening and refinement knobs.
    pub config: MultilevelConfig,
    /// Direct solver for the coarsest graph. Its `seed` also drives the
    /// matching RNG (xored, so the two streams stay independent).
    pub inner: GeoMapper,
    /// Metrics handle: phase timings (`phase.coarsen` /
    /// `phase.coarse_solve` / `phase.refine`) and per-level
    /// `level.vertices` / `level.edges` counters, scoped `multilevel`.
    pub metrics: Metrics,
    /// Trace handle: `coarsen` / `coarse_solve` / `level` spans plus
    /// accepted `swap` / `move` instants on a `"search"/"Multilevel"`
    /// track.
    pub trace: Trace,
}

impl Default for MultilevelMapper {
    fn default() -> Self {
        Self {
            config: MultilevelConfig::default(),
            inner: GeoMapper::default(),
            metrics: Metrics::off(),
            trace: Trace::off(),
        }
    }
}

impl Mapper for MultilevelMapper {
    fn name(&self) -> &'static str {
        "Multilevel"
    }

    fn map(&self, problem: &MappingProblem) -> Mapping {
        let n = problem.num_processes();
        // Degenerate configuration: nothing to coarsen. The inner
        // solver sees the problem untouched — same RNG stream,
        // bit-identical result.
        if n <= self.config.coarsen_cutoff {
            return self.inner.map(problem);
        }
        let metrics = self.metrics.scoped("multilevel");
        let track = self.trace.track("search", "Multilevel");
        let scope = TraceScope::new(&self.trace, track);

        scope.span_begin("coarsen");
        let hierarchy = metrics.timed("phase.coarsen", || {
            Hierarchy::coarsen(problem, &self.config, self.inner.seed ^ 0x5CA1_AB1E)
        });
        scope.span_end("coarsen");
        metrics.counter("levels", hierarchy.num_levels() as u64);
        if hierarchy.num_levels() == 0 {
            // The graph refused to contract (e.g. no edges at all).
            return self.inner.map(problem);
        }
        for lvl in &hierarchy.levels {
            metrics.counter("level.vertices", lvl.n() as u64);
            metrics.counter("level.edges", lvl.pattern.num_edges() as u64);
        }

        // Solve the deepest level that yields a feasible weighted
        // placement; a level where even first-fit fails is abandoned
        // for the next finer one.
        let mut solved: Option<(usize, Vec<SiteId>)> = None;
        for k in (0..hierarchy.num_levels()).rev() {
            scope.span_begin("coarse_solve");
            let attempt = metrics.timed("phase.coarse_solve", || {
                solve_coarse(problem, &hierarchy.levels[k], &self.inner)
            });
            scope.span_end("coarse_solve");
            if let Some(sites) = attempt {
                solved = Some((k, sites));
                break;
            }
        }
        let Some((start, mut cur)) = solved else {
            // Every level failed even first-fit — solve the base
            // problem directly.
            return self.inner.map(problem);
        };

        // Uncoarsen: refine at each level that grew enough edges since
        // the last refined one (see [`REFINE_GROWTH`]), then project one
        // step finer; a final refinement always runs on the base problem
        // itself.
        let mut last_refined_edges = 0.0f64;
        for k in (0..=start).rev() {
            scope.span_begin("level");
            let edges = hierarchy.levels[k].pattern.num_edges() as f64;
            if edges < REFINE_MIN_EDGES as f64 || edges >= REFINE_GROWTH * last_refined_edges {
                metrics.timed("phase.refine", || {
                    refine_level(
                        problem,
                        Some(&hierarchy.levels[k]),
                        &mut cur,
                        self.config.refine_passes,
                        scope,
                    );
                });
                last_refined_edges = edges;
            }
            cur = hierarchy.project(k, &cur);
            scope.span_end("level");
        }
        scope.span_begin("level");
        metrics.timed("phase.refine", || {
            refine_level(problem, None, &mut cur, self.config.refine_passes, scope);
        });
        scope.span_end("level");

        let mapping = Mapping::new(cur);
        debug_assert!(
            mapping.validate(problem).is_ok(),
            "multilevel produced an infeasible mapping"
        );
        mapping
    }
}
