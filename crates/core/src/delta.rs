//! Incremental Δ-cost evaluation for swap-based local search.
//!
//! Every swap-based mapper in this workspace (MPIPP's best-swap rounds,
//! the Geo-distributed hill-climb polish, Monte-Carlo polish) repeatedly
//! asks the same question: *how much does the Eq. 3 cost change if I
//! swap processes `a` and `b` (or move `i` to site `s`)?* Answering it
//! by re-walking the pattern is `O(E)` per candidate; even the seed's
//! `cost::swap_delta` shortcut re-derives both endpoints' incident costs
//! from scratch, paying two binary searches per partner edge.
//!
//! [`CostEvaluator`] answers it in `O(deg(a) + deg(b))` flat array
//! reads: [`CostTables`] stores the pattern as a directed-split CSR and
//! the network as flat row-major `LT`/`1/BT` matrices, and the evaluator
//! caches each process's incident cost so a candidate only re-evaluates
//! the *post-swap* side. Applied moves update the caches in `O(deg)` and
//! push an undo frame; [`CostEval::revert`] restores the exact pre-apply
//! state bitwise (frames save the touched cache entries, not recomputed
//! values).
//!
//! The seed's ground truth stays available behind the same trait:
//! [`FullRecomputeEval`] evaluates every candidate by a full `O(E)`
//! re-walk. [`Evaluation`] selects between the two at mapper-config
//! level, and the equivalence harness in `tests/delta_equivalence.rs`
//! plus the oracle regression tests pin the two implementations to
//! identical mapper decisions.

use crate::cost::{model_components, CostModel};
use crate::mapping::Mapping;
use crate::metrics::Metrics;
use crate::problem::MappingProblem;
use crate::trace::TraceScope;
use geonet::SiteId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate statistics of one swap-search run — the per-mapper numbers
/// the observability layer reports (generalizing [`CostEval::terms`]).
/// Plain integers, accumulated locally by the search loops and emitted
/// once per phase, so the hot path carries no sink calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Sweeps / exchange rounds run (including the final one that found
    /// no improvement).
    pub passes: u64,
    /// Candidate swaps whose Δ was computed.
    pub swaps_evaluated: u64,
    /// Swaps actually applied.
    pub swaps_accepted: u64,
    /// Random restarts taken (0 for single-start searches).
    pub restarts: u64,
    /// α–β terms the evaluator computed ([`CostEval::terms`] at the end
    /// of the search, including evaluator construction).
    pub terms: u64,
}

impl SearchStats {
    /// Field-wise accumulate `other` into `self` (merging restarts or
    /// refinement candidates).
    pub fn absorb(&mut self, other: SearchStats) {
        self.passes += other.passes;
        self.swaps_evaluated += other.swaps_evaluated;
        self.swaps_accepted += other.swaps_accepted;
        self.restarts += other.restarts;
        self.terms += other.terms;
    }

    /// Emit the standard `search.*` counters to `metrics` (no-op when
    /// the handle is off).
    pub fn emit(&self, metrics: &Metrics) {
        if !metrics.enabled() {
            return;
        }
        metrics.counter("search.passes", self.passes);
        metrics.counter("search.swaps_evaluated", self.swaps_evaluated);
        metrics.counter("search.swaps_accepted", self.swaps_accepted);
        metrics.counter("search.restarts", self.restarts);
        metrics.counter("search.terms", self.terms);
    }
}

/// Which Δ-cost implementation a mapper's local search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Evaluation {
    /// Cached incremental deltas (`O(deg)` per candidate) — the default.
    #[default]
    Incremental,
    /// Full `O(E)` recomputation per candidate — the ground-truth oracle
    /// the incremental engine is verified against. Orders of magnitude
    /// slower; useful for tests and debugging only.
    FullRecompute,
}

impl Evaluation {
    /// Construct the chosen evaluator over `tables`, starting from the
    /// assignment in `sites`.
    pub fn evaluator<'t>(
        self,
        tables: &'t CostTables,
        sites: Vec<SiteId>,
    ) -> Box<dyn CostEval + 't> {
        match self {
            Evaluation::Incremental => Box::new(CostEvaluator::new(tables, sites)),
            Evaluation::FullRecompute => Box::new(FullRecomputeEval::new(tables, sites)),
        }
    }
}

/// Why [`CostTables::try_build`] rejected a problem. Every variant is a
/// condition the search kernels cannot survive: non-finite components
/// would poison `total_cmp` orderings, and an overflowing index space
/// would silently truncate the `u32` CSR layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostTablesError {
    /// The process count or the directed CSR entry count does not fit
    /// the `u32` index space of the flat tables.
    IndexOverflow {
        /// Number of processes in the problem.
        processes: usize,
        /// Number of directed CSR entries the partner lists expand to.
        entries: usize,
    },
    /// A folded communication component on an edge is NaN or infinite.
    NonFiniteEdge {
        /// Source process of the offending undirected edge.
        from: usize,
        /// Peer process of the offending undirected edge.
        to: usize,
        /// The folded component values, for the error message.
        detail: String,
    },
    /// A network `LT` or `1/BT` entry is NaN or infinite.
    NonFiniteNetwork {
        /// Row site index.
        from: usize,
        /// Column site index.
        to: usize,
        /// Which entry and its value, for the error message.
        detail: String,
    },
}

impl core::fmt::Display for CostTablesError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CostTablesError::IndexOverflow { processes, entries } => write!(
                f,
                "CostTables: graph exceeds the u32 CSR index space \
                 ({processes} processes, {entries} directed entries)"
            ),
            CostTablesError::NonFiniteEdge { from, to, detail } => write!(
                f,
                "CostTables: non-finite communication component on edge \
                 {from}↔{to} ({detail}); reject bad profiles before mapping"
            ),
            CostTablesError::NonFiniteNetwork {
                from: _,
                to: _,
                detail,
            } => {
                write!(f, "CostTables: non-finite {detail}")
            }
        }
    }
}

impl std::error::Error for CostTablesError {}

/// Pure index-space check for the flat CSR layout: `row_ptr` stores
/// entry offsets and `peer` stores process ids, both as `u32`. Checked
/// up front — with huge synthetic counts this is testable without
/// allocating anything.
fn csr_fits(processes: usize, entries: usize) -> Result<(), CostTablesError> {
    if processes > u32::MAX as usize || entries > u32::MAX as usize {
        return Err(CostTablesError::IndexOverflow { processes, entries });
    }
    Ok(())
}

/// Flatten a network into row-major `LT` and `1/BT` matrices, rejecting
/// non-finite entries (shared by both table constructors).
fn net_matrices(
    net: &geonet::SiteNetwork,
    m: usize,
) -> Result<(Vec<f64>, Vec<f64>), CostTablesError> {
    let mut lt = Vec::with_capacity(m * m);
    let mut inv_bt = Vec::with_capacity(m * m);
    for k in 0..m {
        for l in 0..m {
            let l_kl = net.latency(SiteId(k), SiteId(l));
            let b_kl = net.bandwidth(SiteId(k), SiteId(l));
            let inv = 1.0 / b_kl;
            if !l_kl.is_finite() {
                return Err(CostTablesError::NonFiniteNetwork {
                    from: k,
                    to: l,
                    detail: format!("latency LT({k},{l}) = {l_kl}"),
                });
            }
            if !inv.is_finite() {
                return Err(CostTablesError::NonFiniteNetwork {
                    from: k,
                    to: l,
                    detail: format!("1/BT({k},{l}) non-finite (BT = {b_kl})"),
                });
            }
            lt.push(l_kl);
            inv_bt.push(inv);
        }
    }
    Ok((lt, inv_bt))
}

/// Immutable, model-folded flat tables for one `(problem, cost model)`
/// pair: the communication pattern as a directed-split CSR over
/// undirected partner edges, and the network as row-major `LT` and
/// `1/BT` matrices. Build once per `map()` call, share freely across
/// threads.
#[derive(Debug, Clone)]
pub struct CostTables {
    n: usize,
    m: usize,
    /// CSR row offsets into the four parallel component arrays.
    row_ptr: Vec<u32>,
    /// Partner process of each CSR entry.
    peer: Vec<u32>,
    /// `AG(i, peer)` — messages `i` sends to the partner.
    out_m: Vec<f64>,
    /// `CG(i, peer)` — bytes `i` sends to the partner.
    out_b: Vec<f64>,
    /// `AG(peer, i)` — messages the partner sends to `i`.
    in_m: Vec<f64>,
    /// `CG(peer, i)` — bytes the partner sends to `i`.
    in_b: Vec<f64>,
    /// Row-major `LT(k, l)`.
    lt: Vec<f64>,
    /// Row-major `1 / BT(k, l)` (division folded into a multiply).
    inv_bt: Vec<f64>,
}

impl CostTables {
    /// Flatten `problem` under `model`. The model is folded into the
    /// stored `CG`/`AG` components (latency-only zeroes the bytes,
    /// bandwidth-only the messages), so every downstream evaluation is
    /// the same two-term α–β kernel.
    ///
    /// # Panics
    /// Panics if any folded communication component or network entry is
    /// non-finite, or the graph exceeds the `u32` CSR index space.
    /// Rejecting here — once per `map()` — is what lets the downstream
    /// comparators use plain `total_cmp` orderings without NaN ever
    /// reaching a search decision. [`CostTables::try_build`] is the
    /// non-panicking form for callers fed untrusted problems.
    pub fn build(problem: &MappingProblem, model: CostModel) -> Self {
        match Self::try_build(problem, model) {
            Ok(tables) => tables,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`CostTables::build`] with every rejection as a typed error
    /// instead of a panic: non-finite communication components or
    /// network entries, and graphs whose process count or directed
    /// CSR entry count would silently truncate the `u32` index space.
    /// Degenerate problems — a single vertex, every rank pinned, or
    /// zero-weight edges — build fine and evaluate to well-defined
    /// (possibly zero) costs.
    pub fn try_build(problem: &MappingProblem, model: CostModel) -> Result<Self, CostTablesError> {
        let n = problem.num_processes();
        let m = problem.num_sites();
        let pattern = problem.pattern();
        let partners = problem.partners();

        let entries: usize = partners.iter().map(Vec::len).sum();
        csr_fits(n, entries)?;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut peer = Vec::with_capacity(entries);
        let mut out_m = Vec::with_capacity(entries);
        let mut out_b = Vec::with_capacity(entries);
        let mut in_m = Vec::with_capacity(entries);
        let mut in_b = Vec::with_capacity(entries);
        row_ptr.push(0u32);
        for (i, ps) in partners.iter().enumerate() {
            for p in ps {
                let ob = pattern.bytes(i, p.peer);
                let om = pattern.msgs(i, p.peer);
                let (fom, fob) = model_components(model, om, ob);
                let (fim, fib) = model_components(model, p.msgs - om, p.bytes - ob);
                if !(fom.is_finite() && fob.is_finite() && fim.is_finite() && fib.is_finite()) {
                    return Err(CostTablesError::NonFiniteEdge {
                        from: i,
                        to: p.peer,
                        detail: format!(
                            "out msgs {fom}, out bytes {fob}, in msgs {fim}, in bytes {fib}"
                        ),
                    });
                }
                peer.push(p.peer as u32);
                out_m.push(fom);
                out_b.push(fob);
                in_m.push(fim);
                in_b.push(fib);
            }
            row_ptr.push(peer.len() as u32);
        }

        let (lt, inv_bt) = net_matrices(problem.network(), m)?;

        Ok(Self {
            n,
            m,
            row_ptr,
            peer,
            out_m,
            out_b,
            in_m,
            in_b,
            lt,
            inv_bt,
        })
    }

    /// [`CostTables::try_build_from_pattern`] with the standard
    /// panic-on-rejection contract of [`CostTables::build`].
    ///
    /// # Panics
    /// Panics under the same conditions as [`CostTables::build`].
    pub fn build_from_pattern(
        pattern: &commgraph::CommPattern,
        net: &geonet::SiteNetwork,
        model: CostModel,
    ) -> Self {
        match Self::try_build_from_pattern(pattern, net, model) {
            Ok(tables) => tables,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build tables directly from a pattern/network pair — the
    /// multilevel refiner's fast path, which visits a freshly contracted
    /// pattern at every level. Semantically equivalent to wrapping the
    /// pair in a [`MappingProblem`] and calling
    /// [`CostTables::try_build`] (up to float rounding in the folded
    /// components), but the undirected partner rows come from one O(E)
    /// sorted merge of the out- and in-adjacency instead of the
    /// problem's BTreeMap partner cache plus per-entry binary searches.
    pub fn try_build_from_pattern(
        pattern: &commgraph::CommPattern,
        net: &geonet::SiteNetwork,
        model: CostModel,
    ) -> Result<Self, CostTablesError> {
        let n = pattern.n();
        let m = net.num_sites();

        // In-adjacency, with each row sorted by source because sources
        // are visited in order.
        let mut in_rows: Vec<Vec<commgraph::pattern::Edge>> = vec![Vec::new(); n];
        for src in 0..n {
            for e in pattern.out_edges(src) {
                in_rows[e.dst].push(commgraph::pattern::Edge {
                    dst: src,
                    bytes: e.bytes,
                    msgs: e.msgs,
                });
            }
        }
        let entries: usize = (0..n)
            .map(|i| {
                let (out, inr) = (pattern.out_edges(i), &in_rows[i]);
                let (mut a, mut b, mut len) = (0usize, 0usize, 0usize);
                while a < out.len() || b < inr.len() {
                    if b >= inr.len() || (a < out.len() && out[a].dst <= inr[b].dst) {
                        if b < inr.len() && out[a].dst == inr[b].dst {
                            b += 1;
                        }
                        a += 1;
                    } else {
                        b += 1;
                    }
                    len += 1;
                }
                len
            })
            .sum();
        csr_fits(n, entries)?;

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut peer = Vec::with_capacity(entries);
        let mut out_m = Vec::with_capacity(entries);
        let mut out_b = Vec::with_capacity(entries);
        let mut in_m = Vec::with_capacity(entries);
        let mut in_b = Vec::with_capacity(entries);
        row_ptr.push(0u32);
        for (i, inr) in in_rows.iter().enumerate() {
            let out = pattern.out_edges(i);
            let (mut a, mut b) = (0usize, 0usize);
            while a < out.len() || b < inr.len() {
                // Merge the two sorted runs into one partner entry per
                // peer: out components from i→peer, in from peer→i.
                let (p, om, ob, im, ib) =
                    if b >= inr.len() || (a < out.len() && out[a].dst < inr[b].dst) {
                        let e = &out[a];
                        a += 1;
                        (e.dst, e.msgs, e.bytes, 0.0, 0.0)
                    } else if a >= out.len() || inr[b].dst < out[a].dst {
                        let e = &inr[b];
                        b += 1;
                        (e.dst, 0.0, 0.0, e.msgs, e.bytes)
                    } else {
                        let (eo, ei) = (&out[a], &inr[b]);
                        a += 1;
                        b += 1;
                        (eo.dst, eo.msgs, eo.bytes, ei.msgs, ei.bytes)
                    };
                let (fom, fob) = model_components(model, om, ob);
                let (fim, fib) = model_components(model, im, ib);
                if !(fom.is_finite() && fob.is_finite() && fim.is_finite() && fib.is_finite()) {
                    return Err(CostTablesError::NonFiniteEdge {
                        from: i,
                        to: p,
                        detail: format!(
                            "out msgs {fom}, out bytes {fob}, in msgs {fim}, in bytes {fib}"
                        ),
                    });
                }
                peer.push(p as u32);
                out_m.push(fom);
                out_b.push(fob);
                in_m.push(fim);
                in_b.push(fib);
            }
            row_ptr.push(peer.len() as u32);
        }

        let (lt, inv_bt) = net_matrices(net, m)?;
        Ok(Self {
            n,
            m,
            row_ptr,
            peer,
            out_m,
            out_b,
            in_m,
            in_b,
            lt,
            inv_bt,
        })
    }

    /// Number of processes.
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Number of sites.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.m
    }

    /// Number of directed CSR entries (twice the undirected edge count).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.peer.len()
    }

    /// CSR entry range of process `i`.
    #[inline]
    fn row(&self, i: usize) -> core::ops::Range<usize> {
        self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize
    }

    /// One α–β term: `msgs·LT(from,to) + bytes/BT(from,to)`.
    #[inline]
    fn term(&self, msgs: f64, bytes: f64, from: SiteId, to: SiteId) -> f64 {
        let at = from.index() * self.m + to.index();
        msgs * self.lt[at] + bytes * self.inv_bt[at]
    }

    /// Total Eq. 3 cost of `sites` — `O(E)` over the out components only
    /// (each directed edge is stored twice, once per endpoint).
    pub fn total(&self, sites: &[SiteId]) -> f64 {
        debug_assert_eq!(sites.len(), self.n);
        let mut sum = 0.0;
        for i in 0..self.n {
            let si = sites[i];
            for k in self.row(i) {
                sum += self.term(
                    self.out_m[k],
                    self.out_b[k],
                    si,
                    sites[self.peer[k] as usize],
                );
            }
        }
        sum
    }

    /// Incident cost of process `i` (both directions of every partner
    /// edge) under `sites`.
    fn incident(&self, sites: &[SiteId], i: usize) -> f64 {
        let si = sites[i];
        let mut sum = 0.0;
        for k in self.row(i) {
            let sp = sites[self.peer[k] as usize];
            sum += self.term(self.out_m[k], self.out_b[k], si, sp)
                + self.term(self.in_m[k], self.in_b[k], sp, si);
        }
        sum
    }

    /// Eq. 3 cost of attaching unplaced process `i` at `site` to its
    /// already-placed partners — the greedy mappers' tie-break score.
    /// Unplaced partners contribute nothing. `O(deg(i))`.
    pub fn placement_cost(&self, placed: &[Option<SiteId>], i: usize, site: SiteId) -> f64 {
        let mut sum = 0.0;
        for k in self.row(i) {
            if let Some(sp) = placed[self.peer[k] as usize] {
                sum += self.term(self.out_m[k], self.out_b[k], site, sp)
                    + self.term(self.in_m[k], self.in_b[k], sp, site);
            }
        }
        sum
    }
}

/// Δ-cost evaluation over a mutable assignment: candidate queries,
/// applied moves with cache maintenance, and bitwise-exact undo.
///
/// `swap_delta`/`move_delta` are `&self` and thread-safe, so a sweep can
/// fan candidate evaluation out with rayon; `apply_*`/`revert` mutate.
pub trait CostEval: Sync {
    /// Current total Eq. 3 cost (maintained incrementally; see
    /// `tests/delta_equivalence.rs` for the drift bound).
    fn total(&self) -> f64;

    /// The current assignment.
    fn sites(&self) -> &[SiteId];

    /// Exact cost change of swapping the sites of `a` and `b`; `0.0`
    /// when `a == b` or they share a site.
    fn swap_delta(&self, a: usize, b: usize) -> f64;

    /// Exact cost change of moving `i` to `to`; `0.0` when already there.
    /// (Capacity bookkeeping is the caller's job.)
    fn move_delta(&self, i: usize, to: SiteId) -> f64;

    /// Apply the swap, update caches, push an undo frame; returns the
    /// applied delta.
    fn apply_swap(&mut self, a: usize, b: usize) -> f64;

    /// Apply the move, update caches, push an undo frame; returns the
    /// applied delta.
    fn apply_move(&mut self, i: usize, to: SiteId) -> f64;

    /// Undo the most recent un-reverted `apply_*`, restoring the exact
    /// prior state (bitwise). Returns `false` when nothing is left.
    fn revert(&mut self) -> bool;

    /// α–β terms evaluated so far (one `pair_cost` = one term) — the
    /// work metric behind the Fig. 4 FLOP comparisons.
    fn terms(&self) -> u64;

    /// Partner ids of `i` in CSR order (the communicating pairs a
    /// partner-edge sweep considers).
    fn peers(&self, i: usize) -> &[u32];
}

/// An applied operation, for the undo log.
#[derive(Debug, Clone, Copy)]
enum Op {
    Swap(u32, u32),
    /// Process and the site it came *from*.
    Move(u32, SiteId),
}

/// Undo frame: the operation, the pre-apply total, and every cache entry
/// the apply touched with its pre-apply value.
#[derive(Debug)]
struct Frame {
    op: Op,
    total: f64,
    saved: Vec<(u32, f64)>,
}

/// The incremental engine: cached per-process incident costs over
/// [`CostTables`].
pub struct CostEvaluator<'t> {
    tables: &'t CostTables,
    sites: Vec<SiteId>,
    /// `incident[i]` = both-direction cost of all edges at `i`.
    incident: Vec<f64>,
    total: f64,
    frames: Vec<Frame>,
    terms: AtomicU64,
}

impl<'t> CostEvaluator<'t> {
    /// Build the caches for `sites` (`O(E)` once).
    pub fn new(tables: &'t CostTables, sites: Vec<SiteId>) -> Self {
        assert_eq!(sites.len(), tables.n, "assignment length mismatch");
        let incident: Vec<f64> = (0..tables.n).map(|i| tables.incident(&sites, i)).collect();
        let total = tables.total(&sites);
        Self {
            tables,
            sites,
            incident,
            total,
            frames: Vec::new(),
            terms: AtomicU64::new((3 * tables.num_entries()) as u64),
        }
    }

    /// Post-move incident cost of `i` sitting at `si_new`, seeing one
    /// peer (`other`) at `other_new`. Also returns the a↔b edge cost
    /// after and before (0 if `other` is not a partner), which
    /// `swap_delta` needs to un-double-count.
    fn row_after(
        &self,
        i: usize,
        si_new: SiteId,
        other: usize,
        other_new: SiteId,
    ) -> (f64, f64, f64) {
        let t = self.tables;
        let (mut after, mut ab_after, mut ab_before) = (0.0, 0.0, 0.0);
        for k in t.row(i) {
            let p = t.peer[k] as usize;
            let sp = if p == other { other_new } else { self.sites[p] };
            let term = t.term(t.out_m[k], t.out_b[k], si_new, sp)
                + t.term(t.in_m[k], t.in_b[k], sp, si_new);
            after += term;
            if p == other {
                ab_after = term;
                let (si, so) = (self.sites[i], self.sites[p]);
                ab_before =
                    t.term(t.out_m[k], t.out_b[k], si, so) + t.term(t.in_m[k], t.in_b[k], so, si);
            }
        }
        (after, after - ab_after + ab_before, ab_after - ab_before)
    }

    /// Adjust the incident caches of `i`'s peers for `i` moving
    /// `from → to` (skipping `skip`, whose cache is rebuilt wholesale).
    fn shift_peer_caches(&mut self, i: usize, from: SiteId, to: SiteId, skip: usize) {
        let t = self.tables;
        for k in t.row(i) {
            let p = t.peer[k] as usize;
            if p == skip {
                continue;
            }
            let sp = self.sites[p];
            let old =
                t.term(t.out_m[k], t.out_b[k], from, sp) + t.term(t.in_m[k], t.in_b[k], sp, from);
            let new = t.term(t.out_m[k], t.out_b[k], to, sp) + t.term(t.in_m[k], t.in_b[k], sp, to);
            self.incident[p] += new - old;
        }
    }

    /// Snapshot the cache entries an apply on `who` will touch.
    fn save_rows(&self, who: &[usize], saved: &mut Vec<(u32, f64)>) {
        for &i in who {
            saved.push((i as u32, self.incident[i]));
            for k in self.tables.row(i) {
                let p = self.tables.peer[k];
                saved.push((p, self.incident[p as usize]));
            }
        }
    }

    #[inline]
    fn count_terms(&self, n: u64) {
        self.terms.fetch_add(n, Ordering::Relaxed);
    }

    /// Degree of process `i` (CSR row length).
    fn deg(&self, i: usize) -> u64 {
        (self.tables.row_ptr[i + 1] - self.tables.row_ptr[i]) as u64
    }
}

impl CostEval for CostEvaluator<'_> {
    fn total(&self) -> f64 {
        self.total
    }

    fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    fn swap_delta(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let (sa, sb) = (self.sites[a], self.sites[b]);
        if sa == sb {
            return 0.0;
        }
        // Each row_after evaluates 2 terms per entry (+2 for the a↔b
        // "before" correction when present).
        self.count_terms(2 * (self.deg(a) + self.deg(b)) + 2);
        let (after_a, _, ab_change) = self.row_after(a, sb, b, sa);
        let (after_b, _, _) = self.row_after(b, sa, a, sb);
        // The a↔b edge (both directions) appears in both rows: counted
        // twice in the afters and twice in the cached befores, so its
        // change is double-counted exactly once — subtract it.
        (after_a - self.incident[a]) + (after_b - self.incident[b]) - ab_change
    }

    fn move_delta(&self, i: usize, to: SiteId) -> f64 {
        if self.sites[i] == to {
            return 0.0;
        }
        self.count_terms(2 * self.deg(i));
        let (after, _, _) = self.row_after(i, to, usize::MAX, to);
        after - self.incident[i]
    }

    fn apply_swap(&mut self, a: usize, b: usize) -> f64 {
        let delta = self.swap_delta(a, b);
        let mut saved = Vec::with_capacity(2 * (self.deg(a) + self.deg(b)) as usize + 2);
        self.save_rows(&[a, b], &mut saved);
        self.frames.push(Frame {
            op: Op::Swap(a as u32, b as u32),
            total: self.total,
            saved,
        });
        if a != b && self.sites[a] != self.sites[b] {
            let (sa, sb) = (self.sites[a], self.sites[b]);
            self.shift_peer_caches(a, sa, sb, b);
            self.shift_peer_caches(b, sb, sa, a);
            self.sites.swap(a, b);
            self.incident[a] = self.tables.incident(&self.sites, a);
            self.incident[b] = self.tables.incident(&self.sites, b);
            self.count_terms(4 * (self.deg(a) + self.deg(b)));
            self.total += delta;
        }
        delta
    }

    fn apply_move(&mut self, i: usize, to: SiteId) -> f64 {
        let delta = self.move_delta(i, to);
        let from = self.sites[i];
        let mut saved = Vec::with_capacity(self.deg(i) as usize + 1);
        self.save_rows(&[i], &mut saved);
        self.frames.push(Frame {
            op: Op::Move(i as u32, from),
            total: self.total,
            saved,
        });
        if self.sites[i] != to {
            self.shift_peer_caches(i, from, to, usize::MAX);
            self.sites[i] = to;
            self.incident[i] = self.tables.incident(&self.sites, i);
            self.count_terms(4 * self.deg(i));
            self.total += delta;
        }
        delta
    }

    fn revert(&mut self) -> bool {
        let Some(frame) = self.frames.pop() else {
            return false;
        };
        match frame.op {
            Op::Swap(a, b) => self.sites.swap(a as usize, b as usize),
            Op::Move(i, from) => self.sites[i as usize] = from,
        }
        self.total = frame.total;
        // Entries were snapshotted before any mutation, so restoring in
        // any order (duplicates included) reproduces the exact state.
        for (idx, v) in frame.saved {
            self.incident[idx as usize] = v;
        }
        true
    }

    fn terms(&self) -> u64 {
        self.terms.load(Ordering::Relaxed)
    }

    fn peers(&self, i: usize) -> &[u32] {
        &self.tables.peer[self.tables.row(i)]
    }
}

/// The ground-truth oracle: answers every query with a full `O(E)`
/// re-walk of the pattern under the hypothetical assignment. Behind the
/// same trait so any mapper can be flipped to it wholesale.
pub struct FullRecomputeEval<'t> {
    tables: &'t CostTables,
    sites: Vec<SiteId>,
    total: f64,
    frames: Vec<(Op, f64)>,
    terms: AtomicU64,
}

impl<'t> FullRecomputeEval<'t> {
    /// Build the oracle for `sites`.
    pub fn new(tables: &'t CostTables, sites: Vec<SiteId>) -> Self {
        assert_eq!(sites.len(), tables.n, "assignment length mismatch");
        let total = tables.total(&sites);
        Self {
            tables,
            sites,
            total,
            frames: Vec::new(),
            terms: AtomicU64::new(tables.num_entries() as u64),
        }
    }

    /// Full total under a hypothetical process→site view.
    fn total_with(&self, view: &dyn Fn(usize) -> SiteId) -> f64 {
        let t = self.tables;
        self.terms
            .fetch_add(t.num_entries() as u64, Ordering::Relaxed);
        let mut sum = 0.0;
        for i in 0..t.n {
            let si = view(i);
            for k in t.row(i) {
                sum += t.term(t.out_m[k], t.out_b[k], si, view(t.peer[k] as usize));
            }
        }
        sum
    }
}

impl CostEval for FullRecomputeEval<'_> {
    fn total(&self) -> f64 {
        self.total
    }

    fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    fn swap_delta(&self, a: usize, b: usize) -> f64 {
        if a == b || self.sites[a] == self.sites[b] {
            return 0.0;
        }
        let (sa, sb) = (self.sites[a], self.sites[b]);
        let view = |p: usize| {
            if p == a {
                sb
            } else if p == b {
                sa
            } else {
                self.sites[p]
            }
        };
        self.total_with(&view) - self.total
    }

    fn move_delta(&self, i: usize, to: SiteId) -> f64 {
        if self.sites[i] == to {
            return 0.0;
        }
        let view = |p: usize| if p == i { to } else { self.sites[p] };
        self.total_with(&view) - self.total
    }

    fn apply_swap(&mut self, a: usize, b: usize) -> f64 {
        self.frames.push((Op::Swap(a as u32, b as u32), self.total));
        let before = self.total;
        self.sites.swap(a, b);
        self.total = self.total_with(&|p| self.sites[p]);
        self.total - before
    }

    fn apply_move(&mut self, i: usize, to: SiteId) -> f64 {
        self.frames
            .push((Op::Move(i as u32, self.sites[i]), self.total));
        let before = self.total;
        self.sites[i] = to;
        self.total = self.total_with(&|p| self.sites[p]);
        self.total - before
    }

    fn revert(&mut self) -> bool {
        let Some((op, total)) = self.frames.pop() else {
            return false;
        };
        match op {
            Op::Swap(a, b) => self.sites.swap(a as usize, b as usize),
            Op::Move(i, from) => self.sites[i as usize] = from,
        }
        self.total = total;
        true
    }

    fn terms(&self) -> u64 {
        self.terms.load(Ordering::Relaxed)
    }

    fn peers(&self, i: usize) -> &[u32] {
        &self.tables.peer[self.tables.row(i)]
    }
}

/// Below this process count a polish sweep considers every pair; above
/// it, only communicating pairs (partner edges).
pub(crate) const FULL_PAIR_LIMIT: usize = 256;

/// First-improvement acceptance threshold shared by the polish sweeps.
const IMPROVEMENT_EPS: f64 = -1e-12;

/// Relative tie band of [`best_improving_swap`]: deltas within this
/// fraction of the scan scale count as equal. Far above the ~1e-15
/// cross-engine rounding noise of a Δ computation, far below any
/// meaningful cost difference.
const TIE_BAND_REL: f64 = 1e-12;

/// Best improving swap among `movable` processes, strictly below
/// `threshold`: the lexicographically first pair whose Δ lies within a
/// noise band of the minimum Δ.
///
/// The band makes the selection invariant to which [`CostEval`]
/// implementation computed the deltas — incremental and full-recompute
/// evaluation round differently at the last few bits, and on symmetric
/// patterns (SP/BT stencils) many candidate swaps are exact cost ties,
/// so a strict argmin would flip between engines on `1e-16`-level noise.
/// The min scan is batched over first-index rows and fanned out with
/// rayon when the row count is worth it; the reduction is
/// schedule-independent, so the result is deterministic either way.
pub fn best_improving_swap(
    eval: &dyn CostEval,
    movable: &[usize],
    threshold: f64,
) -> Option<(usize, usize, f64)> {
    best_improving_swap_counted(eval, movable, threshold).0
}

/// [`best_improving_swap`] plus the number of candidate Δ evaluations it
/// performed (min scan + tie-band re-scan) — the `swaps_evaluated`
/// feed of [`SearchStats`].
pub fn best_improving_swap_counted(
    eval: &dyn CostEval,
    movable: &[usize],
    threshold: f64,
) -> (Option<(usize, usize, f64)>, u64) {
    let row_best = |ai: usize| -> Option<(usize, usize, f64)> {
        let a = movable[ai];
        let mut best: Option<(usize, usize, f64)> = None;
        for &b in &movable[ai + 1..] {
            let d = eval.swap_delta(a, b);
            if d < threshold && best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((a, b, d));
            }
        }
        best
    };
    let per_row: Vec<Option<(usize, usize, f64)>> = if movable.len() >= 64 {
        use rayon::prelude::*;
        (0..movable.len()).into_par_iter().map(row_best).collect()
    } else {
        (0..movable.len()).map(row_best).collect()
    };
    // The min scan evaluates every unordered movable pair exactly once.
    let len = movable.len() as u64;
    let mut evaluated = len * len.saturating_sub(1) / 2;
    let min = per_row
        .iter()
        .flatten()
        .map(|&(_, _, d)| d)
        .fold(f64::INFINITY, f64::min);
    if min == f64::INFINITY {
        return (None, evaluated);
    }
    // Second pass: earliest pair inside the tie band. A row whose own
    // minimum lies above the band cannot contain one; the rest are
    // re-scanned in order, short-circuiting at the first hit.
    let band = min + TIE_BAND_REL * eval.total().abs().max(1.0);
    for (ai, row) in per_row.iter().enumerate() {
        let Some((_, _, rd)) = row else { continue };
        if *rd > band {
            continue;
        }
        let a = movable[ai];
        for &b in &movable[ai + 1..] {
            evaluated += 1;
            let d = eval.swap_delta(a, b);
            if d < threshold && d <= band {
                return (Some((a, b, d)), evaluated);
            }
        }
    }
    unreachable!("the row containing the minimum is inside the band")
}

/// First-improvement swap hill-climb over an evaluator: up to `passes`
/// sweeps; full-pair below [`FULL_PAIR_LIMIT`] processes, partner-edge
/// above. `movable(i)` gates which processes may move and
/// `permits(i, s)` whether `i` may sit on site `s` (multi-site
/// constraints). Returns the number of applied swaps.
pub fn sweep_hill_climb(
    eval: &mut dyn CostEval,
    passes: usize,
    movable: &dyn Fn(usize) -> bool,
    permits: &dyn Fn(usize, SiteId) -> bool,
) -> usize {
    sweep_hill_climb_stats(eval, passes, movable, permits).swaps_accepted as usize
}

/// [`sweep_hill_climb`] returning the full [`SearchStats`] of the climb
/// (passes run, candidates evaluated vs. accepted; `terms` is left for
/// the caller, who owns the evaluator). The counters are plain local
/// integer adds, so this *is* the hill-climb — the statless entry point
/// is a wrapper.
pub fn sweep_hill_climb_stats(
    eval: &mut dyn CostEval,
    passes: usize,
    movable: &dyn Fn(usize) -> bool,
    permits: &dyn Fn(usize, SiteId) -> bool,
) -> SearchStats {
    sweep_hill_climb_traced(eval, passes, movable, permits, TraceScope::off())
}

/// [`sweep_hill_climb_stats`] with event-level tracing: one `pass` span
/// per sweep and one `swap` instant per accepted swap on `scope`'s
/// track, timestamped with wall-clock time — the search trajectory a
/// Perfetto view of the run shows. A disabled scope makes this exactly
/// [`sweep_hill_climb_stats`]: every trace call is a `None` check and no
/// clock is read.
pub fn sweep_hill_climb_traced(
    eval: &mut dyn CostEval,
    passes: usize,
    movable: &dyn Fn(usize) -> bool,
    permits: &dyn Fn(usize, SiteId) -> bool,
    scope: TraceScope<'_>,
) -> SearchStats {
    let n = eval.sites().len();
    let mut stats = SearchStats::default();
    for _ in 0..passes {
        stats.passes += 1;
        scope.span_begin("pass");
        let mut improved = false;
        for i in 0..n {
            if !movable(i) {
                continue;
            }
            if n <= FULL_PAIR_LIMIT {
                for j in (i + 1)..n {
                    if movable(j) && try_swap(eval, i, j, permits, &mut stats, scope) {
                        improved = true;
                    }
                }
            } else {
                // Partner-edge sweep: only communicating pairs.
                let peers: Vec<usize> = eval.peers(i).iter().map(|&p| p as usize).collect();
                for j in peers {
                    if j > i && movable(j) && try_swap(eval, i, j, permits, &mut stats, scope) {
                        improved = true;
                    }
                }
            }
        }
        scope.span_end("pass");
        if !improved {
            break;
        }
    }
    stats
}

/// One candidate: gate on `permits`, accept on Δ below the shared
/// threshold.
fn try_swap(
    eval: &mut dyn CostEval,
    i: usize,
    j: usize,
    permits: &dyn Fn(usize, SiteId) -> bool,
    stats: &mut SearchStats,
    scope: TraceScope<'_>,
) -> bool {
    let (si, sj) = (eval.sites()[i], eval.sites()[j]);
    if si == sj || !permits(i, sj) || !permits(j, si) {
        return false;
    }
    stats.swaps_evaluated += 1;
    if eval.swap_delta(i, j) < IMPROVEMENT_EPS {
        eval.apply_swap(i, j);
        stats.swaps_accepted += 1;
        scope.instant("swap");
        return true;
    }
    false
}

/// Polish `mapping` in place with a swap hill-climb over fresh tables —
/// the convenience entry point for mappers that don't hold tables
/// themselves (Monte-Carlo polish, ad-hoc callers).
pub fn polish(
    problem: &MappingProblem,
    mapping: &mut Mapping,
    passes: usize,
    model: CostModel,
    evaluation: Evaluation,
    movable: &dyn Fn(usize) -> bool,
) -> usize {
    polish_stats(problem, mapping, passes, model, evaluation, movable).swaps_accepted as usize
}

/// [`polish`] returning the full [`SearchStats`] (including the
/// evaluator's term count).
pub fn polish_stats(
    problem: &MappingProblem,
    mapping: &mut Mapping,
    passes: usize,
    model: CostModel,
    evaluation: Evaluation,
    movable: &dyn Fn(usize) -> bool,
) -> SearchStats {
    polish_stats_traced(
        problem,
        mapping,
        passes,
        model,
        evaluation,
        movable,
        TraceScope::off(),
    )
}

/// [`polish_stats`] with event-level tracing on `scope` (see
/// [`sweep_hill_climb_traced`]).
pub fn polish_stats_traced(
    problem: &MappingProblem,
    mapping: &mut Mapping,
    passes: usize,
    model: CostModel,
    evaluation: Evaluation,
    movable: &dyn Fn(usize) -> bool,
    scope: TraceScope<'_>,
) -> SearchStats {
    let tables = CostTables::build(problem, model);
    polish_with_tables_traced(
        &tables,
        evaluation,
        mapping,
        passes,
        movable,
        &|_, _| true,
        scope,
    )
}

/// Polish `mapping` in place over prebuilt `tables` (the geo mappers
/// build tables once per `map()` and share them across all candidate
/// orders).
pub fn polish_with_tables(
    tables: &CostTables,
    evaluation: Evaluation,
    mapping: &mut Mapping,
    passes: usize,
    movable: &dyn Fn(usize) -> bool,
    permits: &dyn Fn(usize, SiteId) -> bool,
) -> usize {
    polish_with_tables_stats(tables, evaluation, mapping, passes, movable, permits).swaps_accepted
        as usize
}

/// [`polish_with_tables`] returning the full [`SearchStats`];
/// `stats.terms` is [`CostEval::terms`] of the evaluator after the climb
/// (construction included), so it is exactly the work metric Fig. 4
/// compares.
pub fn polish_with_tables_stats(
    tables: &CostTables,
    evaluation: Evaluation,
    mapping: &mut Mapping,
    passes: usize,
    movable: &dyn Fn(usize) -> bool,
    permits: &dyn Fn(usize, SiteId) -> bool,
) -> SearchStats {
    polish_with_tables_traced(
        tables,
        evaluation,
        mapping,
        passes,
        movable,
        permits,
        TraceScope::off(),
    )
}

/// [`polish_with_tables_stats`] with event-level tracing on `scope`
/// (see [`sweep_hill_climb_traced`]).
pub fn polish_with_tables_traced(
    tables: &CostTables,
    evaluation: Evaluation,
    mapping: &mut Mapping,
    passes: usize,
    movable: &dyn Fn(usize) -> bool,
    permits: &dyn Fn(usize, SiteId) -> bool,
    scope: TraceScope<'_>,
) -> SearchStats {
    let mut eval = evaluation.evaluator(tables, mapping.as_slice().to_vec());
    let mut stats = sweep_hill_climb_traced(eval.as_mut(), passes, movable, permits, scope);
    stats.terms = eval.terms();
    if stats.swaps_accepted > 0 {
        *mapping = Mapping::new(eval.sites().to_vec());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost, cost_with_model};
    use commgraph::apps::{RandomGraph, Workload};
    use geonet::{presets, InstanceType};

    fn problem(n: usize, seed: u64) -> MappingProblem {
        let net = presets::paper_ec2_network(n / 4, InstanceType::M4Xlarge, seed);
        let pat = RandomGraph {
            n,
            degree: 4,
            max_bytes: 400_000,
            seed,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    fn round_robin(n: usize, m: usize) -> Vec<SiteId> {
        (0..n).map(|i| SiteId(i % m)).collect()
    }

    #[test]
    fn csr_fits_rejects_u32_overflow_without_allocating() {
        assert!(csr_fits(0, 0).is_ok());
        assert!(csr_fits(u32::MAX as usize, u32::MAX as usize).is_ok());
        let huge = u32::MAX as usize + 1;
        assert_eq!(
            csr_fits(huge, 8),
            Err(CostTablesError::IndexOverflow {
                processes: huge,
                entries: 8
            })
        );
        assert_eq!(
            csr_fits(8, huge),
            Err(CostTablesError::IndexOverflow {
                processes: 8,
                entries: huge
            })
        );
        let msg = csr_fits(huge, 8).unwrap_err().to_string();
        assert!(msg.contains("u32 CSR index space"), "{msg}");
    }

    #[test]
    fn try_build_rejects_non_finite_network() {
        use geonet::{GeoCoord, Site, SiteNetwork, SquareMatrix};
        let pat = {
            let mut b = commgraph::pattern::PatternBuilder::new(2);
            b.record_many(0, 1, 1000, 1);
            b.build()
        };
        let sites = vec![
            Site::new("a", GeoCoord::new(0.0, 0.0), 2),
            Site::new("b", GeoCoord::new(1.0, 0.0), 2),
        ];
        // A denormal bandwidth passes the network's own `> 0 && finite`
        // gate but overflows the folded `1/BT` — exactly the class of
        // poison the tables must reject with a typed error, not feed
        // into `total_cmp` orderings.
        let lt = SquareMatrix::from_fn(2, |_, _| 0.1);
        let bt = SquareMatrix::from_fn(2, |k, l| if k == 0 && l == 1 { 5e-324 } else { 1e9 });
        let p = MappingProblem::unconstrained(pat, SiteNetwork::new(sites, lt, bt));
        match CostTables::try_build(&p, CostModel::Full) {
            Err(CostTablesError::NonFiniteNetwork { from: 0, to: 1, .. }) => {}
            other => panic!("expected NonFiniteNetwork, got {other:?}"),
        }
    }

    /// Degenerate problems build fine and evaluate to well-defined
    /// costs: a single vertex (no edges at all), every rank pinned, and
    /// zero-weight edges pruned by the builder.
    #[test]
    fn try_build_accepts_degenerate_problems() {
        use crate::constraint::ConstraintVector;

        // Single-vertex graph: empty CSR, zero cost, no panics in the
        // search entry points.
        let single = {
            let pat = commgraph::pattern::PatternBuilder::new(1).build();
            let net = presets::paper_ec2_network(1, InstanceType::M4Xlarge, 1);
            MappingProblem::unconstrained(pat, net)
        };
        let t = CostTables::try_build(&single, CostModel::Full).expect("single vertex builds");
        let sites = vec![SiteId(0)];
        assert_eq!(t.total(&sites), 0.0);
        let eval = Evaluation::Incremental.evaluator(&t, sites);
        assert_eq!(best_improving_swap(eval.as_ref(), &[0], -1e-12), None);

        // All ranks pinned: nothing movable, polish is a no-op.
        let p = problem(8, 11);
        let pins =
            ConstraintVector::from_pins((0..8).map(|i| Some(SiteId(i % p.num_sites()))).collect());
        let pinned = p.with_constraints(pins);
        let t = CostTables::try_build(&pinned, CostModel::Full).expect("all-pinned builds");
        let start: Vec<SiteId> = (0..8).map(|i| SiteId(i % pinned.num_sites())).collect();
        let mut mapping = Mapping::new(start.clone());
        let pins_of = pinned.constraints().clone();
        polish_with_tables(
            &t,
            Evaluation::Incremental,
            &mut mapping,
            4,
            &|i| pins_of.pin_of(i).is_none(),
            &|_, _| true,
        );
        assert_eq!(mapping.as_slice(), start.as_slice());

        // Zero-weight edges: record_many with count 0 is pruned by the
        // builder, so the tables see a well-formed (possibly empty)
        // graph rather than 0/0 components.
        let zero = {
            let mut b = commgraph::pattern::PatternBuilder::new(4);
            b.record_many(0, 1, 0, 1); // zero bytes, one message — kept
            b.record_many(2, 3, 5_000, 0); // zero count — dropped
            let net = presets::paper_ec2_network(1, InstanceType::M4Xlarge, 2);
            MappingProblem::unconstrained(b.build(), net)
        };
        let t = CostTables::try_build(&zero, CostModel::Full).expect("zero-weight builds");
        assert_eq!(t.num_entries(), 2);
        let sites = round_robin(4, zero.num_sites());
        assert!(t.total(&sites).is_finite());
    }

    #[test]
    fn build_from_pattern_matches_problem_build() {
        let p = problem(48, 41);
        let sites = round_robin(48, p.num_sites());
        for model in [
            CostModel::Full,
            CostModel::LatencyOnly,
            CostModel::BandwidthOnly,
        ] {
            let via_problem = CostTables::build(&p, model);
            let direct = CostTables::build_from_pattern(p.pattern(), p.network(), model);
            assert_eq!(direct.num_processes(), via_problem.num_processes());
            assert_eq!(direct.num_entries(), via_problem.num_entries());
            let (a, b) = (direct.total(&sites), via_problem.total(&sites));
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{model:?}: direct {a} vs via-problem {b}"
            );
            // Same partner structure, so the delta engines agree too.
            let ed = CostEvaluator::new(&direct, sites.clone());
            let ep = CostEvaluator::new(&via_problem, sites.clone());
            for i in 0..48 {
                let (da, db) = (
                    ed.swap_delta(i, (i + 7) % 48),
                    ep.swap_delta(i, (i + 7) % 48),
                );
                assert!(
                    (da - db).abs() <= 1e-9 * db.abs().max(1.0),
                    "{model:?} swap_delta({i}): {da} vs {db}"
                );
            }
        }
    }

    #[test]
    fn build_from_pattern_rejects_non_finite_network() {
        use geonet::{GeoCoord, Site, SiteNetwork, SquareMatrix};
        let pat = {
            let mut b = commgraph::pattern::PatternBuilder::new(2);
            b.record_many(0, 1, 1000, 1);
            b.build()
        };
        let sites = vec![
            Site::new("a", GeoCoord::new(0.0, 0.0), 2),
            Site::new("b", GeoCoord::new(1.0, 0.0), 2),
        ];
        // Same denormal-bandwidth poison as the try_build test: passes
        // the network's own gate, overflows the folded 1/BT.
        let lt = SquareMatrix::from_fn(2, |_, _| 0.1);
        let bt = SquareMatrix::from_fn(2, |k, l| if k == 0 && l == 1 { 5e-324 } else { 1e9 });
        let net = SiteNetwork::new(sites, lt, bt);
        match CostTables::try_build_from_pattern(&pat, &net, CostModel::Full) {
            Err(CostTablesError::NonFiniteNetwork { .. }) => {}
            other => panic!("expected NonFiniteNetwork, got {other:?}"),
        }
    }

    #[test]
    fn tables_total_matches_cost_with_model() {
        let p = problem(24, 3);
        let sites = round_robin(24, p.num_sites());
        let mapping = Mapping::new(sites.clone());
        for model in [
            CostModel::Full,
            CostModel::LatencyOnly,
            CostModel::BandwidthOnly,
        ] {
            let t = CostTables::build(&p, model);
            let reference = cost_with_model(&p, &mapping, model);
            let flat = t.total(&sites);
            assert!(
                (flat - reference).abs() <= 1e-9 * reference.max(1.0),
                "{model:?}: flat {flat} vs reference {reference}"
            );
        }
    }

    #[test]
    fn swap_delta_matches_brute_force_for_both_engines() {
        let p = problem(16, 5);
        let t = CostTables::build(&p, CostModel::Full);
        let sites = round_robin(16, p.num_sites());
        for evaluation in [Evaluation::Incremental, Evaluation::FullRecompute] {
            let eval = evaluation.evaluator(&t, sites.clone());
            for a in 0..16 {
                for b in a..16 {
                    let d = eval.swap_delta(a, b);
                    let mut swapped = sites.clone();
                    swapped.swap(a, b);
                    let brute = t.total(&swapped) - t.total(&sites);
                    assert!(
                        (d - brute).abs() <= 1e-9 * t.total(&sites).max(1.0),
                        "{evaluation:?} swap ({a},{b}): {d} vs {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn move_delta_matches_brute_force_for_both_engines() {
        let p = problem(16, 7);
        let t = CostTables::build(&p, CostModel::Full);
        let sites = round_robin(16, p.num_sites());
        for evaluation in [Evaluation::Incremental, Evaluation::FullRecompute] {
            let eval = evaluation.evaluator(&t, sites.clone());
            for i in 0..16 {
                for s in 0..p.num_sites() {
                    let d = eval.move_delta(i, SiteId(s));
                    let mut moved = sites.clone();
                    moved[i] = SiteId(s);
                    let brute = t.total(&moved) - t.total(&sites);
                    assert!(
                        (d - brute).abs() <= 1e-9 * t.total(&sites).max(1.0),
                        "{evaluation:?} move ({i}→{s}): {d} vs {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_updates_total_and_revert_restores_bitwise() {
        let p = problem(16, 9);
        let t = CostTables::build(&p, CostModel::Full);
        let sites = round_robin(16, p.num_sites());
        let mut eval = CostEvaluator::new(&t, sites.clone());
        let (t0, inc0) = (eval.total, eval.incident.clone());
        eval.apply_swap(0, 5);
        eval.apply_move(3, SiteId(2));
        eval.apply_swap(7, 12);
        // Totals track the applied deltas against brute force.
        let brute = t.total(eval.sites());
        assert!((eval.total() - brute).abs() <= 1e-9 * brute.max(1.0));
        assert!(eval.revert());
        assert!(eval.revert());
        assert!(eval.revert());
        assert!(!eval.revert());
        assert_eq!(eval.sites(), &sites[..]);
        assert!(
            eval.total().to_bits() == t0.to_bits(),
            "total not restored bitwise"
        );
        for (i, (a, b)) in eval.incident.iter().zip(&inc0).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "incident[{i}] not restored bitwise"
            );
        }
    }

    #[test]
    fn incident_caches_stay_exact_after_many_applies() {
        let p = problem(20, 11);
        let t = CostTables::build(&p, CostModel::Full);
        let mut eval = CostEvaluator::new(&t, round_robin(20, p.num_sites()));
        let ops = [(0usize, 7usize), (3, 12), (1, 19), (5, 9), (0, 3), (14, 2)];
        for &(a, b) in &ops {
            eval.apply_swap(a, b);
            for i in 0..20 {
                let fresh = t.incident(eval.sites(), i);
                assert!(
                    (eval.incident[i] - fresh).abs() <= 1e-9 * fresh.abs().max(1.0),
                    "incident[{i}] drifted after swap ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn polish_never_increases_cost_and_reaches_local_optimum() {
        let p = problem(32, 13);
        let mut m = Mapping::new(round_robin(32, p.num_sites()));
        let before = cost(&p, &m);
        let applied = polish(
            &p,
            &mut m,
            50,
            CostModel::Full,
            Evaluation::Incremental,
            &|_| true,
        );
        let after = cost(&p, &m);
        assert!(applied > 0, "round-robin should be improvable");
        assert!(after < before);
        // No improving swap may remain at the shared threshold.
        let t = CostTables::build(&p, CostModel::Full);
        let eval = CostEvaluator::new(&t, m.as_slice().to_vec());
        for a in 0..32 {
            for b in (a + 1)..32 {
                assert!(
                    eval.swap_delta(a, b) >= -1e-9,
                    "improving swap ({a},{b}) remains"
                );
            }
        }
    }

    #[test]
    fn best_improving_swap_is_deterministic_and_lexicographic() {
        let p = problem(24, 17);
        let t = CostTables::build(&p, CostModel::Full);
        let movable: Vec<usize> = (0..24).collect();
        let eval = CostEvaluator::new(&t, round_robin(24, p.num_sites()));
        let expected = {
            // Sequential reference scan of the tie-band rule: find the
            // minimum Δ, then the lexicographically first pair within
            // the band of it.
            let mut min = f64::INFINITY;
            for a in 0..24usize {
                for b in (a + 1)..24 {
                    let d = eval.swap_delta(a, b);
                    if d < -1e-15 {
                        min = min.min(d);
                    }
                }
            }
            let band = min + 1e-12 * eval.total().abs().max(1.0);
            let mut first: Option<(usize, usize)> = None;
            'outer: for a in 0..24usize {
                for b in (a + 1)..24 {
                    let d = eval.swap_delta(a, b);
                    if d < -1e-15 && d <= band {
                        first = Some((a, b));
                        break 'outer;
                    }
                }
            }
            first
        };
        assert!(
            expected.is_some(),
            "round-robin start should have an improving swap"
        );
        let got = best_improving_swap(&eval, &movable, -1e-15);
        assert_eq!(got.map(|(a, b, _)| (a, b)), expected);
    }

    #[test]
    fn term_counters_reflect_work_asymmetry() {
        let p = problem(64, 19);
        let t = CostTables::build(&p, CostModel::Full);
        let sites = round_robin(64, p.num_sites());
        let inc = CostEvaluator::new(&t, sites.clone());
        let full = FullRecomputeEval::new(&t, sites);
        let (i0, f0) = (inc.terms(), full.terms());
        for a in 0..64 {
            for b in (a + 1)..64 {
                inc.swap_delta(a, b);
                full.swap_delta(a, b);
            }
        }
        let (di, df) = (inc.terms() - i0, full.terms() - f0);
        assert!(
            df >= 10 * di,
            "full recompute should cost ≥10× more terms: incremental {di}, full {df}"
        );
    }

    #[test]
    fn counted_swap_matches_plain_and_counts_all_pairs() {
        let p = problem(24, 21);
        let t = CostTables::build(&p, CostModel::Full);
        let movable: Vec<usize> = (0..24).collect();
        let eval = CostEvaluator::new(&t, round_robin(24, p.num_sites()));
        let plain = best_improving_swap(&eval, &movable, -1e-15);
        let (counted, evaluated) = best_improving_swap_counted(&eval, &movable, -1e-15);
        assert_eq!(plain, counted);
        // One full scan visits all C(24,2) pairs; the tie-band re-scan
        // can only add.
        assert!(evaluated >= 24 * 23 / 2, "evaluated {evaluated}");
    }

    #[test]
    fn search_stats_are_internally_consistent() {
        let p = problem(32, 23);
        let mut m = Mapping::new(round_robin(32, p.num_sites()));
        let stats = polish_stats(
            &p,
            &mut m,
            50,
            CostModel::Full,
            Evaluation::Incremental,
            &|_| true,
        );
        assert!(stats.passes >= 1);
        assert!(stats.swaps_accepted > 0, "round-robin should improve");
        assert!(
            stats.swaps_accepted <= stats.swaps_evaluated,
            "accepted {} > evaluated {}",
            stats.swaps_accepted,
            stats.swaps_evaluated
        );
        // The last pass finds nothing, so at least two passes ran.
        assert!(stats.passes >= 2);
        assert!(stats.terms > 0, "evaluator term count must be captured");
    }

    #[test]
    fn stats_terms_match_an_independent_evaluator_run() {
        // Replay the exact climb on a hand-held evaluator: the stats'
        // term counter must equal CostEval::terms of that evaluator.
        let p = problem(24, 29);
        let t = CostTables::build(&p, CostModel::Full);
        let start = round_robin(24, p.num_sites());
        let mut m = Mapping::new(start.clone());
        let stats = polish_with_tables_stats(
            &t,
            Evaluation::Incremental,
            &mut m,
            50,
            &|_| true,
            &|_, _| true,
        );
        let mut replay = CostEvaluator::new(&t, start);
        let replay_stats = sweep_hill_climb_stats(&mut replay, 50, &|_| true, &|_, _| true);
        assert_eq!(stats.swaps_accepted, replay_stats.swaps_accepted);
        assert_eq!(stats.swaps_evaluated, replay_stats.swaps_evaluated);
        assert_eq!(stats.terms, replay.terms());
    }

    #[test]
    fn stats_wrappers_agree_with_plain_entry_points() {
        let p = problem(32, 31);
        let mut plain = Mapping::new(round_robin(32, p.num_sites()));
        let mut with_stats = plain.clone();
        let applied = polish(
            &p,
            &mut plain,
            50,
            CostModel::Full,
            Evaluation::Incremental,
            &|_| true,
        );
        let stats = polish_stats(
            &p,
            &mut with_stats,
            50,
            CostModel::Full,
            Evaluation::Incremental,
            &|_| true,
        );
        assert_eq!(plain, with_stats, "wrapper changed the search");
        assert_eq!(applied as u64, stats.swaps_accepted);
    }

    #[test]
    fn search_stats_absorb_adds_fieldwise() {
        let mut a = SearchStats {
            passes: 1,
            swaps_evaluated: 10,
            swaps_accepted: 2,
            restarts: 1,
            terms: 100,
        };
        let b = SearchStats {
            passes: 2,
            swaps_evaluated: 5,
            swaps_accepted: 1,
            restarts: 0,
            terms: 50,
        };
        a.absorb(b);
        assert_eq!(
            a,
            SearchStats {
                passes: 3,
                swaps_evaluated: 15,
                swaps_accepted: 3,
                restarts: 1,
                terms: 150,
            }
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_communication_rejected_at_table_build() {
        // An infinite byte volume passes CommPattern's `v >= 0` check but
        // must be rejected once, at CostTables build time, with a
        // descriptive error instead of poisoning every comparator
        // downstream.
        let n = 4;
        let mut cg = geonet::SquareMatrix::zeros(n);
        let mut ag = geonet::SquareMatrix::zeros(n);
        cg.set(0, 1, f64::INFINITY);
        ag.set(0, 1, 1.0);
        cg.set(1, 0, 10.0);
        ag.set(1, 0, 1.0);
        let pat = commgraph::CommPattern::from_dense(&cg, &ag);
        let net = presets::paper_ec2_network(2, InstanceType::M4Xlarge, 1);
        let p = MappingProblem::unconstrained(pat, net);
        CostTables::build(&p, CostModel::Full);
    }
}
