//! The communication cost function (paper Eq. 3).
//!
//! When process `i` is mapped to site `k` and process `j` to site `l`,
//! the cost of their traffic is
//! `f(w_ij, d_kl) = AG(i,j)·LT(k,l) + CG(i,j)/BT(k,l)` — message count
//! times latency plus volume over bandwidth — and the mapping's total
//! cost (Eq. 2/4) is the sum over all process pairs. Evaluation is
//! `O(E)` over the sparse pattern.
//!
//! [`CostModel`] exposes latency-only and bandwidth-only variants for the
//! ablation study of the design choices in DESIGN.md.

use crate::mapping::Mapping;
use crate::problem::MappingProblem;
use commgraph::CommPattern;
use geonet::{SiteId, SiteNetwork};

/// Which terms of Eq. 3 the objective uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// The paper's full α–β objective.
    #[default]
    Full,
    /// Only `AG·LT` (ablation: ignore bandwidth).
    LatencyOnly,
    /// Only `CG/BT` (ablation: ignore latency).
    BandwidthOnly,
}

/// Cost of the traffic between one mapped process pair (Eq. 3).
#[inline]
pub fn pair_cost(net: &SiteNetwork, msgs: f64, bytes: f64, from: SiteId, to: SiteId) -> f64 {
    msgs * net.latency(from, to) + bytes / net.bandwidth(from, to)
}

/// Fold a [`CostModel`] into raw `(msgs, bytes)` edge components: the
/// latency-only model zeroes the bytes, the bandwidth-only model the
/// messages, so downstream evaluation is always the full two-term
/// kernel. Used by [`crate::delta::CostTables`] to bake the model into
/// its flat storage once at build time.
#[inline]
pub fn model_components(model: CostModel, msgs: f64, bytes: f64) -> (f64, f64) {
    match model {
        CostModel::Full => (msgs, bytes),
        CostModel::LatencyOnly => (msgs, 0.0),
        CostModel::BandwidthOnly => (0.0, bytes),
    }
}

/// Total cost of `mapping` under the paper's full model (Eq. 2/4).
pub fn cost(problem: &MappingProblem, mapping: &Mapping) -> f64 {
    cost_with_model(problem, mapping, CostModel::Full)
}

/// Total cost under a chosen [`CostModel`].
pub fn cost_with_model(problem: &MappingProblem, mapping: &Mapping, model: CostModel) -> f64 {
    debug_assert_eq!(mapping.len(), problem.num_processes());
    let net = problem.network();
    let pattern = problem.pattern();
    let mut total = 0.0;
    for src in 0..pattern.n() {
        let from = mapping.site_of(src);
        for e in pattern.out_edges(src) {
            let to = mapping.site_of(e.dst);
            total += match model {
                CostModel::Full => pair_cost(net, e.msgs, e.bytes, from, to),
                CostModel::LatencyOnly => e.msgs * net.latency(from, to),
                CostModel::BandwidthOnly => e.bytes / net.bandwidth(from, to),
            };
        }
    }
    total
}

/// Cost contribution of all edges incident to process `i` (both
/// directions). `O(deg(i))` given the problem's cached partner lists plus
/// a directed lookup; used by local-search mappers for incremental swap
/// evaluation.
pub fn incident_cost(problem: &MappingProblem, mapping: &Mapping, i: usize) -> f64 {
    let net = problem.network();
    let pattern = problem.pattern();
    let si = mapping.site_of(i);
    let mut total = 0.0;
    for p in &problem.partners()[i] {
        let sp = mapping.site_of(p.peer);
        let out_b = pattern.bytes(i, p.peer);
        let out_m = pattern.msgs(i, p.peer);
        if out_m > 0.0 {
            total += pair_cost(net, out_m, out_b, si, sp);
        }
        let in_b = p.bytes - out_b;
        let in_m = p.msgs - out_m;
        if in_m > 0.0 {
            total += pair_cost(net, in_m, in_b, sp, si);
        }
    }
    total
}

/// Exact cost change from swapping the sites of processes `a` and `b` in
/// `mapping` (without mutating or cloning it — this runs in the local-
/// search inner loops). Edges between `a` and `b` themselves are handled
/// once.
pub fn swap_delta(problem: &MappingProblem, mapping: &Mapping, a: usize, b: usize) -> f64 {
    let (sa, sb) = (mapping.site_of(a), mapping.site_of(b));
    if a == b || sa == sb {
        return 0.0;
    }
    let plain = |p: usize| mapping.site_of(p);
    let swapped = |p: usize| {
        if p == a {
            sb
        } else if p == b {
            sa
        } else {
            mapping.site_of(p)
        }
    };
    let before = incident_cost_with(problem, a, &plain) + incident_cost_with(problem, b, &plain)
        - ab_cost_with(problem, a, b, &plain);
    let after = incident_cost_with(problem, a, &swapped) + incident_cost_with(problem, b, &swapped)
        - ab_cost_with(problem, a, b, &swapped);
    after - before
}

/// [`incident_cost`] under an arbitrary process→site view.
fn incident_cost_with(
    problem: &MappingProblem,
    i: usize,
    site_of: &dyn Fn(usize) -> SiteId,
) -> f64 {
    let net = problem.network();
    let pattern = problem.pattern();
    let si = site_of(i);
    let mut total = 0.0;
    for p in &problem.partners()[i] {
        let sp = site_of(p.peer);
        let out_b = pattern.bytes(i, p.peer);
        let out_m = pattern.msgs(i, p.peer);
        if out_m > 0.0 {
            total += pair_cost(net, out_m, out_b, si, sp);
        }
        let in_b = p.bytes - out_b;
        let in_m = p.msgs - out_m;
        if in_m > 0.0 {
            total += pair_cost(net, in_m, in_b, sp, si);
        }
    }
    total
}

/// Cost of the direct a↔b edges (counted twice by two incident sums).
fn ab_cost_with(
    problem: &MappingProblem,
    a: usize,
    b: usize,
    site_of: &dyn Fn(usize) -> SiteId,
) -> f64 {
    let net = problem.network();
    let pattern = problem.pattern();
    let (sa, sb) = (site_of(a), site_of(b));
    let mut t = 0.0;
    let (m_ab, b_ab) = (pattern.msgs(a, b), pattern.bytes(a, b));
    if m_ab > 0.0 {
        t += pair_cost(net, m_ab, b_ab, sa, sb);
    }
    let (m_ba, b_ba) = (pattern.msgs(b, a), pattern.bytes(b, a));
    if m_ba > 0.0 {
        t += pair_cost(net, m_ba, b_ba, sb, sa);
    }
    t
}

/// Communication time of a single pattern replayed edge-by-edge — the
/// simple aggregate estimate `Σ` Eq. 3 expressed directly over a pattern
/// and an assignment slice (no problem wrapper). Useful for harness code
/// operating outside a full [`MappingProblem`].
pub fn pattern_cost(pattern: &CommPattern, net: &SiteNetwork, assignment: &[SiteId]) -> f64 {
    assert_eq!(pattern.n(), assignment.len(), "assignment length mismatch");
    let mut total = 0.0;
    for src in 0..pattern.n() {
        let from = assignment[src];
        for e in pattern.out_edges(src) {
            total += pair_cost(net, e.msgs, e.bytes, from, assignment[e.dst]);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MappingProblem;
    use commgraph::apps::{RandomGraph, Ring, Workload};
    use commgraph::pattern::PatternBuilder;
    use geonet::{presets, InstanceType};

    fn problem(n: usize) -> MappingProblem {
        let net = presets::paper_ec2_network(n / 4, InstanceType::M4Xlarge, 1);
        let pat = RandomGraph {
            n,
            degree: 4,
            max_bytes: 100_000,
            seed: 5,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn two_process_cost_matches_formula() {
        let net = presets::paper_ec2_network(1, InstanceType::M4Xlarge, 1);
        let mut b = PatternBuilder::new(2);
        b.record_many(0, 1, 1000, 3);
        let p = MappingProblem::unconstrained(b.build(), net);
        let m = Mapping::from(vec![0, 2]);
        let lt = p.network().latency(SiteId(0), SiteId(2));
        let bt = p.network().bandwidth(SiteId(0), SiteId(2));
        let expect = 3.0 * lt + 3000.0 / bt;
        assert!((cost(&p, &m) - expect).abs() < 1e-12);
    }

    #[test]
    fn colocated_is_cheaper_than_spread_for_a_ring() {
        let net = presets::paper_ec2_network(2, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 8,
            iterations: 1,
            bytes: 1_000_000,
        }
        .pattern();
        let p = MappingProblem::unconstrained(pat, net);
        let packed = Mapping::from(vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let spread = Mapping::from(vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(cost(&p, &packed) < cost(&p, &spread));
    }

    #[test]
    fn model_terms_add_up() {
        let p = problem(16);
        let m = Mapping::from((0..16).map(|i| i % 4).collect::<Vec<_>>());
        let full = cost_with_model(&p, &m, CostModel::Full);
        let lat = cost_with_model(&p, &m, CostModel::LatencyOnly);
        let bw = cost_with_model(&p, &m, CostModel::BandwidthOnly);
        assert!((full - (lat + bw)).abs() < 1e-9 * full);
        assert!(lat > 0.0 && bw > 0.0);
    }

    #[test]
    fn swap_delta_matches_full_recomputation() {
        let p = problem(16);
        let m = Mapping::from((0..16).map(|i| i % 4).collect::<Vec<_>>());
        let base = cost(&p, &m);
        for (a, b) in [(0usize, 1usize), (2, 7), (3, 12), (5, 5), (0, 4)] {
            let delta = swap_delta(&p, &m, a, b);
            let mut swapped = m.clone();
            swapped.swap(a, b);
            let full = cost(&p, &swapped) - base;
            assert!(
                (delta - full).abs() < 1e-9 * base.max(1.0),
                "swap ({a},{b}): incremental {delta} vs full {full}"
            );
        }
    }

    #[test]
    fn incident_cost_sums_to_twice_total_minus_nothing() {
        // Σ_i incident(i) counts every edge exactly twice.
        let p = problem(16);
        let m = Mapping::from((0..16).map(|i| (i * 7) % 4).collect::<Vec<_>>());
        let total = cost(&p, &m);
        let sum: f64 = (0..16).map(|i| incident_cost(&p, &m, i)).sum();
        assert!((sum - 2.0 * total).abs() < 1e-9 * total);
    }

    #[test]
    fn pattern_cost_agrees_with_problem_cost() {
        let p = problem(16);
        let m = Mapping::from((0..16).map(|i| i % 4).collect::<Vec<_>>());
        let direct = pattern_cost(p.pattern(), p.network(), m.as_slice());
        assert!((direct - cost(&p, &m)).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_costs_nothing() {
        let net = presets::paper_ec2_network(2, InstanceType::M4Xlarge, 1);
        let p = MappingProblem::unconstrained(commgraph::CommPattern::empty(4), net);
        let m = Mapping::from(vec![0, 1, 2, 3]);
        assert_eq!(cost(&p, &m), 0.0);
    }
}
