//! Online remapping: bounded-migration repair of a drifted mapping.
//!
//! The SC'17 formulation is solve-once: Eq. 3 is minimized against a
//! calibration snapshot and the mapping is handed to the runtime. Real
//! geo-clouds drift — leases expire, nodes fail, link estimates go
//! stale — and re-solving cold throws away the one thing the runtime
//! already paid for: the current placement. Following the warm-start
//! local-search line of work (Schulz & Träff's process-mapping
//! refinement), [`repair`] points the PR 1 Δ-cost engine
//! ([`crate::delta`]) at the *current* mapping and searches for the
//! cheapest repair under a combined objective
//!
//! ```text
//! Eq3_cost(P) + α · |{i : P_i ≠ P⁰_i}|
//! ```
//!
//! where `P⁰` is the starting (drifted) mapping and `α` prices one rank
//! migration. Two knobs bound the blast radius:
//!
//! * a **hard migration budget** — the repair never displaces more than
//!   `budget` ranks from where they currently run, no matter how
//!   profitable a larger rearrangement would be;
//! * **pin preservation** — ranks pinned by the problem's
//!   [`ConstraintVector`] never move (Eq. 5 keeps holding).
//!
//! Because the search starts at `P⁰` (zero migrations) and only ever
//! accepts operations that strictly decrease the combined objective,
//! the repaired Eq. 3 cost can never exceed the starting cost:
//! `cost(P) = obj(P) − α·moved ≤ obj(P) ≤ obj(P⁰) = cost(P⁰)`. The
//! property suite (`tests/remap_properties.rs`) pins this, the budget,
//! and the pins.
//!
//! [`cold_resolve`] is the oracle twin: the identical search with the
//! budget and the migration price removed. A repair whose budget is
//! non-binding must walk the exact same trajectory, so equivalence
//! tests compare the two mappings element-wise.

use crate::constraint::ConstraintVector;
use crate::cost::CostModel;
use crate::delta::{CostEval, CostEvaluator, CostTables};
use crate::mapping::Mapping;
use crate::problem::MappingProblem;
use geonet::SiteId;

/// Accept threshold shared with the delta engine's hill climb: a
/// candidate must beat the current objective by more than this (in the
/// negative direction) to be applied, so float dust never loops.
const IMPROVEMENT_EPS: f64 = -1e-9;

/// Tuning for one [`repair`] call.
#[derive(Debug, Clone)]
pub struct RemapConfig {
    /// Hard migration budget: the repaired mapping may differ from the
    /// starting mapping on at most this many ranks. `None` is
    /// unbounded (the cold-resolve regime).
    pub budget: Option<usize>,
    /// Price of one migrated rank in Eq. 3 cost units. `0.0` optimizes
    /// cost alone (subject to the budget); larger values prefer
    /// staying put unless the communication win pays for the move.
    pub alpha: f64,
    /// Maximum improvement sweeps over all ranks.
    pub passes: usize,
    /// Cost model folded into the tables (Eq. 3 by default).
    pub model: CostModel,
}

impl Default for RemapConfig {
    fn default() -> Self {
        Self {
            budget: None,
            alpha: 0.0,
            passes: 16,
            model: CostModel::Full,
        }
    }
}

/// What a repair did.
#[derive(Debug, Clone)]
pub struct RemapOutcome {
    /// The repaired mapping.
    pub mapping: Mapping,
    /// Eq. 3 cost of the starting mapping.
    pub old_cost: f64,
    /// Eq. 3 cost of the repaired mapping (`≤ old_cost` always).
    pub new_cost: f64,
    /// Ranks whose site changed vs. the starting mapping, ascending.
    pub moved: Vec<usize>,
    /// Operations (moves + swaps) the search accepted.
    pub ops: usize,
    /// Improvement sweeps actually run (≤ `config.passes`).
    pub passes_run: usize,
    /// α–β terms the Δ-engine evaluated (work metric).
    pub terms: u64,
}

impl RemapOutcome {
    /// Number of migrated ranks (`moved.len()`).
    pub fn migrations(&self) -> usize {
        self.moved.len()
    }

    /// The combined objective of the repaired mapping under `alpha`.
    pub fn objective(&self, alpha: f64) -> f64 {
        #[allow(clippy::cast_precision_loss)] // rank counts are small
        let m = self.moved.len() as f64;
        self.new_cost + alpha * m
    }
}

/// Migration bookkeeping against the starting assignment: how many
/// ranks currently deviate, and how an operation changes that count.
struct MigrationLedger {
    origin: Vec<SiteId>,
    moved: usize,
}

impl MigrationLedger {
    fn new(origin: Vec<SiteId>) -> Self {
        Self { origin, moved: 0 }
    }

    /// Change in the deviation count if `i` (currently at `from`)
    /// lands on `to`: `+1` leaving home, `-1` returning home, else 0.
    fn delta(&self, i: usize, from: SiteId, to: SiteId) -> isize {
        let home = self.origin[i];
        isize::from(to != home) - isize::from(from != home)
    }

    fn apply(&mut self, d: isize) {
        self.moved = self
            .moved
            .checked_add_signed(d)
            .expect("migration count cannot go negative");
    }

    /// Whether an operation with deviation change `d` fits `budget`.
    fn fits(&self, d: isize, budget: Option<usize>) -> bool {
        let Some(budget) = budget else { return true };
        self.moved.saturating_add_signed(d) <= budget
    }
}

/// Repair `start` against `problem` under `config`: bounded-migration
/// local search from the current placement, via the incremental
/// Δ-cost evaluator.
///
/// # Panics
/// Panics if `start` does not cover the problem's processes or
/// violates its pin constraints — drift moves free ranks, never pinned
/// ones, so a pin-violating start is a caller bug, not churn.
pub fn repair(problem: &MappingProblem, start: &Mapping, config: &RemapConfig) -> RemapOutcome {
    let tables = CostTables::build(problem, config.model);
    repair_with_tables(
        &tables,
        problem.constraints(),
        &problem.capacities(),
        start,
        config,
    )
}

/// [`repair`] against prebuilt tables (the service keeps tables cached
/// per problem; the bench reuses one build across budget sweeps).
/// `capacities` are the *live* per-site node capacities — pass the
/// inventory's current view, not the nominal cluster, so a repair
/// never migrates a rank onto a site that has no room today.
pub fn repair_with_tables(
    tables: &CostTables,
    constraints: &ConstraintVector,
    capacities: &[usize],
    start: &Mapping,
    config: &RemapConfig,
) -> RemapOutcome {
    let n = tables.num_processes();
    let m = tables.num_sites();
    assert_eq!(
        start.len(),
        n,
        "starting mapping covers {} ranks, problem has {n}",
        start.len()
    );
    assert_eq!(
        capacities.len(),
        m,
        "capacities cover {} sites, problem has {m}",
        capacities.len()
    );
    assert!(
        constraints.satisfied_by(start.as_slice()),
        "starting mapping violates pin constraints — pins never drift"
    );

    let origin = start.as_slice().to_vec();
    let mut counts = vec![0usize; m];
    for &s in &origin {
        counts[s.index()] += 1;
    }

    let mut eval = CostEvaluator::new(tables, origin.clone());
    let old_cost = eval.total();
    let mut ledger = MigrationLedger::new(origin);
    let mut ops = 0usize;
    let mut passes_run = 0usize;

    for _ in 0..config.passes {
        passes_run += 1;
        let mut improved = false;
        for i in 0..n {
            if constraints.pin_of(i).is_some() {
                continue;
            }
            // Best operation rooted at rank i: a move to any site with
            // spare capacity, or a swap with a communication partner
            // (the classic QAP neighborhood, O(deg) candidates).
            let si = eval.sites()[i];
            let mut best: Option<(Candidate, f64)> = None;
            for s in 0..m {
                let to = SiteId(s);
                if to == si || counts[s] >= capacities[s] {
                    continue;
                }
                let mig = ledger.delta(i, si, to);
                if !ledger.fits(mig, config.budget) {
                    continue;
                }
                let obj = eval.move_delta(i, to) + config.alpha * mig as f64;
                if obj < best.as_ref().map_or(IMPROVEMENT_EPS, |(_, b)| *b) {
                    best = Some((Candidate::Move(to, mig), obj));
                }
            }
            for k in 0..eval.peers(i).len() {
                let j = eval.peers(i)[k] as usize;
                if j == i || constraints.pin_of(j).is_some() {
                    continue;
                }
                let sj = eval.sites()[j];
                if sj == si {
                    continue;
                }
                let mig = ledger.delta(i, si, sj) + ledger.delta(j, sj, si);
                if !ledger.fits(mig, config.budget) {
                    continue;
                }
                let obj = eval.swap_delta(i, j) + config.alpha * mig as f64;
                if obj < best.as_ref().map_or(IMPROVEMENT_EPS, |(_, b)| *b) {
                    best = Some((Candidate::Swap(j, mig), obj));
                }
            }
            if let Some((op, _)) = best {
                match op {
                    Candidate::Move(to, mig) => {
                        counts[si.index()] -= 1;
                        counts[to.index()] += 1;
                        eval.apply_move(i, to);
                        ledger.apply(mig);
                    }
                    Candidate::Swap(j, mig) => {
                        eval.apply_swap(i, j);
                        ledger.apply(mig);
                    }
                }
                ops += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let sites = eval.sites().to_vec();
    let moved: Vec<usize> = sites
        .iter()
        .zip(&ledger.origin)
        .enumerate()
        .filter(|(_, (now, home))| now != home)
        .map(|(i, _)| i)
        .collect();
    debug_assert_eq!(
        moved.len(),
        ledger.moved,
        "ledger drifted from the assignment"
    );
    if let Some(budget) = config.budget {
        debug_assert!(moved.len() <= budget, "budget violated");
    }
    let new_cost = eval.total();
    debug_assert!(
        new_cost <= old_cost + 1e-6 * old_cost.abs().max(1.0),
        "repair increased Eq. 3 cost: {old_cost} -> {new_cost}"
    );
    RemapOutcome {
        mapping: Mapping::new(sites),
        old_cost,
        new_cost,
        moved,
        ops,
        passes_run,
        terms: eval.terms(),
    }
}

/// One candidate operation rooted at a rank, with its migration-count
/// change.
enum Candidate {
    Move(SiteId, isize),
    Swap(usize, isize),
}

/// The cold-resolve oracle: the identical search with no migration
/// budget and no migration price — what a from-scratch local re-solve
/// of the drifted placement converges to. `repair` with a non-binding
/// budget and `alpha == 0` is definitionally equivalent (the property
/// suite compares the mappings element-wise); quality tests compare a
/// budgeted repair's cost against this oracle's.
pub fn cold_resolve(problem: &MappingProblem, start: &Mapping, passes: usize) -> RemapOutcome {
    repair(
        problem,
        start,
        &RemapConfig {
            budget: None,
            alpha: 0.0,
            passes,
            model: CostModel::Full,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost;
    use commgraph::pattern::PatternBuilder;
    use geonet::{GeoCoord, Site, SiteNetwork, SquareMatrix};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn problem(n: usize, m: usize, seed: u64) -> MappingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = PatternBuilder::new(n);
        for i in 0..n {
            b.record_many(i, (i + 1) % n, 64 * 1024, 8);
        }
        for _ in 0..n {
            let src = rng.random_range(0..n);
            let dst = rng.random_range(0..n);
            if src != dst {
                b.record_many(src, dst, rng.random_range(1..1_000_000u64), 4);
            }
        }
        let sites: Vec<Site> = (0..m)
            .map(|k| {
                Site::new(
                    format!("s{k}"),
                    GeoCoord::new(k as f64, -(k as f64)),
                    n.div_ceil(m) + 1,
                )
            })
            .collect();
        let lt = SquareMatrix::from_fn(m, |k, l| {
            if k == l {
                1e-5
            } else {
                1e-3 * (1 + k + l) as f64
            }
        });
        let bt = SquareMatrix::from_fn(m, |k, l| {
            if k == l {
                1e10
            } else {
                1e7 / (1 + k + l) as f64
            }
        });
        MappingProblem::unconstrained(b.build(), SiteNetwork::new(sites, lt, bt))
    }

    fn drifted(problem: &MappingProblem, displace: usize, seed: u64) -> Mapping {
        // A feasible start, then `displace` random ranks shuffled onto
        // random sites with spare room (capacity-preserving drift).
        let caps = problem.capacities();
        let n = problem.num_processes();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; caps.len()];
        let mut sites = Vec::with_capacity(n);
        for i in 0..n {
            let mut s = i % caps.len();
            while counts[s] >= caps[s] {
                s = (s + 1) % caps.len();
            }
            counts[s] += 1;
            sites.push(SiteId(s));
        }
        for _ in 0..displace {
            let i = rng.random_range(0..n);
            let to = rng.random_range(0..caps.len());
            if counts[to] < caps[to] {
                counts[sites[i].index()] -= 1;
                counts[to] += 1;
                sites[i] = SiteId(to);
            }
        }
        Mapping::new(sites)
    }

    #[test]
    fn repair_never_increases_cost_and_respects_budget() {
        let p = problem(48, 4, 7);
        let start = drifted(&p, 12, 99);
        let out = repair(
            &p,
            &start,
            &RemapConfig {
                budget: Some(6),
                alpha: 0.0,
                ..RemapConfig::default()
            },
        );
        assert!(out.migrations() <= 6);
        assert!(out.new_cost <= out.old_cost);
        assert!((cost(&p, &out.mapping) - out.new_cost).abs() < 1e-6 * out.old_cost.max(1.0));
        assert!(out.mapping.validate(&p).is_ok());
    }

    #[test]
    fn zero_budget_repair_is_the_identity() {
        let p = problem(32, 4, 3);
        let start = drifted(&p, 8, 5);
        let out = repair(
            &p,
            &start,
            &RemapConfig {
                budget: Some(0),
                ..RemapConfig::default()
            },
        );
        assert_eq!(out.mapping.as_slice(), start.as_slice());
        assert_eq!(out.migrations(), 0);
        assert_eq!(out.new_cost, out.old_cost);
    }

    #[test]
    fn pinned_ranks_never_move() {
        let p = problem(32, 4, 11);
        let start = drifted(&p, 10, 13);
        let mut pins = ConstraintVector::none(32);
        for i in [0usize, 7, 15, 31] {
            pins.pin(i, start.site_of(i));
        }
        let p = p.with_constraints(pins.clone());
        let out = repair(&p, &start, &RemapConfig::default());
        for i in [0usize, 7, 15, 31] {
            assert_eq!(out.mapping.site_of(i), start.site_of(i), "pin {i} moved");
        }
        assert!(pins.satisfied_by(out.mapping.as_slice()));
    }

    #[test]
    fn nonbinding_budget_matches_cold_resolve_exactly() {
        let p = problem(40, 5, 21);
        let start = drifted(&p, 14, 23);
        let cold = cold_resolve(&p, &start, 16);
        let warm = repair(
            &p,
            &start,
            &RemapConfig {
                budget: Some(40), // every rank may move: non-binding
                alpha: 0.0,
                ..RemapConfig::default()
            },
        );
        assert_eq!(warm.mapping.as_slice(), cold.mapping.as_slice());
        assert_eq!(warm.new_cost.to_bits(), cold.new_cost.to_bits());
    }

    #[test]
    fn alpha_trades_migrations_for_cost() {
        let p = problem(48, 4, 31);
        let start = drifted(&p, 16, 37);
        let free = repair(
            &p,
            &start,
            &RemapConfig {
                alpha: 0.0,
                ..RemapConfig::default()
            },
        );
        let priced = repair(
            &p,
            &start,
            &RemapConfig {
                alpha: free.old_cost, // one migration costs the whole map
                ..RemapConfig::default()
            },
        );
        assert!(priced.migrations() <= free.migrations());
    }

    #[test]
    fn repair_never_overfills_a_site() {
        let p = problem(48, 4, 41);
        let start = drifted(&p, 20, 43);
        let out = repair(&p, &start, &RemapConfig::default());
        let caps = p.capacities();
        let counts = out.mapping.site_counts(caps.len());
        for (j, (&c, &cap)) in counts.iter().zip(&caps).enumerate() {
            assert!(c <= cap, "site {j}: {c} > capacity {cap}");
        }
    }
}
