//! The Geo-distributed process mapping algorithm (paper §4.3,
//! Algorithm 1).
//!
//! For every order of the site groups, the heuristic repeatedly:
//!
//! 1. picks the unselected site of the current group with the most
//!    available nodes,
//! 2. seeds it with the unselected process of heaviest total
//!    communication quantity,
//! 3. packs the site with the unselected processes communicating most
//!    heavily with the processes already inside it, until the site is
//!    full,
//!
//! then evaluates the Eq. 3 cost of the resulting mapping and keeps the
//! cheapest order; the cheapest few orders are additionally polished by
//! a swap hill-climb (see [`GeoMapper::refine`]). Data-movement-
//! constrained processes are placed first (lines 4–6) and contribute to
//! the packing affinities.
//!
//! The paper quotes `O(κ!·N²)`; with a lazy affinity max-heap one
//! packing is `O((N + E)·log N)`, so the whole search is
//! `O(κ!·(N + E)·log N)` plus the bounded refinement. The `κ!` orders
//! are embarrassingly parallel and evaluated with rayon when `parallel`
//! is set.

use crate::cost::CostModel;
use crate::delta::{polish_with_tables_traced, CostTables, Evaluation, SearchStats};
use crate::grouping::group_sites;
use crate::mapping::Mapping;
use crate::metrics::Metrics;
use crate::problem::MappingProblem;
use crate::trace::{Trace, TraceScope, TrackId};
use crate::Mapper;
use geonet::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// How many group orders Algorithm 1 examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderSearch {
    /// All `κ!` orders (the paper's algorithm).
    Exhaustive,
    /// Only the identity order — the ablation showing what the order
    /// search buys.
    FirstOnly,
    /// `samples` random orders (always including the identity).
    Random {
        /// Number of sampled orders.
        samples: usize,
    },
}

/// How each site's first process is chosen (line 9 of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Seeding {
    /// The unselected process with the heaviest communication quantity
    /// (the paper's rule).
    #[default]
    Heaviest,
    /// A random unselected process — ablation baseline.
    Random,
}

/// The paper's Geo-distributed mapper.
///
/// ```
/// use geomap_core::{GeoMapper, Mapper, MappingProblem, cost};
/// use commgraph::apps::{AppKind, Workload};
/// use geonet::{presets, InstanceType};
///
/// let network = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 7);
/// let pattern = AppKind::Lu.workload(16).pattern();
/// let problem = MappingProblem::unconstrained(pattern, network);
/// let mapping = GeoMapper::default().map(&problem);
/// assert!(mapping.validate(&problem).is_ok());
/// assert!(cost(&problem, &mapping) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GeoMapper {
    /// Number of K-means site groups `κ` (paper: "usually less than 5").
    pub kappa: usize,
    /// Seed for grouping and any randomized choices.
    pub seed: u64,
    /// Evaluate group orders on the rayon thread pool.
    pub parallel: bool,
    /// Order-search strategy.
    pub order_search: OrderSearch,
    /// Site-seeding rule.
    pub seeding: Seeding,
    /// Objective used to compare orders.
    pub cost_model: CostModel,
    /// Polish the cheapest orders' packings with a first-improvement
    /// swap hill-climb; the κ! order search doubles as a multi-start.
    /// One order of magnitude cheaper than MPIPP's restarted
    /// best-swap-to-convergence search (Fig. 4) while matching or
    /// beating its quality from the greedy packing's better basin.
    pub refine: bool,
    /// Which Δ-cost engine the refinement sweeps use. The default
    /// incremental engine answers each candidate in `O(deg)`;
    /// [`Evaluation::FullRecompute`] is the `O(E)`-per-candidate oracle
    /// it is verified against (`tests/delta_equivalence.rs`).
    pub evaluation: Evaluation,
    /// Observability handle. [`Metrics::off`] (the default) keeps the
    /// search free of any instrumentation cost; an enabled handle
    /// receives phase timings (`phase.grouping` / `phase.order_search` /
    /// `phase.packing` / `phase.refinement`) and [`SearchStats`]
    /// counters scoped under the mapper's name.
    pub metrics: Metrics,
    /// Event-level tracing handle. [`Trace::off`] (the default) adds no
    /// instrumentation; an enabled handle records phase spans on a
    /// `"search"/"Geo-distributed"` track and, per polished order, pass
    /// spans and accepted-swap instants on its own
    /// `"Geo-distributed refine[k]"` track (one track per order keeps
    /// span nesting valid under rayon).
    pub trace: Trace,
}

impl Default for GeoMapper {
    fn default() -> Self {
        Self {
            kappa: 4,
            seed: 0x6E0,
            parallel: true,
            order_search: OrderSearch::Exhaustive,
            seeding: Seeding::Heaviest,
            cost_model: CostModel::Full,
            refine: true,
            evaluation: Evaluation::Incremental,
            metrics: Metrics::off(),
            trace: Trace::off(),
        }
    }
}

impl GeoMapper {
    /// The paper's configuration with `κ` groups.
    pub fn with_kappa(kappa: usize) -> Self {
        Self {
            kappa,
            ..Self::default()
        }
    }

    /// All group orders to evaluate.
    fn orders(&self, num_groups: usize) -> Vec<Vec<usize>> {
        match self.order_search {
            OrderSearch::Exhaustive => permutations(num_groups),
            OrderSearch::FirstOnly => vec![(0..num_groups).collect()],
            OrderSearch::Random { samples } => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x04DE4);
                let mut out = vec![(0..num_groups).collect::<Vec<_>>()];
                for _ in 1..samples.max(1) {
                    let mut p: Vec<usize> = (0..num_groups).collect();
                    for i in (1..p.len()).rev() {
                        let j = rng.random_range(0..=i);
                        p.swap(i, j);
                    }
                    out.push(p);
                }
                out
            }
        }
    }

    /// Run Algorithm 1 for one group order θ; returns the mapping `P^θ`.
    fn map_order(
        &self,
        problem: &MappingProblem,
        groups: &[Vec<SiteId>],
        order: &[usize],
        by_quantity: &[usize],
    ) -> Mapping {
        let n = problem.num_processes();
        let partners = problem.partners();
        let constraints = problem.constraints();

        // Lines 3–6: place constrained processes, reduce capacities.
        let mut assignment: Vec<Option<SiteId>> = (0..n).map(|i| constraints.pin_of(i)).collect();
        let mut selected = vec![false; n];
        let mut remaining = n;
        for (i, a) in assignment.iter().enumerate() {
            if a.is_some() {
                selected[i] = true;
                remaining -= 1;
            }
        }
        let mut free_caps = problem.free_capacities();

        let mut rng = StdRng::seed_from_u64(self.seed);
        // Affinity of each unselected process with the site being filled.
        let mut affinity = vec![0.0f64; n];
        let mut heap = AffinityHeap::with_capacity(n);

        'outer: for &gi in order {
            let group = &groups[gi];
            // Line 8: one pass per site of the group; sites are taken in
            // decreasing order of available nodes (line 10), re-evaluated
            // dynamically.
            let mut site_done = vec![false; group.len()];
            for _ in 0..group.len() {
                if remaining == 0 {
                    break 'outer;
                }
                // Site with the largest number of available nodes.
                let Some((slot, &site)) = group
                    .iter()
                    .enumerate()
                    .filter(|(idx, s)| !site_done[*idx] && free_caps[s.index()] > 0)
                    .max_by_key(|(_, s)| free_caps[s.index()])
                else {
                    break;
                };
                site_done[slot] = true;

                // Packing affinity starts from the processes already in
                // this site (constrained ones).
                affinity.iter_mut().for_each(|a| *a = 0.0);
                for (q, a) in assignment.iter().enumerate() {
                    if *a == Some(site) {
                        for p in &partners[q] {
                            affinity[p.peer] += problem.edge_weight(p);
                        }
                    }
                }

                // Line 9: seed process.
                let seed_proc = match self.seeding {
                    Seeding::Heaviest => by_quantity.iter().copied().find(|&t| !selected[t]),
                    Seeding::Random => {
                        let free: Vec<usize> = (0..n).filter(|&t| !selected[t]).collect();
                        (!free.is_empty()).then(|| free[rng.random_range(0..free.len())])
                    }
                };
                let Some(t0) = seed_proc else { break 'outer };
                place(
                    t0,
                    site,
                    &mut assignment,
                    &mut selected,
                    &mut free_caps,
                    &mut remaining,
                );
                for p in &partners[t0] {
                    affinity[p.peer] += problem.edge_weight(p);
                }

                // Lines 12–14: fill the site with heaviest-affinity
                // processes. A lazy max-heap makes each pick O(log N)
                // instead of an O(N) scan — essential on the paper's
                // 8192-process simulations.
                heap.rebuild(&affinity, &selected);
                while free_caps[site.index()] > 0 && remaining > 0 {
                    let Some(t) = heap.pop_best(&affinity, &selected) else {
                        break;
                    };
                    place(
                        t,
                        site,
                        &mut assignment,
                        &mut selected,
                        &mut free_caps,
                        &mut remaining,
                    );
                    for p in &partners[t] {
                        if !selected[p.peer] {
                            affinity[p.peer] += problem.edge_weight(p);
                            heap.push(p.peer, affinity[p.peer]);
                        }
                    }
                }
            }
        }

        debug_assert_eq!(remaining, 0, "capacity checked at problem construction");
        Mapping::new(
            assignment
                .into_iter()
                .map(|a| a.expect("all processes placed"))
                .collect(),
        )
    }
}

/// How many of the cheapest orders the hill-climb polishes (κ = 4 ⇒
/// all 24; larger κ keeps refinement bounded).
pub(crate) const REFINE_TOP: usize = 24;

/// Lazy max-heap over non-negative affinities with lowest-index
/// tie-breaking (the same pick the paper's linear argmax makes, in
/// `O(log N)`). Stale entries — left behind whenever an affinity grows —
/// are discarded on pop by comparing against the live affinity value.
pub(crate) struct AffinityHeap {
    heap: std::collections::BinaryHeap<(u64, std::cmp::Reverse<usize>)>,
}

impl AffinityHeap {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Self {
            heap: std::collections::BinaryHeap::with_capacity(2 * n),
        }
    }

    /// Non-negative floats compare like their bit patterns.
    #[inline]
    fn key(a: f64) -> u64 {
        debug_assert!(a >= 0.0, "affinities are sums of non-negative weights");
        a.to_bits()
    }

    /// Reset to one entry per unselected process.
    pub(crate) fn rebuild(&mut self, affinity: &[f64], selected: &[bool]) {
        self.heap.clear();
        for (t, (&a, &sel)) in affinity.iter().zip(selected).enumerate() {
            if !sel {
                self.heap.push((Self::key(a), std::cmp::Reverse(t)));
            }
        }
    }

    /// Record that `t`'s affinity grew to `a`.
    #[inline]
    pub(crate) fn push(&mut self, t: usize, a: f64) {
        self.heap.push((Self::key(a), std::cmp::Reverse(t)));
    }

    /// Highest-affinity unselected process, or `None` when exhausted.
    pub(crate) fn pop_best(&mut self, affinity: &[f64], selected: &[bool]) -> Option<usize> {
        self.pop_where(affinity, |t| !selected[t])
    }

    /// Highest-affinity process satisfying `valid` (used by the
    /// multi-site variant to enforce allowed sets).
    pub(crate) fn pop_where(
        &mut self,
        affinity: &[f64],
        valid: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        while let Some((k, std::cmp::Reverse(t))) = self.heap.pop() {
            if affinity[t].to_bits() != k {
                continue; // stale: a newer entry carries the live value
            }
            if valid(t) {
                return Some(t);
            }
            // Valid key but filtered out (e.g. site not allowed): the
            // entry must come back for the next site, so re-queueing is
            // the caller's job via rebuild(); here we just drop it for
            // this site's fill.
        }
        None
    }
}

fn place(
    t: usize,
    site: SiteId,
    assignment: &mut [Option<SiteId>],
    selected: &mut [bool],
    free_caps: &mut [usize],
    remaining: &mut usize,
) {
    assignment[t] = Some(site);
    selected[t] = true;
    free_caps[site.index()] -= 1;
    *remaining -= 1;
}

impl Mapper for GeoMapper {
    fn name(&self) -> &'static str {
        "Geo-distributed"
    }

    fn map(&self, problem: &MappingProblem) -> Mapping {
        let metrics = self.metrics.scoped(self.name());
        let trace = &self.trace;
        let mapper_track = if trace.enabled() {
            trace.track("search", self.name())
        } else {
            TrackId::DISABLED
        };
        let tscope = TraceScope::new(trace, mapper_track);
        tscope.span_begin("grouping");
        let groups = metrics.timed("phase.grouping", || {
            group_sites(problem.network(), self.kappa, self.seed)
        });
        tscope.span_end("grouping");
        let orders = self.orders(groups.len());
        metrics.counter("search.groups", groups.len() as u64);
        metrics.counter("search.orders_evaluated", orders.len() as u64);

        // Global heaviest-communication ordering (line 9's key), shared
        // by all orders.
        let pattern = problem.pattern();
        let mut by_quantity: Vec<usize> = (0..problem.num_processes()).collect();
        let quantities: Vec<f64> = {
            // comm_quantity(i) via the cached partner lists, with message
            // counts weighed at their latency-equivalent bytes.
            problem
                .partners()
                .iter()
                .map(|ps| ps.iter().map(|p| problem.edge_weight(p)).sum::<f64>())
                .collect()
        };
        debug_assert_eq!(quantities.len(), pattern.n());
        by_quantity.sort_by(|&a, &b| quantities[b].total_cmp(&quantities[a]).then(a.cmp(&b)));

        let constraints = problem.constraints();
        // One flat table build serves the whole order search: ranking all
        // κ! candidate packings and every refinement sweep below.
        let tables = CostTables::build(problem, self.cost_model);
        // Packing time is accumulated across worker threads (CPU seconds,
        // not wall) and only when metrics are on — the disabled path
        // never reads the clock.
        let packing_nanos = std::sync::atomic::AtomicU64::new(0);
        let evaluate = |order: &Vec<usize>| {
            let m = if metrics.enabled() {
                let t0 = std::time::Instant::now();
                let m = self.map_order(problem, &groups, order, &by_quantity);
                packing_nanos.fetch_add(
                    t0.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                m
            } else {
                self.map_order(problem, &groups, order, &by_quantity)
            };
            let c = tables.total(m.as_slice());
            (c, m)
        };

        let search_t0 = metrics.enabled().then(std::time::Instant::now);
        tscope.span_begin("order_search");
        let mut ranked: Vec<(usize, f64, Mapping)> = if self.parallel {
            orders
                .par_iter()
                .enumerate()
                .map(|(idx, o)| {
                    let (c, m) = evaluate(o);
                    (idx, c, m)
                })
                .collect()
        } else {
            orders
                .iter()
                .enumerate()
                .map(|(idx, o)| {
                    let (c, m) = evaluate(o);
                    (idx, c, m)
                })
                .collect()
        };
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        tscope.span_end("order_search");
        if let Some(t0) = search_t0 {
            metrics.timing("phase.order_search", t0.elapsed().as_secs_f64());
            metrics.timing(
                "phase.packing",
                packing_nanos.load(std::sync::atomic::Ordering::Relaxed) as f64 * 1e-9,
            );
        }

        if !self.refine {
            return ranked.into_iter().next().expect("at least one order").2;
        }
        // Polish only the few cheapest orders: the hill-climb gets a
        // handful of good multi-start seeds at a fraction of the cost of
        // refining all κ! packings.
        let movable = |i: usize| constraints.pin_of(i).is_none();
        let polish = |(idx, _, mut m): (usize, f64, Mapping)| {
            // One trace track per polished order: the polishes run under
            // rayon, and interleaved spans on a shared track would break
            // Chrome's begin/end pairing.
            let scope = if trace.enabled() {
                TraceScope::new(
                    trace,
                    trace.track("search", &format!("{} refine[{idx}]", self.name())),
                )
            } else {
                TraceScope::off()
            };
            let stats = polish_with_tables_traced(
                &tables,
                self.evaluation,
                &mut m,
                50,
                &movable,
                &|_, _| true,
                scope,
            );
            (idx, tables.total(m.as_slice()), m, stats)
        };
        let refine_t0 = metrics.enabled().then(std::time::Instant::now);
        tscope.span_begin("refinement");
        let top = ranked.into_iter().take(REFINE_TOP);
        let polished: Vec<(usize, f64, Mapping, SearchStats)> = if self.parallel {
            top.collect::<Vec<_>>()
                .into_par_iter()
                .map(polish)
                .collect()
        } else {
            top.map(polish).collect()
        };
        tscope.span_end("refinement");
        if metrics.enabled() {
            if let Some(t0) = refine_t0 {
                metrics.timing("phase.refinement", t0.elapsed().as_secs_f64());
            }
            // Each polished order is one multi-start of the hill-climb.
            let mut total = SearchStats {
                restarts: polished.len() as u64,
                ..SearchStats::default()
            };
            for (_, _, _, s) in &polished {
                total.absorb(*s);
            }
            total.emit(&metrics);
        }
        polished
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .expect("at least one order")
            .2
    }
}

/// All permutations of `0..k` (Heap's algorithm), in a deterministic
/// order starting with the identity.
///
/// # Panics
/// Panics for `k > 8` — the grouping optimization exists precisely so κ
/// stays small; 8! = 40320 orders is already far beyond the paper's
/// κ ≤ 5.
pub fn permutations(k: usize) -> Vec<Vec<usize>> {
    assert!(k <= 8, "refusing to enumerate {k}! orders; reduce kappa");
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut result = Vec::with_capacity((1..=k).product());
    let mut a: Vec<usize> = (0..k).collect();
    let mut c = vec![0usize; k];
    result.push(a.clone());
    let mut i = 0;
    while i < k {
        if c[i] < i {
            if i % 2 == 0 {
                a.swap(0, i);
            } else {
                a.swap(c[i], i);
            }
            result.push(a.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintVector;
    use crate::cost::cost;
    use commgraph::apps::{AppKind, RandomGraph, Ring, Workload};
    use geonet::{presets, InstanceType};

    fn problem_with(n: usize, nodes_per_site: usize, seed: u64) -> MappingProblem {
        let net = presets::paper_ec2_network(nodes_per_site, InstanceType::M4Xlarge, seed);
        let pat = RandomGraph {
            n,
            degree: 4,
            max_bytes: 500_000,
            seed,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn affinity_heap_matches_linear_argmax() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 60;
        let mut affinity: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..10.0f64)).collect();
        let mut selected = vec![false; n];
        // Pre-select a few.
        for i in [3usize, 17, 41] {
            selected[i] = true;
        }
        let mut heap = AffinityHeap::with_capacity(n);
        heap.rebuild(&affinity, &selected);
        // Interleave pops with random affinity bumps, checking every pop
        // against the O(N) argmax (first index wins ties).
        for round in 0..40 {
            if round % 3 == 0 {
                let t = rng.random_range(0..n);
                if !selected[t] {
                    affinity[t] += rng.random_range(0.0..5.0f64);
                    heap.push(t, affinity[t]);
                }
            }
            let expect = (0..n)
                .filter(|&t| !selected[t])
                .max_by(|&a, &b| affinity[a].total_cmp(&affinity[b]).then(b.cmp(&a)));
            let got = heap.pop_best(&affinity, &selected);
            assert_eq!(got, expect, "round {round}");
            if let Some(t) = got {
                selected[t] = true;
            } else {
                break;
            }
        }
    }

    #[test]
    fn affinity_heap_exhausts_cleanly() {
        let affinity = vec![1.0, 2.0];
        let selected = vec![true, true];
        let mut heap = AffinityHeap::with_capacity(2);
        heap.rebuild(&affinity, &selected);
        assert_eq!(heap.pop_best(&affinity, &selected), None);
    }

    #[test]
    fn permutations_count_and_identity_first() {
        assert_eq!(permutations(0), vec![Vec::<usize>::new()]);
        assert_eq!(permutations(1), vec![vec![0]]);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4)[0], vec![0, 1, 2, 3]);
        let mut p5 = permutations(5);
        p5.sort();
        p5.dedup();
        assert_eq!(p5.len(), 120);
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn huge_kappa_rejected() {
        permutations(9);
    }

    #[test]
    fn produces_feasible_mappings() {
        let p = problem_with(32, 8, 3);
        let m = GeoMapper::default().map(&p);
        m.validate(&p).unwrap();
    }

    #[test]
    fn respects_constraints() {
        let p = problem_with(32, 8, 3);
        let c = ConstraintVector::random(32, 0.3, &p.capacities(), 11);
        let p = p.with_constraints(c.clone());
        let m = GeoMapper::default().map(&p);
        m.validate(&p).unwrap();
        assert!(c.satisfied_by(m.as_slice()));
    }

    #[test]
    fn full_constraint_ratio_leaves_no_freedom() {
        let p = problem_with(16, 4, 5);
        let c = ConstraintVector::random(16, 1.0, &p.capacities(), 2);
        let p = p.with_constraints(c.clone());
        let m = GeoMapper::default().map(&p);
        for i in 0..16 {
            assert_eq!(Some(m.site_of(i)), c.pin_of(i));
        }
    }

    #[test]
    fn beats_contiguous_blocks_on_a_ring() {
        // A ring mapped in contiguous blocks is already decent; Geo must
        // be at least as good and never worse.
        let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1);
        let pat = Ring {
            n: 16,
            iterations: 10,
            bytes: 1_000_000,
        }
        .pattern();
        let p = MappingProblem::unconstrained(pat, net);
        let geo = GeoMapper::default().map(&p);
        let blocks = Mapping::from((0..16).map(|i| i / 4).collect::<Vec<_>>());
        assert!(cost(&p, &geo) <= cost(&p, &blocks) * 1.001);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let p = problem_with(24, 6, 9);
        let a = GeoMapper {
            parallel: true,
            ..GeoMapper::default()
        }
        .map(&p);
        let b = GeoMapper {
            parallel: false,
            ..GeoMapper::default()
        }
        .map(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn exhaustive_order_search_never_loses_to_first_only() {
        for seed in 0..5 {
            let p = problem_with(32, 8, seed);
            let full = GeoMapper::default().map(&p);
            let first = GeoMapper {
                order_search: OrderSearch::FirstOnly,
                ..GeoMapper::default()
            }
            .map(&p);
            assert!(cost(&p, &full) <= cost(&p, &first) + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn heaviest_seeding_no_worse_than_random_on_average() {
        // Compares the paper's line-9 seeding rule against random seeding
        // on the *raw* Algorithm 1 packing (refinement off): the claim is
        // about the construction heuristic. With the hill-climb on, both
        // variants converge to near-identical local optima and random
        // seeding's more diverse multi-starts can edge ahead, which says
        // nothing about the seeding rule itself.
        let mut wins = 0;
        for seed in 0..10 {
            let p = problem_with(32, 8, seed);
            let h = GeoMapper {
                seed,
                refine: false,
                ..GeoMapper::default()
            }
            .map(&p);
            let r = GeoMapper {
                seeding: Seeding::Random,
                seed,
                refine: false,
                ..GeoMapper::default()
            }
            .map(&p);
            if cost(&p, &h) <= cost(&p, &r) + 1e-12 {
                wins += 1;
            }
        }
        assert!(wins >= 6, "heaviest seeding won only {wins}/10");
    }

    #[test]
    fn deterministic() {
        let p = problem_with(32, 8, 3);
        assert_eq!(GeoMapper::default().map(&p), GeoMapper::default().map(&p));
    }

    #[test]
    fn single_site_puts_everything_there() {
        use geonet::{AlphaBeta, GeoCoord, Site, SiteNetwork};
        let net = SiteNetwork::single_site(
            Site::new("only", GeoCoord::new(0.0, 0.0), 16),
            AlphaBeta::from_ms_mbps(0.3, 100.0),
        );
        let pat = Ring {
            n: 16,
            iterations: 1,
            bytes: 100,
        }
        .pattern();
        let p = MappingProblem::unconstrained(pat, net);
        let m = GeoMapper::default().map(&p);
        assert!(m.as_slice().iter().all(|s| s.index() == 0));
    }

    #[test]
    fn handles_real_workloads() {
        let p = {
            let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 1);
            let pat = AppKind::Lu.workload(64).pattern();
            MappingProblem::unconstrained(pat, net)
        };
        let m = GeoMapper::default().map(&p);
        m.validate(&p).unwrap();
        // LU should be mapped far better than round-robin.
        let rr = Mapping::from((0..64).map(|i| i % 4).collect::<Vec<_>>());
        assert!(cost(&p, &m) < cost(&p, &rr));
    }
}
