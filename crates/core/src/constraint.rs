//! Data-movement constraints (paper §3.1, "constraint vector" `C`).
//!
//! Regulations (data residency, privacy law) or sheer transfer cost pin
//! some processes to the site holding their data. The paper encodes this
//! as an `N`-vector `C` where `C_i = 0` means free and `C_i = j > 0` pins
//! process `i` to site `j`; we use `Option<SiteId>` instead of the
//! 0-sentinel. The evaluation's *constraint ratio* (§5.1) is the fraction
//! of pinned processes: 0 leaves the mapper free, 1 determines the whole
//! mapping.

use geonet::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The constraint vector `C`: per-process optional pinned site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintVector {
    pins: Vec<Option<SiteId>>,
}

impl ConstraintVector {
    /// No constraints on any of `n` processes (ratio 0).
    pub fn none(n: usize) -> Self {
        Self {
            pins: vec![None; n],
        }
    }

    /// Build from an explicit vector.
    pub fn from_pins(pins: Vec<Option<SiteId>>) -> Self {
        Self { pins }
    }

    /// Randomly pin `ratio·N` processes to sites, respecting `caps`
    /// (never pinning more processes to a site than it has nodes), as the
    /// paper does: "Given a constraint ratio, we randomly choose the
    /// constrained processes and their mapped sites."
    ///
    /// # Panics
    /// Panics if `ratio` is outside `[0, 1]` or the capacities cannot
    /// hold `ratio·N` processes.
    pub fn random(n: usize, ratio: f64, caps: &[usize], seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} outside [0,1]");
        let want = (ratio * n as f64).round() as usize;
        let total: usize = caps.iter().sum();
        assert!(
            total >= want,
            "capacities {total} cannot hold {want} pinned processes"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Choose which processes are pinned (Fisher–Yates prefix).
        let mut procs: Vec<usize> = (0..n).collect();
        for i in 0..want {
            let j = rng.random_range(i..n);
            procs.swap(i, j);
        }
        // Assign each pinned process a site with remaining room.
        let mut remaining = caps.to_vec();
        let mut pins = vec![None; n];
        for &p in &procs[..want] {
            loop {
                let s = rng.random_range(0..caps.len());
                if remaining[s] > 0 {
                    remaining[s] -= 1;
                    pins[p] = Some(SiteId(s));
                    break;
                }
            }
        }
        Self { pins }
    }

    /// Number of processes `N`.
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// True if there are zero processes.
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// The pin of process `i` (`None` = free).
    #[inline]
    pub fn pin_of(&self, i: usize) -> Option<SiteId> {
        self.pins[i]
    }

    /// Pin process `i` to `site`.
    pub fn pin(&mut self, i: usize, site: SiteId) {
        self.pins[i] = Some(site);
    }

    /// Release process `i`.
    pub fn unpin(&mut self, i: usize) {
        self.pins[i] = None;
    }

    /// Iterate over all pins.
    pub fn iter(&self) -> impl Iterator<Item = &Option<SiteId>> {
        self.pins.iter()
    }

    /// Number of pinned processes.
    pub fn num_pinned(&self) -> usize {
        self.pins.iter().filter(|p| p.is_some()).count()
    }

    /// The constraint ratio: pinned / N (0 if N = 0).
    pub fn ratio(&self) -> f64 {
        if self.pins.is_empty() {
            return 0.0;
        }
        self.num_pinned() as f64 / self.pins.len() as f64
    }

    /// Check a mapping against the constraints — Eq. 5's
    /// `(P − C) ∘ C = 0`: wherever `C` pins, `P` must equal it.
    pub fn satisfied_by(&self, mapping: &[SiteId]) -> bool {
        self.pins.len() == mapping.len()
            && self
                .pins
                .iter()
                .zip(mapping)
                .all(|(pin, &m)| pin.is_none_or(|p| p == m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_ratio_zero() {
        let c = ConstraintVector::none(10);
        assert_eq!(c.len(), 10);
        assert_eq!(c.num_pinned(), 0);
        assert_eq!(c.ratio(), 0.0);
    }

    #[test]
    fn pin_unpin_roundtrip() {
        let mut c = ConstraintVector::none(4);
        c.pin(2, SiteId(1));
        assert_eq!(c.pin_of(2), Some(SiteId(1)));
        assert_eq!(c.ratio(), 0.25);
        c.unpin(2);
        assert_eq!(c.pin_of(2), None);
    }

    #[test]
    fn random_hits_requested_ratio() {
        let caps = vec![16, 16, 16, 16];
        for ratio in [0.0, 0.2, 0.5, 1.0] {
            let c = ConstraintVector::random(64, ratio, &caps, 7);
            assert_eq!(
                c.num_pinned(),
                (ratio * 64.0).round() as usize,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn random_respects_capacities() {
        let caps = vec![2, 30];
        let c = ConstraintVector::random(32, 1.0, &caps, 3);
        let in_site0 = c.iter().flatten().filter(|s| s.index() == 0).count();
        assert!(in_site0 <= 2);
        assert_eq!(c.num_pinned(), 32);
    }

    #[test]
    fn random_is_deterministic() {
        let caps = vec![8, 8];
        let a = ConstraintVector::random(16, 0.5, &caps, 42);
        let b = ConstraintVector::random(16, 0.5, &caps, 42);
        assert_eq!(a, b);
        let c = ConstraintVector::random(16, 0.5, &caps, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn satisfaction_check() {
        let mut c = ConstraintVector::none(3);
        c.pin(1, SiteId(2));
        assert!(c.satisfied_by(&[SiteId(0), SiteId(2), SiteId(1)]));
        assert!(!c.satisfied_by(&[SiteId(0), SiteId(1), SiteId(2)]));
        assert!(!c.satisfied_by(&[SiteId(0)])); // wrong length
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_ratio_rejected() {
        ConstraintVector::random(4, 1.5, &[4], 0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn overfull_rejected() {
        ConstraintVector::random(10, 1.0, &[4], 0);
    }
}
