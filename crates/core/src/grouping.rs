//! The grouping optimization (paper §4.2).
//!
//! Enumerating all `M!` site orders explodes for large `M`; motivated by
//! Observation 2 (network performance tracks geographic distance), the
//! paper first clusters nearby sites into `κ` groups with K-means over
//! the sites' physical coordinates (Forgy initialisation, Euclidean
//! distance) and enumerates only the `κ!` group orders.

use geo_kmeans::{kmeans, KMeansConfig};
use geonet::{SiteId, SiteNetwork};

/// Cluster the sites of `net` into at most `kappa` groups by geographic
/// proximity. Returns non-empty groups of site ids; the union is exactly
/// the site set. `kappa` is clamped to `M`; `kappa == 0` is rejected.
///
/// K-means is restarted over a few seeds (derived from `seed`) and the
/// lowest-inertia clustering wins, keeping the grouping stable and
/// sensible even with unlucky Forgy draws.
pub fn group_sites(net: &SiteNetwork, kappa: usize, seed: u64) -> Vec<Vec<SiteId>> {
    assert!(kappa > 0, "kappa must be positive");
    let m = net.num_sites();
    if m == 0 {
        return Vec::new();
    }
    let points: Vec<Vec<f64>> = net
        .sites()
        .iter()
        .map(|s| s.coord.as_array().to_vec())
        .collect();
    let k = kappa.min(m);
    let best = (0..4)
        .map(|r| kmeans(&points, &KMeansConfig::forgy(k, seed.wrapping_add(r))))
        .min_by(|a, b| a.inertia.total_cmp(&b.inertia))
        .expect("at least one restart");
    best.groups()
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| g.into_iter().map(SiteId).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet::presets::{ec2_sites, paper_ec2_network};
    use geonet::synth::{SynthConfig, SynthNetworkBuilder};
    use geonet::InstanceType;

    fn global_net() -> SiteNetwork {
        let names: Vec<&str> = geonet::presets::EC2_REGIONS
            .iter()
            .map(|r| r.name)
            .collect();
        SynthNetworkBuilder::new(SynthConfig::default()).build(ec2_sites(&names, 4))
    }

    #[test]
    fn groups_partition_sites() {
        let net = global_net();
        let groups = group_sites(&net, 4, 1);
        let mut all: Vec<usize> = groups.iter().flatten().map(|s| s.index()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
        assert!(groups.len() <= 4);
        assert!(groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn geographically_close_regions_group_together() {
        let net = global_net();
        let groups = group_sites(&net, 4, 1);
        // us-east-1 (0), us-west-1 (1), us-west-2 (2) are one continent;
        // ap-southeast-1 (5) is Singapore. The two US-west regions must
        // land in the same group, and Singapore must not join the US
        // group that contains us-west-1.
        let find = |site: usize| {
            groups
                .iter()
                .position(|g| g.contains(&SiteId(site)))
                .unwrap()
        };
        assert_eq!(
            find(1),
            find(2),
            "us-west-1 and us-west-2 split: {groups:?}"
        );
        assert_ne!(
            find(1),
            find(5),
            "Singapore grouped with US west: {groups:?}"
        );
    }

    #[test]
    fn kappa_one_is_a_single_group() {
        let net = paper_ec2_network(4, InstanceType::M4Xlarge, 1);
        let groups = group_sites(&net, 1, 0);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }

    #[test]
    fn kappa_clamped_to_m() {
        let net = paper_ec2_network(4, InstanceType::M4Xlarge, 1);
        let groups = group_sites(&net, 10, 0);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        assert!(groups.len() <= 4);
    }

    #[test]
    fn deterministic_in_seed() {
        let net = global_net();
        assert_eq!(group_sites(&net, 3, 9), group_sites(&net, 3, 9));
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn zero_kappa_rejected() {
        group_sites(&paper_ec2_network(1, InstanceType::M4Xlarge, 1), 0, 0);
    }
}
