//! Multi-site data-movement constraints — the paper's stated extension.
//!
//! §3.1 limits itself to single-site pins and says: *"we only consider
//! the data movement constraint on individual sites and leave the
//! extension to multiple site constraints in our future work."* This
//! module is that extension: each process may carry an **allowed-site
//! set** (e.g. "any EU region" for GDPR data), generalizing both the
//! unconstrained case (all sites allowed) and the pinned case (a
//! singleton set).
//!
//! Feasibility is no longer a per-site counting argument — it is a
//! capacity-aware bipartite matching problem (Hall's condition over the
//! allowed sets), solved here with Kuhn's augmenting-path algorithm.
//! [`GeoMapperMulti`] runs Algorithm 1 with set-aware seeding/packing
//! and falls back to augmenting paths when a greedy placement would
//! strand a process.

use crate::delta::{polish_with_tables_traced, CostTables, SearchStats};
use crate::geo::{GeoMapper, Seeding};
use crate::grouping::group_sites;
use crate::mapping::Mapping;
use crate::problem::MappingProblem;
use geonet::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// Per-process allowed-site sets. `None` means "anywhere".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowedSites {
    allowed: Vec<Option<Vec<SiteId>>>,
}

impl AllowedSites {
    /// No restrictions on any of `n` processes.
    pub fn unrestricted(n: usize) -> Self {
        Self {
            allowed: vec![None; n],
        }
    }

    /// Build from explicit sets. Sets are deduplicated and sorted; an
    /// empty set is rejected (it can never be satisfied).
    ///
    /// # Panics
    /// Panics on an explicitly empty allowed set.
    pub fn new(allowed: Vec<Option<Vec<SiteId>>>) -> Self {
        let allowed = allowed
            .into_iter()
            .enumerate()
            .map(|(i, set)| {
                set.map(|mut s| {
                    s.sort_unstable();
                    s.dedup();
                    assert!(!s.is_empty(), "process {i} has an empty allowed set");
                    s
                })
            })
            .collect();
        Self { allowed }
    }

    /// Restrict process `i` to `sites`.
    pub fn restrict(&mut self, i: usize, sites: &[SiteId]) {
        assert!(!sites.is_empty(), "allowed set must be non-empty");
        let mut s = sites.to_vec();
        s.sort_unstable();
        s.dedup();
        self.allowed[i] = Some(s);
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// True when there are no processes.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }

    /// Is `site` allowed for process `i`?
    #[inline]
    pub fn permits(&self, i: usize, site: SiteId) -> bool {
        match &self.allowed[i] {
            None => true,
            Some(s) => s.binary_search(&site).is_ok(),
        }
    }

    /// The explicit set of process `i` (`None` = all sites).
    pub fn set_of(&self, i: usize) -> Option<&[SiteId]> {
        self.allowed[i].as_deref()
    }

    /// Fraction of processes with a restriction.
    pub fn restricted_ratio(&self) -> f64 {
        if self.allowed.is_empty() {
            return 0.0;
        }
        self.allowed.iter().filter(|a| a.is_some()).count() as f64 / self.allowed.len() as f64
    }

    /// Does `mapping` satisfy every allowed set?
    pub fn satisfied_by(&self, mapping: &[SiteId]) -> bool {
        mapping.len() == self.allowed.len()
            && mapping.iter().enumerate().all(|(i, &s)| self.permits(i, s))
    }

    /// Check feasibility against site capacities via matching: returns a
    /// witness assignment if one exists.
    pub fn feasible_assignment(&self, capacities: &[usize]) -> Option<Vec<SiteId>> {
        Matcher::new(self, capacities).solve()
    }
}

/// Kuhn's algorithm over processes × sites with site capacities.
struct Matcher<'a> {
    allowed: &'a AllowedSites,
    caps: Vec<usize>,
    /// assignment[i] = site of process i (usize::MAX = unassigned)
    assignment: Vec<usize>,
    /// used[j] = processes currently on site j
    used: Vec<Vec<usize>>,
}

impl<'a> Matcher<'a> {
    fn new(allowed: &'a AllowedSites, capacities: &[usize]) -> Self {
        Self {
            allowed,
            caps: capacities.to_vec(),
            assignment: vec![usize::MAX; allowed.len()],
            used: vec![Vec::new(); capacities.len()],
        }
    }

    fn candidate_sites(&self, i: usize) -> Vec<usize> {
        match self.allowed.set_of(i) {
            Some(s) => s.iter().map(|x| x.index()).collect(),
            None => (0..self.caps.len()).collect(),
        }
    }

    /// Try to place process `i`, evicting/augmenting if needed.
    fn augment(&mut self, i: usize, visited_sites: &mut [bool]) -> bool {
        for j in self.candidate_sites(i) {
            if visited_sites[j] {
                continue;
            }
            visited_sites[j] = true;
            if self.used[j].len() < self.caps[j] {
                self.place(i, j);
                return true;
            }
            // Try to relocate one current occupant of j elsewhere.
            for k in 0..self.used[j].len() {
                let occupant = self.used[j][k];
                if self.augment(occupant, visited_sites) {
                    // occupant moved; j freed one slot (remove handled in
                    // place() via retain below — occupant may have been
                    // re-placed on j? no: j is visited).
                    self.used[j].retain(|&p| p != occupant || self.assignment[p] == j);
                    if self.used[j].len() < self.caps[j] {
                        self.place(i, j);
                        return true;
                    }
                }
            }
        }
        false
    }

    fn place(&mut self, i: usize, j: usize) {
        // Remove i from its previous site, if any.
        let prev = self.assignment[i];
        if prev != usize::MAX {
            self.used[prev].retain(|&p| p != i);
        }
        self.assignment[i] = j;
        self.used[j].push(i);
    }

    fn solve(mut self) -> Option<Vec<SiteId>> {
        let n = self.allowed.len();
        // Most-constrained processes first (smallest allowed sets).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| self.allowed.set_of(i).map_or(usize::MAX, <[SiteId]>::len));
        for i in order {
            let mut visited = vec![false; self.caps.len()];
            if !self.augment(i, &mut visited) {
                return None;
            }
        }
        Some(self.assignment.into_iter().map(SiteId).collect())
    }
}

/// Algorithm 1 generalized to allowed-site sets.
///
/// The greedy packing only offers a site to processes whose sets permit
/// it; if the greedy pass strands processes (greedy choices can violate
/// Hall's condition even on feasible instances), the stranded tail is
/// placed by augmenting paths starting from the greedy partial
/// assignment, so the mapper succeeds on **every feasible instance**.
#[derive(Debug, Clone)]
pub struct GeoMapperMulti {
    /// The underlying Geo-distributed configuration (κ, seed, order
    /// search, parallelism, objective).
    pub base: GeoMapper,
    /// The allowed-site sets.
    pub allowed: AllowedSites,
}

impl GeoMapperMulti {
    /// Create with the paper-default base configuration.
    pub fn new(allowed: AllowedSites) -> Self {
        Self {
            base: GeoMapper::default(),
            allowed,
        }
    }

    /// Map `problem` honouring the allowed sets (single-site constraints
    /// in `problem` are honoured too — a pin is an implicit singleton
    /// set).
    ///
    /// # Panics
    /// Panics if the instance is infeasible (no assignment satisfies the
    /// sets within capacities) or the set vector length mismatches.
    pub fn map(&self, problem: &MappingProblem) -> Mapping {
        let n = problem.num_processes();
        assert_eq!(
            self.allowed.len(),
            n,
            "allowed sets must cover every process"
        );
        // Merge single-site pins into the allowed sets.
        let mut allowed = self.allowed.clone();
        for i in 0..n {
            if let Some(pin) = problem.constraints().pin_of(i) {
                assert!(
                    allowed.permits(i, pin),
                    "process {i} pinned to {pin} outside its allowed set"
                );
                allowed.restrict(i, &[pin]);
            }
        }
        let caps = problem.capacities();
        assert!(
            allowed.feasible_assignment(&caps).is_some(),
            "infeasible multi-site constraint instance"
        );

        // Observability mirrors GeoMapper::map, under its own scope so a
        // pipeline running both stays distinguishable.
        let metrics = self.base.metrics.scoped("Geo-multi");
        let groups = metrics.timed("phase.grouping", || {
            group_sites(problem.network(), self.base.kappa, self.base.seed)
        });
        let orders = crate::geo::permutations(groups.len());
        metrics.counter("search.groups", groups.len() as u64);
        metrics.counter("search.orders_evaluated", orders.len() as u64);
        let quantities: Vec<f64> = problem
            .partners()
            .iter()
            .map(|ps| ps.iter().map(|p| problem.edge_weight(p)).sum::<f64>())
            .collect();
        let mut by_quantity: Vec<usize> = (0..n).collect();
        by_quantity.sort_by(|&a, &b| quantities[b].total_cmp(&quantities[a]).then(a.cmp(&b)));

        // Mirror GeoMapper::map exactly: rank all orders unrefined, then
        // polish the cheapest few (the order search doubles as a
        // multi-start for the hill-climb).
        let tables = CostTables::build(problem, self.base.cost_model);
        let evaluate = |idx: usize, order: &Vec<usize>| {
            let m = self.map_order(problem, &allowed, &groups, order, &by_quantity);
            let c = tables.total(m.as_slice());
            (idx, c, m)
        };
        let search_t0 = metrics.enabled().then(std::time::Instant::now);
        let mut ranked: Vec<(usize, f64, Mapping)> = if self.base.parallel {
            orders
                .par_iter()
                .enumerate()
                .map(|(i, o)| evaluate(i, o))
                .collect()
        } else {
            orders
                .iter()
                .enumerate()
                .map(|(i, o)| evaluate(i, o))
                .collect()
        };
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if let Some(t0) = search_t0 {
            metrics.timing("phase.order_search", t0.elapsed().as_secs_f64());
        }
        if !self.base.refine {
            return ranked.into_iter().next().expect("at least one order").2;
        }
        let trace = &self.base.trace;
        let polish = |(idx, _, mut m): (usize, f64, Mapping)| {
            let permits = |i: usize, s: SiteId| allowed.permits(i, s);
            // One track per polished order, as in GeoMapper::map.
            let scope = if trace.enabled() {
                crate::trace::TraceScope::new(
                    trace,
                    trace.track("search", &format!("Geo-multi refine[{idx}]")),
                )
            } else {
                crate::trace::TraceScope::off()
            };
            let stats = polish_with_tables_traced(
                &tables,
                self.base.evaluation,
                &mut m,
                50,
                &|_| true,
                &permits,
                scope,
            );
            (idx, tables.total(m.as_slice()), m, stats)
        };
        let refine_t0 = metrics.enabled().then(std::time::Instant::now);
        let top = ranked.into_iter().take(crate::geo::REFINE_TOP);
        let polished: Vec<(usize, f64, Mapping, SearchStats)> = if self.base.parallel {
            top.collect::<Vec<_>>()
                .into_par_iter()
                .map(polish)
                .collect()
        } else {
            top.map(polish).collect()
        };
        if metrics.enabled() {
            if let Some(t0) = refine_t0 {
                metrics.timing("phase.refinement", t0.elapsed().as_secs_f64());
            }
            let mut total = SearchStats {
                restarts: polished.len() as u64,
                ..SearchStats::default()
            };
            for (_, _, _, s) in &polished {
                total.absorb(*s);
            }
            total.emit(&metrics);
        }
        polished
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .expect("at least one order")
            .2
    }

    fn map_order(
        &self,
        problem: &MappingProblem,
        allowed: &AllowedSites,
        groups: &[Vec<SiteId>],
        order: &[usize],
        by_quantity: &[usize],
    ) -> Mapping {
        let n = problem.num_processes();
        let partners = problem.partners();
        let mut assignment: Vec<Option<SiteId>> = vec![None; n];
        let mut selected = vec![false; n];
        let mut free_caps = problem.capacities();
        let mut remaining = n;
        let mut rng = StdRng::seed_from_u64(self.base.seed);
        let mut affinity = vec![0.0f64; n];
        let mut heap = crate::geo::AffinityHeap::with_capacity(n);

        'outer: for &gi in order {
            let group = &groups[gi];
            let mut site_done = vec![false; group.len()];
            for _ in 0..group.len() {
                if remaining == 0 {
                    break 'outer;
                }
                let Some((slot, &site)) = group
                    .iter()
                    .enumerate()
                    .filter(|(idx, s)| !site_done[*idx] && free_caps[s.index()] > 0)
                    .max_by_key(|(_, s)| free_caps[s.index()])
                else {
                    break;
                };
                site_done[slot] = true;

                affinity.iter_mut().for_each(|a| *a = 0.0);
                let eligible =
                    |t: usize, selected: &[bool]| !selected[t] && allowed.permits(t, site);

                let seed_proc = match self.base.seeding {
                    Seeding::Heaviest => by_quantity
                        .iter()
                        .copied()
                        .find(|&t| eligible(t, &selected)),
                    Seeding::Random => {
                        let free: Vec<usize> = (0..n).filter(|&t| eligible(t, &selected)).collect();
                        (!free.is_empty()).then(|| free[rng.random_range(0..free.len())])
                    }
                };
                let Some(t0) = seed_proc else { continue };
                assignment[t0] = Some(site);
                selected[t0] = true;
                free_caps[site.index()] -= 1;
                remaining -= 1;
                for p in &partners[t0] {
                    affinity[p.peer] += problem.edge_weight(p);
                }

                heap.rebuild(&affinity, &selected);
                while free_caps[site.index()] > 0 && remaining > 0 {
                    let Some(t) = heap.pop_where(&affinity, |t| eligible(t, &selected)) else {
                        break;
                    };
                    assignment[t] = Some(site);
                    selected[t] = true;
                    free_caps[site.index()] -= 1;
                    remaining -= 1;
                    for p in &partners[t] {
                        if !selected[p.peer] {
                            affinity[p.peer] += problem.edge_weight(p);
                            heap.push(p.peer, affinity[p.peer]);
                        }
                    }
                }
            }
        }

        if remaining > 0 {
            // Greedy stranded some processes; finish with augmenting
            // paths seeded from the partial assignment.
            repair(&mut assignment, allowed, &problem.capacities());
        }
        Mapping::new(
            assignment
                .into_iter()
                .map(|a| a.expect("repair completes"))
                .collect(),
        )
    }
}

/// Complete a partial assignment via augmenting paths. The instance was
/// verified feasible up front, so this always succeeds.
fn repair(assignment: &mut [Option<SiteId>], allowed: &AllowedSites, caps: &[usize]) {
    let mut matcher = Matcher::new(allowed, caps);
    for (i, a) in assignment.iter().enumerate() {
        if let Some(site) = a {
            matcher.place(i, site.index());
        }
    }
    let unplaced: Vec<usize> = (0..assignment.len())
        .filter(|&i| assignment[i].is_none())
        .collect();
    for i in unplaced {
        let mut visited = vec![false; caps.len()];
        let ok = matcher.augment(i, &mut visited);
        assert!(ok, "repair failed on a feasible instance (process {i})");
    }
    for (i, a) in assignment.iter_mut().enumerate() {
        *a = Some(SiteId(matcher.assignment[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost;
    use crate::Mapper as _;
    use commgraph::apps::{RandomGraph, Workload};
    use geonet::{presets, InstanceType};

    fn problem(n: usize, nodes: usize, seed: u64) -> MappingProblem {
        let net = presets::paper_ec2_network(nodes, InstanceType::M4Xlarge, seed);
        let pat = RandomGraph {
            n,
            degree: 3,
            max_bytes: 400_000,
            seed,
        }
        .pattern();
        MappingProblem::unconstrained(pat, net)
    }

    #[test]
    fn unrestricted_behaves_like_geo() {
        let p = problem(16, 4, 1);
        let multi = GeoMapperMulti::new(AllowedSites::unrestricted(16)).map(&p);
        let plain = GeoMapper::default().map(&p);
        // Same algorithm, same config: identical mapping.
        assert_eq!(multi, plain);
    }

    #[test]
    fn allowed_sets_are_honoured() {
        let p = problem(16, 4, 2);
        let mut allowed = AllowedSites::unrestricted(16);
        // First four processes: EU-ish subset {2, 3}.
        for i in 0..4 {
            allowed.restrict(i, &[SiteId(2), SiteId(3)]);
        }
        let m = GeoMapperMulti::new(allowed.clone()).map(&p);
        m.validate(&p).unwrap();
        assert!(allowed.satisfied_by(m.as_slice()));
        for i in 0..4 {
            assert!(m.site_of(i) == SiteId(2) || m.site_of(i) == SiteId(3));
        }
    }

    #[test]
    fn singleton_sets_equal_pins() {
        let p = problem(8, 2, 3);
        let mut allowed = AllowedSites::unrestricted(8);
        allowed.restrict(5, &[SiteId(1)]);
        let m = GeoMapperMulti::new(allowed).map(&p);
        assert_eq!(m.site_of(5), SiteId(1));
    }

    #[test]
    fn tight_instance_is_fully_packed() {
        // Capacity exactly matches and every process is restricted to
        // two sites; Hall's condition is tight.
        let p = problem(8, 2, 4);
        let mut allowed = AllowedSites::unrestricted(8);
        for i in 0..8 {
            let a = i % 4;
            allowed.restrict(i, &[SiteId(a), SiteId((a + 1) % 4)]);
        }
        let m = GeoMapperMulti::new(allowed.clone()).map(&p);
        m.validate(&p).unwrap();
        assert!(allowed.satisfied_by(m.as_slice()));
    }

    #[test]
    fn matcher_detects_infeasibility() {
        // 3 processes all restricted to a site with capacity 2.
        let mut allowed = AllowedSites::unrestricted(3);
        for i in 0..3 {
            allowed.restrict(i, &[SiteId(0)]);
        }
        assert!(allowed.feasible_assignment(&[2, 5]).is_none());
        assert!(allowed.feasible_assignment(&[3, 5]).is_some());
    }

    #[test]
    fn matcher_uses_augmenting_paths() {
        // p0 can go anywhere, p1 only site 0; capacity 1 each. A naive
        // greedy placing p0 on site 0 first must evict it.
        let mut allowed = AllowedSites::unrestricted(2);
        allowed.restrict(1, &[SiteId(0)]);
        let witness = allowed.feasible_assignment(&[1, 1]).expect("feasible");
        assert_eq!(witness[1], SiteId(0));
        assert_eq!(witness[0], SiteId(1));
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_instance_panics_in_map() {
        let p = problem(8, 2, 5);
        let mut allowed = AllowedSites::unrestricted(8);
        for i in 0..4 {
            allowed.restrict(i, &[SiteId(0)]); // capacity 2 < 4
        }
        GeoMapperMulti::new(allowed).map(&p);
    }

    #[test]
    #[should_panic(expected = "empty allowed set")]
    fn empty_set_rejected() {
        AllowedSites::new(vec![Some(vec![])]);
    }

    #[test]
    fn restriction_costs_performance_monotonically() {
        // More freedom can only help the objective.
        let p = problem(16, 4, 6);
        let free = cost(
            &p,
            &GeoMapperMulti::new(AllowedSites::unrestricted(16)).map(&p),
        );
        let mut allowed = AllowedSites::unrestricted(16);
        for i in 0..8 {
            allowed.restrict(i, &[SiteId(i % 4)]);
        }
        let tight = cost(&p, &GeoMapperMulti::new(allowed).map(&p));
        assert!(free <= tight + 1e-9, "freedom hurt: {free} vs {tight}");
    }

    #[test]
    fn restricted_ratio() {
        let mut a = AllowedSites::unrestricted(4);
        assert_eq!(a.restricted_ratio(), 0.0);
        a.restrict(0, &[SiteId(1)]);
        a.restrict(3, &[SiteId(0), SiteId(2)]);
        assert_eq!(a.restricted_ratio(), 0.5);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_feasible_instances_always_mapped(seed in 0u64..500) {
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = problem(12, 3, seed);
            // Random sets of size 2-4 (out of 4 sites) for a random subset
            // of processes; reject infeasible draws.
            let mut allowed = AllowedSites::unrestricted(12);
            for i in 0..12 {
                if rng.random_range(0..2) == 0 {
                    let size = rng.random_range(2..=4usize);
                    let start = rng.random_range(0..4usize);
                    let set: Vec<SiteId> = (0..size).map(|k| SiteId((start + k) % 4)).collect();
                    allowed.restrict(i, &set);
                }
            }
            proptest::prop_assume!(allowed.feasible_assignment(&p.capacities()).is_some());
            let m = GeoMapperMulti::new(allowed.clone()).map(&p);
            proptest::prop_assert!(m.validate(&p).is_ok());
            proptest::prop_assert!(allowed.satisfied_by(m.as_slice()));
        }
    }
}
