//! Property tests of the link model over randomized traffic schedules.

use geonet::{presets, InstanceType, SiteId};
use proptest::prelude::*;
use simnet::{LinkConfig, LinkState};

fn net() -> geonet::SiteNetwork {
    presets::paper_ec2_network(4, InstanceType::M4Xlarge, 11)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arrivals on one shared directed link are FIFO regardless of the
    /// (nondecreasing) departure schedule and message sizes.
    #[test]
    fn prop_shared_link_is_fifo(
        msgs in prop::collection::vec((1u64..10_000_000, 0.0f64..0.01), 1..40),
    ) {
        let net = net();
        let mut links = LinkState::new(net, LinkConfig::default());
        let mut t = 0.0;
        let mut last_arrival = 0.0;
        for (bytes, gap) in msgs {
            t += gap;
            let arrival = links.send(SiteId(0), SiteId(3), bytes, t);
            prop_assert!(arrival >= last_arrival, "overtaking: {arrival} < {last_arrival}");
            prop_assert!(arrival > t, "arrival not after departure");
            last_arrival = arrival;
        }
    }

    /// Total busy time equals total bytes over bandwidth, exactly,
    /// independent of schedule.
    #[test]
    fn prop_busy_time_is_schedule_independent(
        msgs in prop::collection::vec((1u64..1_000_000, 0.0f64..0.5), 1..30),
    ) {
        let net = net();
        let bw = net.bandwidth(SiteId(1), SiteId(2));
        let mut links = LinkState::new(net, LinkConfig::default());
        let mut t = 0.0;
        let mut total_bytes = 0u64;
        for (bytes, gap) in &msgs {
            t += gap;
            links.send(SiteId(1), SiteId(2), *bytes, t);
            total_bytes += bytes;
        }
        let busy = links.stats().busy_time(SiteId(1), SiteId(2));
        let expect = total_bytes as f64 / bw;
        prop_assert!((busy - expect).abs() < 1e-9 * expect.max(1.0));
    }

    /// Contention can only delay: with the same schedule, shared-WAN
    /// arrivals are >= unshared arrivals, message by message.
    #[test]
    fn prop_contention_only_delays(
        msgs in prop::collection::vec((1u64..4_000_000, 0.0f64..0.05, 0usize..3), 1..30),
    ) {
        let net = net();
        let mut shared = LinkState::new(net.clone(), LinkConfig::default());
        let unshared_cfg = LinkConfig { shared_wan: false, shared_intra: false, shared_egress: false };
        let mut unshared = LinkState::new(net, unshared_cfg);
        let mut t = 0.0;
        for (bytes, gap, dst) in msgs {
            t += gap;
            let to = SiteId(1 + dst); // sites 1..3, from site 0
            let a_shared = shared.send(SiteId(0), to, bytes, t);
            let a_unshared = unshared.send(SiteId(0), to, bytes, t);
            prop_assert!(a_shared >= a_unshared - 1e-12);
        }
    }

    /// Egress sharing delays at least as much as per-pair sharing alone.
    #[test]
    fn prop_egress_dominates_pairwise(
        msgs in prop::collection::vec((1u64..4_000_000, 0.0f64..0.05, 0usize..3), 1..30),
    ) {
        let net = net();
        let mut pairwise = LinkState::new(net.clone(), LinkConfig::default());
        let egress_cfg = LinkConfig { shared_egress: true, ..LinkConfig::default() };
        let mut egress = LinkState::new(net, egress_cfg);
        let mut t = 0.0;
        for (bytes, gap, dst) in msgs {
            t += gap;
            let to = SiteId(1 + dst);
            let a_pair = pairwise.send(SiteId(0), to, bytes, t);
            let a_egr = egress.send(SiteId(0), to, bytes, t);
            prop_assert!(a_egr >= a_pair - 1e-12);
        }
    }
}
