//! Scenario tests of the link model under realistic traffic shapes.

use geonet::{presets, InstanceType, SiteId};
use simnet::{LinkConfig, LinkState};

fn net() -> geonet::SiteNetwork {
    presets::paper_ec2_network(4, InstanceType::M4Xlarge, 7)
}

#[test]
fn burst_queueing_grows_linearly() {
    // k back-to-back 8 MB messages on one WAN link: the i-th arrival is
    // i serialization slots after the first start.
    let net = net();
    let (a, b) = (SiteId(0), SiteId(2));
    let ser = net.alpha_beta(a, b).serialization_time(8_000_000);
    let lat = net.alpha_beta(a, b).latency_s;
    let mut links = LinkState::new(net, LinkConfig::default());
    for i in 1..=10u32 {
        let arrival = links.send(a, b, 8_000_000, 0.0);
        let expect = i as f64 * ser + lat;
        assert!(
            (arrival - expect).abs() < 1e-9,
            "message {i}: {arrival} vs {expect}"
        );
    }
}

#[test]
fn queueing_drains_when_departures_are_spaced() {
    // If messages depart slower than the serialization rate, no queueing
    // at all.
    let net = net();
    let (a, b) = (SiteId(1), SiteId(3));
    let ab = net.alpha_beta(a, b);
    let ser = ab.serialization_time(1_000_000);
    let mut links = LinkState::new(net, LinkConfig::default());
    for i in 0..5 {
        let depart = i as f64 * (ser * 2.0);
        let arrival = links.send(a, b, 1_000_000, depart);
        assert!(
            (arrival - (depart + ser + ab.latency_s)).abs() < 1e-9,
            "message {i} queued"
        );
    }
    let s = links.stats();
    assert_eq!(s.queue_wait(a, b), 0.0);
}

#[test]
fn distinct_site_pairs_are_independent() {
    let net = net();
    let mut links = LinkState::new(net.clone(), LinkConfig::default());
    // Saturate 0->1.
    for _ in 0..20 {
        links.send(SiteId(0), SiteId(1), 8_000_000, 0.0);
    }
    // 0->2 and 2->1 are unaffected.
    let t02 = links.send(SiteId(0), SiteId(2), 1_000, 0.0);
    let t21 = links.send(SiteId(2), SiteId(1), 1_000, 0.0);
    assert!((t02 - net.alpha_beta(SiteId(0), SiteId(2)).transfer_time(1_000)).abs() < 1e-12);
    assert!((t21 - net.alpha_beta(SiteId(2), SiteId(1)).transfer_time(1_000)).abs() < 1e-12);
}

#[test]
fn shared_intra_option_serializes_local_traffic() {
    let net = net();
    let cfg = LinkConfig {
        shared_wan: true,
        shared_intra: true,
        shared_egress: false,
    };
    let mut links = LinkState::new(net.clone(), cfg);
    let a = SiteId(0);
    let first = links.send(a, a, 4_000_000, 0.0);
    let second = links.send(a, a, 4_000_000, 0.0);
    let ser = net.alpha_beta(a, a).serialization_time(4_000_000);
    assert!((second - first - ser).abs() < 1e-9);
}

#[test]
fn stats_busy_time_matches_bytes_over_bandwidth() {
    let net = net();
    let (a, b) = (SiteId(3), SiteId(0));
    let mut links = LinkState::new(net.clone(), LinkConfig::default());
    links.send(a, b, 2_000_000, 0.0);
    links.send(a, b, 3_000_000, 0.0);
    let expect = 5_000_000.0 / net.bandwidth(a, b);
    assert!((links.stats().busy_time(a, b) - expect).abs() < 1e-9);
    assert_eq!(links.stats().bottleneck().unwrap().0, a);
}
