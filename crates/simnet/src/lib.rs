//! Discrete-event network simulator (the paper's ns-2 substitute).
//!
//! The paper's simulation study replays applications on an ns-2 model of
//! the calibrated geo-distributed network. This crate provides the
//! equivalent machinery over the α–β abstraction:
//!
//! * [`queue::EventQueue`] — a deterministic time-ordered event queue;
//! * [`links::LinkState`] — per-directed-site-pair link occupancy with
//!   FIFO serialization on the scarce WAN links (intra-site transfers
//!   don't contend — each VM has its own NIC);
//! * [`stats::LinkStats`] — per-site-pair traffic, busy-time and peak
//!   queue-depth accounting;
//! * [`replay`] — closed-form aggregate replays of a communication
//!   pattern under a mapping (sum-cost and bottleneck-link time);
//! * [`churn`] — two-epoch drift scenarios pricing a mid-run bounded
//!   remap (migration stall included) against riding the drift out.
//!
//! The `mpirt` crate drives this simulator with per-rank programs to
//! produce end-to-end execution times.
//!
//! Event-level tracing: [`links::LinkState::with_trace`] records each
//! message's lifecycle (enqueue, serialize span, transit, deliver) plus
//! queue-depth counter samples on one `geomap_core::Trace` track per
//! directed site pair — export with `RingBufferSink::to_chrome_json`
//! and open in Perfetto (see DESIGN.md §5f).

#![warn(missing_docs)]

pub mod churn;
pub mod links;
pub mod queue;
pub mod replay;
pub mod stats;

pub use churn::{replay_churn, ChurnOutcome, ChurnScenario};
pub use links::{LinkConfig, LinkState};
pub use queue::EventQueue;
pub use replay::{bottleneck_time, sum_cost};
pub use stats::LinkStats;
