//! Per-site-pair traffic accounting.

use geonet::SiteId;

/// Traffic statistics accumulated during a simulation run.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    m: usize,
    msgs: Vec<u64>,
    bytes: Vec<u64>,
    busy: Vec<f64>,
    queue_wait: Vec<f64>,
    max_depth: Vec<u32>,
}

impl LinkStats {
    /// Fresh statistics for `m` sites.
    pub fn new(m: usize) -> Self {
        Self {
            m,
            msgs: vec![0; m * m],
            bytes: vec![0; m * m],
            busy: vec![0.0; m * m],
            queue_wait: vec![0.0; m * m],
            max_depth: vec![0; m * m],
        }
    }

    /// Number of sites the statistics cover (the matrix is
    /// `num_sites × num_sites`, directed).
    pub fn num_sites(&self) -> usize {
        self.m
    }

    #[inline]
    fn idx(&self, from: SiteId, to: SiteId) -> usize {
        from.index() * self.m + to.index()
    }

    /// Record one transfer. `depth` is the link occupancy right after
    /// the message joined (the enqueued message included), so 1 means
    /// "no contention".
    pub(crate) fn record(
        &mut self,
        from: SiteId,
        to: SiteId,
        bytes: u64,
        ser: f64,
        wait: f64,
        depth: u32,
    ) {
        let i = self.idx(from, to);
        self.msgs[i] += 1;
        self.bytes[i] += bytes;
        self.busy[i] += ser;
        self.queue_wait[i] += wait;
        self.max_depth[i] = self.max_depth[i].max(depth);
    }

    /// Messages sent from `from` to `to`.
    pub fn messages(&self, from: SiteId, to: SiteId) -> u64 {
        self.msgs[self.idx(from, to)]
    }

    /// Bytes sent from `from` to `to`.
    pub fn bytes(&self, from: SiteId, to: SiteId) -> u64 {
        self.bytes[self.idx(from, to)]
    }

    /// Serialization (busy) time of the directed link.
    pub fn busy_time(&self, from: SiteId, to: SiteId) -> f64 {
        self.busy[self.idx(from, to)]
    }

    /// Total queueing delay suffered on the directed link.
    pub fn queue_wait(&self, from: SiteId, to: SiteId) -> f64 {
        self.queue_wait[self.idx(from, to)]
    }

    /// Peak occupancy of the directed link over the run: the largest
    /// number of messages simultaneously serializing or queued (0 when
    /// nothing was sent). Aggregate busy/wait sums hide transient
    /// congestion spikes; this exposes them.
    pub fn max_queue_depth(&self, from: SiteId, to: SiteId) -> u32 {
        self.max_depth[self.idx(from, to)]
    }

    /// All messages.
    pub fn total_messages(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// All bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes that crossed site boundaries (the scarce WAN traffic).
    pub fn inter_site_bytes(&self) -> u64 {
        let mut t = 0;
        for k in 0..self.m {
            for l in 0..self.m {
                if k != l {
                    t += self.bytes[k * self.m + l];
                }
            }
        }
        t
    }

    /// Bytes that stayed within a site.
    pub fn intra_site_bytes(&self) -> u64 {
        (0..self.m).map(|k| self.bytes[k * self.m + k]).sum()
    }

    /// Fraction of traffic that crossed sites (0 when nothing was sent).
    pub fn wan_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        self.inter_site_bytes() as f64 / total as f64
    }

    /// The busiest directed inter-site link: `(from, to, busy_time)`.
    pub fn bottleneck(&self) -> Option<(SiteId, SiteId, f64)> {
        let mut best: Option<(SiteId, SiteId, f64)> = None;
        for k in 0..self.m {
            for l in 0..self.m {
                if k == l {
                    continue;
                }
                let b = self.busy[k * self.m + l];
                if b > 0.0 && best.is_none_or(|(_, _, bb)| b > bb) {
                    best = Some((SiteId(k), SiteId(l), b));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut s = LinkStats::new(3);
        s.record(SiteId(0), SiteId(1), 100, 0.5, 0.1, 1);
        s.record(SiteId(0), SiteId(1), 200, 1.0, 0.0, 3);
        s.record(SiteId(2), SiteId(2), 50, 0.1, 0.0, 1);
        assert_eq!(s.messages(SiteId(0), SiteId(1)), 2);
        assert_eq!(s.bytes(SiteId(0), SiteId(1)), 300);
        assert!((s.busy_time(SiteId(0), SiteId(1)) - 1.5).abs() < 1e-12);
        assert!((s.queue_wait(SiteId(0), SiteId(1)) - 0.1).abs() < 1e-12);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 350);
    }

    #[test]
    fn max_queue_depth_is_a_peak_not_a_sum() {
        let mut s = LinkStats::new(2);
        assert_eq!(s.max_queue_depth(SiteId(0), SiteId(1)), 0);
        s.record(SiteId(0), SiteId(1), 1, 0.1, 0.0, 2);
        s.record(SiteId(0), SiteId(1), 1, 0.1, 0.0, 5);
        s.record(SiteId(0), SiteId(1), 1, 0.1, 0.0, 1);
        assert_eq!(s.max_queue_depth(SiteId(0), SiteId(1)), 5);
        assert_eq!(s.max_queue_depth(SiteId(1), SiteId(0)), 0);
    }

    #[test]
    fn wan_fraction() {
        let mut s = LinkStats::new(2);
        s.record(SiteId(0), SiteId(0), 75, 0.0, 0.0, 1);
        s.record(SiteId(0), SiteId(1), 25, 0.0, 0.0, 1);
        assert!((s.wan_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wan_fraction_of_nothing_is_zero() {
        assert_eq!(LinkStats::new(2).wan_fraction(), 0.0);
    }

    #[test]
    fn bottleneck_finds_busiest_inter_link() {
        let mut s = LinkStats::new(3);
        s.record(SiteId(0), SiteId(0), 1, 99.0, 0.0, 1); // intra: ignored
        s.record(SiteId(0), SiteId(1), 1, 2.0, 0.0, 1);
        s.record(SiteId(1), SiteId(2), 1, 5.0, 0.0, 1);
        let (f, t, b) = s.bottleneck().unwrap();
        assert_eq!((f, t), (SiteId(1), SiteId(2)));
        assert_eq!(b, 5.0);
    }

    #[test]
    fn bottleneck_none_when_silent() {
        assert!(LinkStats::new(2).bottleneck().is_none());
    }
}
