//! Mid-run remap replays: what does an online re-map *buy*?
//!
//! The paper's simulation study maps once and replays to completion. A
//! geo-cloud run that long sees drift: a WAN link degrades, a site
//! shrinks, and the mapping chosen against the calibrated network is
//! suddenly wrong for the network that exists. This module extends the
//! closed-form replay machinery ([`crate::replay`]) with a two-epoch
//! scenario — `before` the drift event and `after` it — and prices the
//! two responses side by side:
//!
//! * **ride out** — keep the original mapping through the degraded
//!   epoch;
//! * **remap** — stall once to migrate the ranks a bounded-migration
//!   repair chose to move, then run the degraded epoch on the repaired
//!   mapping.
//!
//! The stall is charged per moved rank (checkpoint + state transfer +
//! restart), so the comparison is honest: a repair only wins when its
//! per-iteration improvement on the degraded network amortizes the
//! migration bill over the iterations that remain. That break-even is
//! exactly what the daemon's reconciler threshold/budget knobs tune.

use commgraph::CommPattern;
use geonet::{SiteId, SiteNetwork};

use crate::replay::bottleneck_time;

/// A two-epoch churn scenario: `iterations` pattern replays in total,
/// with the network switching from `before` to `after` when
/// `drift_at` of them have run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnScenario<'a> {
    /// The application's per-iteration communication pattern.
    pub pattern: &'a CommPattern,
    /// The calibrated network the original mapping was chosen against.
    pub before: &'a SiteNetwork,
    /// The drifted network (degraded links, changed capacity picture).
    pub after: &'a SiteNetwork,
    /// Total iterations the application runs.
    pub iterations: usize,
    /// Iterations completed before the drift lands (`<= iterations`).
    pub drift_at: usize,
    /// One-off stall per migrated rank, in seconds (checkpoint, state
    /// transfer over the WAN, restart).
    pub stall_per_rank: f64,
}

/// The priced outcome of a [`replay_churn`] comparison.
#[derive(Debug, Clone, Copy)]
pub struct ChurnOutcome {
    /// Makespan keeping the original mapping through both epochs.
    pub ride_out: f64,
    /// Makespan remapping at the drift point: healthy epoch + migration
    /// stall + degraded epoch on the repaired mapping.
    pub remapped: f64,
    /// The migration bill included in `remapped`.
    pub stall: f64,
    /// `ride_out - remapped`: positive when remapping wins.
    pub win: f64,
}

/// Price "ride out the drift" against "stall and remap", using the
/// bottleneck-link makespan estimate per iteration. `moved` is how many
/// ranks differ between the two assignments — pass the repair's own
/// migration count (the stall is what the *repair's budget* bought).
///
/// # Panics
///
/// Panics when `drift_at > iterations` or an assignment length doesn't
/// match the pattern.
pub fn replay_churn(
    scenario: &ChurnScenario<'_>,
    original: &[SiteId],
    repaired: &[SiteId],
    moved: usize,
) -> ChurnOutcome {
    assert!(
        scenario.drift_at <= scenario.iterations,
        "drift at iteration {} of {}",
        scenario.drift_at,
        scenario.iterations
    );
    let healthy =
        scenario.drift_at as f64 * bottleneck_time(scenario.pattern, scenario.before, original);
    let degraded_iters = (scenario.iterations - scenario.drift_at) as f64;
    let ride_out =
        healthy + degraded_iters * bottleneck_time(scenario.pattern, scenario.after, original);
    let stall = moved as f64 * scenario.stall_per_rank;
    let remapped = healthy
        + stall
        + degraded_iters * bottleneck_time(scenario.pattern, scenario.after, repaired);
    ChurnOutcome {
        ride_out,
        remapped,
        stall,
        win: ride_out - remapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph::apps::{Ring, Workload};
    use geomap_core::{repair, Mapping, MappingProblem, RemapConfig};
    use geonet::{presets, InstanceType, SquareMatrix};

    /// Degrade every WAN link touching `site`: latency ×`lat_mul`,
    /// bandwidth ÷`bw_div`. Intra-site links are untouched.
    fn degrade(net: &SiteNetwork, site: usize, lat_mul: f64, bw_div: f64) -> SiteNetwork {
        let m = net.num_sites();
        let lt = SquareMatrix::from_fn(m, |k, l| {
            let base = net.latency(SiteId(k), SiteId(l));
            if k != l && (k == site || l == site) {
                base * lat_mul
            } else {
                base
            }
        });
        let bt = SquareMatrix::from_fn(m, |k, l| {
            let base = net.bandwidth(SiteId(k), SiteId(l));
            if k != l && (k == site || l == site) {
                base / bw_div
            } else {
                base
            }
        });
        SiteNetwork::new(net.sites().to_vec(), lt, bt)
    }

    /// The tentpole's simnet acceptance: a mid-run remap event shows a
    /// measurable makespan win. A 32-rank ring mapped well for the
    /// healthy network; site 0's WAN links then degrade 8× in latency
    /// and 8× in bandwidth. The bounded repair (25% budget) moves ranks
    /// off the degraded site's hot edges; even after paying a
    /// per-rank migration stall the remapped run finishes faster.
    #[test]
    fn mid_run_remap_beats_riding_out_the_drift() {
        let before = presets::paper_ec2_network(12, InstanceType::M4Xlarge, 7);
        let after = degrade(&before, 0, 8.0, 8.0);
        let pattern = Ring {
            n: 32,
            iterations: 1,
            bytes: 4_000_000,
        }
        .pattern();

        // Original: a sensible healthy-network mapping (blocked ring).
        let original: Vec<SiteId> = (0..32).map(|i| SiteId(i / 8)).collect();
        // Repair against the *drifted* network, starting from the
        // current placement, allowed to move at most 8 of 32 ranks.
        let problem = MappingProblem::unconstrained(pattern.clone(), after.clone());
        let start = Mapping::new(original.clone());
        let outcome = repair(
            &problem,
            &start,
            &RemapConfig {
                budget: Some(8),
                alpha: 0.0,
                ..RemapConfig::default()
            },
        );
        assert!(
            !outcome.moved.is_empty() && outcome.moved.len() <= 8,
            "repair moved {:?}",
            outcome.moved
        );

        let scenario = ChurnScenario {
            pattern: &pattern,
            before: &before,
            after: &after,
            iterations: 200,
            drift_at: 50,
            stall_per_rank: 2.0,
        };
        let priced = replay_churn(
            &scenario,
            &original,
            outcome.mapping.as_slice(),
            outcome.moved.len(),
        );
        assert!(
            priced.win > 0.0,
            "remap should win: ride-out {} vs remapped {} (stall {})",
            priced.ride_out,
            priced.remapped,
            priced.stall
        );
        // The win is measurable, not epsilon: at least 5% of ride-out.
        assert!(
            priced.win >= 0.05 * priced.ride_out,
            "win {} is under 5% of ride-out {}",
            priced.win,
            priced.ride_out
        );
    }

    /// With few iterations left after the drift, the stall dominates
    /// and riding out wins — the break-even the reconciler's threshold
    /// models.
    #[test]
    fn late_drift_makes_riding_out_cheaper() {
        let before = presets::paper_ec2_network(12, InstanceType::M4Xlarge, 7);
        let after = degrade(&before, 0, 8.0, 8.0);
        let pattern = Ring {
            n: 32,
            iterations: 1,
            bytes: 4_000_000,
        }
        .pattern();
        let original: Vec<SiteId> = (0..32).map(|i| SiteId(i / 8)).collect();
        let problem = MappingProblem::unconstrained(pattern.clone(), after.clone());
        let outcome = repair(
            &problem,
            &Mapping::new(original.clone()),
            &RemapConfig {
                budget: Some(8),
                alpha: 0.0,
                ..RemapConfig::default()
            },
        );
        let scenario = ChurnScenario {
            pattern: &pattern,
            before: &before,
            after: &after,
            iterations: 200,
            drift_at: 199, // one degraded iteration remains
            stall_per_rank: 1_000.0,
        };
        let priced = replay_churn(
            &scenario,
            &original,
            outcome.mapping.as_slice(),
            outcome.moved.len(),
        );
        assert!(
            priced.win < 0.0,
            "a huge stall for one remaining iteration cannot win (win {})",
            priced.win
        );
    }

    #[test]
    fn zero_move_remap_is_free_and_identical() {
        let net = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 3);
        let pattern = Ring {
            n: 8,
            iterations: 1,
            bytes: 100_000,
        }
        .pattern();
        let assignment: Vec<SiteId> = (0..8).map(|i| SiteId(i / 2)).collect();
        let scenario = ChurnScenario {
            pattern: &pattern,
            before: &net,
            after: &net,
            iterations: 10,
            drift_at: 5,
            stall_per_rank: 3.0,
        };
        let priced = replay_churn(&scenario, &assignment, &assignment, 0);
        assert_eq!(priced.stall, 0.0);
        assert_eq!(priced.win, 0.0);
        assert_eq!(priced.ride_out, priced.remapped);
    }
}
