//! Closed-form pattern replays.
//!
//! Two aggregate estimates of a mapping's communication time that need
//! no per-rank program, used by the large-scale simulation sweeps
//! (Fig. 7, up to 8192 processes) where replaying full programs through
//! the event loop would be needlessly slow:
//!
//! * [`sum_cost`] — the paper's Eq. 2/3 objective: total α–β time summed
//!   over all process pairs;
//! * [`bottleneck_time`] — aggregate each directed site pair's traffic
//!   onto its shared link and take the busiest link's completion time (a
//!   makespan estimate under full overlap).

use commgraph::CommPattern;
use geonet::{SiteId, SiteNetwork};

/// Eq. 2 over a raw assignment slice: `Σ AG·LT + CG/BT`.
pub fn sum_cost(pattern: &CommPattern, net: &SiteNetwork, assignment: &[SiteId]) -> f64 {
    assert_eq!(pattern.n(), assignment.len(), "assignment length mismatch");
    let mut total = 0.0;
    for src in 0..pattern.n() {
        let from = assignment[src];
        for e in pattern.out_edges(src) {
            let to = assignment[e.dst];
            total += e.msgs * net.latency(from, to) + e.bytes / net.bandwidth(from, to);
        }
    }
    total
}

/// Makespan estimate: aggregate traffic per directed site pair, compute
/// each link's `msgs·α + bytes/β`, and return the maximum.
pub fn bottleneck_time(pattern: &CommPattern, net: &SiteNetwork, assignment: &[SiteId]) -> f64 {
    assert_eq!(pattern.n(), assignment.len(), "assignment length mismatch");
    let m = net.num_sites();
    let mut msgs = vec![0.0f64; m * m];
    let mut bytes = vec![0.0f64; m * m];
    for src in 0..pattern.n() {
        let from = assignment[src];
        for e in pattern.out_edges(src) {
            let to = assignment[e.dst];
            let idx = from.index() * m + to.index();
            msgs[idx] += e.msgs;
            bytes[idx] += e.bytes;
        }
    }
    let mut worst = 0.0f64;
    for k in 0..m {
        for l in 0..m {
            let idx = k * m + l;
            if msgs[idx] == 0.0 {
                continue;
            }
            let ab = net.alpha_beta(SiteId(k), SiteId(l));
            worst = worst.max(ab.batch_time(msgs[idx], bytes[idx]));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph::apps::{Ring, Workload};
    use commgraph::pattern::PatternBuilder;
    use geonet::{presets, InstanceType};

    fn net() -> SiteNetwork {
        presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1)
    }

    #[test]
    fn bottleneck_le_sum() {
        let net = net();
        let pat = Ring {
            n: 16,
            iterations: 3,
            bytes: 500_000,
        }
        .pattern();
        let assignment: Vec<SiteId> = (0..16).map(|i| SiteId(i % 4)).collect();
        let b = bottleneck_time(&pat, &net, &assignment);
        let s = sum_cost(&pat, &net, &assignment);
        assert!(b <= s, "bottleneck {b} > sum {s}");
        assert!(b > 0.0);
    }

    #[test]
    fn single_edge_bottleneck_equals_its_cost() {
        let net = net();
        let mut b = PatternBuilder::new(2);
        b.record_many(0, 1, 1_000_000, 4);
        let pat = b.build();
        let assignment = vec![SiteId(0), SiteId(3)];
        let ab = net.alpha_beta(SiteId(0), SiteId(3));
        let expect = ab.batch_time(4.0, 4_000_000.0);
        assert!((bottleneck_time(&pat, &net, &assignment) - expect).abs() < 1e-12);
        assert!((sum_cost(&pat, &net, &assignment) - expect).abs() < 1e-12);
    }

    #[test]
    fn colocating_heavy_edges_lowers_both_metrics() {
        let net = net();
        let pat = Ring {
            n: 8,
            iterations: 2,
            bytes: 2_000_000,
        }
        .pattern();
        let packed: Vec<SiteId> = (0..8).map(|i| SiteId(i / 2)).collect();
        let spread: Vec<SiteId> = (0..8).map(|i| SiteId(i % 4)).collect();
        assert!(sum_cost(&pat, &net, &packed) < sum_cost(&pat, &net, &spread));
        assert!(bottleneck_time(&pat, &net, &packed) < bottleneck_time(&pat, &net, &spread));
    }

    #[test]
    fn all_intra_has_no_wan_bottleneck() {
        let net = net();
        let pat = Ring {
            n: 4,
            iterations: 1,
            bytes: 1000,
        }
        .pattern();
        let assignment = vec![SiteId(2); 4];
        let b = bottleneck_time(&pat, &net, &assignment);
        let intra = net.alpha_beta(SiteId(2), SiteId(2));
        // Bottleneck is the intra-site aggregate of 4 messages.
        assert!((b - intra.batch_time(4.0, 4000.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn checks_assignment_length() {
        let net = net();
        let pat = Ring {
            n: 4,
            iterations: 1,
            bytes: 10,
        }
        .pattern();
        sum_cost(&pat, &net, &[SiteId(0)]);
    }
}
