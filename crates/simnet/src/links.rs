//! Link occupancy and transfer-time computation.
//!
//! Inter-site (WAN) capacity is the scarce resource in a geo-distributed
//! cloud, so by default every directed site pair is one shared FIFO
//! link: a message occupies it for its serialization time `n/β` and
//! later messages queue behind it. Intra-site messages ride each VM's
//! own NIC and do not contend. Both behaviours are switchable through
//! [`LinkConfig`] for ablation runs.

use crate::stats::LinkStats;
use geomap_core::{Trace, TrackId};
use geonet::{SiteId, SiteNetwork};
use std::collections::VecDeque;

/// Contention configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Serialize messages on shared directed inter-site links.
    pub shared_wan: bool,
    /// Also serialize intra-site messages on one shared link per site
    /// (off by default — each VM has its own NIC).
    pub shared_intra: bool,
    /// Additionally serialize all *outgoing* inter-site traffic of a
    /// site on one shared egress uplink (off by default). Models the
    /// case where a site's WAN uplink, not the per-destination path, is
    /// the bottleneck.
    pub shared_egress: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            shared_wan: true,
            shared_intra: false,
            shared_egress: false,
        }
    }
}

/// Mutable link state of one simulation run.
#[derive(Debug, Clone)]
pub struct LinkState {
    net: SiteNetwork,
    config: LinkConfig,
    /// `free[k*m + l]`: earliest time the directed link (k,l) is free.
    free: Vec<f64>,
    /// `egress[k]`: earliest time site k's shared uplink is free (only
    /// used with [`LinkConfig::shared_egress`]).
    egress: Vec<f64>,
    /// `queues[k*m + l]`: completion times of messages still occupying
    /// the shared directed link (serializing or queued). Drained lazily
    /// at each send; its length is the instantaneous queue depth.
    queues: Vec<VecDeque<f64>>,
    stats: LinkStats,
    /// Event-level tracing (off by default; see [`LinkState::with_trace`]).
    trace: Trace,
    /// Lazily-allocated per-directed-pair trace tracks.
    tracks: Vec<Option<TrackId>>,
}

impl LinkState {
    /// Fresh link state over `net`.
    pub fn new(net: SiteNetwork, config: LinkConfig) -> Self {
        Self::with_trace(net, config, Trace::off())
    }

    /// Fresh link state that records per-message lifecycle events
    /// (enqueue / serialize / transit / deliver) and queue-depth counter
    /// samples on one trace track per directed site pair, under the
    /// `"simnet"` process. With `Trace::off()` this is exactly
    /// [`LinkState::new`].
    pub fn with_trace(net: SiteNetwork, config: LinkConfig, trace: Trace) -> Self {
        let m = net.num_sites();
        Self {
            net,
            config,
            free: vec![0.0; m * m],
            egress: vec![0.0; m],
            queues: vec![VecDeque::new(); m * m],
            stats: LinkStats::new(m),
            trace,
            tracks: vec![None; m * m],
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &SiteNetwork {
        &self.net
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Transfer `bytes` from a node in `from` to a node in `to`,
    /// departing at `depart`. Returns the arrival time and updates link
    /// occupancy and statistics.
    pub fn send(&mut self, from: SiteId, to: SiteId, bytes: u64, depart: f64) -> f64 {
        debug_assert!(depart.is_finite() && depart >= 0.0);
        let ab = self.net.alpha_beta(from, to);
        let ser = ab.serialization_time(bytes);
        let shared = if from == to {
            self.config.shared_intra
        } else {
            self.config.shared_wan
        };
        let idx = from.index() * self.net.num_sites() + to.index();
        // Clone is an Arc bump when tracing, free (None) when off; it
        // releases the `&self` borrow so the queue can be borrowed
        // mutably below.
        let trace = self.trace.clone();
        let track = if trace.enabled() {
            self.track_for(idx, from, to)
        } else {
            TrackId::DISABLED
        };
        trace.instant(track, "enqueue", depart);
        let arrival = if shared {
            let q = &mut self.queues[idx];
            // Messages done by `depart` leave the link; sample the depth
            // at each departure so spikes decay visibly in the trace.
            while let Some(&done) = q.front() {
                if done > depart {
                    break;
                }
                q.pop_front();
                trace.counter(track, "queue_depth", done, q.len() as f64);
            }
            let mut start = depart.max(self.free[idx]);
            if self.config.shared_egress && from != to {
                start = start.max(self.egress[from.index()]);
                self.egress[from.index()] = start + ser;
            }
            self.free[idx] = start + ser;
            q.push_back(start + ser);
            let depth = q.len() as u32;
            self.stats
                .record(from, to, bytes, ser, start - depart, depth);
            trace.counter(track, "queue_depth", depart, depth as f64);
            trace.span_begin(track, "serialize", start);
            trace.span_end(track, "serialize", start + ser);
            trace.instant(track, "transit", start + ser);
            trace.instant(track, "deliver", start + ser + ab.latency_s);
            start + ser + ab.latency_s
        } else {
            self.stats.record(from, to, bytes, ser, 0.0, 1);
            trace.instant(track, "transit", depart + ser);
            trace.instant(track, "deliver", depart + ser + ab.latency_s);
            depart + ser + ab.latency_s
        };
        debug_assert!(arrival >= depart);
        arrival
    }

    /// The trace track for directed pair `idx`, allocated on first use.
    fn track_for(&mut self, idx: usize, from: SiteId, to: SiteId) -> TrackId {
        if let Some(t) = self.tracks[idx] {
            return t;
        }
        let t = self.trace.track(
            "simnet",
            &format!("link s{}->s{}", from.index(), to.index()),
        );
        self.tracks[idx] = Some(t);
        t
    }

    /// Earliest time the directed link `(from, to)` is free.
    pub fn free_at(&self, from: SiteId, to: SiteId) -> f64 {
        self.free[from.index() * self.net.num_sites() + to.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet::{presets, InstanceType};

    fn net() -> SiteNetwork {
        presets::paper_ec2_network(4, InstanceType::M4Xlarge, 1)
    }

    #[test]
    fn arrival_includes_latency_and_serialization() {
        let net = net();
        let (a, b) = (SiteId(0), SiteId(1));
        let ab = net.alpha_beta(a, b);
        let mut links = LinkState::new(net, LinkConfig::default());
        let arrival = links.send(a, b, 1_000_000, 2.0);
        let expect = 2.0 + ab.serialization_time(1_000_000) + ab.latency_s;
        assert!((arrival - expect).abs() < 1e-12, "{arrival} vs {expect}");
    }

    #[test]
    fn shared_wan_serializes_concurrent_sends() {
        let net = net();
        let (a, b) = (SiteId(0), SiteId(3));
        let ab = net.alpha_beta(a, b);
        let mut links = LinkState::new(net, LinkConfig::default());
        let first = links.send(a, b, 8_000_000, 0.0);
        let second = links.send(a, b, 8_000_000, 0.0);
        let ser = ab.serialization_time(8_000_000);
        assert!(
            (second - first - ser).abs() < 1e-9,
            "not serialized: {first} then {second}"
        );
        assert!((links.free_at(a, b) - 2.0 * ser).abs() < 1e-9);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let net = net();
        let (a, b) = (SiteId(0), SiteId(3));
        let mut links = LinkState::new(net, LinkConfig::default());
        let t1 = links.send(a, b, 8_000_000, 0.0);
        let before = links.free_at(b, a);
        assert_eq!(before, 0.0);
        let t2 = links.send(b, a, 8_000_000, 0.0);
        // Each is an un-queued first transfer on its own directed link.
        assert!(t1 > 0.0 && t2 > 0.0);
    }

    #[test]
    fn intra_site_does_not_contend_by_default() {
        let net = net();
        let a = SiteId(1);
        let mut links = LinkState::new(net, LinkConfig::default());
        let t1 = links.send(a, a, 4_000_000, 0.0);
        let t2 = links.send(a, a, 4_000_000, 0.0);
        assert!((t1 - t2).abs() < 1e-12, "intra contended: {t1} vs {t2}");
    }

    #[test]
    fn shared_egress_serializes_across_destinations() {
        let net = net();
        let cfg = LinkConfig {
            shared_egress: true,
            ..LinkConfig::default()
        };
        let mut links = LinkState::new(net.clone(), cfg);
        // Two messages from site 0 to two different destinations: the
        // second waits for the first's egress serialization.
        let t1 = links.send(SiteId(0), SiteId(1), 8_000_000, 0.0);
        let t2 = links.send(SiteId(0), SiteId(2), 8_000_000, 0.0);
        let ser1 = net
            .alpha_beta(SiteId(0), SiteId(1))
            .serialization_time(8_000_000);
        let expect2 = ser1
            + net
                .alpha_beta(SiteId(0), SiteId(2))
                .serialization_time(8_000_000)
            + net.latency(SiteId(0), SiteId(2));
        assert!((t2 - expect2).abs() < 1e-9, "t2 {t2} vs {expect2}");
        assert!(t1 < t2);
        // Without egress sharing, distinct destinations don't contend.
        let mut free = LinkState::new(net.clone(), LinkConfig::default());
        free.send(SiteId(0), SiteId(1), 8_000_000, 0.0);
        let t2_free = free.send(SiteId(0), SiteId(2), 8_000_000, 0.0);
        assert!(t2_free < t2);
    }

    #[test]
    fn shared_egress_leaves_intra_alone() {
        let net = net();
        let cfg = LinkConfig {
            shared_egress: true,
            ..LinkConfig::default()
        };
        let mut links = LinkState::new(net, cfg);
        links.send(SiteId(0), SiteId(1), 8_000_000, 0.0); // occupy egress
        let a = links.send(SiteId(0), SiteId(0), 1_000, 0.0);
        let b = links.send(SiteId(0), SiteId(0), 1_000, 0.0);
        assert!((a - b).abs() < 1e-12, "intra traffic blocked by egress");
    }

    #[test]
    fn unshared_wan_removes_queueing() {
        let net = net();
        let (a, b) = (SiteId(0), SiteId(2));
        let cfg = LinkConfig {
            shared_wan: false,
            shared_intra: false,
            shared_egress: false,
        };
        let mut links = LinkState::new(net, cfg);
        let t1 = links.send(a, b, 8_000_000, 0.0);
        let t2 = links.send(a, b, 8_000_000, 0.0);
        assert!((t1 - t2).abs() < 1e-12);
    }

    #[test]
    fn later_departures_never_arrive_before_earlier_on_shared_link() {
        let net = net();
        let (a, b) = (SiteId(2), SiteId(0));
        let mut links = LinkState::new(net, LinkConfig::default());
        let mut last = 0.0;
        for i in 0..10u64 {
            let arr = links.send(a, b, 100_000 + i * 10_000, i as f64 * 1e-4);
            assert!(arr >= last, "FIFO violated at {i}");
            last = arr;
        }
    }

    #[test]
    fn queue_depth_peaks_and_traces_message_lifecycle() {
        use geomap_core::{RingBufferSink, Trace, TraceEventKind};
        use std::sync::Arc;
        let net = net();
        let (a, b) = (SiteId(0), SiteId(3));
        let sink = Arc::new(RingBufferSink::new(1024));
        let mut links = LinkState::with_trace(net, LinkConfig::default(), Trace::new(sink.clone()));
        for _ in 0..3 {
            links.send(a, b, 8_000_000, 0.0);
        }
        assert_eq!(links.stats().max_queue_depth(a, b), 3);
        // A send after the link drained sees depth 1; the peak stays 3.
        let late = links.free_at(a, b) + 1.0;
        links.send(a, b, 8_000_000, late);
        assert_eq!(links.stats().max_queue_depth(a, b), 3);
        assert_eq!(links.stats().max_queue_depth(b, a), 0);

        let tracks = sink.tracks();
        assert!(
            tracks
                .iter()
                .any(|t| t.process == "simnet" && t.name == "link s0->s3"),
            "{tracks:?}"
        );
        let ev = sink.snapshot();
        assert!(ev.iter().any(|e| e.name == "enqueue"));
        assert!(ev
            .iter()
            .any(|e| e.name == "serialize" && e.kind == TraceEventKind::SpanBegin));
        assert!(ev.iter().any(|e| e.name == "deliver"));
        let depths: Vec<f64> = ev
            .iter()
            .filter(|e| e.kind == TraceEventKind::Counter)
            .map(|e| e.value)
            .collect();
        assert!(depths.contains(&3.0), "peak sample missing: {depths:?}");
        assert!(depths.contains(&0.0), "drain samples missing: {depths:?}");
    }

    #[test]
    fn tracing_does_not_change_arrivals() {
        use geomap_core::{RingBufferSink, Trace};
        use std::sync::Arc;
        let net = net();
        let mut plain = LinkState::new(net.clone(), LinkConfig::default());
        let sink = Arc::new(RingBufferSink::new(64));
        let mut traced = LinkState::with_trace(net, LinkConfig::default(), Trace::new(sink));
        for i in 0..10u64 {
            let d = i as f64 * 1e-4;
            assert_eq!(
                plain.send(SiteId(0), SiteId(1), 1_000_000, d),
                traced.send(SiteId(0), SiteId(1), 1_000_000, d)
            );
        }
    }

    #[test]
    fn stats_accumulate() {
        let net = net();
        let mut links = LinkState::new(net, LinkConfig::default());
        links.send(SiteId(0), SiteId(1), 1000, 0.0);
        links.send(SiteId(0), SiteId(1), 2000, 0.0);
        links.send(SiteId(2), SiteId(2), 500, 0.0);
        let s = links.stats();
        assert_eq!(s.messages(SiteId(0), SiteId(1)), 2);
        assert_eq!(s.bytes(SiteId(0), SiteId(1)), 3000);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.inter_site_bytes(), 3000);
        assert_eq!(s.intra_site_bytes(), 500);
    }
}
