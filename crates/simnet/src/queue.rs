//! A deterministic discrete-event queue.
//!
//! Events are ordered by time; ties break by insertion sequence, so a
//! simulation run is reproducible regardless of how events were
//! generated. Times must be finite (NaN is a bug, caught at push).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of `(time, payload)` events with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or infinite.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5.0, ());
        q.push(4.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(10.0, 'x');
        q.push(1.0, 'y');
        assert_eq!(q.pop(), Some((1.0, 'y')));
        q.push(5.0, 'z');
        assert_eq!(q.pop(), Some((5.0, 'z')));
        assert_eq!(q.pop(), Some((10.0, 'x')));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        EventQueue::new().push(f64::NAN, ());
    }
}
