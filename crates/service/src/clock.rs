//! The clock seam: every time-dependent lease decision reads one
//! injected [`Clock`] instead of calling `Instant::now()` inline.
//!
//! The PR 5 fault harness runs whole chaos storms on a *virtual*
//! millisecond clock ([`crate::transport::FaultPlan`]) so a seeded run
//! is a pure function of its seed — but lease expiry used to read the
//! wall clock directly, which meant a storm could never deterministically
//! expire a lease mid-scenario. Hoisting the clock behind this trait
//! closes that gap: production services run on [`WallClock`] (zero
//! overhead beyond a virtual call), deterministic tests share one
//! [`VirtualClock`] between the inventory, the federation lease journal
//! and the fault plan, and advance time explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A source of monotonic time. `Send + Sync` because one clock is
/// shared by every worker thread of a service; `Debug` so configs that
/// carry a clock stay debuggable.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// The current reading. Monotonic: successive calls never go
    /// backwards (both impls guarantee this).
    fn now(&self) -> Instant;
}

/// The production clock: `Instant::now()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A deterministic clock: a base instant captured at construction plus
/// an explicitly-advanced millisecond offset. Time only moves when a
/// test says so, which makes lease expiry a scripted event instead of
/// a race against the scheduler.
#[derive(Debug)]
pub struct VirtualClock {
    base: Instant,
    offset_ms: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at "now" with zero offset.
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
            offset_ms: AtomicU64::new(0),
        }
    }

    /// Advance virtual time by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.offset_ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Move virtual time forward to `ms` milliseconds past the base
    /// (never backwards — a smaller reading is ignored). Lets a test
    /// sync this clock to a fault plan's own virtual clock between
    /// chaos rounds.
    pub fn set_ms(&self, ms: u64) {
        self.offset_ms.fetch_max(ms, Ordering::SeqCst);
    }

    /// Milliseconds of virtual time elapsed since construction.
    pub fn elapsed_ms(&self) -> u64 {
        self.offset_ms.load(Ordering::SeqCst)
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Instant {
        self.base + Duration::from_millis(self.elapsed_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let c = VirtualClock::new();
        let t0 = c.now();
        assert_eq!(c.now(), t0);
        c.advance_ms(250);
        assert_eq!(c.now(), t0 + Duration::from_millis(250));
        assert_eq!(c.elapsed_ms(), 250);
    }

    #[test]
    fn set_ms_never_rewinds() {
        let c = VirtualClock::new();
        c.set_ms(1_000);
        c.set_ms(400);
        assert_eq!(c.elapsed_ms(), 1_000);
        c.set_ms(1_500);
        assert_eq!(c.elapsed_ms(), 1_500);
    }
}
