//! The JSON-lines wire protocol: versioned request/response schema.
//!
//! One request per line, one response line per request, in order, over
//! a plain TCP stream. Every message carries the schema version `"v"`
//! so the daemon can refuse clients from a different protocol
//! generation instead of mis-parsing them ([`PROTOCOL_VERSION`]).
//!
//! The serde types ([`MapRequest`], [`MapResponse`], [`ErrorResponse`],
//! …) derive the workspace's `serde` markers and implement the actual
//! encoding through [`crate::json`] (the vendored serde is a
//! marker-trait shim — see `third_party/README.md`). Bulk payloads
//! (communication pattern, constraints) are embedded as the same CSV
//! the `geomap` file-based commands exchange, so a request is exactly
//! "the files, on a socket".

use crate::json::{obj, Json};
use serde::{Deserialize, Serialize};

/// The wire schema generation. Bump on any incompatible change.
pub const PROTOCOL_VERSION: u64 = 1;

/// Calibration campaign parameters carried by a request (a subset of
/// `geonet::CalibrationConfig`; probe sizes stay at their defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibSpec {
    /// Simulated measurement days.
    pub days: usize,
    /// Probes per site pair per day.
    pub probes_per_day: usize,
    /// Inter-site noise CV (intra-site uses 2.5x, matching
    /// `geomap calibrate`).
    pub noise_cv: f64,
    /// Probability in `[0, 1)` that one campaign sample is lost.
    /// Starved site pairs fall back to the daemon's last-known-good
    /// estimate (surfaced as `degraded` on the response).
    pub loss_rate: f64,
    /// Campaign RNG seed.
    pub seed: u64,
}

impl Default for CalibSpec {
    fn default() -> Self {
        Self {
            days: 3,
            probes_per_day: 10,
            noise_cv: 0.02,
            loss_rate: 0.0,
            seed: 0xCA11,
        }
    }
}

impl CalibSpec {
    /// The full calibration config this spec denotes.
    pub fn to_config(&self) -> geonet::CalibrationConfig {
        geonet::CalibrationConfig {
            days: self.days,
            probes_per_day: self.probes_per_day,
            inter_noise_cv: self.noise_cv,
            intra_noise_cv: self.noise_cv * 2.5,
            loss_rate: self.loss_rate,
            seed: self.seed,
            ..geonet::CalibrationConfig::default()
        }
    }
}

/// Distributed trace context carried by a request: ties the spans a
/// daemon emits (queue wait, worker dispatch, cache tier, reserve,
/// solver) to one client-initiated trace across every hop —
/// router, failover shard, home shard.
///
/// The field is **optional on the wire and absent by default**: a
/// request without a trace context encodes bit-identically to the
/// pre-observability protocol (pinned by the golden fixtures), so old
/// and new peers interoperate as long as the feature is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Client-generated trace id, nonzero. Kept below 2^53 so it
    /// survives the f64-valued trace event payloads and JSON numbers
    /// losslessly.
    pub trace_id: u64,
    /// Span id of the caller's enclosing span (0 = root).
    pub parent_span: u64,
    /// Whether the daemon should emit spans for this request. Carried
    /// explicitly so a sampling decision made at the edge is honored
    /// by every hop.
    pub sampled: bool,
}

impl TraceContext {
    /// A sampled root context for `trace_id` (masked into the f64-safe
    /// 53-bit range, never zero).
    #[must_use]
    pub fn root(trace_id: u64) -> Self {
        let masked = trace_id & ((1 << 53) - 1);
        Self {
            trace_id: if masked == 0 { 1 } else { masked },
            parent_span: 0,
            sampled: true,
        }
    }
}

/// Multilevel solver knobs riding a map request. Present only when the
/// caller selects the `multilevel` algorithm (or tunes it explicitly);
/// absent, the request bytes are identical to the pre-multilevel
/// encoding on both wire versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultilevelSpec {
    /// Stop coarsening at this many vertices (≥ 1). A cutoff at or
    /// above the rank count degenerates to the direct solver.
    pub coarsen_cutoff: usize,
    /// Randomized matchings tried per level (≥ 1).
    pub match_rounds: usize,
    /// Refinement passes per uncoarsening step.
    pub refine_passes: usize,
}

impl Default for MultilevelSpec {
    fn default() -> Self {
        // Mirrors `geomap_core::MultilevelConfig::default()`.
        Self {
            coarsen_cutoff: 1024,
            match_rounds: 2,
            refine_passes: 2,
        }
    }
}

/// A mapping request: solve the pipeline for an embedded communication
/// pattern against the cluster the daemon fronts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapRequest {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: String,
    /// The communication pattern as `src,dst,bytes,msgs` CSV.
    pub pattern_csv: String,
    /// Number of processes (default: the cluster's total node count).
    pub ranks: Option<usize>,
    /// Optional data-movement constraints as `process,site` CSV.
    pub constraints_csv: Option<String>,
    /// Mapper: `geo|greedy|mpipp|random|montecarlo|multilevel`.
    pub algorithm: String,
    /// Mapper seed.
    pub seed: u64,
    /// `κ` for the geo mapper's site grouping.
    pub kappa: usize,
    /// Sample budget for the montecarlo mapper.
    pub samples: usize,
    /// Calibration campaign to run (or reuse from cache).
    pub calibration: CalibSpec,
    /// Admission deadline: reject if still queued after this long.
    pub deadline_ms: Option<u64>,
    /// Reserve the mapped nodes in the cluster inventory on success.
    pub reserve: bool,
    /// Lease time-to-live for a reservation (`None`: server default).
    pub lease_ttl_ms: Option<u64>,
    /// Consult the solved-result cache (`false` forces a fresh solve —
    /// the load generator uses this to measure the miss path).
    pub use_result_cache: bool,
    /// Client-generated idempotency key. The service remembers the
    /// successful response per key and replays it verbatim (same lease
    /// id) when the key comes back, so a client that lost a response
    /// can retry without double-reserving inventory. Reusing a key with
    /// a *different* request is a `bad_request`.
    pub idempotency_key: Option<String>,
    /// Optional distributed trace context ([`TraceContext`]). Excluded
    /// from every cache/affinity fingerprint: tracing a request must
    /// not change where it routes or whether it hits.
    pub trace: Option<TraceContext>,
    /// Multilevel solver knobs (used by the `multilevel` algorithm;
    /// defaults apply when absent). Unlike `trace`, this *is* part of
    /// the cache fingerprints — the same pattern solved direct and
    /// multilevel are different results.
    pub multilevel: Option<MultilevelSpec>,
}

impl MapRequest {
    /// A request with protocol defaults for everything but the pattern.
    pub fn new(id: impl Into<String>, pattern_csv: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            pattern_csv: pattern_csv.into(),
            ranks: None,
            constraints_csv: None,
            algorithm: "geo".into(),
            seed: 0x5C17,
            kappa: 4,
            samples: 10_000,
            calibration: CalibSpec::default(),
            deadline_ms: None,
            reserve: false,
            lease_ttl_ms: None,
            use_result_cache: true,
            idempotency_key: None,
            trace: None,
            multilevel: None,
        }
    }
}

/// An online-remap request: repair the caller's current (drifted)
/// mapping with a bounded-migration local search instead of solving
/// cold. The daemon runs `geomap_core::remap::repair` against the live
/// inventory capacities, so the repaired mapping never lands on nodes
/// another tenant holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemapRequest {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: String,
    /// The communication pattern as `src,dst,bytes,msgs` CSV (same
    /// payload a map request carries — the daemon reuses its prepared
    /// problem cache across map and remap).
    pub pattern_csv: String,
    /// The current process → site assignment to repair from. Its
    /// length fixes the rank count.
    pub mapping: Vec<usize>,
    /// Optional data-movement constraints as `process,site` CSV; the
    /// repair never moves a pinned rank.
    pub constraints_csv: Option<String>,
    /// Hard migration budget (`None`: unbounded — the repair degrades
    /// to a warm-started cold re-solve).
    pub budget: Option<u64>,
    /// Per-migration cost penalty α in `Eq3 + α·moved_ranks`.
    pub alpha: f64,
    /// Calibration campaign to run (or reuse from cache).
    pub calibration: CalibSpec,
    /// A live lease to rebook onto the repaired mapping's site counts
    /// (atomic: same lease id, new counts). `None` leaves inventory
    /// untouched — the response is advisory.
    pub lease: Option<u64>,
}

impl RemapRequest {
    /// A request with protocol defaults for everything but the pattern
    /// and the starting mapping.
    pub fn new(id: impl Into<String>, pattern_csv: impl Into<String>, mapping: Vec<usize>) -> Self {
        Self {
            id: id.into(),
            pattern_csv: pattern_csv.into(),
            mapping,
            constraints_csv: None,
            budget: None,
            alpha: 0.0,
            calibration: CalibSpec::default(),
            lease: None,
        }
    }
}

/// Every request kind a connection can submit.
///
/// `Map` dwarfs the other variants, but requests are decoded once per
/// wire line and passed by reference everywhere, so boxing it would
/// buy nothing and cost an allocation per request.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Solve a mapping.
    Map(MapRequest),
    /// Release an inventory lease (explicit teardown).
    Release {
        /// Correlation id.
        id: String,
        /// The lease to tear down.
        lease: u64,
    },
    /// Read service counters and inventory state.
    Stats {
        /// Correlation id.
        id: String,
        /// Ask for the extended [`StatsDetail`] section (latency
        /// histograms, queue watermarks, per-site leases). Off by
        /// default so the base exchange — and its wire bytes — stay
        /// exactly as they were before observability existed; old
        /// servers understand the request, old clients never see the
        /// extension uninvited.
        detail: bool,
    },
    /// Begin graceful shutdown: drain the queue, reject new work.
    Shutdown {
        /// Correlation id.
        id: String,
    },
    /// Look up an idempotency key in the daemon's lease journal. The
    /// federation router sends this to reconcile ambiguous failures: a
    /// retried reservation may have landed on several shards, and only
    /// the journal says which of them actually holds a live lease.
    Journal {
        /// Correlation id.
        id: String,
        /// The idempotency key to look up.
        key: String,
    },
    /// Dump the daemon's in-memory trace ring (tracks + events) so a
    /// collector (`geomap observe`) can merge per-daemon rings into
    /// one fleet timeline.
    TraceDump {
        /// Correlation id.
        id: String,
    },
    /// Repair a drifted mapping in place (bounded-migration local
    /// search from the caller's current assignment).
    Remap(RemapRequest),
}

/// Which cache tier satisfied a map request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheTier {
    /// Nothing cached: calibrate, build the problem, solve.
    Miss,
    /// Calibration + prepared problem reused; the solve still ran.
    Problem,
    /// The solved mapping itself was reused.
    Result,
}

impl CacheTier {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            CacheTier::Miss => "miss",
            CacheTier::Problem => "problem",
            CacheTier::Result => "result",
        }
    }

    /// Parse a wire label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "miss" => Some(CacheTier::Miss),
            "problem" => Some(CacheTier::Problem),
            "result" => Some(CacheTier::Result),
            _ => None,
        }
    }

    /// Stable byte code (the v2 binary frames carry this).
    pub fn code(self) -> u8 {
        match self {
            CacheTier::Miss => 0,
            CacheTier::Problem => 1,
            CacheTier::Result => 2,
        }
    }

    /// Parse a byte code.
    pub fn from_code(b: u8) -> Option<Self> {
        match b {
            0 => Some(CacheTier::Miss),
            1 => Some(CacheTier::Problem),
            2 => Some(CacheTier::Result),
            _ => None,
        }
    }
}

/// A successful mapping response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapResponse {
    /// Echo of the request id.
    pub id: String,
    /// Process → site assignment.
    pub mapping: Vec<usize>,
    /// Eq. 3 cost under the calibrated estimate.
    pub cost: f64,
    /// Which cache tier answered.
    pub cached: CacheTier,
    /// Seconds the request waited in the admission queue.
    pub queue_wait_s: f64,
    /// Seconds spent in calibration + solve (0 on a result hit).
    pub solve_s: f64,
    /// Granted inventory lease, when `reserve` was set.
    pub lease: Option<u64>,
    /// Nodes the mapping uses per site.
    pub site_counts: Vec<usize>,
    /// Free nodes per site after this response.
    pub free_nodes: Vec<usize>,
    /// True when the calibration behind this mapping fell back to
    /// last-known-good entries for at least one starved site pair.
    pub degraded: bool,
    /// Calibration generations between the fallback entries and this
    /// response (0 when fresh).
    pub staleness: u64,
}

/// Summary + sparse bucket dump of one latency histogram
/// (`crate::hist`), carried inside [`StatsDetail`]. Quantiles are
/// precomputed for display, but the bucket dump is authoritative: the
/// federation router merges shards bucket-wise and recomputes
/// quantiles from the merged distribution — percentiles are never
/// averaged.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistSummary {
    /// Stable histogram name (`hist::HistKind::label`).
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples (µs).
    pub sum_us: u64,
    /// Smallest sample (µs), absent when empty.
    pub min_us: Option<u64>,
    /// Largest sample (µs), absent when empty.
    pub max_us: Option<u64>,
    /// Median (µs; 0 when empty).
    pub p50_us: u64,
    /// 90th percentile (µs; 0 when empty).
    pub p90_us: u64,
    /// 99th percentile (µs; 0 when empty).
    pub p99_us: u64,
    /// 99.9th percentile (µs; 0 when empty).
    pub p999_us: u64,
    /// Sparse `(bucket index, count)` pairs in the fixed
    /// `hist::SCHEMA_VERSION` schema, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSummary {
    /// Summarize a histogram under its wire name.
    #[must_use]
    pub fn from_histogram(name: &str, h: &crate::hist::Histogram) -> Self {
        Self {
            name: name.to_string(),
            count: h.count(),
            sum_us: h.sum(),
            min_us: h.min(),
            max_us: h.max(),
            p50_us: h.quantile(0.50).unwrap_or(0),
            p90_us: h.quantile(0.90).unwrap_or(0),
            p99_us: h.quantile(0.99).unwrap_or(0),
            p999_us: h.quantile(0.999).unwrap_or(0),
            buckets: h.nonzero_buckets(),
        }
    }

    /// Rebuild the histogram this summary was taken from (bucket
    /// resolution).
    pub fn to_histogram(&self) -> Result<crate::hist::Histogram, String> {
        crate::hist::Histogram::from_parts(&self.buckets, self.sum_us, self.min_us, self.max_us)
    }
}

/// The extended stats section, present only when the stats request
/// asked for `detail` — which keeps the base `StatsResponse` bytes
/// identical to the pre-observability wire format in both directions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatsDetail {
    /// `hist::SCHEMA_VERSION` of the bucket schema in `hists`.
    pub hist_schema: u64,
    /// Admission-queue depth right now.
    pub queue_depth: u64,
    /// High-water mark of the admission queue since startup.
    pub max_queue_depth: u64,
    /// Leased nodes per site right now (complements the base
    /// response's `free_nodes`; `free + leased == capacity` site-wise).
    pub leased_nodes: Vec<usize>,
    /// Per-kind latency histograms, in `hist::HistKind::ALL` order.
    pub hists: Vec<HistSummary>,
    /// Daemons folded into this response: 1 from a single daemon,
    /// the shard count from a federation scatter-gather merge.
    pub shards: u64,
}

/// Service counters and inventory state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Echo of the request id.
    pub id: String,
    /// Map requests answered (any tier).
    pub served: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Problem-cache hits (calibration reused, solve ran).
    pub problem_hits: u64,
    /// Full misses.
    pub misses: u64,
    /// Requests rejected (queue full, deadline, inventory, shutdown).
    pub rejected: u64,
    /// Responses replayed from the idempotency cache (a retry arrived
    /// for work already done).
    pub replays: u64,
    /// Free nodes per site right now.
    pub free_nodes: Vec<usize>,
    /// Live (unexpired, unreleased) leases.
    pub active_leases: u64,
    /// Extended section (histograms, queue watermarks, leases per
    /// site); only present when the request set `detail`.
    pub detail: Option<StatsDetail>,
}

/// What the lease journal knows about one idempotency key.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JournalResponse {
    /// Echo of the request id.
    pub id: String,
    /// Echo of the queried idempotency key.
    pub key: String,
    /// True when this daemon granted a reservation under the key and
    /// the lease is still live (journaled, unreleased, unexpired).
    pub held: bool,
    /// The live lease id, when `held`.
    pub lease: Option<u64>,
    /// Per-site node counts of the live lease (empty when not held).
    pub site_counts: Vec<usize>,
}

/// One track definition from a daemon's trace ring (mirror of the
/// in-memory `geomap_core::trace` track registry, with owned names so
/// it can cross the wire).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WireTrack {
    /// Daemon-local track id (unique per daemon only — the collector
    /// namespaces by daemon when merging).
    pub track: u32,
    /// Process label (Perfetto process row).
    pub process: String,
    /// Thread/track label within the process.
    pub name: String,
}

/// One trace event from a daemon's ring. `kind` uses the stable byte
/// codes [`WireTraceEvent::SPAN_BEGIN`] … [`WireTraceEvent::COUNTER`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WireTraceEvent {
    /// Daemon-local track id.
    pub track: u32,
    /// Event name (span or counter name).
    pub name: String,
    /// Event kind byte code.
    pub kind: u8,
    /// Seconds since the daemon's trace epoch.
    pub ts_s: f64,
    /// Counter value, or the trace id tagged onto a span (0 = untagged).
    pub value: f64,
}

impl WireTraceEvent {
    /// Chrome `"B"` — span begin.
    pub const SPAN_BEGIN: u8 = 0;
    /// Chrome `"E"` — span end.
    pub const SPAN_END: u8 = 1;
    /// Chrome `"i"` — instant.
    pub const INSTANT: u8 = 2;
    /// Chrome `"C"` — counter sample.
    pub const COUNTER: u8 = 3;
}

/// A daemon's entire trace ring, with the clock metadata the collector
/// needs to place it on the fleet-wide timeline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceDumpResponse {
    /// Echo of the request id.
    pub id: String,
    /// Seconds since this daemon's trace epoch at the moment the dump
    /// was taken. The collector reads its own clock around the
    /// request/response exchange and solves for the epoch offset
    /// (handshake alignment; exact when both ends share a virtual
    /// clock).
    pub now_s: f64,
    /// Events discarded because the ring was full.
    pub dropped: u64,
    /// Track definitions referenced by `events`.
    pub tracks: Vec<WireTrack>,
    /// Ring contents in recording order.
    pub events: Vec<WireTraceEvent>,
}

/// The result of an online remap: the repaired mapping plus the diff
/// an orchestrator needs to execute the migration — which ranks moved,
/// what the move bought (old vs. new Eq. 3 cost), and how many
/// migrations it costs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RemapDiffResponse {
    /// Echo of the request id.
    pub id: String,
    /// The repaired process → site assignment.
    pub mapping: Vec<usize>,
    /// Ranks whose site changed vs. the request's starting mapping,
    /// ascending.
    pub moved: Vec<usize>,
    /// Eq. 3 cost of the starting mapping under the daemon's
    /// calibrated estimate.
    pub old_cost: f64,
    /// Eq. 3 cost of the repaired mapping (never above `old_cost`).
    pub new_cost: f64,
    /// `moved.len()` on the wire as its own field so shallow
    /// consumers (CI validators, dashboards) need not parse the list.
    pub migrations: u64,
    /// The rebooked lease id, when the request named one.
    pub lease: Option<u64>,
    /// Free nodes per site after any rebook (current inventory view
    /// when no lease was named).
    pub free_nodes: Vec<usize>,
}

/// A refused or failed request. `code` is stable for programmatic
/// handling; `message` is the one-line human diagnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Echo of the request id (empty when the line was unparseable).
    pub id: String,
    /// Machine-readable reason.
    pub code: ErrorCode,
    /// Human-readable one-liner.
    pub message: String,
}

/// Stable error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Malformed JSON or invalid field values.
    BadRequest,
    /// The `"v"` field is not [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// Admission queue full — backpressure.
    OverCapacity,
    /// The request's deadline passed while it was queued.
    DeadlineExceeded,
    /// The inventory has too few free nodes for the placement.
    InsufficientNodes,
    /// `release` named a lease that does not exist (or expired).
    UnknownLease,
    /// The daemon is draining; no new work accepted.
    ShuttingDown,
    /// The solver failed (bug surface, never expected in tests).
    Internal,
    /// A transient failure: nothing about the request was wrong, trying
    /// again may succeed. Clients synthesize this when a retry budget
    /// runs out; servers may use it for any condition that retrying can
    /// fix.
    Retryable,
    /// Calibration could not produce an estimate (a site pair lost
    /// every probe with no last-known-good fallback); the request is
    /// fine, the measurement layer is not.
    Degraded,
}

impl ErrorCode {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::OverCapacity => "over_capacity",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::InsufficientNodes => "insufficient_nodes",
            ErrorCode::UnknownLease => "unknown_lease",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
            ErrorCode::Retryable => "retryable",
            ErrorCode::Degraded => "degraded",
        }
    }

    /// Parse a wire label.
    pub fn parse(s: &str) -> Option<Self> {
        [
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::OverCapacity,
            ErrorCode::DeadlineExceeded,
            ErrorCode::InsufficientNodes,
            ErrorCode::UnknownLease,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::Retryable,
            ErrorCode::Degraded,
        ]
        .into_iter()
        .find(|c| c.label() == s)
    }

    /// Stable byte code (the v2 binary frames carry this).
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::OverCapacity => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::InsufficientNodes => 5,
            ErrorCode::UnknownLease => 6,
            ErrorCode::ShuttingDown => 7,
            ErrorCode::Internal => 8,
            ErrorCode::Retryable => 9,
            ErrorCode::Degraded => 10,
        }
    }

    /// Parse a byte code.
    pub fn from_code(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::UnsupportedVersion),
            3 => Some(ErrorCode::OverCapacity),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::InsufficientNodes),
            6 => Some(ErrorCode::UnknownLease),
            7 => Some(ErrorCode::ShuttingDown),
            8 => Some(ErrorCode::Internal),
            9 => Some(ErrorCode::Retryable),
            10 => Some(ErrorCode::Degraded),
            _ => None,
        }
    }

    /// True for codes a client may retry: the refusal was about the
    /// server's momentary state (full queue, missed deadline, explicit
    /// `retryable`), not about the request itself. `shutting_down` is
    /// deliberately not retryable — this daemon is going away.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::OverCapacity | ErrorCode::DeadlineExceeded | ErrorCode::Retryable
        )
    }
}

/// Every response kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A solved mapping.
    Map(MapResponse),
    /// A lease was torn down.
    Release {
        /// Echo of the request id.
        id: String,
        /// Nodes returned per site.
        freed: Vec<usize>,
        /// Free nodes per site after the release.
        free_nodes: Vec<usize>,
    },
    /// Counters and inventory state.
    Stats(StatsResponse),
    /// Shutdown acknowledged; the queue will drain.
    Shutdown {
        /// Echo of the request id.
        id: String,
        /// Requests still queued at the moment of acknowledgement.
        draining: u64,
    },
    /// Lease-journal lookup result.
    Journal(JournalResponse),
    /// The daemon's trace ring.
    TraceDump(TraceDumpResponse),
    /// A repaired mapping with its migration diff.
    RemapDiff(RemapDiffResponse),
    /// A refusal or failure.
    Error(ErrorResponse),
}

impl Response {
    /// The correlation id carried by any response kind.
    pub fn id(&self) -> &str {
        match self {
            Response::Map(r) => &r.id,
            Response::Release { id, .. } => id,
            Response::Stats(s) => &s.id,
            Response::Shutdown { id, .. } => id,
            Response::Journal(j) => &j.id,
            Response::TraceDump(t) => &t.id,
            Response::RemapDiff(r) => &r.id,
            Response::Error(e) => &e.id,
        }
    }

    /// Convenience: the error payload, if this is an error.
    pub fn as_error(&self) -> Option<&ErrorResponse> {
        match self {
            Response::Error(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn opt_u64(x: Option<u64>) -> Json {
    x.map_or(Json::Null, |v| Json::Num(v as f64))
}

fn usize_arr(xs: &[usize]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x as f64)).collect())
}

fn trace_ctx_json(t: &TraceContext) -> Json {
    obj(vec![
        ("id", Json::Num(t.trace_id as f64)),
        ("parent", Json::Num(t.parent_span as f64)),
        ("sampled", Json::Bool(t.sampled)),
    ])
}

fn trace_ctx_from_json(doc: &Json) -> Option<TraceContext> {
    let trace_id = doc.get("id").and_then(Json::as_u64)?;
    Some(TraceContext {
        trace_id,
        parent_span: doc.get("parent").and_then(Json::as_u64).unwrap_or(0),
        sampled: doc.get("sampled").and_then(Json::as_bool).unwrap_or(true),
    })
}

fn hist_summary_json(h: &HistSummary) -> Json {
    obj(vec![
        ("name", Json::Str(h.name.clone())),
        ("count", Json::Num(h.count as f64)),
        ("sum_us", Json::Num(h.sum_us as f64)),
        ("min_us", opt_u64(h.min_us)),
        ("max_us", opt_u64(h.max_us)),
        ("p50_us", Json::Num(h.p50_us as f64)),
        ("p90_us", Json::Num(h.p90_us as f64)),
        ("p99_us", Json::Num(h.p99_us as f64)),
        ("p999_us", Json::Num(h.p999_us as f64)),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(i, c)| Json::Arr(vec![Json::Num(f64::from(i)), Json::Num(c as f64)]))
                    .collect(),
            ),
        ),
    ])
}

fn hist_summary_from_json(doc: &Json) -> Result<HistSummary, String> {
    let buckets = doc
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram summary missing \"buckets\"")?
        .iter()
        .map(|pair| {
            let xs = pair.as_arr()?;
            if xs.len() != 2 {
                return None;
            }
            #[allow(clippy::cast_possible_truncation)]
            Some((xs[0].as_u64()? as u32, xs[1].as_u64()?))
        })
        .collect::<Option<Vec<_>>>()
        .ok_or("malformed histogram bucket pair")?;
    Ok(HistSummary {
        name: doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("histogram summary missing \"name\"")?
            .to_string(),
        count: doc.get("count").and_then(Json::as_u64).unwrap_or(0),
        sum_us: doc.get("sum_us").and_then(Json::as_u64).unwrap_or(0),
        min_us: doc.get("min_us").and_then(Json::as_u64),
        max_us: doc.get("max_us").and_then(Json::as_u64),
        p50_us: doc.get("p50_us").and_then(Json::as_u64).unwrap_or(0),
        p90_us: doc.get("p90_us").and_then(Json::as_u64).unwrap_or(0),
        p99_us: doc.get("p99_us").and_then(Json::as_u64).unwrap_or(0),
        p999_us: doc.get("p999_us").and_then(Json::as_u64).unwrap_or(0),
        buckets,
    })
}

fn stats_detail_json(d: &StatsDetail) -> Json {
    obj(vec![
        ("hist_schema", Json::Num(d.hist_schema as f64)),
        ("queue_depth", Json::Num(d.queue_depth as f64)),
        ("max_queue_depth", Json::Num(d.max_queue_depth as f64)),
        ("leased_nodes", usize_arr(&d.leased_nodes)),
        (
            "hists",
            Json::Arr(d.hists.iter().map(hist_summary_json).collect()),
        ),
        ("shards", Json::Num(d.shards as f64)),
    ])
}

fn stats_detail_from_json(doc: &Json) -> Result<StatsDetail, String> {
    let leased_nodes = doc
        .get("leased_nodes")
        .and_then(Json::as_arr)
        .ok_or("stats detail missing \"leased_nodes\"")?
        .iter()
        .map(|v| v.as_u64().map(|x| x as usize))
        .collect::<Option<Vec<_>>>()
        .ok_or("non-integer entry in \"leased_nodes\"")?;
    Ok(StatsDetail {
        hist_schema: doc.get("hist_schema").and_then(Json::as_u64).unwrap_or(0),
        queue_depth: doc.get("queue_depth").and_then(Json::as_u64).unwrap_or(0),
        max_queue_depth: doc
            .get("max_queue_depth")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        leased_nodes,
        hists: doc
            .get("hists")
            .and_then(Json::as_arr)
            .ok_or("stats detail missing \"hists\"")?
            .iter()
            .map(hist_summary_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        shards: doc.get("shards").and_then(Json::as_u64).unwrap_or(1),
    })
}

impl Request {
    /// Encode as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = ("v", Json::Num(PROTOCOL_VERSION as f64));
        match self {
            Request::Map(m) => {
                let mut fields = vec![
                    v,
                    ("kind", Json::Str("map".into())),
                    ("id", Json::Str(m.id.clone())),
                    ("pattern_csv", Json::Str(m.pattern_csv.clone())),
                    ("ranks", opt_u64(m.ranks.map(|r| r as u64))),
                    (
                        "constraints_csv",
                        m.constraints_csv.clone().map_or(Json::Null, Json::Str),
                    ),
                    ("algorithm", Json::Str(m.algorithm.clone())),
                    ("seed", Json::Num(m.seed as f64)),
                    ("kappa", Json::Num(m.kappa as f64)),
                    ("samples", Json::Num(m.samples as f64)),
                    (
                        "calibration",
                        obj(vec![
                            ("days", Json::Num(m.calibration.days as f64)),
                            ("probes", Json::Num(m.calibration.probes_per_day as f64)),
                            ("noise", Json::Num(m.calibration.noise_cv)),
                            ("loss", Json::Num(m.calibration.loss_rate)),
                            ("seed", Json::Num(m.calibration.seed as f64)),
                        ]),
                    ),
                    ("deadline_ms", opt_u64(m.deadline_ms)),
                    ("reserve", Json::Bool(m.reserve)),
                    ("lease_ttl_ms", opt_u64(m.lease_ttl_ms)),
                    ("cache", Json::Bool(m.use_result_cache)),
                    (
                        "idem",
                        m.idempotency_key.clone().map_or(Json::Null, Json::Str),
                    ),
                ];
                // Appended only when present: a request without trace
                // or multilevel extensions keeps its pre-extension
                // bytes exactly.
                if let Some(t) = &m.trace {
                    fields.push(("trace", trace_ctx_json(t)));
                }
                if let Some(ml) = &m.multilevel {
                    fields.push((
                        "multilevel",
                        obj(vec![
                            ("cutoff", Json::Num(ml.coarsen_cutoff as f64)),
                            ("rounds", Json::Num(ml.match_rounds as f64)),
                            ("passes", Json::Num(ml.refine_passes as f64)),
                        ]),
                    ));
                }
                obj(fields)
            }
            Request::Release { id, lease } => obj(vec![
                v,
                ("kind", Json::Str("release".into())),
                ("id", Json::Str(id.clone())),
                ("lease", Json::Num(*lease as f64)),
            ]),
            Request::Stats { id, detail } => {
                let mut fields = vec![
                    v,
                    ("kind", Json::Str("stats".into())),
                    ("id", Json::Str(id.clone())),
                ];
                if *detail {
                    fields.push(("detail", Json::Bool(true)));
                }
                obj(fields)
            }
            Request::Shutdown { id } => obj(vec![
                v,
                ("kind", Json::Str("shutdown".into())),
                ("id", Json::Str(id.clone())),
            ]),
            Request::Journal { id, key } => obj(vec![
                v,
                ("kind", Json::Str("journal".into())),
                ("id", Json::Str(id.clone())),
                ("key", Json::Str(key.clone())),
            ]),
            Request::TraceDump { id } => obj(vec![
                v,
                ("kind", Json::Str("trace_dump".into())),
                ("id", Json::Str(id.clone())),
            ]),
            Request::Remap(r) => obj(vec![
                v,
                ("kind", Json::Str("remap".into())),
                ("id", Json::Str(r.id.clone())),
                ("pattern_csv", Json::Str(r.pattern_csv.clone())),
                ("mapping", usize_arr(&r.mapping)),
                (
                    "constraints_csv",
                    r.constraints_csv.clone().map_or(Json::Null, Json::Str),
                ),
                ("budget", opt_u64(r.budget)),
                ("alpha", Json::Num(r.alpha)),
                (
                    "calibration",
                    obj(vec![
                        ("days", Json::Num(r.calibration.days as f64)),
                        ("probes", Json::Num(r.calibration.probes_per_day as f64)),
                        ("noise", Json::Num(r.calibration.noise_cv)),
                        ("loss", Json::Num(r.calibration.loss_rate)),
                        ("seed", Json::Num(r.calibration.seed as f64)),
                    ]),
                ),
                ("lease", opt_u64(r.lease)),
            ]),
        }
        .emit()
    }

    /// Decode one line. Failures come back as a ready-to-send
    /// [`ErrorResponse`] carrying the best-effort request id.
    pub fn from_line(line: &str) -> Result<Request, ErrorResponse> {
        let bad = |id: &str, message: String| ErrorResponse {
            id: id.to_string(),
            code: ErrorCode::BadRequest,
            message,
        };
        let doc = Json::parse(line).map_err(|e| bad("", format!("malformed JSON: {e}")))?;
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let version = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(&id, "missing schema version \"v\"".into()))?;
        if version != PROTOCOL_VERSION {
            return Err(ErrorResponse {
                id: id.clone(),
                code: ErrorCode::UnsupportedVersion,
                message: format!(
                    "protocol v{version} not supported (this daemon speaks v{PROTOCOL_VERSION})"
                ),
            });
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(&id, "missing \"kind\"".into()))?;
        match kind {
            "map" => {
                let pattern_csv = doc
                    .get("pattern_csv")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(&id, "map request needs \"pattern_csv\"".into()))?
                    .to_string();
                let mut m = MapRequest::new(id.clone(), pattern_csv);
                m.ranks = doc.get("ranks").and_then(Json::as_u64).map(|r| r as usize);
                m.constraints_csv = doc
                    .get("constraints_csv")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                if let Some(a) = doc.get("algorithm").and_then(Json::as_str) {
                    m.algorithm = a.to_string();
                }
                if let Some(s) = doc.get("seed").and_then(Json::as_u64) {
                    m.seed = s;
                }
                if let Some(k) = doc.get("kappa").and_then(Json::as_u64) {
                    m.kappa = k as usize;
                }
                if let Some(s) = doc.get("samples").and_then(Json::as_u64) {
                    m.samples = s as usize;
                }
                if let Some(c) = doc.get("calibration") {
                    let d = CalibSpec::default();
                    m.calibration = CalibSpec {
                        days: c
                            .get("days")
                            .and_then(Json::as_u64)
                            .unwrap_or(d.days as u64) as usize,
                        probes_per_day: c
                            .get("probes")
                            .and_then(Json::as_u64)
                            .unwrap_or(d.probes_per_day as u64)
                            as usize,
                        noise_cv: c.get("noise").and_then(Json::as_f64).unwrap_or(d.noise_cv),
                        loss_rate: c.get("loss").and_then(Json::as_f64).unwrap_or(d.loss_rate),
                        seed: c.get("seed").and_then(Json::as_u64).unwrap_or(d.seed),
                    };
                    if !(m.calibration.noise_cv.is_finite() && m.calibration.noise_cv >= 0.0) {
                        return Err(bad(&id, "calibration noise must be finite and >= 0".into()));
                    }
                    if !(m.calibration.loss_rate.is_finite()
                        && (0.0..1.0).contains(&m.calibration.loss_rate))
                    {
                        return Err(bad(&id, "calibration loss must be in [0, 1)".into()));
                    }
                }
                m.deadline_ms = doc.get("deadline_ms").and_then(Json::as_u64);
                m.reserve = doc.get("reserve").and_then(Json::as_bool).unwrap_or(false);
                m.lease_ttl_ms = doc.get("lease_ttl_ms").and_then(Json::as_u64);
                m.use_result_cache = doc.get("cache").and_then(Json::as_bool).unwrap_or(true);
                m.idempotency_key = doc.get("idem").and_then(Json::as_str).map(str::to_string);
                m.trace = doc.get("trace").and_then(trace_ctx_from_json);
                if let Some(ml) = doc.get("multilevel") {
                    let d = MultilevelSpec::default();
                    let spec = MultilevelSpec {
                        coarsen_cutoff: ml
                            .get("cutoff")
                            .and_then(Json::as_u64)
                            .unwrap_or(d.coarsen_cutoff as u64)
                            as usize,
                        match_rounds: ml
                            .get("rounds")
                            .and_then(Json::as_u64)
                            .unwrap_or(d.match_rounds as u64)
                            as usize,
                        refine_passes: ml
                            .get("passes")
                            .and_then(Json::as_u64)
                            .unwrap_or(d.refine_passes as u64)
                            as usize,
                    };
                    if spec.coarsen_cutoff == 0 {
                        return Err(bad(&id, "multilevel cutoff must be >= 1".into()));
                    }
                    if spec.match_rounds == 0 {
                        return Err(bad(&id, "multilevel rounds must be >= 1".into()));
                    }
                    m.multilevel = Some(spec);
                }
                Ok(Request::Map(m))
            }
            "release" => {
                let lease = doc
                    .get("lease")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(&id, "release request needs a numeric \"lease\"".into()))?;
                Ok(Request::Release { id, lease })
            }
            "stats" => Ok(Request::Stats {
                id,
                detail: doc.get("detail").and_then(Json::as_bool).unwrap_or(false),
            }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "journal" => {
                let key = doc
                    .get("key")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(&id, "journal request needs a string \"key\"".into()))?
                    .to_string();
                Ok(Request::Journal { id, key })
            }
            "trace_dump" => Ok(Request::TraceDump { id }),
            "remap" => {
                let pattern_csv = doc
                    .get("pattern_csv")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(&id, "remap request needs \"pattern_csv\"".into()))?
                    .to_string();
                let mapping = doc
                    .get("mapping")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad(&id, "remap request needs a \"mapping\" array".into()))?
                    .iter()
                    .map(|v| v.as_u64().map(|x| x as usize))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad(&id, "non-integer entry in \"mapping\"".into()))?;
                if mapping.is_empty() {
                    return Err(bad(&id, "remap request needs a non-empty mapping".into()));
                }
                let mut r = RemapRequest::new(id.clone(), pattern_csv, mapping);
                r.constraints_csv = doc
                    .get("constraints_csv")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                r.budget = doc.get("budget").and_then(Json::as_u64);
                if let Some(a) = doc.get("alpha").and_then(Json::as_f64) {
                    if !(a.is_finite() && a >= 0.0) {
                        return Err(bad(&id, "remap alpha must be finite and >= 0".into()));
                    }
                    r.alpha = a;
                }
                if let Some(c) = doc.get("calibration") {
                    let d = CalibSpec::default();
                    r.calibration = CalibSpec {
                        days: c
                            .get("days")
                            .and_then(Json::as_u64)
                            .unwrap_or(d.days as u64) as usize,
                        probes_per_day: c
                            .get("probes")
                            .and_then(Json::as_u64)
                            .unwrap_or(d.probes_per_day as u64)
                            as usize,
                        noise_cv: c.get("noise").and_then(Json::as_f64).unwrap_or(d.noise_cv),
                        loss_rate: c.get("loss").and_then(Json::as_f64).unwrap_or(d.loss_rate),
                        seed: c.get("seed").and_then(Json::as_u64).unwrap_or(d.seed),
                    };
                }
                r.lease = doc.get("lease").and_then(Json::as_u64);
                Ok(Request::Remap(r))
            }
            other => Err(bad(&id, format!("unknown request kind {other:?}"))),
        }
    }
}

impl Response {
    /// Encode as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = ("v", Json::Num(PROTOCOL_VERSION as f64));
        match self {
            Response::Map(r) => obj(vec![
                v,
                ("kind", Json::Str("map_response".into())),
                ("id", Json::Str(r.id.clone())),
                ("mapping", usize_arr(&r.mapping)),
                ("cost", Json::Num(r.cost)),
                ("cached", Json::Str(r.cached.label().into())),
                ("queue_wait_s", Json::Num(r.queue_wait_s)),
                ("solve_s", Json::Num(r.solve_s)),
                ("lease", opt_u64(r.lease)),
                ("site_counts", usize_arr(&r.site_counts)),
                ("free_nodes", usize_arr(&r.free_nodes)),
                ("degraded", Json::Bool(r.degraded)),
                ("staleness", Json::Num(r.staleness as f64)),
            ]),
            Response::Release {
                id,
                freed,
                free_nodes,
            } => obj(vec![
                v,
                ("kind", Json::Str("release_response".into())),
                ("id", Json::Str(id.clone())),
                ("freed", usize_arr(freed)),
                ("free_nodes", usize_arr(free_nodes)),
            ]),
            Response::Stats(s) => {
                let mut fields = vec![
                    v,
                    ("kind", Json::Str("stats_response".into())),
                    ("id", Json::Str(s.id.clone())),
                    ("served", Json::Num(s.served as f64)),
                    ("result_hits", Json::Num(s.result_hits as f64)),
                    ("problem_hits", Json::Num(s.problem_hits as f64)),
                    ("misses", Json::Num(s.misses as f64)),
                    ("rejected", Json::Num(s.rejected as f64)),
                    ("replays", Json::Num(s.replays as f64)),
                    ("free_nodes", usize_arr(&s.free_nodes)),
                    ("active_leases", Json::Num(s.active_leases as f64)),
                ];
                // Only when asked for: a plain stats exchange stays
                // byte-identical to the pre-observability wire format.
                if let Some(d) = &s.detail {
                    fields.push(("detail", stats_detail_json(d)));
                }
                obj(fields)
            }
            Response::Shutdown { id, draining } => obj(vec![
                v,
                ("kind", Json::Str("shutdown_response".into())),
                ("id", Json::Str(id.clone())),
                ("draining", Json::Num(*draining as f64)),
            ]),
            Response::Journal(j) => obj(vec![
                v,
                ("kind", Json::Str("journal_response".into())),
                ("id", Json::Str(j.id.clone())),
                ("key", Json::Str(j.key.clone())),
                ("held", Json::Bool(j.held)),
                ("lease", opt_u64(j.lease)),
                ("site_counts", usize_arr(&j.site_counts)),
            ]),
            Response::TraceDump(t) => obj(vec![
                v,
                ("kind", Json::Str("trace_dump_response".into())),
                ("id", Json::Str(t.id.clone())),
                ("now_s", Json::Num(t.now_s)),
                ("dropped", Json::Num(t.dropped as f64)),
                (
                    "tracks",
                    Json::Arr(
                        t.tracks
                            .iter()
                            .map(|tr| {
                                obj(vec![
                                    ("track", Json::Num(f64::from(tr.track))),
                                    ("process", Json::Str(tr.process.clone())),
                                    ("name", Json::Str(tr.name.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "events",
                    Json::Arr(
                        t.events
                            .iter()
                            .map(|e| {
                                obj(vec![
                                    ("track", Json::Num(f64::from(e.track))),
                                    ("name", Json::Str(e.name.clone())),
                                    ("kind", Json::Num(f64::from(e.kind))),
                                    ("ts_s", Json::Num(e.ts_s)),
                                    ("value", Json::Num(e.value)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::RemapDiff(r) => obj(vec![
                v,
                ("kind", Json::Str("remap_response".into())),
                ("id", Json::Str(r.id.clone())),
                ("mapping", usize_arr(&r.mapping)),
                ("moved", usize_arr(&r.moved)),
                ("old_cost", Json::Num(r.old_cost)),
                ("new_cost", Json::Num(r.new_cost)),
                ("migrations", Json::Num(r.migrations as f64)),
                ("lease", opt_u64(r.lease)),
                ("free_nodes", usize_arr(&r.free_nodes)),
            ]),
            Response::Error(e) => obj(vec![
                v,
                ("kind", Json::Str("error".into())),
                ("id", Json::Str(e.id.clone())),
                ("code", Json::Str(e.code.label().into())),
                ("message", Json::Str(e.message.clone())),
            ]),
        }
        .emit()
    }

    /// Decode one line (the client side).
    pub fn from_line(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line).map_err(|e| format!("malformed response JSON: {e}"))?;
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let version = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("response missing schema version \"v\"")?;
        if version != PROTOCOL_VERSION {
            return Err(format!("unsupported response protocol v{version}"));
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("response missing \"kind\"")?;
        let usizes = |key: &str| -> Result<Vec<usize>, String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("response missing array {key:?}"))?
                .iter()
                .map(|v| v.as_u64().map(|x| x as usize))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| format!("non-integer entry in {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing integer {key:?}"))
        };
        match kind {
            "map_response" => Ok(Response::Map(MapResponse {
                id,
                mapping: usizes("mapping")?,
                cost: doc
                    .get("cost")
                    .and_then(Json::as_f64)
                    .ok_or("response missing \"cost\"")?,
                cached: doc
                    .get("cached")
                    .and_then(Json::as_str)
                    .and_then(CacheTier::parse)
                    .ok_or("response missing/invalid \"cached\"")?,
                queue_wait_s: doc
                    .get("queue_wait_s")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                solve_s: doc.get("solve_s").and_then(Json::as_f64).unwrap_or(0.0),
                lease: doc.get("lease").and_then(Json::as_u64),
                site_counts: usizes("site_counts")?,
                free_nodes: usizes("free_nodes")?,
                degraded: doc.get("degraded").and_then(Json::as_bool).unwrap_or(false),
                staleness: doc.get("staleness").and_then(Json::as_u64).unwrap_or(0),
            })),
            "release_response" => Ok(Response::Release {
                id,
                freed: usizes("freed")?,
                free_nodes: usizes("free_nodes")?,
            }),
            "stats_response" => Ok(Response::Stats(StatsResponse {
                id,
                served: u64_field("served")?,
                result_hits: u64_field("result_hits")?,
                problem_hits: u64_field("problem_hits")?,
                misses: u64_field("misses")?,
                rejected: u64_field("rejected")?,
                replays: doc.get("replays").and_then(Json::as_u64).unwrap_or(0),
                free_nodes: usizes("free_nodes")?,
                active_leases: u64_field("active_leases")?,
                detail: match doc.get("detail") {
                    None => None,
                    Some(d) => Some(stats_detail_from_json(d)?),
                },
            })),
            "shutdown_response" => Ok(Response::Shutdown {
                id,
                draining: u64_field("draining")?,
            }),
            "journal_response" => Ok(Response::Journal(JournalResponse {
                id,
                key: doc
                    .get("key")
                    .and_then(Json::as_str)
                    .ok_or("journal response missing \"key\"")?
                    .to_string(),
                held: doc
                    .get("held")
                    .and_then(Json::as_bool)
                    .ok_or("journal response missing \"held\"")?,
                lease: doc.get("lease").and_then(Json::as_u64),
                site_counts: usizes("site_counts")?,
            })),
            "trace_dump_response" => {
                let tracks = doc
                    .get("tracks")
                    .and_then(Json::as_arr)
                    .ok_or("trace dump missing \"tracks\"")?
                    .iter()
                    .map(|tr| {
                        #[allow(clippy::cast_possible_truncation)]
                        Some(WireTrack {
                            track: tr.get("track").and_then(Json::as_u64)? as u32,
                            process: tr.get("process").and_then(Json::as_str)?.to_string(),
                            name: tr.get("name").and_then(Json::as_str)?.to_string(),
                        })
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or("malformed trace dump track")?;
                let events = doc
                    .get("events")
                    .and_then(Json::as_arr)
                    .ok_or("trace dump missing \"events\"")?
                    .iter()
                    .map(|e| {
                        #[allow(clippy::cast_possible_truncation)]
                        Some(WireTraceEvent {
                            track: e.get("track").and_then(Json::as_u64)? as u32,
                            name: e.get("name").and_then(Json::as_str)?.to_string(),
                            kind: e.get("kind").and_then(Json::as_u64)? as u8,
                            ts_s: e.get("ts_s").and_then(Json::as_f64)?,
                            value: e.get("value").and_then(Json::as_f64).unwrap_or(0.0),
                        })
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or("malformed trace dump event")?;
                Ok(Response::TraceDump(TraceDumpResponse {
                    id,
                    now_s: doc.get("now_s").and_then(Json::as_f64).unwrap_or(0.0),
                    dropped: doc.get("dropped").and_then(Json::as_u64).unwrap_or(0),
                    tracks,
                    events,
                }))
            }
            "remap_response" => Ok(Response::RemapDiff(RemapDiffResponse {
                id,
                mapping: usizes("mapping")?,
                moved: usizes("moved")?,
                old_cost: doc
                    .get("old_cost")
                    .and_then(Json::as_f64)
                    .ok_or("remap response missing \"old_cost\"")?,
                new_cost: doc
                    .get("new_cost")
                    .and_then(Json::as_f64)
                    .ok_or("remap response missing \"new_cost\"")?,
                migrations: doc.get("migrations").and_then(Json::as_u64).unwrap_or(0),
                lease: doc.get("lease").and_then(Json::as_u64),
                free_nodes: usizes("free_nodes")?,
            })),
            "error" => Ok(Response::Error(ErrorResponse {
                id,
                code: doc
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .ok_or("error response missing/invalid \"code\"")?,
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            })),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_request_roundtrips_with_all_fields() {
        let mut m = MapRequest::new("r1", "src,dst,bytes,msgs\n0,1,5,2\n");
        m.ranks = Some(16);
        m.constraints_csv = Some("process,site\n0,3\n".into());
        m.algorithm = "mpipp".into();
        m.seed = 99;
        m.kappa = 3;
        m.samples = 500;
        m.calibration = CalibSpec {
            days: 1,
            probes_per_day: 2,
            noise_cv: 0.1,
            loss_rate: 0.25,
            seed: 7,
        };
        m.deadline_ms = Some(250);
        m.reserve = true;
        m.lease_ttl_ms = Some(60_000);
        m.use_result_cache = false;
        m.idempotency_key = Some("client-7/42".into());
        let req = Request::Map(m);
        let back = Request::from_line(&req.to_line()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn map_request_defaults_fill_in() {
        let line = r#"{"v":1,"kind":"map","id":"d","pattern_csv":"src,dst,bytes,msgs\n"}"#;
        let Request::Map(m) = Request::from_line(line).unwrap() else {
            panic!("not a map request")
        };
        assert_eq!(m.algorithm, "geo");
        assert_eq!(m.kappa, 4);
        assert_eq!(m.calibration, CalibSpec::default());
        assert!(m.use_result_cache);
        assert!(!m.reserve);
    }

    #[test]
    fn control_requests_roundtrip() {
        for req in [
            Request::Release {
                id: "a".into(),
                lease: 7,
            },
            Request::Stats {
                id: "b".into(),
                detail: false,
            },
            Request::Stats {
                id: "b2".into(),
                detail: true,
            },
            Request::Shutdown { id: "c".into() },
            Request::Journal {
                id: "d".into(),
                key: "client-7/42".into(),
            },
            Request::TraceDump { id: "t".into() },
        ] {
            assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn traced_map_request_roundtrips_and_absent_trace_is_unchanged() {
        let plain = MapRequest::new("r1", "src,dst,bytes,msgs\n0,1,5,2\n");
        let line = Request::Map(plain.clone()).to_line();
        assert!(
            !line.contains("trace"),
            "untraced request leaked a trace key"
        );
        let mut traced = plain;
        traced.trace = Some(TraceContext {
            trace_id: 0xBEEF,
            parent_span: 7,
            sampled: true,
        });
        let req = Request::Map(traced);
        assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
    }

    #[test]
    fn plain_stats_request_has_no_detail_key() {
        let line = Request::Stats {
            id: "s".into(),
            detail: false,
        }
        .to_line();
        assert!(!line.contains("detail"), "{line}");
    }

    #[test]
    fn root_trace_context_is_nonzero_and_f64_safe() {
        assert_eq!(TraceContext::root(0).trace_id, 1);
        assert_eq!(TraceContext::root(u64::MAX).trace_id, (1 << 53) - 1);
        let t = TraceContext::root(42);
        assert_eq!(t.trace_id, 42);
        assert!(t.sampled);
        assert_eq!(t.parent_span, 0);
    }

    #[test]
    fn remap_request_roundtrips_with_all_fields() {
        let mut r = RemapRequest::new("rm1", "src,dst,bytes,msgs\n0,1,5,2\n", vec![0, 1, 1, 0]);
        r.constraints_csv = Some("process,site\n0,0\n".into());
        r.budget = Some(2);
        r.alpha = 0.125;
        r.calibration = CalibSpec {
            days: 1,
            probes_per_day: 2,
            noise_cv: 0.1,
            loss_rate: 0.25,
            seed: 7,
        };
        r.lease = Some(42);
        let req = Request::Remap(r);
        assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
        let defaults = Request::Remap(RemapRequest::new("rm2", "src,dst,bytes,msgs\n", vec![0]));
        assert_eq!(Request::from_line(&defaults.to_line()).unwrap(), defaults);
    }

    #[test]
    fn remap_request_validation() {
        let err = Request::from_line(r#"{"v":1,"kind":"remap","id":"a"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        let err = Request::from_line(
            r#"{"v":1,"kind":"remap","id":"a","pattern_csv":"src,dst,bytes,msgs\n","mapping":[]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("non-empty"), "{}", err.message);
        let err = Request::from_line(
            r#"{"v":1,"kind":"remap","id":"a","pattern_csv":"s\n","mapping":[0],"alpha":-1.0}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("alpha"), "{}", err.message);
    }

    #[test]
    fn remap_responses_roundtrip() {
        for resp in [
            Response::RemapDiff(RemapDiffResponse {
                id: "rm".into(),
                mapping: vec![1, 1, 0, 0],
                moved: vec![0, 2],
                old_cost: 9.5,
                new_cost: 7.25,
                migrations: 2,
                lease: Some(3),
                free_nodes: vec![2, 2],
            }),
            Response::RemapDiff(RemapDiffResponse {
                id: "noop".into(),
                mapping: vec![0],
                moved: vec![],
                old_cost: 1.0,
                new_cost: 1.0,
                migrations: 0,
                lease: None,
                free_nodes: vec![4],
            }),
        ] {
            assert_eq!(
                Response::from_line(&resp.to_line()).unwrap(),
                resp,
                "{resp:?}"
            );
        }
    }

    #[test]
    fn journal_responses_roundtrip() {
        for resp in [
            Response::Journal(JournalResponse {
                id: "j1".into(),
                key: "auto-00ff-3".into(),
                held: true,
                lease: Some(12),
                site_counts: vec![2, 0, 1],
            }),
            Response::Journal(JournalResponse {
                id: "j2".into(),
                key: "gone".into(),
                held: false,
                lease: None,
                site_counts: vec![],
            }),
        ] {
            assert_eq!(
                Response::from_line(&resp.to_line()).unwrap(),
                resp,
                "{resp:?}"
            );
        }
    }

    #[test]
    fn journal_request_without_key_is_bad_request() {
        let err = Request::from_line(r#"{"v":1,"kind":"journal","id":"a"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("key"), "{}", err.message);
    }

    #[test]
    fn responses_roundtrip() {
        let responses = [
            Response::Map(MapResponse {
                id: "r".into(),
                mapping: vec![0, 1, 1, 0],
                cost: 1.25,
                cached: CacheTier::Problem,
                queue_wait_s: 0.001,
                solve_s: 0.5,
                lease: Some(3),
                site_counts: vec![2, 2],
                free_nodes: vec![0, 0],
                degraded: true,
                staleness: 2,
            }),
            Response::Release {
                id: "x".into(),
                freed: vec![2, 2],
                free_nodes: vec![4, 4],
            },
            Response::Stats(StatsResponse {
                id: "s".into(),
                served: 10,
                result_hits: 4,
                problem_hits: 3,
                misses: 3,
                rejected: 1,
                replays: 2,
                free_nodes: vec![1, 2],
                active_leases: 2,
                detail: None,
            }),
            Response::Stats(StatsResponse {
                id: "s2".into(),
                served: 3,
                free_nodes: vec![4],
                detail: Some(StatsDetail {
                    hist_schema: crate::hist::SCHEMA_VERSION,
                    queue_depth: 2,
                    max_queue_depth: 9,
                    leased_nodes: vec![1],
                    hists: vec![HistSummary {
                        name: "map_e2e".into(),
                        count: 2,
                        sum_us: 300,
                        min_us: Some(100),
                        max_us: Some(200),
                        p50_us: 103,
                        p90_us: 207,
                        p99_us: 207,
                        p999_us: 207,
                        buckets: vec![(52, 1), (60, 1)],
                    }],
                    shards: 1,
                }),
                ..StatsResponse::default()
            }),
            Response::TraceDump(TraceDumpResponse {
                id: "td".into(),
                now_s: 1.5,
                dropped: 3,
                tracks: vec![WireTrack {
                    track: 0,
                    process: "service".into(),
                    name: "worker-0".into(),
                }],
                events: vec![
                    WireTraceEvent {
                        track: 0,
                        name: "request".into(),
                        kind: WireTraceEvent::SPAN_BEGIN,
                        ts_s: 0.25,
                        value: 48879.0,
                    },
                    WireTraceEvent {
                        track: 0,
                        name: "request".into(),
                        kind: WireTraceEvent::SPAN_END,
                        ts_s: 0.75,
                        value: 0.0,
                    },
                ],
            }),
            Response::Shutdown {
                id: "q".into(),
                draining: 5,
            },
            Response::Error(ErrorResponse {
                id: "e".into(),
                code: ErrorCode::OverCapacity,
                message: "queue full (64 waiting)".into(),
            }),
        ];
        for r in responses {
            assert_eq!(Response::from_line(&r.to_line()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn wrong_version_is_refused_with_code() {
        let line = r#"{"v":2,"kind":"stats","id":"z"}"#;
        let err = Request::from_line(line).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
        assert_eq!(err.id, "z");
    }

    #[test]
    fn malformed_json_is_bad_request() {
        let err = Request::from_line("{not json").unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("malformed JSON"), "{}", err.message);
    }

    #[test]
    fn missing_fields_are_bad_request() {
        for line in [
            r#"{"v":1,"id":"a"}"#,
            r#"{"v":1,"kind":"map","id":"a"}"#,
            r#"{"v":1,"kind":"release","id":"a"}"#,
            r#"{"v":1,"kind":"frobnicate","id":"a"}"#,
            r#"{"kind":"stats","id":"a"}"#,
        ] {
            let err = Request::from_line(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
            assert_eq!(err.id, if line.contains("\"id\"") { "a" } else { "" });
        }
    }

    #[test]
    fn all_error_codes_roundtrip_their_labels() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::OverCapacity,
            ErrorCode::DeadlineExceeded,
            ErrorCode::InsufficientNodes,
            ErrorCode::UnknownLease,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::Retryable,
            ErrorCode::Degraded,
        ] {
            assert_eq!(ErrorCode::parse(code.label()), Some(code));
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(11), None);
    }

    #[test]
    fn cache_tier_byte_codes_roundtrip() {
        for tier in [CacheTier::Miss, CacheTier::Problem, CacheTier::Result] {
            assert_eq!(CacheTier::from_code(tier.code()), Some(tier));
        }
        assert_eq!(CacheTier::from_code(3), None);
    }

    #[test]
    fn retryable_classification_is_stable() {
        for (code, retryable) in [
            (ErrorCode::BadRequest, false),
            (ErrorCode::UnsupportedVersion, false),
            (ErrorCode::OverCapacity, true),
            (ErrorCode::DeadlineExceeded, true),
            (ErrorCode::InsufficientNodes, false),
            (ErrorCode::UnknownLease, false),
            (ErrorCode::ShuttingDown, false),
            (ErrorCode::Internal, false),
            (ErrorCode::Retryable, true),
            (ErrorCode::Degraded, false),
        ] {
            assert_eq!(code.is_retryable(), retryable, "{}", code.label());
        }
    }

    #[test]
    fn invalid_loss_rate_is_bad_request() {
        for loss in ["1.0", "-0.1", "2"] {
            let line = format!(
                r#"{{"v":1,"kind":"map","id":"a","pattern_csv":"src,dst,bytes,msgs\n","calibration":{{"loss":{loss}}}}}"#
            );
            let err = Request::from_line(&line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
            assert!(err.message.contains("loss"), "{}", err.message);
        }
    }

    #[test]
    fn missing_degradation_fields_decode_as_fresh() {
        // A v1 response written before the degradation fields existed.
        let line = concat!(
            r#"{"v":1,"kind":"map_response","id":"old","mapping":[0],"cost":1.0,"#,
            r#""cached":"miss","site_counts":[1],"free_nodes":[3]}"#
        );
        let Response::Map(r) = Response::from_line(line).unwrap() else {
            panic!("not a map response")
        };
        assert!(!r.degraded);
        assert_eq!(r.staleness, 0);
    }
}
