//! Clients for the daemon: a plain blocking one, a resilient one, and
//! a pooled pipelining one for load.
//!
//! [`ServiceClient`] is the original single-shot client — one request
//! per call over a [`TcpTransport`],
//! string errors that read well on one diagnostic line.
//!
//! [`RetryingClient`] layers resilience on any
//! [`Connector`]: a retry budget, capped
//! exponential backoff with deterministic jitter (seeded from the
//! vendored RNG — two clients with the same [`RetryPolicy`] back off
//! identically), reconnect-on-failure, and retry on transient server
//! refusals ([`ErrorCode::is_retryable`]). Retrying a *reserving* map
//! request is only safe with an idempotency key — the server replays
//! the remembered response instead of reserving twice — so
//! [`RetryingClient::map`] generates one automatically and
//! [`RetryingClient::send`] refuses to blind-retry a reserving request
//! after an ambiguous failure (see
//! [`TransportError::is_ambiguous`](crate::transport::TransportError::is_ambiguous)).
//!
//! [`PooledClient`] is the throughput client: a small pool of
//! persistent v2 connections with many requests in flight per socket.
//! A batch is encoded into one contiguous byte run per connection and
//! written with a single syscall; responses are matched back to their
//! requests by the correlation id in the frame header, so the caller
//! gets answers in submission order regardless of arrival order.
//!
//! All three speak either [`WireFormat`]: requests go out in the
//! client's configured format, responses are sniffed per message, and
//! on v2 the correlation id is verified — a mismatch is treated exactly
//! like a garbled response.

use crate::frame::FRAME_MAGIC;
use crate::proto::{ErrorCode, MapRequest, Request, Response};
use crate::transport::{Connector, TcpTransport, Transport};
use crate::wire::WireFormat;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::time::Duration;

/// True when `msg` is a v2 frame (whose decoded correlation id is
/// meaningful, unlike the 0 that v1 lines decode to).
fn is_frame(msg: &[u8]) -> bool {
    msg.first() == Some(&FRAME_MAGIC)
}

/// A connected single-shot client (no retries; failures are strings).
#[derive(Debug)]
pub struct ServiceClient {
    transport: TcpTransport,
    next_corr: u64,
}

impl ServiceClient {
    /// Connect to `addr` (host:port) speaking v1 JSON lines. `timeout`
    /// bounds the connection attempt and every subsequent read/write
    /// (`None`: OS defaults).
    pub fn connect(addr: &str, timeout: Option<Duration>) -> Result<Self, String> {
        Self::connect_with(addr, timeout, WireFormat::V1Json)
    }

    /// Connect speaking `format`.
    pub fn connect_with(
        addr: &str,
        timeout: Option<Duration>,
        format: WireFormat,
    ) -> Result<Self, String> {
        TcpTransport::connect_with(addr, timeout, format)
            .map(|transport| Self {
                transport,
                next_corr: 0,
            })
            .map_err(|e| e.to_string())
    }

    /// Send one request and wait for its response.
    pub fn send(&mut self, request: &Request) -> Result<Response, String> {
        self.next_corr += 1;
        let corr = self.next_corr;
        let msg = self.transport.format().encode_request(request, corr);
        self.transport.send_msg(&msg).map_err(|e| e.to_string())?;
        let reply = self.transport.recv_msg().map_err(|e| e.to_string())?;
        let framed = is_frame(&reply);
        let (reply_corr, response) = WireFormat::decode_response(&reply)?;
        if framed && reply_corr != corr {
            return Err(format!(
                "response correlation id {reply_corr} does not match request {corr}"
            ));
        }
        Ok(response)
    }

    /// Shorthand: send a `map` request.
    pub fn map(&mut self, request: MapRequest) -> Result<Response, String> {
        self.send(&Request::Map(request))
    }

    /// Shorthand: send a bounded-migration `remap` request.
    pub fn remap(&mut self, request: crate::proto::RemapRequest) -> Result<Response, String> {
        self.send(&Request::Remap(request))
    }

    /// Shorthand: release a lease.
    pub fn release(&mut self, id: &str, lease: u64) -> Result<Response, String> {
        self.send(&Request::Release {
            id: id.to_string(),
            lease,
        })
    }

    /// Shorthand: fetch server counters.
    pub fn stats(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::Stats {
            id: id.to_string(),
            detail: false,
        })
    }

    /// Shorthand: fetch server counters with histogram/queue detail.
    pub fn stats_detailed(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::Stats {
            id: id.to_string(),
            detail: true,
        })
    }

    /// Shorthand: dump the daemon's trace ring.
    pub fn trace_dump(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::TraceDump { id: id.to_string() })
    }

    /// Shorthand: ask the daemon to drain and exit.
    pub fn shutdown(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::Shutdown { id: id.to_string() })
    }
}

/// How hard a [`RetryingClient`] tries.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff pause.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter *and* the client's
    /// auto-generated idempotency keys — give every client its own.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x7E7B,
        }
    }
}

impl RetryPolicy {
    /// The full backoff schedule (one pause per possible retry):
    /// `min(base · 2^i, cap)` scaled by a jitter factor in `[0.5, 1.0)`
    /// drawn from the seeded RNG. Pure: same policy, same schedule.
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| {
                let exp = self
                    .base_backoff
                    .saturating_mul(2u32.saturating_pow(i))
                    .min(self.max_backoff);
                let jitter = 0.5 + 0.5 * rng.random_range(0.0..1.0f64);
                Duration::from_secs_f64(exp.as_secs_f64() * jitter)
            })
            .collect()
    }
}

/// Why a [`RetryingClient`] call gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every attempt failed transiently; trying again later may work.
    Retryable {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last failure, verbatim.
        last_error: String,
    },
    /// Retrying would be wrong (e.g. a reserving map request without an
    /// idempotency key failed ambiguously — a retry could reserve
    /// twice).
    Fatal(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Retryable {
                attempts,
                last_error,
            } => write!(
                f,
                "{}: gave up after {attempts} attempts: {last_error}",
                ErrorCode::Retryable.label()
            ),
            ClientError::Fatal(m) => write!(f, "fatal: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client that retries through any [`Connector`].
#[derive(Debug)]
pub struct RetryingClient<C: Connector> {
    connector: C,
    policy: RetryPolicy,
    backoffs: Vec<Duration>,
    conn: Option<C::Conn>,
    client_tag: u64,
    next_key: u64,
    next_corr: u64,
}

impl<C: Connector> RetryingClient<C> {
    /// A client that connects through `connector` under `policy`.
    pub fn new(connector: C, policy: RetryPolicy) -> Self {
        let backoffs = policy.backoff_schedule();
        let client_tag = crate::fingerprint::Fingerprint::new()
            .u64(policy.seed)
            .finish();
        Self {
            connector,
            policy,
            backoffs,
            conn: None,
            client_tag,
            next_key: 0,
            next_corr: 0,
        }
    }

    /// The policy this client runs under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The next auto-idempotency key: deterministic per (seed,
    /// sequence), unique per logical request within this client.
    fn generate_key(&mut self) -> String {
        self.next_key += 1;
        format!("auto-{:016x}-{}", self.client_tag, self.next_key)
    }

    /// Send a `map` request, auto-filling an idempotency key when the
    /// request reserves inventory and carries none — making every retry
    /// safe by construction. Keyed even at `max_attempts == 1`: the
    /// *caller* may retry after an ambiguous failure, and the key is
    /// what makes that safe.
    pub fn map(&mut self, mut request: MapRequest) -> Result<Response, ClientError> {
        if request.reserve && request.idempotency_key.is_none() {
            request.idempotency_key = Some(self.generate_key());
        }
        self.send(&Request::Map(request))
    }

    /// Shorthand: release a lease (a redundant release after a lost
    /// response comes back as a clean `unknown_lease`, never a
    /// double-free — the inventory already forgot the lease).
    pub fn release(&mut self, id: &str, lease: u64) -> Result<Response, ClientError> {
        self.send(&Request::Release {
            id: id.to_string(),
            lease,
        })
    }

    /// Shorthand: fetch server counters (read-only, always retry-safe).
    pub fn stats(&mut self, id: &str) -> Result<Response, ClientError> {
        self.send(&Request::Stats {
            id: id.to_string(),
            detail: false,
        })
    }

    /// Send one request with retries. Returns the server's response —
    /// including non-retryable `Error` responses, which *are* the
    /// answer — or a [`ClientError`] once the budget is spent.
    pub fn send(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.next_corr += 1;
        let corr = self.next_corr;
        // One logical request keeps one correlation id across retries:
        // the id identifies the request, not the attempt.
        let msg = self.connector.format().encode_request(request, corr);
        // A reserving map request without an idempotency key must not
        // be retried after an ambiguous failure: the first attempt may
        // have reserved, and a retry would reserve again.
        let ambiguity_unsafe =
            matches!(request, Request::Map(m) if m.reserve && m.idempotency_key.is_none());
        let mut last_error = String::from("no attempt made");
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                let pause = self.backoffs[(attempt - 1) as usize];
                self.connector.backoff(pause);
            }
            if self.conn.is_none() {
                match self.connector.connect() {
                    Ok(c) => self.conn = Some(c),
                    Err(e) => {
                        last_error = e.to_string();
                        continue; // unambiguous: nothing was sent
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection just established");
            let outcome = conn.send_msg(&msg).and_then(|()| conn.recv_msg());
            match outcome {
                Ok(reply) => {
                    let framed = is_frame(&reply);
                    let decoded = WireFormat::decode_response(&reply).and_then(|(c, r)| {
                        if framed && c != corr {
                            Err(format!(
                                "response correlation id {c} does not match request {corr}"
                            ))
                        } else {
                            Ok(r)
                        }
                    });
                    match decoded {
                        Ok(Response::Error(e)) if e.code.is_retryable() => {
                            // A clean, transient refusal: the connection
                            // is fine, the server's moment was not.
                            last_error = format!("{}: {}", e.code.label(), e.message);
                        }
                        Ok(response) => return Ok(response),
                        Err(parse) => {
                            // Garbled response: the server processed the
                            // request, we just can't read the answer.
                            self.conn = None;
                            last_error = format!("garbled response: {parse}");
                            if ambiguity_unsafe {
                                return Err(self.ambiguous_fatal(&last_error));
                            }
                        }
                    }
                }
                Err(te) => {
                    self.conn = None;
                    last_error = te.to_string();
                    // Fatal even on the last attempt: `Retryable` would
                    // invite exactly the blind manual retry (and double
                    // reservation) this classification exists to stop.
                    if te.is_ambiguous() && ambiguity_unsafe {
                        return Err(self.ambiguous_fatal(&last_error));
                    }
                }
            }
        }
        Err(ClientError::Retryable {
            attempts: self.policy.max_attempts.max(1),
            last_error,
        })
    }

    fn ambiguous_fatal(&self, failure: &str) -> ClientError {
        ClientError::Fatal(format!(
            "will not retry a reserving map request without an idempotency key \
             after an ambiguous failure ({failure}); set one, or use \
             RetryingClient::map which does"
        ))
    }
}

/// A connection with requests in flight: which correlation ids it still
/// owes answers for, in submission order (the order a v1-encoded
/// response — which carries no id — must be matched in).
#[derive(Debug)]
struct PooledConn {
    transport: TcpTransport,
    owed: std::collections::VecDeque<u64>,
}

/// The throughput client: `pool` persistent connections, a whole batch
/// of requests in flight at once, answers matched by frame correlation
/// id. No retries — under pipelining a failed connection has an
/// unknowable number of requests in the void, so the failure is
/// surfaced whole and the *caller* decides (resubmit idempotent work,
/// drop the batch). Connections are re-established per batch as needed.
#[derive(Debug)]
pub struct PooledClient {
    addr: String,
    timeout: Option<Duration>,
    format: WireFormat,
    conns: Vec<Option<PooledConn>>,
}

impl PooledClient {
    /// A pool of `pool` (≥ 1) connections to `addr`, speaking v2 binary
    /// frames. Connections are opened lazily on first use.
    pub fn new(addr: impl Into<String>, pool: usize, timeout: Option<Duration>) -> Self {
        Self::with_format(addr, pool, timeout, WireFormat::V2Binary)
    }

    /// A pool speaking `format` (v1 pipelines too — the server reads
    /// line after line — it just pays the JSON tax per message).
    pub fn with_format(
        addr: impl Into<String>,
        pool: usize,
        timeout: Option<Duration>,
        format: WireFormat,
    ) -> Self {
        let pool = pool.max(1);
        Self {
            addr: addr.into(),
            timeout,
            format,
            conns: (0..pool).map(|_| None).collect(),
        }
    }

    /// Pool size.
    pub fn pool(&self) -> usize {
        self.conns.len()
    }

    /// Send `requests` with up to `pool` connections' worth of
    /// pipelining and return the responses in submission order.
    ///
    /// Requests are dealt round-robin across the pool; each
    /// connection's share is encoded into one contiguous byte run and
    /// written with a single syscall, so a batch of cache hits costs a
    /// handful of writes rather than one round trip each. The
    /// correlation id of request `i` is `i + 1`; responses may be
    /// matched from the header without decoding the payload.
    ///
    /// Any transport or decode failure fails the whole batch: partial
    /// results under pipelining are ambiguous by nature and this client
    /// refuses to guess.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, String> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // A previous failed batch may have left responses in flight on
        // surviving connections; those sockets cannot be trusted to
        // answer *this* batch's ids, so they reconnect.
        for conn in &mut self.conns {
            if conn.as_ref().is_some_and(|c| !c.owed.is_empty()) {
                *conn = None;
            }
        }
        let pool = self.conns.len();
        // Encode each connection's share as one write.
        let mut batches: Vec<Vec<u8>> = vec![Vec::new(); pool];
        let mut owed: Vec<std::collections::VecDeque<u64>> =
            vec![std::collections::VecDeque::new(); pool];
        for (i, request) in requests.iter().enumerate() {
            let corr = (i + 1) as u64;
            let slot = i % pool;
            let msg = self.format.encode_request(request, corr);
            batches[slot].extend_from_slice(&msg);
            if self.format == WireFormat::V1Json {
                batches[slot].push(b'\n');
            }
            owed[slot].push_back(corr);
        }
        // One syscall wave: every connection's whole share goes out
        // before any response is read.
        for (slot, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if self.conns[slot].is_none() {
                let transport =
                    TcpTransport::connect_with(&self.addr, self.timeout, WireFormat::V2Binary)
                        .map_err(|e| format!("pool connection {slot}: {e}"))?;
                self.conns[slot] = Some(PooledConn {
                    transport,
                    owed: std::collections::VecDeque::new(),
                });
            }
            let conn = self.conns[slot].as_mut().expect("connection just opened");
            conn.owed = std::mem::take(&mut owed[slot]);
            // The batch is already fully framed (v2 length prefixes or
            // v1 newlines), so it rides the verbatim v2 send path
            // regardless of the encode format.
            if let Err(e) = conn.transport.send_msg(batch) {
                self.conns[slot] = None;
                return Err(format!("pool connection {slot}: {e}"));
            }
        }
        // Collect, matching answers to requests by correlation id.
        let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        for slot in 0..pool {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            while !conn.owed.is_empty() {
                let reply = match conn.transport.recv_msg() {
                    Ok(r) => r,
                    Err(e) => {
                        let missing = conn.owed.len();
                        self.conns[slot] = None;
                        return Err(format!(
                            "pool connection {slot} lost {missing} in-flight responses: {e}"
                        ));
                    }
                };
                let framed = is_frame(&reply);
                let (corr, response) = WireFormat::decode_response(&reply)
                    .map_err(|e| format!("pool connection {slot}: garbled response: {e}"))?;
                let corr = if framed {
                    // Cross off the id the server echoed back.
                    let Some(pos) = conn.owed.iter().position(|&c| c == corr) else {
                        self.conns[slot] = None;
                        return Err(format!(
                            "pool connection {slot}: unexpected correlation id {corr}"
                        ));
                    };
                    conn.owed.remove(pos).expect("position just found")
                } else {
                    // A v1 line (e.g. an admission rejection written
                    // before the server saw our protocol) carries no
                    // id: it answers the oldest outstanding request.
                    conn.owed.pop_front().expect("loop guard: non-empty")
                };
                responses[(corr - 1) as usize] = Some(response);
            }
        }
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every owed id was crossed off"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            seed: 9,
        };
        let a = policy.backoff_schedule();
        let b = policy.backoff_schedule();
        assert_eq!(a, b, "same policy must yield the same schedule");
        assert_eq!(a.len(), 5);
        for (i, pause) in a.iter().enumerate() {
            let uncapped = 100u64 << i;
            let exp = uncapped.min(400) as f64 / 1e3;
            let f = pause.as_secs_f64() / exp;
            assert!((0.5..1.0).contains(&f), "pause {i} jitter factor {f}");
        }
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let mk = |seed| RetryPolicy {
            seed,
            ..RetryPolicy::default()
        };
        assert_ne!(mk(1).backoff_schedule(), mk(2).backoff_schedule());
    }

    #[test]
    fn client_error_displays_on_one_line() {
        let e = ClientError::Retryable {
            attempts: 3,
            last_error: "injected fault: read timed out".into(),
        };
        let line = e.to_string();
        assert!(line.starts_with("retryable:"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn pool_size_is_clamped_to_at_least_one() {
        let c = PooledClient::new("127.0.0.1:1", 0, None);
        assert_eq!(c.pool(), 1);
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let mut c = PooledClient::new("127.0.0.1:1", 4, None);
        assert_eq!(c.pipeline(&[]), Ok(Vec::new()), "no connection attempted");
    }
}
