//! A blocking JSON-lines client for the daemon.
//!
//! One request per call, one connection per client; the protocol
//! allows pipelining, so a client can issue several requests over its
//! lifetime. Everything the CLI's `geomap request` subcommand and the
//! bench load generator need, with string errors that read well on one
//! diagnostic line.

use crate::proto::{MapRequest, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client.
#[derive(Debug)]
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connect to `addr` (host:port). `timeout` bounds the connection
    /// attempt and every subsequent read/write (`None`: OS defaults).
    pub fn connect(addr: &str, timeout: Option<Duration>) -> Result<Self, String> {
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {addr:?}: {e}"))?
            .collect();
        let mut last_err = format!("{addr:?} resolved to no addresses");
        for candidate in resolved {
            let attempt = match timeout {
                Some(t) => TcpStream::connect_timeout(&candidate, t),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(stream) => {
                    stream
                        .set_read_timeout(timeout)
                        .and_then(|()| stream.set_write_timeout(timeout))
                        .map_err(|e| format!("cannot configure socket: {e}"))?;
                    let writer = stream
                        .try_clone()
                        .map_err(|e| format!("cannot clone socket: {e}"))?;
                    return Ok(Self {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last_err = format!("cannot connect to {candidate}: {e}"),
            }
        }
        Err(last_err)
    }

    /// Send one request and wait for its response line.
    pub fn send(&mut self, request: &Request) -> Result<Response, String> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("server closed the connection without responding".into()),
            Ok(_) => Response::from_line(&reply),
            Err(e) => Err(format!("cannot read response: {e}")),
        }
    }

    /// Shorthand: send a `map` request.
    pub fn map(&mut self, request: MapRequest) -> Result<Response, String> {
        self.send(&Request::Map(request))
    }

    /// Shorthand: release a lease.
    pub fn release(&mut self, id: &str, lease: u64) -> Result<Response, String> {
        self.send(&Request::Release {
            id: id.to_string(),
            lease,
        })
    }

    /// Shorthand: fetch server counters.
    pub fn stats(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::Stats { id: id.to_string() })
    }

    /// Shorthand: ask the daemon to drain and exit.
    pub fn shutdown(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::Shutdown { id: id.to_string() })
    }
}
