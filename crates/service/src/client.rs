//! Clients for the daemon: a plain blocking one and a resilient one.
//!
//! [`ServiceClient`] is the original single-shot client — one request
//! per call over a [`TcpTransport`](crate::transport::TcpTransport),
//! string errors that read well on one diagnostic line.
//!
//! [`RetryingClient`] layers resilience on any
//! [`Connector`](crate::transport::Connector): a retry budget, capped
//! exponential backoff with deterministic jitter (seeded from the
//! vendored RNG — two clients with the same [`RetryPolicy`] back off
//! identically), reconnect-on-failure, and retry on transient server
//! refusals ([`ErrorCode::is_retryable`]). Retrying a *reserving* map
//! request is only safe with an idempotency key — the server replays
//! the remembered response instead of reserving twice — so
//! [`RetryingClient::map`] generates one automatically and
//! [`RetryingClient::send`] refuses to blind-retry a reserving request
//! after an ambiguous failure (see
//! [`TransportError::is_ambiguous`](crate::transport::TransportError::is_ambiguous)).

use crate::proto::{ErrorCode, MapRequest, Request, Response};
use crate::transport::{Connector, TcpTransport, Transport};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::time::Duration;

/// A connected single-shot client (no retries; failures are strings).
#[derive(Debug)]
pub struct ServiceClient {
    transport: TcpTransport,
}

impl ServiceClient {
    /// Connect to `addr` (host:port). `timeout` bounds the connection
    /// attempt and every subsequent read/write (`None`: OS defaults).
    pub fn connect(addr: &str, timeout: Option<Duration>) -> Result<Self, String> {
        TcpTransport::connect(addr, timeout)
            .map(|transport| Self { transport })
            .map_err(|e| e.to_string())
    }

    /// Send one request and wait for its response line.
    pub fn send(&mut self, request: &Request) -> Result<Response, String> {
        self.transport
            .send_line(&request.to_line())
            .map_err(|e| e.to_string())?;
        let reply = self.transport.recv_line().map_err(|e| e.to_string())?;
        Response::from_line(&reply)
    }

    /// Shorthand: send a `map` request.
    pub fn map(&mut self, request: MapRequest) -> Result<Response, String> {
        self.send(&Request::Map(request))
    }

    /// Shorthand: release a lease.
    pub fn release(&mut self, id: &str, lease: u64) -> Result<Response, String> {
        self.send(&Request::Release {
            id: id.to_string(),
            lease,
        })
    }

    /// Shorthand: fetch server counters.
    pub fn stats(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::Stats { id: id.to_string() })
    }

    /// Shorthand: ask the daemon to drain and exit.
    pub fn shutdown(&mut self, id: &str) -> Result<Response, String> {
        self.send(&Request::Shutdown { id: id.to_string() })
    }
}

/// How hard a [`RetryingClient`] tries.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff pause.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter *and* the client's
    /// auto-generated idempotency keys — give every client its own.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x7E7B,
        }
    }
}

impl RetryPolicy {
    /// The full backoff schedule (one pause per possible retry):
    /// `min(base · 2^i, cap)` scaled by a jitter factor in `[0.5, 1.0)`
    /// drawn from the seeded RNG. Pure: same policy, same schedule.
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| {
                let exp = self
                    .base_backoff
                    .saturating_mul(2u32.saturating_pow(i))
                    .min(self.max_backoff);
                let jitter = 0.5 + 0.5 * rng.random_range(0.0..1.0f64);
                Duration::from_secs_f64(exp.as_secs_f64() * jitter)
            })
            .collect()
    }
}

/// Why a [`RetryingClient`] call gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every attempt failed transiently; trying again later may work.
    Retryable {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last failure, verbatim.
        last_error: String,
    },
    /// Retrying would be wrong (e.g. a reserving map request without an
    /// idempotency key failed ambiguously — a retry could reserve
    /// twice).
    Fatal(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Retryable {
                attempts,
                last_error,
            } => write!(
                f,
                "{}: gave up after {attempts} attempts: {last_error}",
                ErrorCode::Retryable.label()
            ),
            ClientError::Fatal(m) => write!(f, "fatal: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client that retries through any [`Connector`].
#[derive(Debug)]
pub struct RetryingClient<C: Connector> {
    connector: C,
    policy: RetryPolicy,
    backoffs: Vec<Duration>,
    conn: Option<C::Conn>,
    client_tag: u64,
    next_key: u64,
}

impl<C: Connector> RetryingClient<C> {
    /// A client that connects through `connector` under `policy`.
    pub fn new(connector: C, policy: RetryPolicy) -> Self {
        let backoffs = policy.backoff_schedule();
        let client_tag = crate::fingerprint::Fingerprint::new()
            .u64(policy.seed)
            .finish();
        Self {
            connector,
            policy,
            backoffs,
            conn: None,
            client_tag,
            next_key: 0,
        }
    }

    /// The policy this client runs under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The next auto-idempotency key: deterministic per (seed,
    /// sequence), unique per logical request within this client.
    fn generate_key(&mut self) -> String {
        self.next_key += 1;
        format!("auto-{:016x}-{}", self.client_tag, self.next_key)
    }

    /// Send a `map` request, auto-filling an idempotency key when the
    /// request reserves inventory and carries none — making every retry
    /// safe by construction. Keyed even at `max_attempts == 1`: the
    /// *caller* may retry after an ambiguous failure, and the key is
    /// what makes that safe.
    pub fn map(&mut self, mut request: MapRequest) -> Result<Response, ClientError> {
        if request.reserve && request.idempotency_key.is_none() {
            request.idempotency_key = Some(self.generate_key());
        }
        self.send(&Request::Map(request))
    }

    /// Shorthand: release a lease (a redundant release after a lost
    /// response comes back as a clean `unknown_lease`, never a
    /// double-free — the inventory already forgot the lease).
    pub fn release(&mut self, id: &str, lease: u64) -> Result<Response, ClientError> {
        self.send(&Request::Release {
            id: id.to_string(),
            lease,
        })
    }

    /// Shorthand: fetch server counters (read-only, always retry-safe).
    pub fn stats(&mut self, id: &str) -> Result<Response, ClientError> {
        self.send(&Request::Stats { id: id.to_string() })
    }

    /// Send one request with retries. Returns the server's response —
    /// including non-retryable `Error` responses, which *are* the
    /// answer — or a [`ClientError`] once the budget is spent.
    pub fn send(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = request.to_line();
        // A reserving map request without an idempotency key must not
        // be retried after an ambiguous failure: the first attempt may
        // have reserved, and a retry would reserve again.
        let ambiguity_unsafe =
            matches!(request, Request::Map(m) if m.reserve && m.idempotency_key.is_none());
        let mut last_error = String::from("no attempt made");
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                let pause = self.backoffs[(attempt - 1) as usize];
                self.connector.backoff(pause);
            }
            if self.conn.is_none() {
                match self.connector.connect() {
                    Ok(c) => self.conn = Some(c),
                    Err(e) => {
                        last_error = e.to_string();
                        continue; // unambiguous: nothing was sent
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection just established");
            let outcome = conn.send_line(&line).and_then(|()| conn.recv_line());
            match outcome {
                Ok(reply) => match Response::from_line(&reply) {
                    Ok(Response::Error(e)) if e.code.is_retryable() => {
                        // A clean, transient refusal: the connection is
                        // fine, the server's moment was not.
                        last_error = format!("{}: {}", e.code.label(), e.message);
                    }
                    Ok(response) => return Ok(response),
                    Err(parse) => {
                        // Garbled response: the server processed the
                        // request, we just can't read the answer.
                        self.conn = None;
                        last_error = format!("garbled response: {parse}");
                        if ambiguity_unsafe {
                            return Err(self.ambiguous_fatal(&last_error));
                        }
                    }
                },
                Err(te) => {
                    self.conn = None;
                    last_error = te.to_string();
                    // Fatal even on the last attempt: `Retryable` would
                    // invite exactly the blind manual retry (and double
                    // reservation) this classification exists to stop.
                    if te.is_ambiguous() && ambiguity_unsafe {
                        return Err(self.ambiguous_fatal(&last_error));
                    }
                }
            }
        }
        Err(ClientError::Retryable {
            attempts: self.policy.max_attempts.max(1),
            last_error,
        })
    }

    fn ambiguous_fatal(&self, failure: &str) -> ClientError {
        ClientError::Fatal(format!(
            "will not retry a reserving map request without an idempotency key \
             after an ambiguous failure ({failure}); set one, or use \
             RetryingClient::map which does"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            seed: 9,
        };
        let a = policy.backoff_schedule();
        let b = policy.backoff_schedule();
        assert_eq!(a, b, "same policy must yield the same schedule");
        assert_eq!(a.len(), 5);
        for (i, pause) in a.iter().enumerate() {
            let uncapped = 100u64 << i;
            let exp = uncapped.min(400) as f64 / 1e3;
            let f = pause.as_secs_f64() / exp;
            assert!((0.5..1.0).contains(&f), "pause {i} jitter factor {f}");
        }
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let mk = |seed| RetryPolicy {
            seed,
            ..RetryPolicy::default()
        };
        assert_ne!(mk(1).backoff_schedule(), mk(2).backoff_schedule());
    }

    #[test]
    fn client_error_displays_on_one_line() {
        let e = ClientError::Retryable {
            attempts: 3,
            last_error: "injected fault: read timed out".into(),
        };
        let line = e.to_string();
        assert!(line.starts_with("retryable:"), "{line}");
        assert!(!line.contains('\n'));
    }
}
