//! Bounded, thread-safe caches keyed by content fingerprints.
//!
//! The daemon keeps two tiers (see [`crate::service`]):
//!
//! * the **problem cache** — calibration report + assembled
//!   [`geomap_core::MappingProblem`] per `(network, calibration,
//!   pattern, constraints)` fingerprint, so repeated requests against
//!   the same topology skip the probing campaign, the partner-list
//!   construction and the downstream `CostTables::build`;
//! * the **result cache** — the solved mapping per `(problem,
//!   algorithm, seed)` fingerprint, so identical requests skip the
//!   solve entirely.
//!
//! Both are exact-key LRU maps: eviction only bounds memory, never
//! changes an answer (the fingerprint pins all inputs, and solvers are
//! deterministic per seed, so a stale entry cannot exist).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded LRU map from fingerprint to shared value.
#[derive(Debug)]
pub struct FingerprintCache<V> {
    inner: Mutex<Lru<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct Lru<V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, (V, u64)>,
}

impl<V: Clone> FingerprintCache<V> {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Lru {
                capacity,
                tick: 0,
                entries: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut lru = self.inner.lock().expect("cache lock");
        lru.tick += 1;
        let tick = lru.tick;
        match lru.entries.get_mut(&key) {
            Some((v, stamp)) => {
                *stamp = tick;
                let v = v.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `key → value`, evicting the least-recently-used entry
    /// when full. Inserting an existing key refreshes it.
    pub fn insert(&self, key: u64, value: V) {
        let mut lru = self.inner.lock().expect("cache lock");
        if lru.capacity == 0 {
            return;
        }
        lru.tick += 1;
        let tick = lru.tick;
        lru.entries.insert(key, (value, tick));
        if lru.entries.len() > lru.capacity {
            if let Some(&oldest) = lru
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                lru.entries.remove(&oldest);
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_are_counted() {
        let c = FingerprintCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, "a");
        assert_eq!(c.get(1), Some("a"));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_the_oldest_untouched_entry() {
        let c = FingerprintCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some("a")); // refresh 1 → 2 is now oldest
        c.insert(3, "c");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some("a"));
        assert_eq!(c.get(3), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = FingerprintCache::new(0);
        c.insert(1, "a");
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let c = FingerprintCache::new(2);
        c.insert(1, "a");
        c.insert(1, "a2");
        c.insert(2, "b");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some("a2"));
    }
}
